/**
 * @file
 * Fig. 16 — top-down analysis versus thread count for the four encoders
 * on game1. The paper's finding: Libaom, SVT-AV1, and x264 keep the same
 * slot breakdown as threads rise, while x265 becomes markedly more
 * backend-bound — the signature of one primary thread doing the work
 * while helpers wait.
 *
 * The socket-wide instruction stream per thread count is reconstructed
 * from the scheduled task graph (core/threadstudy.hpp): executed task
 * ops in time order, idle cores filled with coherence-missing work-queue
 * spin loops.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/threadstudy.hpp"
#include "encoders/registry.hpp"
#include "lab/progress.hpp"
#include "uarch/core.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    video::SuiteScale geometry = scale.suite;
    if (geometry.divisor == 8) {
        geometry.divisor = 4;
        geometry.frames = 8;
    }
    video::Video clip = video::loadSuiteVideo("game1", geometry);

    core::Table table({"Encoder", "Threads", "Retiring", "Bad-spec",
                       "Frontend", "Backend", "IPC/core"});
    // This figure replays reconstructed socket-wide traces, which needs
    // the materialised op trace (random access across task op ranges),
    // so the encode stays batch-captured; the four encoders are
    // independent and run on scale.jobs workers.
    const std::vector<std::string> names = {"Libaom", "SVT-AV1", "x264",
                                            "x265"};
    std::vector<std::vector<std::vector<std::string>>> rows(names.size());
    core::parallelFor(names.size(), scale.jobs, [&](size_t i) {
        const std::string &name = names[i];
        auto enc = encoders::encoderByName(name);
        encoders::EncodeParams p;
        p.crf = enc->crfRange() == 63 ? 40 : 32;
        p.preset = enc->presetInverted() ? 2 : 6;
        trace::ProbeConfig pc;
        pc.collectOps = true;
        pc.maxOps = 1'200'000;
        pc.opWindow = 60'000;
        pc.opInterval = 300'000;
        auto r = enc->encode(clip, p, pc, true);

        core::SystemTraceConfig trace_cfg;
        // x265's thread pool polls (spin-waits); the others block.
        trace_cfg.pollingWaits =
            enc->threadModel() == encoders::ThreadModel::SerialSpine;
        for (int threads : {1, 2, 4, 8}) {
            auto system_trace = core::buildSystemTrace(
                r.opTrace(), r.taskGraph, threads, trace_cfg);
            uarch::Core core;
            uarch::CoreStats s = core.run(system_trace);
            rows[i].push_back(
                {name, std::to_string(threads),
                 core::fmt(s.slots.fraction(s.slots.retiring), 3),
                 core::fmt(s.slots.fraction(s.slots.badSpec), 3),
                 core::fmt(s.slots.fraction(s.slots.frontend), 3),
                 core::fmt(s.slots.fraction(s.slots.backend), 3),
                 core::fmt(s.ipc(), 2)});
        }
        // Serialised via Progress: this line is emitted from a worker.
        lab::Progress::standard().linef("  [%s done]", name.c_str());
    });
    for (const auto &encoder_rows : rows) {
        for (const auto &row : encoder_rows) {
            table.addRow(row);
        }
    }
    table.print("Fig 16: top-down analysis vs thread count (game1)");
    std::printf("\nExpected shape: Libaom / SVT-AV1 / x264 roughly flat "
                "across thread counts; x265's backend share grows "
                "sharply.\n");
    return 0;
}
