/**
 * @file
 * Simulator-throughput benchmark: how many simulated ops per second the
 * trace→simulation hot path sustains, per component and end to end.
 *
 * Replays the deterministic synthetic workload of trace/synth.hpp
 * through each stage of the pipeline in isolation and then fused:
 *
 *   probe_emit  — the delivery layer alone: kernel-facing emission API
 *                 (PC synthesis, sampling accounting, block flushing)
 *                 into a counting null sink.
 *   cache       — CacheSink: hierarchy-only replay of the op trace.
 *   core        — StreamCore: the full out-of-order model.
 *   bpred       — StreamRunner + TAGE on the synthetic branch trace
 *                 (reported in M branches/s).
 *   end_to_end  — probe emission fused into MuxSink{StreamCore,
 *                 CacheSink, StreamRunner}: the shape every vepro-lab
 *                 sweep point runs.
 *   capture     — probe emission into a trace::FileSink: the encode-side
 *                 cost of a trace-cache miss over plain executeDirect
 *                 (also logs the on-disk bytes/op of the codec).
 *   replay      — trace::FileSource decode into a counting sink: the
 *                 fixed per-run cost of a trace-cache hit before any
 *                 simulation work happens.
 *   e2e_pipe    — the same three sinks behind a trace::PipelineMux,
 *                 each on its own worker thread (--sim-jobs; pipeline
 *                 parallelism, bit-identical stats).
 *   e2e_multi4  — probe emission fanned through a PipelineMux into FOUR
 *                 full StreamCore+CacheSink+StreamRunner stacks with
 *                 distinct configs: the one-pass runPointMulti ablation
 *                 shape. Reported in config-ops/s (4 simulated configs
 *                 per emitted op), so its ratio vs end_to_end is the
 *                 speedup over running the four configs sequentially.
 *   core_seg    — uarch::SegmentSim over the same trace (--segments /
 *                 --segment-warmup; segment parallelism, bounded
 *                 warmup error).
 *   e2e_seg     — probe emission fused into SegmentSim, the shape
 *                 runPoint(--segments=N) executes.
 *
 * Writes BENCH_simspeed.json (see --out) so the repository carries a
 * perf trajectory; --baseline compares against a committed file and
 * exits non-zero on a >tolerance regression (the CI perf-smoke gate).
 *
 * --golden prints the exact golden-stats counters pinned by
 * tests/test_core.cpp, for regeneration after an intentional
 * behaviour change.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bpred/runner.hpp"
#include "lab/json.hpp"
#include "trace/pipeline.hpp"
#include "trace/probe.hpp"
#include "trace/synth.hpp"
#include "trace/trace_io.hpp"
#include "uarch/core.hpp"
#include "uarch/segment.hpp"

namespace
{

using namespace vepro;

using Clock = std::chrono::steady_clock;

/** Null sink that only counts deliveries (measures the probe side). */
class CountSink final : public trace::TraceSink
{
  public:
    void onOp(const trace::TraceOp &) override { ++ops_; }
    void onOps(const trace::TraceOp *, size_t n) override { ops_ += n; }
    void onBranch(const trace::BranchRecord &) override { ++branches_; }

    uint64_t ops() const { return ops_; }

  private:
    uint64_t ops_ = 0;
    uint64_t branches_ = 0;
};

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Best-of-@p reps throughput of @p run, in M records/s. */
template <typename Fn>
double
bestMops(int reps, Fn run)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        Clock::time_point t0 = Clock::now();
        uint64_t records = run();
        double s = secondsSince(t0);
        double mops = s > 0.0 ? static_cast<double>(records) / s / 1e6 : 0.0;
        best = std::max(best, mops);
    }
    return best;
}

std::string
fmt3(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

/** The fixed configuration pinned by the golden-stats tests. */
constexpr uint64_t kGoldenOps = 400'000;
constexpr uint64_t kGoldenBranches = 200'000;

void
printGolden()
{
    trace::SynthConfig cfg;
    cfg.ops = kGoldenOps;
    std::vector<trace::TraceOp> t = trace::synthTrace(cfg);

    uarch::Core core;
    uarch::CoreStats s = core.run(t);
    std::printf("// Core::run(synthTrace{ops=%llu}), default CoreConfig\n",
                static_cast<unsigned long long>(kGoldenOps));
    std::printf("cycles=%llu instructions=%llu\n",
                (unsigned long long)s.cycles,
                (unsigned long long)s.instructions);
    std::printf("slots: retiring=%llu badSpec=%llu frontend=%llu "
                "backend=%llu backendMemory=%llu backendCore=%llu\n",
                (unsigned long long)s.slots.retiring,
                (unsigned long long)s.slots.badSpec,
                (unsigned long long)s.slots.frontend,
                (unsigned long long)s.slots.backend,
                (unsigned long long)s.slots.backendMemory,
                (unsigned long long)s.slots.backendCore);
    std::printf("stalls: rs=%llu rob=%llu loadBuf=%llu storeBuf=%llu\n",
                (unsigned long long)s.stalls.rs,
                (unsigned long long)s.stalls.rob,
                (unsigned long long)s.stalls.loadBuf,
                (unsigned long long)s.stalls.storeBuf);
    std::printf("branches: cond=%llu mispredicts=%llu\n",
                (unsigned long long)s.condBranches,
                (unsigned long long)s.mispredicts);
    std::printf("mem: l1iMisses=%llu l1dAccesses=%llu l1dMisses=%llu "
                "l2Misses=%llu llcMisses=%llu invalidations=%llu\n",
                (unsigned long long)s.l1iMisses,
                (unsigned long long)s.l1dAccesses,
                (unsigned long long)s.l1dMisses,
                (unsigned long long)s.l2Misses,
                (unsigned long long)s.llcMisses,
                (unsigned long long)s.invalidations);

    uarch::CacheSink sink;
    sink.onOps(t.data(), t.size());
    sink.flush();
    const uarch::Hierarchy &m = sink.hierarchy();
    std::printf("// CacheSink over the same trace\n");
    std::printf("cachesink: instructions=%llu l1i=%llu/%llu l1d=%llu/%llu "
                "l2=%llu/%llu llc=%llu/%llu inval=%llu\n",
                (unsigned long long)sink.instructions(),
                (unsigned long long)m.l1i().accesses(),
                (unsigned long long)m.l1i().misses(),
                (unsigned long long)m.l1d().accesses(),
                (unsigned long long)m.l1d().misses(),
                (unsigned long long)m.l2().accesses(),
                (unsigned long long)m.l2().misses(),
                (unsigned long long)m.llc().accesses(),
                (unsigned long long)m.llc().misses(),
                (unsigned long long)(m.l1d().invalidations() +
                                     m.l2().invalidations()));

    std::vector<trace::BranchRecord> b =
        trace::synthBranches(kGoldenBranches);
    auto pred = bpred::makePredictor("tage-64KB");
    bpred::RunResult r = bpred::runTrace(*pred, b, kGoldenBranches * 5);
    std::printf("// tage-64KB on synthBranches(%llu)\n",
                (unsigned long long)kGoldenBranches);
    std::printf("bpred: branches=%llu misses=%llu\n",
                (unsigned long long)r.branches,
                (unsigned long long)r.misses);
}

struct Options {
    uint64_t ops = 6'000'000;
    int reps = 3;
    std::string mode = "default";
    std::string out = "BENCH_simspeed.json";
    std::string baseline;
    double tolerance = 0.30;
    bool golden = false;
    int simJobs = 0;    ///< Pipeline workers; 0 = auto-detect.
    int segments = 0;   ///< Segment count; 0 = auto-detect.
    int warmup = 8;     ///< Segment warmup blocks.
};

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--quick") {
            o.ops = 1'500'000;
            o.mode = "quick";
        } else if (a == "--full") {
            o.ops = 24'000'000;
            o.mode = "full";
        } else if (a == "--golden") {
            o.golden = true;
        } else if (a.rfind("--reps=", 0) == 0) {
            o.reps = std::stoi(a.substr(7));
        } else if (a.rfind("--out=", 0) == 0) {
            o.out = a.substr(6);
        } else if (a.rfind("--baseline=", 0) == 0) {
            o.baseline = a.substr(11);
        } else if (a.rfind("--tolerance=", 0) == 0) {
            o.tolerance = std::stod(a.substr(12));
        } else if (a.rfind("--sim-jobs=", 0) == 0) {
            o.simJobs = std::stoi(a.substr(11));
        } else if (a.rfind("--segments=", 0) == 0) {
            o.segments = std::stoi(a.substr(11));
        } else if (a.rfind("--segment-warmup=", 0) == 0) {
            o.warmup = std::stoi(a.substr(17));
        } else {
            std::fprintf(stderr,
                         "usage: bench_simspeed [--quick|--full] [--reps=N] "
                         "[--out=FILE] [--baseline=FILE] [--tolerance=F] "
                         "[--golden] [--sim-jobs=N] [--segments=N] "
                         "[--segment-warmup=K]  (0 = auto-detect)\n");
            std::exit(a == "--help" ? 0 : 1);
        }
    }
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    if (opt.golden) {
        printGolden();
        return 0;
    }

    const uint64_t n_branches = opt.ops / 4;
    std::printf("bench_simspeed: %llu ops, %llu branches, best of %d reps\n",
                (unsigned long long)opt.ops,
                (unsigned long long)n_branches, opt.reps);

    trace::SynthConfig cfg;
    cfg.ops = opt.ops;
    std::vector<trace::TraceOp> t = trace::synthTrace(cfg);
    std::vector<trace::BranchRecord> b = trace::synthBranches(n_branches);

    lab::JsonValue mops = lab::JsonValue::object();

    double probe_emit = bestMops(opt.reps, [&] {
        CountSink count;
        trace::Probe probe{trace::ProbeConfig::streaming(true)};
        probe.setSink(&count);
        trace::synthProbeWorkload(probe, opt.ops);
        probe.flushToSink();
        count.flush();
        return probe.recordedOps();
    });
    std::printf("  %-11s %8.2f Mops/s\n", "probe_emit", probe_emit);
    mops.set("probe_emit", lab::JsonValue::numberToken(fmt3(probe_emit)));

    double cache = bestMops(opt.reps, [&] {
        uarch::CacheSink sink;
        for (size_t i = 0; i < t.size(); i += 4096) {
            sink.onOps(t.data() + i, std::min<size_t>(4096, t.size() - i));
        }
        sink.flush();
        return t.size();
    });
    std::printf("  %-11s %8.2f Mops/s\n", "cache", cache);
    mops.set("cache", lab::JsonValue::numberToken(fmt3(cache)));

    double core = bestMops(opt.reps, [&] {
        uarch::StreamCore sim;
        for (size_t i = 0; i < t.size(); i += 4096) {
            sim.onOps(t.data() + i, std::min<size_t>(4096, t.size() - i));
        }
        sim.flush();
        return t.size();
    });
    std::printf("  %-11s %8.2f Mops/s\n", "core", core);
    mops.set("core", lab::JsonValue::numberToken(fmt3(core)));

    double bpred_tput = bestMops(opt.reps, [&] {
        auto pred = bpred::makePredictor("tage-64KB");
        bpred::StreamRunner runner(*pred);
        for (const trace::BranchRecord &r : b) {
            runner.onBranch(r);
        }
        runner.flush();
        return b.size();
    });
    std::printf("  %-11s %8.2f Mbr/s\n", "bpred", bpred_tput);
    mops.set("bpred", lab::JsonValue::numberToken(fmt3(bpred_tput)));

    if (std::getenv("VEPRO_BREAKDOWN") != nullptr) {
        double e2e_core = bestMops(opt.reps, [&] {
            uarch::StreamCore sim;
            trace::Probe probe{trace::ProbeConfig::streaming(true)};
            probe.setSink(&sim);
            trace::synthProbeWorkload(probe, opt.ops);
            probe.flushToSink();
            sim.flush();
            return probe.recordedOps();
        });
        std::printf("  %-11s %8.2f Mops/s\n", "e2e_core", e2e_core);
        double e2e_cache = bestMops(opt.reps, [&] {
            uarch::CacheSink sink;
            trace::Probe probe{trace::ProbeConfig::streaming(true)};
            probe.setSink(&sink);
            trace::synthProbeWorkload(probe, opt.ops);
            probe.flushToSink();
            sink.flush();
            return probe.recordedOps();
        });
        std::printf("  %-11s %8.2f Mops/s\n", "e2e_cache", e2e_cache);
        double e2e_bpred = bestMops(opt.reps, [&] {
            auto pred = bpred::makePredictor("tage-64KB");
            bpred::StreamRunner runner(*pred);
            trace::Probe probe{trace::ProbeConfig::streaming(true)};
            probe.setSink(&runner);
            trace::synthProbeWorkload(probe, opt.ops);
            probe.flushToSink();
            runner.flush();
            return probe.recordedOps();
        });
        std::printf("  %-11s %8.2f Mops/s\n", "e2e_bpred", e2e_bpred);
    }

    double end_to_end = bestMops(opt.reps, [&] {
        uarch::StreamCore sim;
        uarch::CacheSink sink;
        auto pred = bpred::makePredictor("tage-64KB");
        bpred::StreamRunner runner(*pred);
        trace::MuxSink mux{&sim, &sink, &runner};
        trace::Probe probe{trace::ProbeConfig::streaming(true)};
        probe.setSink(&mux);
        trace::synthProbeWorkload(probe, opt.ops);
        probe.flushToSink();
        mux.flush();
        return probe.recordedOps();
    });
    std::printf("  %-11s %8.2f Mops/s\n", "end_to_end", end_to_end);
    mops.set("end_to_end", lab::JsonValue::numberToken(fmt3(end_to_end)));

    // TraceFile capture/replay: the two halves of the lab trace cache.
    const std::filesystem::path trace_path =
        std::filesystem::temp_directory_path() / "bench_simspeed.vetf";
    double bytes_per_op = 0.0;
    double capture = bestMops(opt.reps, [&] {
        trace::FileSink file(trace_path.string());
        trace::Probe probe{trace::ProbeConfig::streaming(true)};
        probe.setSink(&file);
        trace::synthProbeWorkload(probe, opt.ops);
        probe.flushToSink();
        file.flush();
        bytes_per_op = file.opCount() > 0
                           ? static_cast<double>(file.bytesWritten()) /
                                 static_cast<double>(file.opCount())
                           : 0.0;
        return probe.recordedOps();
    });
    std::printf("  %-11s %8.2f Mops/s  (%.2f bytes/op on disk)\n", "capture",
                capture, bytes_per_op);
    mops.set("capture", lab::JsonValue::numberToken(fmt3(capture)));

    double replay = bestMops(opt.reps, [&] {
        CountSink count;
        trace::FileSource source(trace_path.string());
        trace::TraceFileInfo info = source.replay(count);
        count.flush();
        return info.opCount;
    });
    std::printf("  %-11s %8.2f Mops/s\n", "replay", replay);
    mops.set("replay", lab::JsonValue::numberToken(fmt3(replay)));
    std::filesystem::remove(trace_path);

    // Parallel modes (the PR-6 paths). e2e_pipe runs the same three
    // sinks as end_to_end, each on a worker; core_seg slices the trace
    // across cores. Worker counts resolve 0 = auto-detect.
    const int sim_jobs = trace::resolveJobs(opt.simJobs);
    double e2e_pipe = bestMops(opt.reps, [&] {
        uarch::StreamCore sim;
        uarch::CacheSink sink;
        auto pred = bpred::makePredictor("tage-64KB");
        bpred::StreamRunner runner(*pred);
        trace::PipelineMux::Options popts;
        popts.jobs = sim_jobs;
        trace::PipelineMux mux({&sim, &sink, &runner}, popts);
        trace::Probe probe{trace::ProbeConfig::streaming(true)};
        probe.setSink(&mux);
        trace::synthProbeWorkload(probe, opt.ops);
        probe.flushToSink();
        mux.flush();
        return probe.recordedOps();
    });
    std::printf("  %-11s %8.2f Mops/s  (sim-jobs=%d, %.2fx end_to_end)\n",
                "e2e_pipe", e2e_pipe, sim_jobs,
                end_to_end > 0.0 ? e2e_pipe / end_to_end : 0.0);
    mops.set("e2e_pipe", lab::JsonValue::numberToken(fmt3(e2e_pipe)));

    // The one-pass multi-config shape runPointMulti executes: one
    // emission pass, four independent full sweep stacks. Counting each
    // op once per config makes the e2e_multi4/end_to_end ratio the
    // speedup over simulating the four configs sequentially.
    constexpr int kMultiConfigs = 4;
    double e2e_multi4 = bestMops(opt.reps, [&] {
        const int robs[kMultiConfigs] = {64, 128, 256, 384};
        std::vector<std::unique_ptr<uarch::StreamCore>> cores;
        std::vector<std::unique_ptr<uarch::CacheSink>> caches;
        std::vector<std::unique_ptr<bpred::BranchPredictor>> preds;
        std::vector<std::unique_ptr<bpred::StreamRunner>> runners;
        std::vector<std::unique_ptr<trace::MuxSink>> stacks;
        std::vector<trace::TraceSink *> fanout;
        for (int rob : robs) {
            uarch::CoreConfig ccfg;
            ccfg.robSize = rob;
            cores.push_back(std::make_unique<uarch::StreamCore>(ccfg));
            caches.push_back(std::make_unique<uarch::CacheSink>());
            preds.push_back(bpred::makePredictor("tage-64KB"));
            runners.push_back(
                std::make_unique<bpred::StreamRunner>(*preds.back()));
            auto stack = std::make_unique<trace::MuxSink>();
            stack->add(cores.back().get());
            stack->add(caches.back().get());
            stack->add(runners.back().get());
            fanout.push_back(stack.get());
            stacks.push_back(std::move(stack));
        }
        trace::PipelineMux::Options popts;
        popts.jobs = sim_jobs;
        trace::PipelineMux mux(fanout, popts);
        trace::Probe probe{trace::ProbeConfig::streaming(true)};
        probe.setSink(&mux);
        trace::synthProbeWorkload(probe, opt.ops);
        probe.flushToSink();
        mux.flush();
        return probe.recordedOps() * kMultiConfigs;
    });
    std::printf("  %-11s %8.2f Mops/s  (%d configs, sim-jobs=%d, "
                "%.2fx end_to_end)\n",
                "e2e_multi4", e2e_multi4, kMultiConfigs, sim_jobs,
                end_to_end > 0.0 ? e2e_multi4 / end_to_end : 0.0);
    mops.set("e2e_multi4", lab::JsonValue::numberToken(fmt3(e2e_multi4)));

    const int segments = trace::resolveJobs(opt.segments);
    double core_seg = bestMops(opt.reps, [&] {
        uarch::SegmentSimConfig scfg;
        scfg.segments = segments;
        scfg.warmupBlocks = opt.warmup;
        uarch::SegmentSim sim(scfg);
        for (size_t i = 0; i < t.size(); i += 4096) {
            sim.onOps(t.data() + i, std::min<size_t>(4096, t.size() - i));
        }
        sim.flush();
        return t.size();
    });
    std::printf("  %-11s %8.2f Mops/s  (segments=%d, warmup=%d, "
                "%.2fx core)\n",
                "core_seg", core_seg, segments, opt.warmup,
                core > 0.0 ? core_seg / core : 0.0);
    mops.set("core_seg", lab::JsonValue::numberToken(fmt3(core_seg)));

    // The fused segment-mode shape runPoint(--segments=N) executes:
    // probe emission captures blocks, then N cores simulate slices.
    double e2e_seg = bestMops(opt.reps, [&] {
        uarch::SegmentSimConfig scfg;
        scfg.segments = segments;
        scfg.warmupBlocks = opt.warmup;
        uarch::SegmentSim sim(scfg);
        trace::Probe probe{trace::ProbeConfig::streaming(true)};
        probe.setSink(&sim);
        trace::synthProbeWorkload(probe, opt.ops);
        probe.flushToSink();
        sim.flush();
        return probe.recordedOps();
    });
    std::printf("  %-11s %8.2f Mops/s  (segments=%d, %.2fx end_to_end)\n",
                "e2e_seg", e2e_seg, segments,
                end_to_end > 0.0 ? e2e_seg / end_to_end : 0.0);
    mops.set("e2e_seg", lab::JsonValue::numberToken(fmt3(e2e_seg)));

    lab::JsonValue doc = lab::JsonValue::object();
    doc.set("schema", lab::JsonValue::number(1));
    doc.set("mode", lab::JsonValue::str(opt.mode));
    doc.set("ops", lab::JsonValue::number(opt.ops));
    doc.set("branches", lab::JsonValue::number(n_branches));
    doc.set("mops", std::move(mops));
    {
        std::ofstream f(opt.out);
        f << doc.dump(2) << "\n";
    }
    std::printf("wrote %s\n", opt.out.c_str());

    if (opt.baseline.empty()) {
        return 0;
    }

    std::ifstream f(opt.baseline);
    if (!f) {
        std::fprintf(stderr,
                     "bench_simspeed: baseline file '%s' is missing or "
                     "unreadable.\n"
                     "The perf gate cannot run without it. Regenerate with\n"
                     "  ./bench_simspeed --out=BENCH_simspeed.json\n"
                     "at the repo root and commit the file.\n",
                     opt.baseline.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    lab::JsonValue base = lab::JsonValue::parse(ss.str());
    const lab::JsonValue &base_mops = base.at("mops");
    const lab::JsonValue &new_mops = doc.at("mops");
    bool regressed = false;
    std::printf("vs baseline %s (tolerance %.0f%%):\n", opt.baseline.c_str(),
                opt.tolerance * 100.0);
    // Keys absent from an older baseline are skipped, so adding new
    // measurements never breaks an existing gate.
    for (const char *key : {"probe_emit", "cache", "core", "bpred",
                            "end_to_end", "capture", "replay", "e2e_pipe",
                            "e2e_multi4", "core_seg", "e2e_seg"}) {
        const lab::JsonValue *old_v = base_mops.find(key);
        if (old_v == nullptr) {
            continue;
        }
        double old_mops = old_v->asDouble();
        double new_val = new_mops.at(key).asDouble();
        double ratio = old_mops > 0.0 ? new_val / old_mops : 1.0;
        bool bad = ratio < 1.0 - opt.tolerance;
        std::printf("  %-11s %8.2f -> %8.2f  (%+5.1f%%)%s\n", key, old_mops,
                    new_val, (ratio - 1.0) * 100.0,
                    bad ? "  REGRESSION" : "");
        regressed = regressed || bad;
    }
    if (regressed) {
        std::fprintf(stderr,
                     "bench_simspeed: throughput regressed more than %.0f%% "
                     "against %s\n",
                     opt.tolerance * 100.0, opt.baseline.c_str());
        return 2;
    }
    return 0;
}
