/**
 * @file
 * Fig. 5 — top-down analysis per video across the CRF sweep: the
 * retiring / bad-speculation / frontend / backend pipeline-slot shares.
 * The paper's observations: backend > frontend > bad-speculation for
 * almost all videos; raising CRF raises the backend share, lowers the
 * frontend and bad-speculation shares; retiring stays in 0.4-0.6.
 *
 * Points resolve through the lab orchestrator: a repeat run is pure
 * cache hits from the `.vepro-lab/` store (see `vepro-lab --figures=5`).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "lab/figures.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    for (const lab::FigureResult &fig : lab::runFigures({5}, scale)) {
        for (const lab::NamedTable &t : fig.tables) {
            t.table.print(t.caption);
        }
        std::printf("\n%s\n", fig.expectedShape.c_str());
    }
    return 0;
}
