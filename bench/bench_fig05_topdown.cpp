/**
 * @file
 * Fig. 5 — top-down analysis per video across the CRF sweep: the
 * retiring / bad-speculation / frontend / backend pipeline-slot shares.
 * The paper's observations: backend > frontend > bad-speculation for
 * almost all videos; raising CRF raises the backend share, lowers the
 * frontend and bad-speculation shares; retiring stays in 0.4-0.6.
 */

#include <cstdio>

#include "core/report.hpp"
#include "sweep_common.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    auto rows = bench::runCrfSweep(scale);

    core::Table table({"Video", "CRF", "Retiring", "Bad-spec", "Frontend",
                       "Backend"});
    for (const bench::SweepRow &r : rows) {
        const auto &s = r.point.core.slots;
        table.addRow({r.video, std::to_string(r.crf),
                      core::fmt(s.fraction(s.retiring), 3),
                      core::fmt(s.fraction(s.badSpec), 3),
                      core::fmt(s.fraction(s.frontend), 3),
                      core::fmt(s.fraction(s.backend), 3)});
    }
    table.print("Fig 5: top-down analysis per video; CRF rises within each "
                "cluster (SVT-AV1 preset 4)");
    std::printf("\nExpected shape: bad-speculation falls with CRF; backend "
                "rises; retiring ~0.4-0.6 throughout.\n");
    return 0;
}
