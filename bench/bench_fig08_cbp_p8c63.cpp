/**
 * @file
 * Fig. 8 — CBP simulated MPKI per video; branch traces collected from
 * SVT-AV1 at speed preset 8, CRF 63 (the paper's fast/coarse point).
 */

#include "cbp_common.hpp"

int
main(int argc, char **argv)
{
    return vepro::bench::runCbpFigure(argc, argv, "Fig 8", 8, 63);
}
