/**
 * @file
 * Fig. 7 — branch miss rate vs CRF per video: mispredicted conditional
 * branches as a share of all conditional branches, from the core model's
 * front-end predictor. The paper observes rates up to a few percent,
 * falling as CRF rises.
 */

#include <cstdio>

#include "core/report.hpp"
#include "sweep_common.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    auto rows = bench::runCrfSweep(scale);

    core::Table table({"Video", "CRF", "Cond branches", "Mispredicts",
                       "Miss rate %"});
    for (const bench::SweepRow &r : rows) {
        const auto &c = r.point.core;
        table.addRow({r.video, std::to_string(r.crf),
                      core::fmtCount(c.condBranches),
                      core::fmtCount(c.mispredicts),
                      core::fmt(c.branchMissRatePercent(), 2)});
    }
    table.print("Fig 7: branch miss rate vs CRF (SVT-AV1 preset 4)");
    std::printf("\nExpected shape: the miss rate falls as CRF rises "
                "(looser RD thresholds make decision branches biased).\n");
    return 0;
}
