/**
 * @file
 * Fig. 7 — branch miss rate vs CRF per video: mispredicted conditional
 * branches as a share of all conditional branches, from the core model's
 * front-end predictor. The paper observes rates up to a few percent,
 * falling as CRF rises.
 *
 * Points resolve through the lab orchestrator: a repeat run is pure
 * cache hits from the `.vepro-lab/` store (see `vepro-lab --figures=7`).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "lab/figures.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    for (const lab::FigureResult &fig : lab::runFigures({7}, scale)) {
        for (const lab::NamedTable &t : fig.tables) {
            t.table.print(t.caption);
        }
        std::printf("\n%s\n", fig.expectedShape.c_str());
    }
    return 0;
}
