/**
 * @file
 * Fig. 6 — microarchitectural analysis with CRF changes, eight panels:
 * (a) branch MPKI, (b) L1D MPKI, (c) L2 MPKI, (d) LLC MPKI,
 * (e)-(h) resource-stall cycles for the RS, ROB, load buffer, and store
 * buffer. The paper's observations: branch MPKI falls with CRF; L1D and
 * L2 MPKI rise (roofline: less compute per byte moved); LLC MPKI stays
 * far below L1D/L2; stall cycles mostly grow with CRF except the ROB.
 *
 * Points resolve through the lab orchestrator: a repeat run is pure
 * cache hits from the `.vepro-lab/` store (see `vepro-lab --figures=6`).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "lab/figures.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    for (const lab::FigureResult &fig : lab::runFigures({6}, scale)) {
        for (const lab::NamedTable &t : fig.tables) {
            t.table.print(t.caption);
        }
        std::printf("\n%s\n", fig.expectedShape.c_str());
    }
    return 0;
}
