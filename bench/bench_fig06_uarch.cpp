/**
 * @file
 * Fig. 6 — microarchitectural analysis with CRF changes, eight panels:
 * (a) branch MPKI, (b) L1D MPKI, (c) L2 MPKI, (d) LLC MPKI,
 * (e)-(h) resource-stall cycles for the RS, ROB, load buffer, and store
 * buffer. The paper's observations: branch MPKI falls with CRF; L1D and
 * L2 MPKI rise (roofline: less compute per byte moved); LLC MPKI stays
 * far below L1D/L2; stall cycles mostly grow with CRF except the ROB.
 */

#include <cstdio>

#include "core/report.hpp"
#include "sweep_common.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    auto rows = bench::runCrfSweep(scale);

    core::Table mpki({"Video", "CRF", "Branch MPKI", "L1D MPKI", "L2 MPKI",
                      "LLC MPKI"});
    core::Table stalls({"Video", "CRF", "RS stall%", "ROB stall%",
                        "LB stall%", "SB stall%"});
    for (const bench::SweepRow &r : rows) {
        const auto &c = r.point.core;
        mpki.addRow({r.video, std::to_string(r.crf),
                     core::fmt(c.branchMpki(), 2), core::fmt(c.l1dMpki(), 2),
                     core::fmt(c.l2Mpki(), 2), core::fmt(c.llcMpki(), 3)});
        auto pct = [&](uint64_t v) {
            return core::fmt(c.cycles ? 100.0 * static_cast<double>(v) /
                                            static_cast<double>(c.cycles)
                                      : 0.0,
                             2);
        };
        stalls.addRow({r.video, std::to_string(r.crf), pct(c.stalls.rs),
                       pct(c.stalls.rob), pct(c.stalls.loadBuf),
                       pct(c.stalls.storeBuf)});
    }
    mpki.print("Fig 6a-d: branch / L1D / L2 / LLC misses per kilo-"
               "instruction vs CRF (SVT-AV1 preset 4)");
    stalls.print("Fig 6e-h: allocation-stall cycles by blocking resource "
                 "(percent of cycles) vs CRF");
    std::printf("\nExpected shape: branch MPKI falls with CRF; L1D/L2 MPKI "
                "rise; LLC MPKI far below both; ROB stalls small.\n");
    return 0;
}
