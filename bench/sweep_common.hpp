#ifndef VEPRO_BENCH_SWEEP_COMMON_HPP
#define VEPRO_BENCH_SWEEP_COMMON_HPP

/**
 * @file
 * Shared CRF-sweep driver for the microarchitectural figures (4-7): one
 * instrumented encode plus one core-model simulation per (video, CRF)
 * point, at the paper's preset 4.
 *
 * Quick mode trims the suite to five entropy-representative clips so
 * each figure regenerates in about a minute; --full or --videos=...
 * restores the full Table 1 suite.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "encoders/registry.hpp"

namespace vepro::bench
{

/** One simulated sweep point. */
struct SweepRow {
    std::string video;
    int crf;
    core::SweepPoint point;
};

/** The clips a sweep covers: explicit > full suite > 5-clip quick set. */
inline std::vector<video::SuiteEntry>
sweepVideos(const core::RunScale &scale)
{
    if (!scale.videos.empty() || scale.suite.divisor <= 4) {
        return core::selectedVideos(scale);
    }
    // Quick default: span the entropy axis with five clips.
    std::vector<video::SuiteEntry> subset;
    for (const char *name : {"desktop", "funny", "game1", "cat", "hall"}) {
        subset.push_back(video::suiteEntry(name));
    }
    return subset;
}

/** Run the (video x CRF) sweep with encode + core simulation. */
inline std::vector<SweepRow>
runCrfSweep(const core::RunScale &scale,
            const std::string &encoder_name = "SVT-AV1", int preset = 4)
{
    auto encoder = encoders::encoderByName(encoder_name);
    std::vector<SweepRow> rows;
    for (const video::SuiteEntry &e : sweepVideos(scale)) {
        video::Video clip = video::loadSuiteVideo(e, scale.suite);
        for (int crf : core::crfSweepAv1()) {
            SweepRow row;
            row.video = e.name;
            row.crf = crf;
            row.point = core::runPoint(*encoder, clip, crf, preset, scale);
            rows.push_back(std::move(row));
            std::fprintf(stderr, "  [%s crf=%d done]\n", e.name.c_str(), crf);
        }
    }
    return rows;
}

} // namespace vepro::bench

#endif // VEPRO_BENCH_SWEEP_COMMON_HPP
