#ifndef VEPRO_BENCH_SWEEP_COMMON_HPP
#define VEPRO_BENCH_SWEEP_COMMON_HPP

/**
 * @file
 * Shared CRF-sweep driver for the microarchitectural figures (4-7): one
 * instrumented encode plus one core-model simulation per (video, CRF)
 * point, at the paper's preset 4.
 *
 * Quick mode trims the suite to five entropy-representative clips so
 * each figure regenerates in about a minute; --full or --videos=...
 * restores the full Table 1 suite.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "encoders/registry.hpp"

namespace vepro::bench
{

/** One simulated sweep point. */
struct SweepRow {
    std::string video;
    int crf;
    core::SweepPoint point;
};

/** The clips a sweep covers: explicit > full suite > 5-clip quick set. */
inline std::vector<video::SuiteEntry>
sweepVideos(const core::RunScale &scale)
{
    if (!scale.videos.empty() || scale.suite.divisor <= 4) {
        return core::selectedVideos(scale);
    }
    // Quick default: span the entropy axis with five clips.
    std::vector<video::SuiteEntry> subset;
    for (const char *name : {"desktop", "funny", "game1", "cat", "hall"}) {
        subset.push_back(video::suiteEntry(name));
    }
    return subset;
}

/**
 * Run the (video x CRF) sweep, fused encode + core simulation per point.
 * Points are independent (each owns its probe and streaming core), so
 * they run on scale.jobs worker threads; rows come back in deterministic
 * (video-major, CRF-minor) order regardless of completion order.
 */
inline std::vector<SweepRow>
runCrfSweep(const core::RunScale &scale,
            const std::string &encoder_name = "SVT-AV1", int preset = 4)
{
    auto encoder = encoders::encoderByName(encoder_name);
    const std::vector<int> &crfs = core::crfSweepAv1();

    std::vector<video::Video> clips;
    std::vector<SweepRow> rows;
    for (const video::SuiteEntry &e : sweepVideos(scale)) {
        clips.push_back(video::loadSuiteVideo(e, scale.suite));
        for (int crf : crfs) {
            SweepRow row;
            row.video = e.name;
            row.crf = crf;
            rows.push_back(std::move(row));
        }
    }
    core::parallelFor(rows.size(), scale.jobs, [&](size_t i) {
        SweepRow &row = rows[i];
        row.point = core::runPoint(*encoder, clips[i / crfs.size()], row.crf,
                                   preset, scale);
        std::fprintf(stderr, "  [%s crf=%d done]\n", row.video.c_str(),
                     row.crf);
    });
    for (const SweepRow &row : rows) {
        if (row.point.encode.droppedOps > 0) {
            std::fprintf(stderr,
                         "  warning: %s crf=%d hit the op cap (%llu ops "
                         "dropped) — pass --uncapped for full fidelity\n",
                         row.video.c_str(), row.crf,
                         static_cast<unsigned long long>(
                             row.point.encode.droppedOps));
        }
    }
    return rows;
}

} // namespace vepro::bench

#endif // VEPRO_BENCH_SWEEP_COMMON_HPP
