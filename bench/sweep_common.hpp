#ifndef VEPRO_BENCH_SWEEP_COMMON_HPP
#define VEPRO_BENCH_SWEEP_COMMON_HPP

/**
 * @file
 * Shared CRF-sweep driver for the microarchitectural figures (4-7): one
 * instrumented encode plus one core-model simulation per (video, CRF)
 * point, at the paper's preset 4.
 *
 * Points are requested through the lab orchestrator, so results persist
 * in the `.vepro-lab/` store: a second run of any figure is pure cache
 * hits (pass --no-cache to force recomputation). Clips are loaded
 * lazily and released as soon as their last pending point completes —
 * a --full sweep never holds the whole decoded suite resident.
 *
 * Quick mode trims the suite to five entropy-representative clips so
 * each figure regenerates in about a minute; --full or --videos=...
 * restores the full Table 1 suite.
 */

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "lab/figures.hpp"
#include "lab/orchestrator.hpp"

namespace vepro::bench
{

/** One simulated sweep point. */
struct SweepRow {
    std::string video;
    int crf;
    lab::JobResult point;
};

/** The clips a sweep covers: explicit > full suite > 5-clip quick set. */
inline std::vector<video::SuiteEntry>
sweepVideos(const core::RunScale &scale)
{
    return lab::sweepClips(scale);
}

/**
 * Run the (video x CRF) sweep through the lab orchestrator: cached
 * points come from the store, the rest run fused (encode + streaming
 * core simulation) on scale.jobs worker threads with serialized
 * progress output. Rows come back in deterministic (video-major,
 * CRF-minor) order regardless of completion order.
 */
inline std::vector<SweepRow>
runCrfSweep(const core::RunScale &scale,
            const std::string &encoder_name = "SVT-AV1", int preset = 4)
{
    lab::Orchestrator orch(lab::OrchestratorOptions::fromRunScale(scale));

    std::vector<SweepRow> rows;
    std::vector<size_t> handles;
    for (const video::SuiteEntry &e : sweepVideos(scale)) {
        for (int crf : core::crfSweepAv1()) {
            lab::JobSpec spec = lab::JobSpec::withScale(scale);
            spec.encoder = encoder_name;
            spec.video = e.name;
            spec.crf = crf;
            spec.preset = preset;
            handles.push_back(orch.request(spec));
            rows.push_back({e.name, crf, {}});
        }
    }
    orch.run();
    for (size_t i = 0; i < rows.size(); ++i) {
        rows[i].point = orch.result(handles[i]);
    }
    return rows;
}

} // namespace vepro::bench

#endif // VEPRO_BENCH_SWEEP_COMMON_HPP
