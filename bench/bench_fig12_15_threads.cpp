/**
 * @file
 * Figs. 12-15 — thread-scalability of SVT-AV1, Libaom, x265, and x264 on
 * game1 from 1 to 8 threads, repeated across the paper's four x264
 * operating points (presets 0/2/5 and CRF 51/50/30 on the x264 axis).
 *
 * This host has one core, so scaling is simulated: each encoder's task
 * graph (weights measured in instructions, real dependency edges) is
 * scheduled onto N cores and speedup = makespan(1)/makespan(N). See
 * DESIGN.md's substitution table.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/threadstudy.hpp"
#include "encoders/registry.hpp"

namespace
{

using namespace vepro;

encoders::EncodeResult
taskedEncode(const std::string &name, int crf, int preset,
             const video::Video &clip)
{
    auto enc = encoders::encoderByName(name);
    encoders::EncodeParams p;
    p.crf = crf;
    p.preset = preset;
    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 1'000'000;
    pc.opWindow = 80'000;
    pc.opInterval = 400'000;
    return enc->encode(clip, p, pc, true);
}

void
printCurve(core::Table &table, const std::string &label,
           const encoders::EncodeResult &r)
{
    auto curve = core::scalabilityCurve(r, 8);
    std::vector<std::string> row = {label};
    for (const core::ThreadPoint &p : curve) {
        row.push_back(core::fmt(p.speedup, 2));
    }
    row.push_back(core::fmt(curve.back().estSeconds, 2) + "s");
    table.addRow(row);
}

} // namespace

int
main(int argc, char **argv)
{
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    // The scalability shapes need paper-scale superblock grids; default
    // to full resolution unless the caller restricted geometry.
    video::SuiteScale geometry = scale.suite;
    if (geometry.divisor == 8) {
        geometry.divisor = 1;  // 1920x1080 game1
        geometry.frames = 10;
    }
    video::Video clip = video::loadSuiteVideo("game1", geometry);
    std::fprintf(stderr, "clip: %dx%d, %d frames\n", clip.width(),
                 clip.height(), clip.frameCount());

    // The three non-x264 encoders are shared by all four figures.
    auto svt = taskedEncode("SVT-AV1", 50, 6, clip);
    std::fprintf(stderr, "  [SVT-AV1 encoded]\n");
    auto aom = taskedEncode("Libaom", 50, 6, clip);
    std::fprintf(stderr, "  [Libaom encoded]\n");
    auto x265 = taskedEncode("x265", 40, 2, clip);
    std::fprintf(stderr, "  [x265 encoded]\n");

    struct FigSpec {
        const char *figure;
        int x264_preset;
        int x264_crf;
    };
    const FigSpec figures[] = {
        {"Fig 12 (x264 preset 0, CRF 51)", 0, 51},
        {"Fig 13 (x264 preset 2, CRF 51)", 2, 51},
        {"Fig 14 (x264 preset 5, CRF 50)", 5, 50},
        {"Fig 15 (x264 preset 5, CRF 30)", 5, 30},
    };
    for (const FigSpec &fig : figures) {
        auto x264 = taskedEncode("x264", fig.x264_crf, fig.x264_preset, clip);
        core::Table table({"Encoder", "1T", "2T", "3T", "4T", "5T", "6T",
                           "7T", "8T", "est. time@8T"});
        printCurve(table, "SVT-AV1", svt);
        printCurve(table, "Libaom", aom);
        printCurve(table, "x265", x265);
        printCurve(table, "x264", x264);
        table.print(std::string(fig.figure) +
                    ": speedup vs simulated thread count (game1)");
    }
    std::printf("\nExpected shape: SVT-AV1 reaches ~6x at 8 threads (best "
                "from 4 threads on); x264 strong early then saturating; "
                "Libaom capped near 4x by its tiles; x265 ~1.3x.\n");
    return 0;
}
