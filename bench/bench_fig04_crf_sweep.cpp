/**
 * @file
 * Fig. 4 — CRF sweep results at preset 4: (a) instruction count,
 * (b) execution time, (c) IPC, per video. The paper's observations:
 * runtime is proportional to instruction count, and IPC hovers around 2
 * rising at most ~10% across the sweep.
 */

#include <cstdio>

#include "core/report.hpp"
#include "sweep_common.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    auto rows = bench::runCrfSweep(scale);

    core::Table table({"Video", "CRF", "Instructions", "Time (s)", "IPC"});
    for (const bench::SweepRow &r : rows) {
        table.addRow({r.video, std::to_string(r.crf),
                      core::fmtCount(r.point.encode.instructions),
                      core::fmt(r.point.encode.wallSeconds, 3),
                      core::fmt(r.point.core.ipc(), 2)});
    }
    table.print("Fig 4: CRF sweep — instruction count (4a), execution time "
                "(4b), IPC (4c); SVT-AV1 preset 4");
    std::printf("\nExpected shape: instructions and time fall together as "
                "CRF rises; IPC stays near 2 and rises <= ~10%%.\n");
    return 0;
}
