/**
 * @file
 * Fig. 4 — CRF sweep results at preset 4: (a) instruction count,
 * (b) execution time, (c) IPC, per video. The paper's observations:
 * runtime is proportional to instruction count, and IPC hovers around 2
 * rising at most ~10% across the sweep.
 *
 * Points resolve through the lab orchestrator: a repeat run is pure
 * cache hits from the `.vepro-lab/` store (see `vepro-lab --figures=4`).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "lab/figures.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    for (const lab::FigureResult &fig : lab::runFigures({4}, scale)) {
        for (const lab::NamedTable &t : fig.tables) {
            t.table.print(t.caption);
        }
        std::printf("\n%s\n", fig.expectedShape.c_str());
    }
    return 0;
}
