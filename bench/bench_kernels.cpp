/**
 * @file
 * Kernel microbenchmarks (google-benchmark): host-side throughput of the
 * codec primitives (SAD, SATD, DCT, quantisation, range coding, intra
 * prediction) with and without an installed probe, quantifying the
 * instrumentation overhead that separates wall time from modeled
 * instruction counts.
 */

#include <benchmark/benchmark.h>

#include "codec/intra.hpp"
#include "codec/quant.hpp"
#include "codec/rangecoder.hpp"
#include "codec/sad.hpp"
#include "codec/transform.hpp"
#include "trace/probe.hpp"
#include "video/generator.hpp"

namespace
{

using namespace vepro;

video::Plane
randomPlane(int w, int h, uint64_t seed)
{
    video::Plane p(w, h);
    video::Rng rng(seed);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            p.set(x, y, static_cast<uint8_t>(rng.nextBelow(256)));
        }
    }
    return p;
}

void
BM_Sad(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    video::Plane a = randomPlane(64, 64, 1), b = randomPlane(64, 64, 2);
    codec::PelView va = codec::viewOf(a, 0), vb = codec::viewOf(b, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec::sad(va, vb, n, n));
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Sad)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_SadProbed(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    video::Plane a = randomPlane(64, 64, 1), b = randomPlane(64, 64, 2);
    codec::PelView va = codec::viewOf(a, 0), vb = codec::viewOf(b, 0);
    trace::Probe probe;
    trace::ProbeScope scope(&probe);
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec::sad(va, vb, n, n));
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SadProbed)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_Satd(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    video::Plane a = randomPlane(64, 64, 3), b = randomPlane(64, 64, 4);
    codec::PelView va = codec::viewOf(a, 0), vb = codec::viewOf(b, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec::satd(va, vb, n, n));
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Satd)->Arg(8)->Arg(16)->Arg(32);

void
BM_ForwardDct(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    std::vector<int16_t> src(static_cast<size_t>(n) * n, 17);
    std::vector<int32_t> dst(static_cast<size_t>(n) * n);
    for (auto _ : state) {
        codec::forwardDct(src.data(), dst.data(), n, 0, 0);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ForwardDct)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void
BM_QuantizeBlock(benchmark::State &state)
{
    codec::Quantizer quant(32, 63);
    std::vector<int32_t> coeff(32 * 32, 123), levels(32 * 32);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            quant.quantizeBlock(coeff.data(), levels.data(), 32, 0, 0));
    }
    state.SetItemsProcessed(state.iterations() * 32 * 32);
}
BENCHMARK(BM_QuantizeBlock);

void
BM_RangeCoderBit(benchmark::State &state)
{
    codec::Bitstream stream;
    codec::RangeEncoder enc(stream);
    codec::BinContext ctx;
    uint32_t lfsr = 0xace1;
    for (auto _ : state) {
        lfsr = (lfsr >> 1) ^ ((-(lfsr & 1u)) & 0xb400u);
        enc.encodeBit(ctx, lfsr & 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeCoderBit);

void
BM_IntraPredict(benchmark::State &state)
{
    auto mode = static_cast<codec::IntraMode>(state.range(0));
    codec::IntraNeighbors nb{};
    nb.hasTop = nb.hasLeft = true;
    video::Rng rng(9);
    for (int i = 0; i < 2 * codec::kMaxIntraSize; ++i) {
        nb.top[i] = static_cast<uint8_t>(rng.nextBelow(256));
        nb.left[i] = static_cast<uint8_t>(rng.nextBelow(256));
    }
    video::Plane out(32, 32);
    for (auto _ : state) {
        codec::predictIntra(mode, nb, 32, 32, codec::viewOf(out, 0));
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 32 * 32);
}
BENCHMARK(BM_IntraPredict)
    ->Arg(static_cast<int>(codec::IntraMode::Dc))
    ->Arg(static_cast<int>(codec::IntraMode::Planar))
    ->Arg(static_cast<int>(codec::IntraMode::D135))
    ->Arg(static_cast<int>(codec::IntraMode::Smooth));

} // namespace

BENCHMARK_MAIN();
