/**
 * @file
 * Kernel microbenchmarks (google-benchmark): host-side throughput of the
 * codec primitives (SAD, SATD, DCT, quantisation, range coding, intra
 * prediction) with and without an installed probe, quantifying the
 * instrumentation overhead that separates wall time from modeled
 * instruction counts.
 *
 * The BM_Table* group benches the scalar reference table against the
 * runtime-dispatched table side by side (same buffers, same geometry),
 * so a single run reports the SIMD speedup per kernel. The report
 * context line `kernel_isa` records what the dispatcher resolved to.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "codec/intra.hpp"
#include "codec/kernels.hpp"
#include "codec/quant.hpp"
#include "codec/rangecoder.hpp"
#include "codec/sad.hpp"
#include "codec/transform.hpp"
#include "trace/probe.hpp"
#include "video/generator.hpp"

namespace
{

using namespace vepro;

video::Plane
randomPlane(int w, int h, uint64_t seed)
{
    video::Plane p(w, h);
    video::Rng rng(seed);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            p.set(x, y, static_cast<uint8_t>(rng.nextBelow(256)));
        }
    }
    return p;
}

void
BM_Sad(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    video::Plane a = randomPlane(64, 64, 1), b = randomPlane(64, 64, 2);
    codec::PelView va = codec::viewOf(a, 0), vb = codec::viewOf(b, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec::sad(va, vb, n, n));
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Sad)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_SadProbed(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    video::Plane a = randomPlane(64, 64, 1), b = randomPlane(64, 64, 2);
    codec::PelView va = codec::viewOf(a, 0), vb = codec::viewOf(b, 0);
    trace::Probe probe;
    trace::ProbeScope scope(&probe);
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec::sad(va, vb, n, n));
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SadProbed)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_Satd(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    video::Plane a = randomPlane(64, 64, 3), b = randomPlane(64, 64, 4);
    codec::PelView va = codec::viewOf(a, 0), vb = codec::viewOf(b, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec::satd(va, vb, n, n));
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Satd)->Arg(8)->Arg(16)->Arg(32);

void
BM_ForwardDct(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    std::vector<int16_t> src(static_cast<size_t>(n) * n, 17);
    std::vector<int32_t> dst(static_cast<size_t>(n) * n);
    for (auto _ : state) {
        codec::forwardDct(src.data(), dst.data(), n, 0, 0);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ForwardDct)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void
BM_QuantizeBlock(benchmark::State &state)
{
    codec::Quantizer quant(32, 63);
    std::vector<int32_t> coeff(32 * 32, 123), levels(32 * 32);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            quant.quantizeBlock(coeff.data(), levels.data(), 32, 0, 0));
    }
    state.SetItemsProcessed(state.iterations() * 32 * 32);
}
BENCHMARK(BM_QuantizeBlock);

void
BM_RangeCoderBit(benchmark::State &state)
{
    codec::Bitstream stream;
    codec::RangeEncoder enc(stream);
    codec::BinContext ctx;
    uint32_t lfsr = 0xace1;
    for (auto _ : state) {
        lfsr = (lfsr >> 1) ^ ((-(lfsr & 1u)) & 0xb400u);
        enc.encodeBit(ctx, lfsr & 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeCoderBit);

void
BM_IntraPredict(benchmark::State &state)
{
    auto mode = static_cast<codec::IntraMode>(state.range(0));
    codec::IntraNeighbors nb{};
    nb.hasTop = nb.hasLeft = true;
    video::Rng rng(9);
    for (int i = 0; i < 2 * codec::kMaxIntraSize; ++i) {
        nb.top[i] = static_cast<uint8_t>(rng.nextBelow(256));
        nb.left[i] = static_cast<uint8_t>(rng.nextBelow(256));
    }
    video::Plane out(32, 32);
    for (auto _ : state) {
        codec::predictIntra(mode, nb, 32, 32, codec::viewOf(out, 0));
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 32 * 32);
}
BENCHMARK(BM_IntraPredict)
    ->Arg(static_cast<int>(codec::IntraMode::Dc))
    ->Arg(static_cast<int>(codec::IntraMode::Planar))
    ->Arg(static_cast<int>(codec::IntraMode::D135))
    ->Arg(static_cast<int>(codec::IntraMode::Smooth));

/**
 * Register the per-table kernel benches for @p t under @p tag, e.g.
 * BM_TableSad/scalar/64 vs BM_TableSad/avx2/64.
 */
void
registerKernelSuite(const codec::KernelTable &t, const std::string &tag)
{
    using benchmark::RegisterBenchmark;
    for (int n : {16, 64}) {
        std::string sz = "/" + std::to_string(n);
        RegisterBenchmark(
            ("BM_TableSad/" + tag + sz).c_str(),
            [&t, n](benchmark::State &state) {
                video::Plane a = randomPlane(64, 64, 1);
                video::Plane b = randomPlane(64, 64, 2);
                for (auto _ : state) {
                    benchmark::DoNotOptimize(t.sad(a.data(), a.stride(),
                                                   b.data(), b.stride(), n,
                                                   n));
                }
                state.SetItemsProcessed(state.iterations() * n * n);
            });
        RegisterBenchmark(
            ("BM_TableSse/" + tag + sz).c_str(),
            [&t, n](benchmark::State &state) {
                video::Plane a = randomPlane(64, 64, 3);
                video::Plane b = randomPlane(64, 64, 4);
                for (auto _ : state) {
                    benchmark::DoNotOptimize(t.sse(a.data(), a.stride(),
                                                   b.data(), b.stride(), n,
                                                   n));
                }
                state.SetItemsProcessed(state.iterations() * n * n);
            });
        RegisterBenchmark(
            ("BM_TableSatd8/" + tag + sz).c_str(),
            [&t, n](benchmark::State &state) {
                video::Plane a = randomPlane(64, 64, 5);
                video::Plane b = randomPlane(64, 64, 6);
                for (auto _ : state) {
                    uint64_t sum = 0;
                    for (int ty = 0; ty < n; ty += 8) {
                        for (int tx = 0; tx < n; tx += 8) {
                            sum += t.satd8(a.data() + ty * a.stride() + tx,
                                           a.stride(),
                                           b.data() + ty * b.stride() + tx,
                                           b.stride());
                        }
                    }
                    benchmark::DoNotOptimize(sum);
                }
                state.SetItemsProcessed(state.iterations() * n * n);
            });
        RegisterBenchmark(
            ("BM_TableResidual/" + tag + sz).c_str(),
            [&t, n](benchmark::State &state) {
                video::Plane a = randomPlane(64, 64, 7);
                video::Plane b = randomPlane(64, 64, 8);
                std::vector<int16_t> res(static_cast<size_t>(n) * n);
                for (auto _ : state) {
                    t.residual(a.data(), a.stride(), b.data(), b.stride(), n,
                               n, res.data());
                    benchmark::DoNotOptimize(res.data());
                }
                state.SetItemsProcessed(state.iterations() * n * n);
            });
        RegisterBenchmark(
            ("BM_TableReconstruct/" + tag + sz).c_str(),
            [&t, n](benchmark::State &state) {
                video::Plane pred = randomPlane(64, 64, 9);
                video::Plane dst(64, 64);
                std::vector<int16_t> res(static_cast<size_t>(n) * n);
                video::Rng rng(10);
                for (int16_t &x : res) {
                    x = static_cast<int16_t>(
                        static_cast<int>(rng.nextBelow(512)) - 256);
                }
                for (auto _ : state) {
                    t.reconstruct(pred.data(), pred.stride(), res.data(), n,
                                  n, dst.data(), dst.stride());
                    benchmark::DoNotOptimize(dst.data());
                }
                state.SetItemsProcessed(state.iterations() * n * n);
            });
    }
    for (int n : {8, 32}) {
        std::string sz = "/" + std::to_string(n);
        RegisterBenchmark(
            ("BM_TableFdct/" + tag + sz).c_str(),
            [&t, n](benchmark::State &state) {
                const int32_t *basis = codec::dctBasis(n);
                std::vector<int16_t> src(static_cast<size_t>(n) * n);
                video::Rng rng(11);
                for (int16_t &x : src) {
                    x = static_cast<int16_t>(
                        static_cast<int>(rng.nextBelow(512)) - 256);
                }
                std::vector<int32_t> dst(src.size());
                for (auto _ : state) {
                    t.fdct(src.data(), dst.data(), n, basis);
                    benchmark::DoNotOptimize(dst.data());
                }
                state.SetItemsProcessed(state.iterations() * n * n);
            });
        RegisterBenchmark(
            ("BM_TableIdct/" + tag + sz).c_str(),
            [&t, n](benchmark::State &state) {
                const int32_t *basis = codec::dctBasis(n);
                std::vector<int32_t> src(static_cast<size_t>(n) * n);
                video::Rng rng(12);
                for (int32_t &x : src) {
                    x = static_cast<int32_t>(rng.nextBelow(2048)) - 1024;
                }
                std::vector<int16_t> dst(src.size());
                for (auto _ : state) {
                    t.idct(src.data(), dst.data(), n, basis);
                    benchmark::DoNotOptimize(dst.data());
                }
                state.SetItemsProcessed(state.iterations() * n * n);
            });
    }
    RegisterBenchmark(
        ("BM_TableQuant/" + tag).c_str(),
        [&t](benchmark::State &state) {
            constexpr int kCount = 32 * 32;
            std::vector<int32_t> coeff(kCount), levels(kCount);
            video::Rng rng(13);
            for (int32_t &x : coeff) {
                x = static_cast<int32_t>(rng.nextBelow(4096)) - 2048;
            }
            for (auto _ : state) {
                benchmark::DoNotOptimize(
                    t.quant(coeff.data(), levels.data(), kCount, 5.0, 0.08));
            }
            state.SetItemsProcessed(state.iterations() * kCount);
        });
    RegisterBenchmark(
        ("BM_TableDequant/" + tag).c_str(),
        [&t](benchmark::State &state) {
            constexpr int kCount = 32 * 32;
            std::vector<int32_t> levels(kCount), coeff(kCount);
            video::Rng rng(14);
            for (int32_t &x : levels) {
                x = static_cast<int32_t>(rng.nextBelow(256)) - 128;
            }
            for (auto _ : state) {
                t.dequant(levels.data(), coeff.data(), kCount, 12.5);
                benchmark::DoNotOptimize(coeff.data());
            }
            state.SetItemsProcessed(state.iterations() * kCount);
        });
}

} // namespace

int
main(int argc, char **argv)
{
    registerKernelSuite(codec::scalarKernels(), "scalar");
    if (std::string(codec::kernelIsaName()) != "scalar") {
        registerKernelSuite(codec::kernels(), codec::kernelIsaName());
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::AddCustomContext("kernel_isa", codec::kernelIsaName());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
