/**
 * @file
 * Fig. 2 — the rate-distortion / runtime trade-off on game1:
 *  (a) PSNR BD-Rate (vs the x264 anchor) against execution time per
 *      encoder — the paper's "AV1 buys bitrate with runtime" plot;
 *  (b) PSNR against execution time for SVT-AV1 across CRF — diminishing
 *      quality returns for runtime.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "video/metrics.hpp"

namespace
{

struct Curve {
    std::vector<vepro::video::RdPoint> rd;
    double totalSeconds = 0.0;
};

Curve
rdCurve(const vepro::encoders::EncoderModel &enc,
        const vepro::video::Video &clip, const std::vector<int> &crfs)
{
    Curve c;
    for (int crf : crfs) {
        vepro::encoders::EncodeParams p;
        p.crf = crf;
        p.preset = enc.presetInverted() ? 5 : 4;
        auto r = enc.encode(clip, p);
        c.rd.push_back({r.bitrateKbps, r.psnrDb});
        c.totalSeconds += r.wallSeconds;
    }
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    // Rate-distortion comparisons need blocks that are small relative to
    // content features; at 1/8 scale a 16x16 macroblock covers what a
    // 128x128 block would at full resolution, flattering the AVC model.
    video::SuiteScale geometry = scale.suite;
    if (geometry.divisor == 8) {
        geometry.divisor = 4;
        geometry.frames = 6;
    }
    video::Video clip = video::loadSuiteVideo("game1", geometry);

    // (a) BD-Rate vs execution time, x264 as the reference encoder.
    const std::vector<int> av1_crfs = {16, 28, 40, 52};
    std::vector<int> x26x_crfs;
    for (int crf : av1_crfs) {
        x26x_crfs.push_back(core::mapCrfToX26x(crf));
    }

    auto x264 = encoders::encoderByName("x264");
    Curve anchor = rdCurve(*x264, clip, x26x_crfs);

    core::Table fig2a({"Encoder", "BD-Rate vs x264 (%)", "Total time (s)"});
    fig2a.addRow({"x264", "0.00", core::fmt(anchor.totalSeconds, 2)});
    for (const auto &enc : encoders::allEncoders()) {
        if (enc->name() == "x264") {
            continue;
        }
        Curve c = rdCurve(*enc,
                          clip, enc->crfRange() == 63 ? av1_crfs : x26x_crfs);
        double bd = video::bdRate(anchor.rd, c.rd);
        fig2a.addRow({enc->name(), core::fmt(bd, 2),
                      core::fmt(c.totalSeconds, 2)});
    }
    fig2a.print("Fig 2a: PSNR BD-Rate vs execution time (game1; negative "
                "BD-Rate = less bitrate at equal quality)");

    // (b) PSNR vs execution time for SVT-AV1 across the CRF sweep.
    auto svt = encoders::encoderByName("SVT-AV1");
    core::Table fig2b({"CRF", "Time (s)", "PSNR (dB)", "Bitrate (kbps)"});
    for (int crf : {8, 16, 24, 32, 40, 48, 56}) {
        encoders::EncodeParams p;
        p.crf = crf;
        p.preset = 4;
        auto r = svt->encode(clip, p);
        fig2b.addRow({std::to_string(crf), core::fmt(r.wallSeconds, 3),
                      core::fmt(r.psnrDb, 2), core::fmt(r.bitrateKbps, 0)});
    }
    fig2b.print("Fig 2b: PSNR vs execution time for SVT-AV1 (game1, "
                "preset 4)");
    std::printf("\nExpected shape: 2a: AV1-family encoders reach negative "
                "BD-Rate at much higher runtime; 2b: quality rises with "
                "runtime with diminishing returns.\n");
    return 0;
}
