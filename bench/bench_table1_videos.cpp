/**
 * @file
 * Table 1 — the vbench video list: name, resolution class, FPS, and
 * entropy. We print the paper's values next to the entropy actually
 * measured on our synthetic stand-ins, which is the calibration the
 * whole suite rests on.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "video/metrics.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);

    core::Table table({"Video", "Resolution", "FPS", "Entropy (paper)",
                       "Entropy (measured)", "Scaled size"});
    for (const video::SuiteEntry &e : video::vbenchMini()) {
        video::Video clip = video::loadSuiteVideo(e, scale.suite);
        auto [w, h] = video::scaledSize(e, scale.suite);
        table.addRow({e.name, video::resolutionClass(e),
                      core::fmt(e.fps, 0), core::fmt(e.paperEntropy, 2),
                      core::fmt(video::measureEntropy(clip), 2),
                      std::to_string(w) + "x" + std::to_string(h)});
    }
    table.print("Table 1: the list of videos from vbench (synthetic "
                "stand-ins at 1/" +
                std::to_string(scale.suite.divisor) + " scale)");
    return 0;
}
