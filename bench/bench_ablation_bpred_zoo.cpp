/**
 * @file
 * Ablation (beyond the paper) — a wider predictor zoo on the same branch
 * traces as Figs. 8-10: bimodal and tournament below/between the paper's
 * Gshare points, a perceptron, and extra TAGE budgets, quantifying how
 * much of the TAGE win is history length vs raw budget.
 *
 * All eleven predictors score each clip in ONE encode pass: the probe's
 * branch stream fans through a trace::MuxSink into eleven streaming
 * bpred::StreamRunner sinks, so nothing materialises a branch-trace
 * vector — memory stays O(1) regardless of trace length, and the encode
 * is not repeated per predictor.
 */

#include <cstdio>
#include <memory>

#include "bpred/runner.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "sweep_common.hpp"
#include "trace/sink.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    auto encoder = encoders::encoderByName("SVT-AV1");

    const std::vector<std::string> zoo = {
        "bimodal-2KB",  "bimodal-32KB",   "gshare-2KB",  "gshare-32KB",
        "tournament-8KB", "tournament-32KB", "perceptron-8KB", "tage-8KB",
        "tage-64KB",    "tage-256KB", "tage-sc-l-64KB"};

    std::vector<std::string> header = {"Video"};
    for (const auto &s : zoo) {
        header.push_back(s);
    }
    core::Table table(header);

    for (const video::SuiteEntry &e : bench::sweepVideos(scale)) {
        video::Video clip = video::loadSuiteVideo(e, scale.suite);
        encoders::EncodeParams params;
        params.preset = 6;
        params.crf = 40;
        trace::ProbeConfig pc;
        pc.collectBranches = true;
        pc.maxBranches = 1'500'000;
        pc.branchWarmupOps = 1'000'000;

        std::vector<std::unique_ptr<bpred::BranchPredictor>> preds;
        std::vector<std::unique_ptr<bpred::StreamRunner>> runners;
        trace::MuxSink mux;
        for (const std::string &spec : zoo) {
            preds.push_back(bpred::makePredictor(spec));
            runners.push_back(
                std::make_unique<bpred::StreamRunner>(*preds.back()));
            mux.add(runners.back().get());
        }
        encoder->encode(clip, params, pc, false, &mux);

        std::vector<std::string> row = {e.name};
        for (const auto &runner : runners) {
            row.push_back(core::fmt(runner->result().missRatePercent(), 2));
        }
        table.addRow(row);
    }
    table.print("Ablation: predictor zoo miss rates (%) on SVT-AV1 branch "
                "traces (preset 6, CRF 40)");
    std::printf("\nExpected shape: bimodal worst, tournament/perceptron "
                "between the gshare points, TAGE best with diminishing "
                "returns past 64KB.\n");
    return 0;
}
