/**
 * @file
 * Ablation (beyond the paper) — a wider predictor zoo on the same branch
 * traces as Figs. 8-10: bimodal and tournament below/between the paper's
 * Gshare points, a perceptron, and extra TAGE budgets, quantifying how
 * much of the TAGE win is history length vs raw budget.
 */

#include <cstdio>

#include "bpred/runner.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "sweep_common.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    auto encoder = encoders::encoderByName("SVT-AV1");

    const std::vector<std::string> zoo = {
        "bimodal-2KB",  "bimodal-32KB",   "gshare-2KB",  "gshare-32KB",
        "tournament-8KB", "tournament-32KB", "perceptron-8KB", "tage-8KB",
        "tage-64KB",    "tage-256KB", "tage-sc-l-64KB"};

    std::vector<std::string> header = {"Video"};
    for (const auto &s : zoo) {
        header.push_back(s);
    }
    core::Table table(header);

    for (const video::SuiteEntry &e : bench::sweepVideos(scale)) {
        video::Video clip = video::loadSuiteVideo(e, scale.suite);
        encoders::EncodeParams params;
        params.preset = 6;
        params.crf = 40;
        trace::ProbeConfig pc;
        pc.collectBranches = true;
        pc.maxBranches = 1'500'000;
        pc.branchWarmupOps = 1'000'000;
        auto r = encoder->encode(clip, params, pc);

        std::vector<std::string> row = {e.name};
        for (const std::string &spec : zoo) {
            auto pred = bpred::makePredictor(spec);
            auto rr = bpred::runTrace(*pred, r.branchTrace(),
                                      r.branchTraceInstructions);
            row.push_back(core::fmt(rr.missRatePercent(), 2));
        }
        table.addRow(row);
    }
    table.print("Ablation: predictor zoo miss rates (%) on SVT-AV1 branch "
                "traces (preset 6, CRF 40)");
    std::printf("\nExpected shape: bimodal worst, tournament/perceptron "
                "between the gshare points, TAGE best with diminishing "
                "returns past 64KB.\n");
    return 0;
}
