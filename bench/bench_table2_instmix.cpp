/**
 * @file
 * Table 2 — instruction mix per video for SVT-AV1 at preset 8, CRF 63:
 * total instructions plus the Branch / Load / Store / AVX / SSE / Other
 * percentage breakdown, as Pin reported it in the paper.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);

    auto encoder = encoders::encoderByName("SVT-AV1");
    encoders::EncodeParams params;
    params.preset = 8;
    params.crf = 63;

    core::Table table({"Video", "# Insts.", "Branch", "Load", "Store",
                       "AVX", "SSE", "Other"});
    for (const video::SuiteEntry &e : core::selectedVideos(scale)) {
        video::Video clip = video::loadSuiteVideo(e, scale.suite);
        encoders::EncodeResult r = encoder->encode(clip, params);
        auto pct = [&](trace::MixCategory c) {
            return core::fmt(r.mix.categoryPercent(c), 1);
        };
        table.addRow({e.name,
                      core::fmtSci(static_cast<double>(r.instructions)),
                      pct(trace::MixCategory::Branch),
                      pct(trace::MixCategory::Load),
                      pct(trace::MixCategory::Store),
                      pct(trace::MixCategory::Avx),
                      pct(trace::MixCategory::Sse),
                      pct(trace::MixCategory::Other)});
    }
    table.print("Table 2: instruction mix in % (SVT-AV1, preset 8, CRF 63)");
    std::printf("\nPaper ranges: Branch 3.3-6.9, Load 25.8-29.4, "
                "Store 12.9-15.5, AVX 29.2-34.2, SSE 0.2-1.0, "
                "Other 17.6-23.3\n");
    return 0;
}
