/**
 * @file
 * Fig. 3 — op-mix for each video as CRF rises (SVT-AV1): the stacked
 * Branch/Load/Store/AVX/SSE/Other shares, with the paper's observation
 * that the AVX share grows with CRF.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    auto encoder = encoders::encoderByName("SVT-AV1");

    core::Table table({"Video", "CRF", "Branch", "Load", "Store", "AVX",
                       "SSE", "Other"});
    for (const video::SuiteEntry &e : core::selectedVideos(scale)) {
        video::Video clip = video::loadSuiteVideo(e, scale.suite);
        for (int crf : core::crfSweepAv1()) {
            encoders::EncodeParams p;
            p.crf = crf;
            p.preset = 4;
            encoders::EncodeResult r = encoder->encode(clip, p);
            auto pct = [&](trace::MixCategory c) {
                return core::fmt(r.mix.categoryPercent(c), 1);
            };
            table.addRow({e.name, std::to_string(crf),
                          pct(trace::MixCategory::Branch),
                          pct(trace::MixCategory::Load),
                          pct(trace::MixCategory::Store),
                          pct(trace::MixCategory::Avx),
                          pct(trace::MixCategory::Sse),
                          pct(trace::MixCategory::Other)});
        }
    }
    table.print("Fig 3: op-mix for each video; CRF increases within each "
                "cluster (SVT-AV1, preset 4)");
    std::printf("\nExpected shape: the AVX share grows as CRF rises.\n");
    return 0;
}
