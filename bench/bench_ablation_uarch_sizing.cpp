/**
 * @file
 * Ablation (beyond the paper) — core-resource sizing on an SVT-AV1
 * trace: sweep the ROB and unified-scheduler sizes around the Broadwell
 * configuration and report IPC and backend-boundedness, locating which
 * resource actually limits the encoder (the paper's Fig. 6e-h hints it
 * is the RS and store buffer, not the ROB).
 *
 * All 18 configurations are simulated from ONE encode pass via
 * core::runPointMulti: the instrumented encoder streams its trace into
 * a PipelineMux fanning into 18 independent StreamCore instances, so
 * the encode+emit cost is paid once instead of per config. Each
 * config's CoreStats is bit-identical to a sequential runPoint
 * (tests/test_core.cpp pins that); --sim-jobs controls the fan-out
 * parallelism.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "uarch/core.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    video::Video clip = video::loadSuiteVideo("game1", scale.suite);
    auto encoder = encoders::encoderByName("SVT-AV1");

    // The whole ablation as one config list; rows index into it.
    std::vector<uarch::CoreConfig> configs;
    const int kRobs[] = {64, 128, 192, 256, 384};
    for (int rob : kRobs) {
        uarch::CoreConfig cfg;
        cfg.robSize = rob;
        configs.push_back(cfg);
    }
    const int kRs[] = {20, 40, 60, 97, 160};
    for (int rs : kRs) {
        uarch::CoreConfig cfg;
        cfg.rsSize = rs;
        configs.push_back(cfg);
    }
    const char *const kPreds[] = {"bimodal-4KB", "gshare-2KB",
                                  "gshare-32KB", "tage-8KB", "tage-64KB"};
    for (const char *spec : kPreds) {
        uarch::CoreConfig cfg;
        cfg.predictorSpec = spec;
        configs.push_back(cfg);
    }
    for (int mode = 0; mode < 3; ++mode) {
        uarch::CoreConfig cfg;
        cfg.mem.prefetch.enabled = mode > 0;
        cfg.mem.prefetch.degree = mode == 2 ? 4 : 2;
        configs.push_back(cfg);
    }

    const std::vector<core::SweepPoint> points =
        core::runPointMulti(*encoder, clip, 40, 4, scale, configs);
    size_t at = 0;

    core::Table rob_table({"ROB size", "IPC", "Backend frac", "ROB stall%"});
    for (int rob : kRobs) {
        const uarch::CoreStats &s = points[at++].core;
        rob_table.addRow(
            {std::to_string(rob), core::fmt(s.ipc(), 2),
             core::fmt(s.slots.fraction(s.slots.backend), 3),
             core::fmt(100.0 * static_cast<double>(s.stalls.rob) /
                           static_cast<double>(s.cycles),
                       2)});
    }
    rob_table.print("Ablation: ROB sizing (SVT-AV1 trace, game1 CRF 40 "
                    "preset 4)");

    core::Table rs_table({"RS size", "IPC", "Backend frac", "RS stall%"});
    for (int rs : kRs) {
        const uarch::CoreStats &s = points[at++].core;
        rs_table.addRow(
            {std::to_string(rs), core::fmt(s.ipc(), 2),
             core::fmt(s.slots.fraction(s.slots.backend), 3),
             core::fmt(100.0 * static_cast<double>(s.stalls.rs) /
                           static_cast<double>(s.cycles),
                       2)});
    }
    rs_table.print("Ablation: unified scheduler (RS) sizing");

    core::Table pred_table({"Frontend predictor", "IPC", "Miss rate %",
                            "Bad-spec frac"});
    for (const char *spec : kPreds) {
        const uarch::CoreStats &s = points[at++].core;
        pred_table.addRow({spec, core::fmt(s.ipc(), 2),
                           core::fmt(s.branchMissRatePercent(), 2),
                           core::fmt(s.slots.fraction(s.slots.badSpec), 3)});
    }
    pred_table.print("Ablation: front-end predictor choice (the paper's "
                     "~10% IPC headroom claim)");

    core::Table pf_table({"Prefetcher", "IPC", "L1D MPKI", "L2 MPKI",
                          "LLC MPKI", "Backend-mem frac"});
    for (int mode = 0; mode < 3; ++mode) {
        const uarch::CoreStats &s = points[at++].core;
        pf_table.addRow(
            {mode == 0 ? "off" : mode == 1 ? "stride x2" : "stride x4",
             core::fmt(s.ipc(), 2), core::fmt(s.l1dMpki(), 2),
             core::fmt(s.l2Mpki(), 2), core::fmt(s.llcMpki(), 3),
             core::fmt(s.slots.fraction(s.slots.backendMemory), 3)});
    }
    pf_table.print("Ablation: L2 stride prefetcher");
    return 0;
}
