/**
 * @file
 * Ablation (beyond the paper) — core-resource sizing on an SVT-AV1
 * trace: sweep the ROB and unified-scheduler sizes around the Broadwell
 * configuration and report IPC and backend-boundedness, locating which
 * resource actually limits the encoder (the paper's Fig. 6e-h hints it
 * is the RS and store buffer, not the ROB).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "uarch/core.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    video::Video clip = video::loadSuiteVideo("game1", scale.suite);

    auto encoder = encoders::encoderByName("SVT-AV1");
    encoders::EncodeParams p;
    p.crf = 40;
    p.preset = 4;
    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = scale.maxTraceOps;
    pc.opWindow = 150'000;
    pc.opInterval = 600'000;
    auto r = encoder->encode(clip, p, pc);

    core::Table rob_table({"ROB size", "IPC", "Backend frac", "ROB stall%"});
    for (int rob : {64, 128, 192, 256, 384}) {
        uarch::CoreConfig cfg;
        cfg.robSize = rob;
        uarch::Core core(cfg);
        auto s = core.run(r.opTrace());
        rob_table.addRow(
            {std::to_string(rob), core::fmt(s.ipc(), 2),
             core::fmt(s.slots.fraction(s.slots.backend), 3),
             core::fmt(100.0 * static_cast<double>(s.stalls.rob) /
                           static_cast<double>(s.cycles),
                       2)});
    }
    rob_table.print("Ablation: ROB sizing (SVT-AV1 trace, game1 CRF 40 "
                    "preset 4)");

    core::Table rs_table({"RS size", "IPC", "Backend frac", "RS stall%"});
    for (int rs : {20, 40, 60, 97, 160}) {
        uarch::CoreConfig cfg;
        cfg.rsSize = rs;
        uarch::Core core(cfg);
        auto s = core.run(r.opTrace());
        rs_table.addRow(
            {std::to_string(rs), core::fmt(s.ipc(), 2),
             core::fmt(s.slots.fraction(s.slots.backend), 3),
             core::fmt(100.0 * static_cast<double>(s.stalls.rs) /
                           static_cast<double>(s.cycles),
                       2)});
    }
    rs_table.print("Ablation: unified scheduler (RS) sizing");

    core::Table pred_table({"Frontend predictor", "IPC", "Miss rate %",
                            "Bad-spec frac"});
    for (const char *spec :
         {"bimodal-4KB", "gshare-2KB", "gshare-32KB", "tage-8KB",
          "tage-64KB"}) {
        uarch::CoreConfig cfg;
        cfg.predictorSpec = spec;
        uarch::Core core(cfg);
        auto s = core.run(r.opTrace());
        pred_table.addRow({spec, core::fmt(s.ipc(), 2),
                           core::fmt(s.branchMissRatePercent(), 2),
                           core::fmt(s.slots.fraction(s.slots.badSpec), 3)});
    }
    pred_table.print("Ablation: front-end predictor choice (the paper's "
                     "~10% IPC headroom claim)");

    core::Table pf_table({"Prefetcher", "IPC", "L1D MPKI", "L2 MPKI",
                          "LLC MPKI", "Backend-mem frac"});
    for (int mode = 0; mode < 3; ++mode) {
        uarch::CoreConfig cfg;
        cfg.mem.prefetch.enabled = mode > 0;
        cfg.mem.prefetch.degree = mode == 2 ? 4 : 2;
        uarch::Core core(cfg);
        auto s = core.run(r.opTrace());
        pf_table.addRow(
            {mode == 0 ? "off" : mode == 1 ? "stride x2" : "stride x4",
             core::fmt(s.ipc(), 2), core::fmt(s.l1dMpki(), 2),
             core::fmt(s.l2Mpki(), 2), core::fmt(s.llcMpki(), 3),
             core::fmt(s.slots.fraction(s.slots.backendMemory), 3)});
    }
    pf_table.print("Ablation: L2 stride prefetcher");
    return 0;
}
