/**
 * @file
 * Fig. 1 — execution time vs CRF for the five encoders on game1. The
 * paper's point: SVT-AV1 sits roughly an order of magnitude above the
 * x264/x265/VP9 cluster at every quality point, with libaom between.
 * We print wall time and modeled instructions (the paper's later
 * figures show the two track each other).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    video::Video clip = video::loadSuiteVideo("game1", scale.suite);

    core::Table time_table({"Encoder", "CRF10", "CRF20", "CRF30", "CRF40",
                            "CRF50", "CRF60"});
    core::Table inst_table = time_table;
    for (const auto &enc : encoders::allEncoders()) {
        std::vector<std::string> times = {enc->name()};
        std::vector<std::string> insts = {enc->name()};
        for (int crf : core::crfSweepAv1()) {
            encoders::EncodeParams p;
            p.crf = enc->crfRange() == 63 ? crf : core::mapCrfToX26x(crf);
            p.preset = enc->presetInverted() ? 5 : 4;
            encoders::EncodeResult r = enc->encode(clip, p);
            times.push_back(core::fmt(r.wallSeconds, 3) + "s");
            insts.push_back(core::fmt(r.instructions / 1e6, 1) + "M");
        }
        time_table.addRow(times);
        inst_table.addRow(insts);
    }
    time_table.print("Fig 1: execution time vs CRF (game1; x26x CRF mapped "
                     "onto the 0-51 range)");
    inst_table.print("Fig 1 (companion): modeled instructions vs CRF");
    std::printf("\nExpected shape: SVT-AV1 highest at every CRF (~10x the "
                "x264/x265/VP9 cluster), Libaom second.\n");
    return 0;
}
