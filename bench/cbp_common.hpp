#ifndef VEPRO_BENCH_CBP_COMMON_HPP
#define VEPRO_BENCH_CBP_COMMON_HPP

/**
 * @file
 * Shared driver for the CBP predictor figures (8-10): capture a branch
 * trace from an instrumented SVT-AV1 encode of each clip (warmed past
 * the first frames, like the paper's mid-run 1B-instruction interval),
 * then replay it through the paper's four predictor configurations.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bpred/runner.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "lab/progress.hpp"
#include "sweep_common.hpp"

namespace vepro::bench
{

/** The paper's Fig. 8-10 predictor set. */
inline const std::vector<std::string> &
paperPredictors()
{
    static const std::vector<std::string> specs = {
        "gshare-2KB", "gshare-32KB", "tage-8KB", "tage-64KB"};
    return specs;
}

/** Run one CBP figure: capture traces at (preset, crf), evaluate all
 *  four predictors per clip, print MPKI and miss-rate tables. */
inline int
runCbpFigure(int argc, char **argv, const char *figure, int preset, int crf)
{
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    auto encoder = encoders::encoderByName("SVT-AV1");

    std::vector<std::string> header = {"Video"};
    for (const std::string &s : paperPredictors()) {
        header.push_back(s);
    }
    core::Table mpki(header);
    core::Table rate(header);

    // One fused encode per clip: all four predictors score the branch
    // stream live through a MuxSink, so no branch trace is materialised.
    // Clips are independent and run on scale.jobs worker threads.
    std::vector<video::SuiteEntry> videos = sweepVideos(scale);
    std::vector<std::vector<bpred::RunResult>> results(videos.size());
    std::vector<uint64_t> dropped(videos.size(), 0);
    core::parallelFor(videos.size(), scale.jobs, [&](size_t i) {
        video::Video clip = video::loadSuiteVideo(videos[i], scale.suite);
        encoders::EncodeParams params;
        params.preset = preset;
        params.crf = crf;

        trace::ProbeConfig pc;
        pc.collectBranches = true;
        pc.maxBranches = 2'000'000;
        // Start the trace past the keyframe, "roughly halfway through".
        pc.branchWarmupOps = 2'000'000;

        std::vector<std::unique_ptr<bpred::BranchPredictor>> preds;
        std::vector<bpred::StreamRunner> runners;
        trace::MuxSink mux;
        runners.reserve(paperPredictors().size());
        for (const std::string &spec : paperPredictors()) {
            preds.push_back(bpred::makePredictor(spec));
            runners.emplace_back(*preds.back());
            mux.add(&runners.back());
        }
        encoders::EncodeResult r =
            encoder->encode(clip, params, pc, false, &mux);

        for (bpred::StreamRunner &runner : runners) {
            runner.setInstructions(r.branchTraceInstructions);
            results[i].push_back(runner.result());
        }
        dropped[i] = r.droppedBranches;
        // Worker-thread reporting goes through the mutex-serialised
        // Progress so concurrent lines never interleave mid-character.
        lab::Progress::standard().linef(
            "  [%s: %llu branches]", videos[i].name.c_str(),
            static_cast<unsigned long long>(results[i].front().branches));
    });

    for (size_t i = 0; i < videos.size(); ++i) {
        if (dropped[i] > 0) {
            lab::Progress::standard().linef(
                "  warning: %s hit the branch cap (%llu branches "
                "dropped); MPKI covers the recorded window only",
                videos[i].name.c_str(),
                static_cast<unsigned long long>(dropped[i]));
        }
        std::vector<std::string> mpki_row = {videos[i].name};
        std::vector<std::string> rate_row = {videos[i].name};
        for (const bpred::RunResult &rr : results[i]) {
            mpki_row.push_back(core::fmt(rr.mpki(), 2));
            rate_row.push_back(core::fmt(rr.missRatePercent(), 2));
        }
        mpki.addRow(mpki_row);
        rate.addRow(rate_row);
    }
    mpki.print(std::string(figure) + ": simulated MPKI per video (preset " +
               std::to_string(preset) + ", CRF " + std::to_string(crf) + ")");
    rate.print(std::string(figure) + " (companion): miss rate in percent");
    std::printf("\nExpected shape: MPKI(gshare-2KB) > MPKI(gshare-32KB) and "
                "MPKI(tage-8KB) > MPKI(tage-64KB); TAGE beats Gshare at "
                "comparable budgets.\n");
    return 0;
}

} // namespace vepro::bench

#endif // VEPRO_BENCH_CBP_COMMON_HPP
