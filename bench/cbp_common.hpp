#ifndef VEPRO_BENCH_CBP_COMMON_HPP
#define VEPRO_BENCH_CBP_COMMON_HPP

/**
 * @file
 * Shared driver for the CBP predictor figures (8-10): capture a branch
 * trace from an instrumented SVT-AV1 encode of each clip (warmed past
 * the first frames, like the paper's mid-run 1B-instruction interval),
 * then replay it through the paper's four predictor configurations.
 */

#include <cstdio>
#include <string>

#include "bpred/runner.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "sweep_common.hpp"

namespace vepro::bench
{

/** The paper's Fig. 8-10 predictor set. */
inline const std::vector<std::string> &
paperPredictors()
{
    static const std::vector<std::string> specs = {
        "gshare-2KB", "gshare-32KB", "tage-8KB", "tage-64KB"};
    return specs;
}

/** Run one CBP figure: capture traces at (preset, crf), evaluate all
 *  four predictors per clip, print MPKI and miss-rate tables. */
inline int
runCbpFigure(int argc, char **argv, const char *figure, int preset, int crf)
{
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    auto encoder = encoders::encoderByName("SVT-AV1");

    std::vector<std::string> header = {"Video"};
    for (const std::string &s : paperPredictors()) {
        header.push_back(s);
    }
    core::Table mpki(header);
    core::Table rate(header);

    for (const video::SuiteEntry &e : sweepVideos(scale)) {
        video::Video clip = video::loadSuiteVideo(e, scale.suite);
        encoders::EncodeParams params;
        params.preset = preset;
        params.crf = crf;

        trace::ProbeConfig pc;
        pc.collectBranches = true;
        pc.maxBranches = 2'000'000;
        // Start the trace past the keyframe, "roughly halfway through".
        pc.branchWarmupOps = 2'000'000;
        encoders::EncodeResult r = encoder->encode(clip, params, pc);

        std::vector<std::string> mpki_row = {e.name};
        std::vector<std::string> rate_row = {e.name};
        for (const std::string &spec : paperPredictors()) {
            auto pred = bpred::makePredictor(spec);
            bpred::RunResult rr = bpred::runTrace(
                *pred, r.branchTrace, r.branchTraceInstructions);
            mpki_row.push_back(core::fmt(rr.mpki(), 2));
            rate_row.push_back(core::fmt(rr.missRatePercent(), 2));
        }
        mpki.addRow(mpki_row);
        rate.addRow(rate_row);
        std::fprintf(stderr, "  [%s: %zu branches]\n", e.name.c_str(),
                     r.branchTrace.size());
    }
    mpki.print(std::string(figure) + ": simulated MPKI per video (preset " +
               std::to_string(preset) + ", CRF " + std::to_string(crf) + ")");
    rate.print(std::string(figure) + " (companion): miss rate in percent");
    std::printf("\nExpected shape: MPKI(gshare-2KB) > MPKI(gshare-32KB) and "
                "MPKI(tage-8KB) > MPKI(tage-64KB); TAGE beats Gshare at "
                "comparable budgets.\n");
    return 0;
}

} // namespace vepro::bench

#endif // VEPRO_BENCH_CBP_COMMON_HPP
