/**
 * @file
 * Fig. 10 — CBP simulated MPKI per video; branch traces collected from
 * SVT-AV1 at speed preset 4, CRF 60.
 */

#include "cbp_common.hpp"

int
main(int argc, char **argv)
{
    return vepro::bench::runCbpFigure(argc, argv, "Fig 10", 4, 60);
}
