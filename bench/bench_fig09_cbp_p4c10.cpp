/**
 * @file
 * Fig. 9 — CBP simulated MPKI per video; branch traces collected from
 * SVT-AV1 at speed preset 4, CRF 10 (the slow/fine point, where branch
 * behaviour is hardest to predict).
 */

#include "cbp_common.hpp"

int
main(int argc, char **argv)
{
    return vepro::bench::runCbpFigure(argc, argv, "Fig 9", 4, 10);
}
