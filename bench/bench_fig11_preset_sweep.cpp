/**
 * @file
 * Fig. 11 — preset sweep for game1 at fixed CRF (SVT-AV1, presets 0-8):
 *  (a) encoding time (the paper spans ~155k s at preset 0 to <200 s at
 *      preset 8 — three orders of magnitude),
 *  (b) bitrate and PSNR (bitrate rises noticeably from preset ~3 on,
 *      PSNR falls under a dB across the whole sweep),
 *  (c) top-down shares, (d) branch/cache MPKI, (e) resource stalls —
 *      where the paper finds *no noticeable trend* with preset.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    video::Video clip = video::loadSuiteVideo("game1", scale.suite);
    auto encoder = encoders::encoderByName("SVT-AV1");
    const int crf = 30;

    core::Table ab({"Preset", "Time (s)", "Instructions", "Bitrate (kbps)",
                    "PSNR (dB)"});
    core::Table cde({"Preset", "Retiring", "Bad-spec", "Frontend",
                     "Backend", "Br MPKI", "L1D MPKI", "L2 MPKI",
                     "RS stall%", "SB stall%"});

    // Presets are independent points: run them on scale.jobs workers,
    // then emit rows in preset order.
    std::vector<core::SweepPoint> points(9);
    core::parallelFor(points.size(), scale.jobs, [&](size_t preset) {
        points[preset] = core::runPoint(*encoder, clip, crf,
                                        static_cast<int>(preset), scale);
        std::fprintf(stderr, "  [preset %zu done: %.2fs]\n", preset,
                     points[preset].encode.wallSeconds);
    });

    for (int preset = 0; preset <= 8; ++preset) {
        const core::SweepPoint &p = points[static_cast<size_t>(preset)];
        const auto &c = p.core;
        const auto &s = c.slots;
        ab.addRow({std::to_string(preset),
                   core::fmt(p.encode.wallSeconds, 3),
                   core::fmtCount(p.encode.instructions),
                   core::fmt(p.encode.bitrateKbps, 0),
                   core::fmt(p.encode.psnrDb, 2)});
        auto pct = [&](uint64_t v) {
            return core::fmt(c.cycles ? 100.0 * static_cast<double>(v) /
                                            static_cast<double>(c.cycles)
                                      : 0.0,
                             2);
        };
        cde.addRow({std::to_string(preset),
                    core::fmt(s.fraction(s.retiring), 3),
                    core::fmt(s.fraction(s.badSpec), 3),
                    core::fmt(s.fraction(s.frontend), 3),
                    core::fmt(s.fraction(s.backend), 3),
                    core::fmt(c.branchMpki(), 2), core::fmt(c.l1dMpki(), 2),
                    core::fmt(c.l2Mpki(), 2), pct(c.stalls.rs),
                    pct(c.stalls.storeBuf)});
    }
    ab.print("Fig 11a-b: preset sweep — time, bitrate, PSNR (game1, "
             "CRF 30)");
    cde.print("Fig 11c-e: preset sweep — top-down, MPKI, resource stalls");
    std::printf("\nExpected shape: time falls ~3 orders of magnitude from "
                "preset 0 to 8; bitrate rises, PSNR dips modestly; the "
                "microarchitectural rows show no clear preset trend.\n");
    return 0;
}
