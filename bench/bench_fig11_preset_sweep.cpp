/**
 * @file
 * Fig. 11 — preset sweep for game1 at fixed CRF (SVT-AV1, presets 0-8):
 *  (a) encoding time (the paper spans ~155k s at preset 0 to <200 s at
 *      preset 8 — three orders of magnitude),
 *  (b) bitrate and PSNR (bitrate rises noticeably from preset ~3 on,
 *      PSNR falls under a dB across the whole sweep),
 *  (c) top-down shares, (d) branch/cache MPKI, (e) resource stalls —
 *      where the paper finds *no noticeable trend* with preset.
 *
 * Presets resolve through the lab orchestrator: independent points run
 * on scale.jobs workers, repeat runs are pure cache hits from the
 * `.vepro-lab/` store (see `vepro-lab --figures=11`).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "lab/figures.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    core::RunScale scale = core::RunScale::fromArgs(argc, argv);
    for (const lab::FigureResult &fig : lab::runFigures({11}, scale)) {
        for (const lab::NamedTable &t : fig.tables) {
            t.table.print(t.caption);
        }
        std::printf("\n%s\n", fig.expectedShape.c_str());
    }
    return 0;
}
