file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_videos.dir/bench_table1_videos.cpp.o"
  "CMakeFiles/bench_table1_videos.dir/bench_table1_videos.cpp.o.d"
  "bench_table1_videos"
  "bench_table1_videos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_videos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
