# Empty compiler generated dependencies file for bench_fig16_topdown_threads.
# This may be replaced when dependencies are built.
