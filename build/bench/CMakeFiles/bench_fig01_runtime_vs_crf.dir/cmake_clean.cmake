file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_runtime_vs_crf.dir/bench_fig01_runtime_vs_crf.cpp.o"
  "CMakeFiles/bench_fig01_runtime_vs_crf.dir/bench_fig01_runtime_vs_crf.cpp.o.d"
  "bench_fig01_runtime_vs_crf"
  "bench_fig01_runtime_vs_crf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_runtime_vs_crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
