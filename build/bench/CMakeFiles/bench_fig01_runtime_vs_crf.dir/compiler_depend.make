# Empty compiler generated dependencies file for bench_fig01_runtime_vs_crf.
# This may be replaced when dependencies are built.
