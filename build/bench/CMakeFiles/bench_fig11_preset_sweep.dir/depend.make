# Empty dependencies file for bench_fig11_preset_sweep.
# This may be replaced when dependencies are built.
