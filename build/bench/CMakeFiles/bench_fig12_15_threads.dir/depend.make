# Empty dependencies file for bench_fig12_15_threads.
# This may be replaced when dependencies are built.
