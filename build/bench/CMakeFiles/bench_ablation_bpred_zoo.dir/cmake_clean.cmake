file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bpred_zoo.dir/bench_ablation_bpred_zoo.cpp.o"
  "CMakeFiles/bench_ablation_bpred_zoo.dir/bench_ablation_bpred_zoo.cpp.o.d"
  "bench_ablation_bpred_zoo"
  "bench_ablation_bpred_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bpred_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
