# Empty dependencies file for bench_ablation_bpred_zoo.
# This may be replaced when dependencies are built.
