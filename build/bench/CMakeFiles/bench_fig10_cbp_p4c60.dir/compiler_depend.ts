# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig10_cbp_p4c60.
