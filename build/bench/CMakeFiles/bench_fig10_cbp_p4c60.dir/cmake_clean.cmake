file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cbp_p4c60.dir/bench_fig10_cbp_p4c60.cpp.o"
  "CMakeFiles/bench_fig10_cbp_p4c60.dir/bench_fig10_cbp_p4c60.cpp.o.d"
  "bench_fig10_cbp_p4c60"
  "bench_fig10_cbp_p4c60.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cbp_p4c60.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
