# Empty compiler generated dependencies file for bench_fig10_cbp_p4c60.
# This may be replaced when dependencies are built.
