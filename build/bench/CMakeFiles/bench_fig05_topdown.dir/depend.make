# Empty dependencies file for bench_fig05_topdown.
# This may be replaced when dependencies are built.
