file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_opmix.dir/bench_fig03_opmix.cpp.o"
  "CMakeFiles/bench_fig03_opmix.dir/bench_fig03_opmix.cpp.o.d"
  "bench_fig03_opmix"
  "bench_fig03_opmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_opmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
