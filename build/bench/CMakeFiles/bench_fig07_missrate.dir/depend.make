# Empty dependencies file for bench_fig07_missrate.
# This may be replaced when dependencies are built.
