file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_missrate.dir/bench_fig07_missrate.cpp.o"
  "CMakeFiles/bench_fig07_missrate.dir/bench_fig07_missrate.cpp.o.d"
  "bench_fig07_missrate"
  "bench_fig07_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
