# Empty dependencies file for bench_fig02_rd_tradeoff.
# This may be replaced when dependencies are built.
