file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_cbp_p4c10.dir/bench_fig09_cbp_p4c10.cpp.o"
  "CMakeFiles/bench_fig09_cbp_p4c10.dir/bench_fig09_cbp_p4c10.cpp.o.d"
  "bench_fig09_cbp_p4c10"
  "bench_fig09_cbp_p4c10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_cbp_p4c10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
