# Empty dependencies file for bench_fig09_cbp_p4c10.
# This may be replaced when dependencies are built.
