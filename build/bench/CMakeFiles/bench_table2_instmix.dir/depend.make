# Empty dependencies file for bench_table2_instmix.
# This may be replaced when dependencies are built.
