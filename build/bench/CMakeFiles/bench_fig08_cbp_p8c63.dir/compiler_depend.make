# Empty compiler generated dependencies file for bench_fig08_cbp_p8c63.
# This may be replaced when dependencies are built.
