file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_cbp_p8c63.dir/bench_fig08_cbp_p8c63.cpp.o"
  "CMakeFiles/bench_fig08_cbp_p8c63.dir/bench_fig08_cbp_p8c63.cpp.o.d"
  "bench_fig08_cbp_p8c63"
  "bench_fig08_cbp_p8c63.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_cbp_p8c63.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
