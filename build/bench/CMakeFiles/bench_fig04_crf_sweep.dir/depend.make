# Empty dependencies file for bench_fig04_crf_sweep.
# This may be replaced when dependencies are built.
