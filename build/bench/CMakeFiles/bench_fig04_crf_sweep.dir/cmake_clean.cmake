file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_crf_sweep.dir/bench_fig04_crf_sweep.cpp.o"
  "CMakeFiles/bench_fig04_crf_sweep.dir/bench_fig04_crf_sweep.cpp.o.d"
  "bench_fig04_crf_sweep"
  "bench_fig04_crf_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_crf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
