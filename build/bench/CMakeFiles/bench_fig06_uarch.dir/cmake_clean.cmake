file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_uarch.dir/bench_fig06_uarch.cpp.o"
  "CMakeFiles/bench_fig06_uarch.dir/bench_fig06_uarch.cpp.o.d"
  "bench_fig06_uarch"
  "bench_fig06_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
