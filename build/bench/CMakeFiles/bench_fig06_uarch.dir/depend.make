# Empty dependencies file for bench_fig06_uarch.
# This may be replaced when dependencies are built.
