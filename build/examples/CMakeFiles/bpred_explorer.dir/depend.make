# Empty dependencies file for bpred_explorer.
# This may be replaced when dependencies are built.
