file(REMOVE_RECURSE
  "CMakeFiles/bpred_explorer.dir/bpred_explorer.cpp.o"
  "CMakeFiles/bpred_explorer.dir/bpred_explorer.cpp.o.d"
  "bpred_explorer"
  "bpred_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpred_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
