# Empty compiler generated dependencies file for bpred_explorer.
# This may be replaced when dependencies are built.
