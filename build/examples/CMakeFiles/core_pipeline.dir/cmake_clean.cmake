file(REMOVE_RECURSE
  "CMakeFiles/core_pipeline.dir/core_pipeline.cpp.o"
  "CMakeFiles/core_pipeline.dir/core_pipeline.cpp.o.d"
  "core_pipeline"
  "core_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
