# Empty compiler generated dependencies file for core_pipeline.
# This may be replaced when dependencies are built.
