# Empty compiler generated dependencies file for hot_functions.
# This may be replaced when dependencies are built.
