file(REMOVE_RECURSE
  "CMakeFiles/hot_functions.dir/hot_functions.cpp.o"
  "CMakeFiles/hot_functions.dir/hot_functions.cpp.o.d"
  "hot_functions"
  "hot_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
