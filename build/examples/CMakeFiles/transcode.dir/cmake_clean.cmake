file(REMOVE_RECURSE
  "CMakeFiles/transcode.dir/transcode.cpp.o"
  "CMakeFiles/transcode.dir/transcode.cpp.o.d"
  "transcode"
  "transcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
