# Empty dependencies file for codec_comparison.
# This may be replaced when dependencies are built.
