file(REMOVE_RECURSE
  "CMakeFiles/codec_comparison.dir/codec_comparison.cpp.o"
  "CMakeFiles/codec_comparison.dir/codec_comparison.cpp.o.d"
  "codec_comparison"
  "codec_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
