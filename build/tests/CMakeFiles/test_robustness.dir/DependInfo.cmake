
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/test_robustness.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/test_robustness.dir/test_robustness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vepro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/encoders/CMakeFiles/vepro_encoders.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/vepro_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/vepro_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/vepro_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vepro_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vepro_video.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vepro_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
