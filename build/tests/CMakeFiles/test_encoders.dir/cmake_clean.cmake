file(REMOVE_RECURSE
  "CMakeFiles/test_encoders.dir/test_encoders.cpp.o"
  "CMakeFiles/test_encoders.dir/test_encoders.cpp.o.d"
  "test_encoders"
  "test_encoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
