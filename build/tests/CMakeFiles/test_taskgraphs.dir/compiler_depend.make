# Empty compiler generated dependencies file for test_taskgraphs.
# This may be replaced when dependencies are built.
