file(REMOVE_RECURSE
  "CMakeFiles/test_taskgraphs.dir/test_taskgraphs.cpp.o"
  "CMakeFiles/test_taskgraphs.dir/test_taskgraphs.cpp.o.d"
  "test_taskgraphs"
  "test_taskgraphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskgraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
