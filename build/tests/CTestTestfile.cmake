# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_video "/root/repo/build/tests/test_video")
set_tests_properties(test_video PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trace "/root/repo/build/tests/test_trace")
set_tests_properties(test_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_codec "/root/repo/build/tests/test_codec")
set_tests_properties(test_codec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bpred "/root/repo/build/tests/test_bpred")
set_tests_properties(test_bpred PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_uarch "/root/repo/build/tests/test_uarch")
set_tests_properties(test_uarch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sched "/root/repo/build/tests/test_sched")
set_tests_properties(test_sched PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_encoders "/root/repo/build/tests/test_encoders")
set_tests_properties(test_encoders PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_decoder "/root/repo/build/tests/test_decoder")
set_tests_properties(test_decoder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_taskgraphs "/root/repo/build/tests/test_taskgraphs")
set_tests_properties(test_taskgraphs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_robustness "/root/repo/build/tests/test_robustness")
set_tests_properties(test_robustness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;vepro_test;/root/repo/tests/CMakeLists.txt;0;")
