
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/opclass.cpp" "src/trace/CMakeFiles/vepro_trace.dir/opclass.cpp.o" "gcc" "src/trace/CMakeFiles/vepro_trace.dir/opclass.cpp.o.d"
  "/root/repo/src/trace/probe.cpp" "src/trace/CMakeFiles/vepro_trace.dir/probe.cpp.o" "gcc" "src/trace/CMakeFiles/vepro_trace.dir/probe.cpp.o.d"
  "/root/repo/src/trace/profile.cpp" "src/trace/CMakeFiles/vepro_trace.dir/profile.cpp.o" "gcc" "src/trace/CMakeFiles/vepro_trace.dir/profile.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/vepro_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/vepro_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
