file(REMOVE_RECURSE
  "libvepro_trace.a"
)
