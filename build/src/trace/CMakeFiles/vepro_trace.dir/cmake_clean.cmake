file(REMOVE_RECURSE
  "CMakeFiles/vepro_trace.dir/opclass.cpp.o"
  "CMakeFiles/vepro_trace.dir/opclass.cpp.o.d"
  "CMakeFiles/vepro_trace.dir/probe.cpp.o"
  "CMakeFiles/vepro_trace.dir/probe.cpp.o.d"
  "CMakeFiles/vepro_trace.dir/profile.cpp.o"
  "CMakeFiles/vepro_trace.dir/profile.cpp.o.d"
  "CMakeFiles/vepro_trace.dir/trace_io.cpp.o"
  "CMakeFiles/vepro_trace.dir/trace_io.cpp.o.d"
  "libvepro_trace.a"
  "libvepro_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vepro_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
