# Empty dependencies file for vepro_trace.
# This may be replaced when dependencies are built.
