file(REMOVE_RECURSE
  "CMakeFiles/vepro_sched.dir/scheduler.cpp.o"
  "CMakeFiles/vepro_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/vepro_sched.dir/taskgraph.cpp.o"
  "CMakeFiles/vepro_sched.dir/taskgraph.cpp.o.d"
  "libvepro_sched.a"
  "libvepro_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vepro_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
