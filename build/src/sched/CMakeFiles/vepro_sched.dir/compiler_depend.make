# Empty compiler generated dependencies file for vepro_sched.
# This may be replaced when dependencies are built.
