file(REMOVE_RECURSE
  "libvepro_sched.a"
)
