file(REMOVE_RECURSE
  "CMakeFiles/vepro_uarch.dir/cache.cpp.o"
  "CMakeFiles/vepro_uarch.dir/cache.cpp.o.d"
  "CMakeFiles/vepro_uarch.dir/core.cpp.o"
  "CMakeFiles/vepro_uarch.dir/core.cpp.o.d"
  "libvepro_uarch.a"
  "libvepro_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vepro_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
