# Empty compiler generated dependencies file for vepro_uarch.
# This may be replaced when dependencies are built.
