file(REMOVE_RECURSE
  "libvepro_uarch.a"
)
