# Empty compiler generated dependencies file for vepro_core.
# This may be replaced when dependencies are built.
