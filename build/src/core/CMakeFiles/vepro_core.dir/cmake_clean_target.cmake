file(REMOVE_RECURSE
  "libvepro_core.a"
)
