file(REMOVE_RECURSE
  "CMakeFiles/vepro_core.dir/experiment.cpp.o"
  "CMakeFiles/vepro_core.dir/experiment.cpp.o.d"
  "CMakeFiles/vepro_core.dir/report.cpp.o"
  "CMakeFiles/vepro_core.dir/report.cpp.o.d"
  "CMakeFiles/vepro_core.dir/threadstudy.cpp.o"
  "CMakeFiles/vepro_core.dir/threadstudy.cpp.o.d"
  "libvepro_core.a"
  "libvepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vepro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
