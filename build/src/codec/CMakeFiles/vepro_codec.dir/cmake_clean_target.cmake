file(REMOVE_RECURSE
  "libvepro_codec.a"
)
