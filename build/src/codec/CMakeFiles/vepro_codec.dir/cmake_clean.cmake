file(REMOVE_RECURSE
  "CMakeFiles/vepro_codec.dir/bitstream.cpp.o"
  "CMakeFiles/vepro_codec.dir/bitstream.cpp.o.d"
  "CMakeFiles/vepro_codec.dir/decoder.cpp.o"
  "CMakeFiles/vepro_codec.dir/decoder.cpp.o.d"
  "CMakeFiles/vepro_codec.dir/intra.cpp.o"
  "CMakeFiles/vepro_codec.dir/intra.cpp.o.d"
  "CMakeFiles/vepro_codec.dir/loopfilter.cpp.o"
  "CMakeFiles/vepro_codec.dir/loopfilter.cpp.o.d"
  "CMakeFiles/vepro_codec.dir/mc.cpp.o"
  "CMakeFiles/vepro_codec.dir/mc.cpp.o.d"
  "CMakeFiles/vepro_codec.dir/quant.cpp.o"
  "CMakeFiles/vepro_codec.dir/quant.cpp.o.d"
  "CMakeFiles/vepro_codec.dir/rangecoder.cpp.o"
  "CMakeFiles/vepro_codec.dir/rangecoder.cpp.o.d"
  "CMakeFiles/vepro_codec.dir/rdo.cpp.o"
  "CMakeFiles/vepro_codec.dir/rdo.cpp.o.d"
  "CMakeFiles/vepro_codec.dir/sad.cpp.o"
  "CMakeFiles/vepro_codec.dir/sad.cpp.o.d"
  "CMakeFiles/vepro_codec.dir/transform.cpp.o"
  "CMakeFiles/vepro_codec.dir/transform.cpp.o.d"
  "libvepro_codec.a"
  "libvepro_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vepro_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
