# Empty dependencies file for vepro_codec.
# This may be replaced when dependencies are built.
