
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitstream.cpp" "src/codec/CMakeFiles/vepro_codec.dir/bitstream.cpp.o" "gcc" "src/codec/CMakeFiles/vepro_codec.dir/bitstream.cpp.o.d"
  "/root/repo/src/codec/decoder.cpp" "src/codec/CMakeFiles/vepro_codec.dir/decoder.cpp.o" "gcc" "src/codec/CMakeFiles/vepro_codec.dir/decoder.cpp.o.d"
  "/root/repo/src/codec/intra.cpp" "src/codec/CMakeFiles/vepro_codec.dir/intra.cpp.o" "gcc" "src/codec/CMakeFiles/vepro_codec.dir/intra.cpp.o.d"
  "/root/repo/src/codec/loopfilter.cpp" "src/codec/CMakeFiles/vepro_codec.dir/loopfilter.cpp.o" "gcc" "src/codec/CMakeFiles/vepro_codec.dir/loopfilter.cpp.o.d"
  "/root/repo/src/codec/mc.cpp" "src/codec/CMakeFiles/vepro_codec.dir/mc.cpp.o" "gcc" "src/codec/CMakeFiles/vepro_codec.dir/mc.cpp.o.d"
  "/root/repo/src/codec/quant.cpp" "src/codec/CMakeFiles/vepro_codec.dir/quant.cpp.o" "gcc" "src/codec/CMakeFiles/vepro_codec.dir/quant.cpp.o.d"
  "/root/repo/src/codec/rangecoder.cpp" "src/codec/CMakeFiles/vepro_codec.dir/rangecoder.cpp.o" "gcc" "src/codec/CMakeFiles/vepro_codec.dir/rangecoder.cpp.o.d"
  "/root/repo/src/codec/rdo.cpp" "src/codec/CMakeFiles/vepro_codec.dir/rdo.cpp.o" "gcc" "src/codec/CMakeFiles/vepro_codec.dir/rdo.cpp.o.d"
  "/root/repo/src/codec/sad.cpp" "src/codec/CMakeFiles/vepro_codec.dir/sad.cpp.o" "gcc" "src/codec/CMakeFiles/vepro_codec.dir/sad.cpp.o.d"
  "/root/repo/src/codec/transform.cpp" "src/codec/CMakeFiles/vepro_codec.dir/transform.cpp.o" "gcc" "src/codec/CMakeFiles/vepro_codec.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/vepro_video.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vepro_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
