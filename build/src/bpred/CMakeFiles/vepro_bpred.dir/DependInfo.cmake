
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpred/bimodal.cpp" "src/bpred/CMakeFiles/vepro_bpred.dir/bimodal.cpp.o" "gcc" "src/bpred/CMakeFiles/vepro_bpred.dir/bimodal.cpp.o.d"
  "/root/repo/src/bpred/factory.cpp" "src/bpred/CMakeFiles/vepro_bpred.dir/factory.cpp.o" "gcc" "src/bpred/CMakeFiles/vepro_bpred.dir/factory.cpp.o.d"
  "/root/repo/src/bpred/gshare.cpp" "src/bpred/CMakeFiles/vepro_bpred.dir/gshare.cpp.o" "gcc" "src/bpred/CMakeFiles/vepro_bpred.dir/gshare.cpp.o.d"
  "/root/repo/src/bpred/perceptron.cpp" "src/bpred/CMakeFiles/vepro_bpred.dir/perceptron.cpp.o" "gcc" "src/bpred/CMakeFiles/vepro_bpred.dir/perceptron.cpp.o.d"
  "/root/repo/src/bpred/runner.cpp" "src/bpred/CMakeFiles/vepro_bpred.dir/runner.cpp.o" "gcc" "src/bpred/CMakeFiles/vepro_bpred.dir/runner.cpp.o.d"
  "/root/repo/src/bpred/tage.cpp" "src/bpred/CMakeFiles/vepro_bpred.dir/tage.cpp.o" "gcc" "src/bpred/CMakeFiles/vepro_bpred.dir/tage.cpp.o.d"
  "/root/repo/src/bpred/tage_sc_l.cpp" "src/bpred/CMakeFiles/vepro_bpred.dir/tage_sc_l.cpp.o" "gcc" "src/bpred/CMakeFiles/vepro_bpred.dir/tage_sc_l.cpp.o.d"
  "/root/repo/src/bpred/tournament.cpp" "src/bpred/CMakeFiles/vepro_bpred.dir/tournament.cpp.o" "gcc" "src/bpred/CMakeFiles/vepro_bpred.dir/tournament.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/vepro_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
