file(REMOVE_RECURSE
  "CMakeFiles/vepro_bpred.dir/bimodal.cpp.o"
  "CMakeFiles/vepro_bpred.dir/bimodal.cpp.o.d"
  "CMakeFiles/vepro_bpred.dir/factory.cpp.o"
  "CMakeFiles/vepro_bpred.dir/factory.cpp.o.d"
  "CMakeFiles/vepro_bpred.dir/gshare.cpp.o"
  "CMakeFiles/vepro_bpred.dir/gshare.cpp.o.d"
  "CMakeFiles/vepro_bpred.dir/perceptron.cpp.o"
  "CMakeFiles/vepro_bpred.dir/perceptron.cpp.o.d"
  "CMakeFiles/vepro_bpred.dir/runner.cpp.o"
  "CMakeFiles/vepro_bpred.dir/runner.cpp.o.d"
  "CMakeFiles/vepro_bpred.dir/tage.cpp.o"
  "CMakeFiles/vepro_bpred.dir/tage.cpp.o.d"
  "CMakeFiles/vepro_bpred.dir/tage_sc_l.cpp.o"
  "CMakeFiles/vepro_bpred.dir/tage_sc_l.cpp.o.d"
  "CMakeFiles/vepro_bpred.dir/tournament.cpp.o"
  "CMakeFiles/vepro_bpred.dir/tournament.cpp.o.d"
  "libvepro_bpred.a"
  "libvepro_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vepro_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
