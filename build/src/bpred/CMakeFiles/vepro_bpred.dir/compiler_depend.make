# Empty compiler generated dependencies file for vepro_bpred.
# This may be replaced when dependencies are built.
