file(REMOVE_RECURSE
  "libvepro_bpred.a"
)
