
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/frame.cpp" "src/video/CMakeFiles/vepro_video.dir/frame.cpp.o" "gcc" "src/video/CMakeFiles/vepro_video.dir/frame.cpp.o.d"
  "/root/repo/src/video/generator.cpp" "src/video/CMakeFiles/vepro_video.dir/generator.cpp.o" "gcc" "src/video/CMakeFiles/vepro_video.dir/generator.cpp.o.d"
  "/root/repo/src/video/metrics.cpp" "src/video/CMakeFiles/vepro_video.dir/metrics.cpp.o" "gcc" "src/video/CMakeFiles/vepro_video.dir/metrics.cpp.o.d"
  "/root/repo/src/video/suite.cpp" "src/video/CMakeFiles/vepro_video.dir/suite.cpp.o" "gcc" "src/video/CMakeFiles/vepro_video.dir/suite.cpp.o.d"
  "/root/repo/src/video/y4m.cpp" "src/video/CMakeFiles/vepro_video.dir/y4m.cpp.o" "gcc" "src/video/CMakeFiles/vepro_video.dir/y4m.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
