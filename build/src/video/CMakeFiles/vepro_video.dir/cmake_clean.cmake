file(REMOVE_RECURSE
  "CMakeFiles/vepro_video.dir/frame.cpp.o"
  "CMakeFiles/vepro_video.dir/frame.cpp.o.d"
  "CMakeFiles/vepro_video.dir/generator.cpp.o"
  "CMakeFiles/vepro_video.dir/generator.cpp.o.d"
  "CMakeFiles/vepro_video.dir/metrics.cpp.o"
  "CMakeFiles/vepro_video.dir/metrics.cpp.o.d"
  "CMakeFiles/vepro_video.dir/suite.cpp.o"
  "CMakeFiles/vepro_video.dir/suite.cpp.o.d"
  "CMakeFiles/vepro_video.dir/y4m.cpp.o"
  "CMakeFiles/vepro_video.dir/y4m.cpp.o.d"
  "libvepro_video.a"
  "libvepro_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vepro_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
