# Empty dependencies file for vepro_video.
# This may be replaced when dependencies are built.
