file(REMOVE_RECURSE
  "libvepro_video.a"
)
