# Empty dependencies file for vepro_encoders.
# This may be replaced when dependencies are built.
