
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoders/encoder_model.cpp" "src/encoders/CMakeFiles/vepro_encoders.dir/encoder_model.cpp.o" "gcc" "src/encoders/CMakeFiles/vepro_encoders.dir/encoder_model.cpp.o.d"
  "/root/repo/src/encoders/libaom_model.cpp" "src/encoders/CMakeFiles/vepro_encoders.dir/libaom_model.cpp.o" "gcc" "src/encoders/CMakeFiles/vepro_encoders.dir/libaom_model.cpp.o.d"
  "/root/repo/src/encoders/libvpx_vp9_model.cpp" "src/encoders/CMakeFiles/vepro_encoders.dir/libvpx_vp9_model.cpp.o" "gcc" "src/encoders/CMakeFiles/vepro_encoders.dir/libvpx_vp9_model.cpp.o.d"
  "/root/repo/src/encoders/registry.cpp" "src/encoders/CMakeFiles/vepro_encoders.dir/registry.cpp.o" "gcc" "src/encoders/CMakeFiles/vepro_encoders.dir/registry.cpp.o.d"
  "/root/repo/src/encoders/svt_av1_model.cpp" "src/encoders/CMakeFiles/vepro_encoders.dir/svt_av1_model.cpp.o" "gcc" "src/encoders/CMakeFiles/vepro_encoders.dir/svt_av1_model.cpp.o.d"
  "/root/repo/src/encoders/x264_model.cpp" "src/encoders/CMakeFiles/vepro_encoders.dir/x264_model.cpp.o" "gcc" "src/encoders/CMakeFiles/vepro_encoders.dir/x264_model.cpp.o.d"
  "/root/repo/src/encoders/x265_model.cpp" "src/encoders/CMakeFiles/vepro_encoders.dir/x265_model.cpp.o" "gcc" "src/encoders/CMakeFiles/vepro_encoders.dir/x265_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/vepro_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vepro_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vepro_video.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vepro_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
