file(REMOVE_RECURSE
  "libvepro_encoders.a"
)
