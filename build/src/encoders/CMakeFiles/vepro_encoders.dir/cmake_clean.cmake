file(REMOVE_RECURSE
  "CMakeFiles/vepro_encoders.dir/encoder_model.cpp.o"
  "CMakeFiles/vepro_encoders.dir/encoder_model.cpp.o.d"
  "CMakeFiles/vepro_encoders.dir/libaom_model.cpp.o"
  "CMakeFiles/vepro_encoders.dir/libaom_model.cpp.o.d"
  "CMakeFiles/vepro_encoders.dir/libvpx_vp9_model.cpp.o"
  "CMakeFiles/vepro_encoders.dir/libvpx_vp9_model.cpp.o.d"
  "CMakeFiles/vepro_encoders.dir/registry.cpp.o"
  "CMakeFiles/vepro_encoders.dir/registry.cpp.o.d"
  "CMakeFiles/vepro_encoders.dir/svt_av1_model.cpp.o"
  "CMakeFiles/vepro_encoders.dir/svt_av1_model.cpp.o.d"
  "CMakeFiles/vepro_encoders.dir/x264_model.cpp.o"
  "CMakeFiles/vepro_encoders.dir/x264_model.cpp.o.d"
  "CMakeFiles/vepro_encoders.dir/x265_model.cpp.o"
  "CMakeFiles/vepro_encoders.dir/x265_model.cpp.o.d"
  "libvepro_encoders.a"
  "libvepro_encoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vepro_encoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
