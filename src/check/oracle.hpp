#ifndef VEPRO_CHECK_ORACLE_HPP
#define VEPRO_CHECK_ORACLE_HPP

/**
 * @file
 * Differential-testing oracles: small, obviously-correct reference
 * models of the simulator's optimized hot paths.
 *
 * PR 4 rewrote the core scheduler (rings + bitmask wakeup), the cache
 * model (SoA + MRU hint), and the TAGE update (division-free folds) for
 * speed, promising bit-identical statistics. These classes re-implement
 * the *pre-optimization* semantics in the most straightforward form —
 * AoS exact-LRU caches, full-scan issue, textbook modulo-arithmetic
 * folded histories — so check::Fuzzer can assert the fast paths against
 * them on arbitrary inputs. They are deliberately slow and simple;
 * nothing outside src/check and its tests should use them.
 *
 * Fault injection: every oracle accepts a Fault knob that deliberately
 * mis-implements one rule (e.g. the LRU victim choice). This exists to
 * prove the harness detects single-rule divergences — `vepro-check
 * --inject=cache-lru` must fail — and is never enabled in real checks.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backend/profile.hpp"
#include "bpred/predictor.hpp"
#include "bpred/tage.hpp"
#include "trace/sink.hpp"
#include "uarch/cache.hpp"
#include "uarch/core.hpp"
#include "video/frame.hpp"
#include "video/metrics.hpp"

namespace vepro::check
{

/** Deliberate single-rule bugs for harness self-tests (see file docs). */
enum class Fault {
    None,
    CacheLru,       ///< Victim rule: evicts the MRU way instead of LRU.
    CoreLatency,    ///< Divide executes in 19 cycles instead of 20.
    BpredAlloc,     ///< TAGE skips the probabilistic allocation offset.
    KernelsSad,     ///< Oracle SAD reports one too many on 64+ px blocks.
    StoreBit,       ///< Round-trip flips one mantissa bit of a double.
    ParallelDrop,   ///< Sequential reference stream drops its last branch.
    BackendEnergy,  ///< Energy weights: L2 and LLC miss nJ swapped
                    ///< (fixed profiles: one phantom block).
    TraceFileDelta, ///< TraceFile decode reads every op pc delta off by
                    ///< one (replayed PCs drift from the captured ones).
    LadderHull,     ///< Hull oracle tests the chord with a strict cross
                    ///< (< 0 instead of <= 0), so collinear rungs that
                    ///< the real ladder drops stay on the oracle's hull.
};

/** CLI name of a fault ("cache-lru", ...; "none" for Fault::None). */
const char *faultName(Fault fault);
/** Parse a CLI fault name; returns false on unknown names. */
bool parseFault(const std::string &name, Fault &out);

/**
 * AoS exact-LRU cache level: the pre-PR4 representation, one Line
 * struct per way, recency scanned linearly. Mirrors uarch::Cache's
 * documented semantics exactly: same geometry normalisation, same
 * victim rule (last invalid way in scan order, else strictly smallest
 * lastUse), same fill/invalidate behaviour.
 */
class RefCache
{
  public:
    explicit RefCache(const uarch::CacheConfig &config,
                      Fault fault = Fault::None);

    bool access(uint64_t addr, bool is_write);
    void fill(uint64_t addr);
    void invalidate(uint64_t addr);

    const uarch::CacheConfig &config() const { return config_; }
    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    uint64_t invalidations() const { return invalidations_; }

  private:
    struct Line {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    uint64_t lineOf(uint64_t addr) const
    {
        return addr / static_cast<uint64_t>(config_.lineBytes);
    }
    uint64_t setOf(uint64_t addr) const
    {
        return lineOf(addr) & (static_cast<uint64_t>(num_sets_) - 1);
    }
    uint64_t tagOf(uint64_t addr) const
    {
        return lineOf(addr) / static_cast<uint64_t>(num_sets_);
    }
    Line *victimOf(Line *set);

    uarch::CacheConfig config_;
    Fault fault_;
    int num_sets_;
    std::vector<Line> lines_;  ///< num_sets_ x ways, row-major.
    uint64_t tick_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t invalidations_ = 0;
};

/**
 * Reference hierarchy over RefCache levels, replicating
 * uarch::Hierarchy's lookup chain, MESI-style remoteStore, and stride
 * prefetcher byte for byte.
 */
class RefHierarchy
{
  public:
    explicit RefHierarchy(const uarch::Hierarchy::Config &config,
                          Fault fault = Fault::None);

    int dataAccess(uint64_t addr, bool is_write);
    int instrAccess(uint64_t addr);
    void remoteStore(uint64_t addr);

    const RefCache &l1i() const { return l1i_; }
    const RefCache &l1d() const { return l1d_; }
    const RefCache &l2() const { return l2_; }
    const RefCache &llc() const { return llc_; }

  private:
    void trainPrefetcher(uint64_t addr);

    struct Stream {
        uint64_t region = 0;
        uint64_t lastAddr = 0;
        int64_t stride = 0;
        int confirmations = 0;
        bool valid = false;
    };

    uarch::Hierarchy::Config config_;
    RefCache l1i_, l1d_, l2_, llc_;
    std::vector<Stream> streams_;
};

/**
 * Textbook TAGE: the pre-PR4 implementation — folded histories that
 * compute `origLength % compLength` on every update, a plain
 * modulo-wrapped global-history ring, and indices/tags re-hashed from
 * scratch wherever needed. Semantically identical to the optimized
 * bpred::TagePredictor for the same geometry.
 */
class RefTage : public bpred::BranchPredictor
{
  public:
    explicit RefTage(size_t budget_bytes, Fault fault = Fault::None);

    std::string name() const override;
    size_t sizeBytes() const override { return budget_bytes_; }
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken, bool predicted) override;
    void reset() override;

  private:
    struct FoldedHistory {
        uint32_t comp = 0;
        int compLength = 0;
        int origLength = 0;

        void
        update(uint32_t newest, uint32_t oldest)
        {
            comp = (comp << 1) | newest;
            comp ^= oldest << (origLength % compLength);
            comp ^= comp >> compLength;
            comp &= (1u << compLength) - 1;
        }
    };

    struct Entry {
        uint16_t tag = 0;
        int8_t ctr = 0;
        uint8_t u = 0;
    };

    uint32_t tableIndex(uint64_t pc, int t) const;
    uint16_t tableTag(uint64_t pc, int t) const;
    void updateHistories(bool taken);

    bpred::TageConfig config_;
    size_t budget_bytes_;
    Fault fault_;

    std::vector<uint8_t> base_;
    std::vector<std::vector<Entry>> tables_;

    std::vector<uint8_t> ghr_;
    int ghr_pos_ = 0;

    std::vector<FoldedHistory> fold_idx_;
    std::vector<FoldedHistory> fold_tag0_;
    std::vector<FoldedHistory> fold_tag1_;

    uint32_t lfsr_ = 0xace1u;
    uint64_t update_count_ = 0;

    int provider_ = -1;
    bool provider_pred_ = false;
    bool alt_pred_ = false;
};

/**
 * Build the reference predictor for a core-model spec: RefTage for
 * plain "tage-<N>KB" specs, otherwise the shared factory (the core
 * differential then still covers scheduling and caches).
 */
std::unique_ptr<bpred::BranchPredictor>
makeRefPredictor(const std::string &spec, Fault fault = Fault::None);

/**
 * Reference OoO core: the pre-PR4 batch replay, verbatim — per-cycle
 * full scan of the reservation station in vector order, a sorted deque
 * of in-flight load completions, per-op class/latency switches — on top
 * of RefHierarchy and makeRefPredictor. Produces the same CoreStats
 * contract as uarch::Core::run and must match it bit for bit.
 */
uarch::CoreStats refCoreRun(const uarch::CoreConfig &config,
                            const std::vector<trace::TraceOp> &trace,
                            Fault fault = Fault::None);

/**
 * Reference energy model for Kind::Core profiles: an independent
 * transcription of the formula documented in backend/profile.hpp, in
 * the SAME evaluation order — IEEE doubles only reproduce bit for bit
 * when the operation order matches, and the energy differential
 * demands bit-identical joules, not approximately-equal ones.
 */
double refEnergyJoules(const backend::MachineProfile &p,
                       const uarch::CoreStats &stats,
                       Fault fault = Fault::None);

/** Reference service seconds for Kind::Fixed profiles. */
double refFixedServiceSeconds(const backend::MachineProfile &p,
                              uint64_t blocks, Fault fault = Fault::None);

/** Reference energy for Kind::Fixed profiles. */
double refFixedEnergyJoules(const backend::MachineProfile &p,
                            uint64_t blocks, Fault fault = Fault::None);

/**
 * Naive O(n^2) upper convex hull over (bitrate, PSNR): a point is kept
 * iff it survives the documented tie/dominance rules and NO chord of
 * two other surviving points passes on or above it — tested with the
 * same exact double cross expression the production monotone chain
 * uses, so on integer-grid inputs the two agree bit for bit. Returns
 * original indices in ascending bitrate order, the
 * ladder::convexHull contract.
 */
std::vector<size_t> refConvexHull(const std::vector<video::RdPoint> &pts,
                                  Fault fault = Fault::None);

/** Naive per-pixel box downscale: clipped box sum, (sum + cnt/2)/cnt.
 *  No kernel table, no interior/edge split — the obviously-correct
 *  transcription of the video::downscalePlane contract. */
video::Plane refDownscalePlane(const video::Plane &src, int factor);

/** Naive per-pixel bilinear upscale replicating the production two-pass
 *  rounding order (vertical blend to 8 bits, then horizontal) with the
 *  tap positions re-derived inline. */
video::Plane refUpscalePlane(const video::Plane &src, int dst_width,
                             int dst_height);

} // namespace vepro::check

#endif // VEPRO_CHECK_ORACLE_HPP
