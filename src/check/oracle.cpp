#include "check/oracle.hpp"

#include <algorithm>
#include <stdexcept>

namespace vepro::check
{

const char *
faultName(Fault fault)
{
    switch (fault) {
      case Fault::None: return "none";
      case Fault::CacheLru: return "cache-lru";
      case Fault::CoreLatency: return "core-latency";
      case Fault::BpredAlloc: return "bpred-alloc";
      case Fault::KernelsSad: return "kernels-sad";
      case Fault::StoreBit: return "store-bit";
      case Fault::ParallelDrop: return "parallel-drop";
      case Fault::BackendEnergy: return "backend-energy";
      case Fault::TraceFileDelta: return "tracefile-delta";
      case Fault::LadderHull: return "ladder-hull";
    }
    return "?";
}

bool
parseFault(const std::string &name, Fault &out)
{
    for (Fault f : {Fault::None, Fault::CacheLru, Fault::CoreLatency,
                    Fault::BpredAlloc, Fault::KernelsSad, Fault::StoreBit,
                    Fault::ParallelDrop, Fault::BackendEnergy,
                    Fault::TraceFileDelta, Fault::LadderHull}) {
        if (name == faultName(f)) {
            out = f;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------
// RefCache / RefHierarchy

RefCache::RefCache(const uarch::CacheConfig &config, Fault fault)
    : config_(config), fault_(fault)
{
    if (config.sizeBytes == 0 || config.ways <= 0 || config.lineBytes <= 0) {
        throw std::invalid_argument("RefCache: bad geometry");
    }
    size_t lines = config.sizeBytes / config.lineBytes;
    num_sets_ = static_cast<int>(lines / config.ways);
    if (num_sets_ == 0) {
        throw std::invalid_argument("RefCache: fewer lines than ways");
    }
    // Same normalisation as uarch::Cache: sets round down to a power of
    // two so indexing is a mask.
    if ((num_sets_ & (num_sets_ - 1)) != 0) {
        int p = 1;
        while (p * 2 <= num_sets_) {
            p *= 2;
        }
        num_sets_ = p;
    }
    lines_.assign(static_cast<size_t>(num_sets_) * config.ways, Line{});
}

RefCache::Line *
RefCache::victimOf(Line *set)
{
    // The documented victim rule: the LAST invalid way in scan order
    // wins; with no invalid way, the first way with the strictly
    // smallest lastUse.
    Line *victim = &set[0];
    bool any_invalid = false;
    for (int w = 0; w < config_.ways; ++w) {
        Line &line = set[w];
        if (!line.valid) {
            victim = &line;
            any_invalid = true;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    if (fault_ == Fault::CacheLru && !any_invalid) {
        // Injected bug: a flipped comparison evicts the MRU way. (Which
        // *invalid* way receives a fill is unobservable — same tag,
        // same recency — so the fault must break the recency order.)
        victim = &set[0];
        for (int w = 1; w < config_.ways; ++w) {
            if (set[w].lastUse > victim->lastUse) {
                victim = &set[w];
            }
        }
    }
    return victim;
}

bool
RefCache::access(uint64_t addr, bool is_write)
{
    ++accesses_;
    ++tick_;
    Line *set = &lines_[setOf(addr) * config_.ways];
    const uint64_t tag = tagOf(addr);
    for (int w = 0; w < config_.ways; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = tick_;
            line.dirty |= is_write;
            return true;
        }
    }
    ++misses_;
    Line *victim = victimOf(set);
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    victim->dirty = is_write;
    return false;
}

void
RefCache::fill(uint64_t addr)
{
    ++tick_;
    Line *set = &lines_[setOf(addr) * config_.ways];
    const uint64_t tag = tagOf(addr);
    for (int w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            return;  // already resident; leave recency untouched
        }
    }
    Line *victim = victimOf(set);
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    victim->dirty = false;
}

void
RefCache::invalidate(uint64_t addr)
{
    Line *set = &lines_[setOf(addr) * config_.ways];
    const uint64_t tag = tagOf(addr);
    for (int w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].valid = false;
            ++invalidations_;
            return;
        }
    }
}

RefHierarchy::RefHierarchy(const uarch::Hierarchy::Config &config,
                           Fault fault)
    : config_(config), l1i_(config.l1i, fault), l1d_(config.l1d, fault),
      l2_(config.l2, fault), llc_(config.llc, fault),
      streams_(static_cast<size_t>(std::max(1, config.prefetch.streams)))
{
}

int
RefHierarchy::dataAccess(uint64_t addr, bool is_write)
{
    if (l1d_.access(addr, is_write)) {
        return config_.l1d.hitLatency;
    }
    if (config_.prefetch.enabled) {
        trainPrefetcher(addr);
    }
    if (l2_.access(addr, is_write)) {
        return config_.l2.hitLatency;
    }
    if (llc_.access(addr, is_write)) {
        return config_.llc.hitLatency;
    }
    return config_.memoryLatency;
}

int
RefHierarchy::instrAccess(uint64_t addr)
{
    if (l1i_.access(addr, false)) {
        return 0;
    }
    if (l2_.access(addr, false)) {
        return config_.l2.hitLatency;
    }
    if (llc_.access(addr, false)) {
        return config_.llc.hitLatency;
    }
    return config_.memoryLatency;
}

void
RefHierarchy::remoteStore(uint64_t addr)
{
    l1d_.invalidate(addr);
    l2_.invalidate(addr);
    llc_.access(addr, true);
}

void
RefHierarchy::trainPrefetcher(uint64_t addr)
{
    const uint64_t region = addr >> 12;
    Stream &s = streams_[static_cast<size_t>(region) % streams_.size()];
    if (!s.valid || s.region != region) {
        s = Stream{region, addr, 0, 0, true};
        return;
    }
    int64_t delta =
        static_cast<int64_t>(addr) - static_cast<int64_t>(s.lastAddr);
    if (delta != 0 && delta == s.stride) {
        if (s.confirmations < 4) {
            ++s.confirmations;
        }
    } else {
        s.stride = delta;
        s.confirmations = 0;
    }
    s.lastAddr = addr;
    if (s.confirmations >= 2 && s.stride != 0) {
        for (int d = 1; d <= config_.prefetch.degree; ++d) {
            l2_.fill(addr + static_cast<uint64_t>(s.stride * d));
        }
    }
}

// ---------------------------------------------------------------------
// RefTage

RefTage::RefTage(size_t budget_bytes, Fault fault)
    : config_(bpred::tageGeometry(budget_bytes)),
      budget_bytes_(budget_bytes), fault_(fault)
{
    const int ntab = static_cast<int>(config_.histLengths.size());
    base_.assign(size_t{1} << config_.baseBits, 2);
    tables_.assign(static_cast<size_t>(ntab),
                   std::vector<Entry>(size_t{1} << config_.tableBits));
    int max_hist = *std::max_element(config_.histLengths.begin(),
                                     config_.histLengths.end());
    ghr_.assign(static_cast<size_t>(max_hist) + 8, 0);

    fold_idx_.resize(static_cast<size_t>(ntab));
    fold_tag0_.resize(static_cast<size_t>(ntab));
    fold_tag1_.resize(static_cast<size_t>(ntab));
    for (int t = 0; t < ntab; ++t) {
        fold_idx_[t].compLength = config_.tableBits;
        fold_idx_[t].origLength = config_.histLengths[t];
        fold_tag0_[t].compLength = config_.tagBits;
        fold_tag0_[t].origLength = config_.histLengths[t];
        fold_tag1_[t].compLength = config_.tagBits - 1;
        fold_tag1_[t].origLength = config_.histLengths[t];
    }
}

std::string
RefTage::name() const
{
    return "ref-tage-" + std::to_string(budget_bytes_ / 1024) + "KB";
}

uint32_t
RefTage::tableIndex(uint64_t pc, int t) const
{
    uint32_t mask = (1u << config_.tableBits) - 1;
    uint64_t p = pc >> 2;
    return static_cast<uint32_t>(
               (p ^ (p >> (config_.tableBits - (t % config_.tableBits))) ^
                fold_idx_[t].comp)) &
           mask;
}

uint16_t
RefTage::tableTag(uint64_t pc, int t) const
{
    uint32_t mask = (1u << config_.tagBits) - 1;
    uint64_t p = pc >> 2;
    return static_cast<uint16_t>(
        (p ^ fold_tag0_[t].comp ^ (fold_tag1_[t].comp << 1)) & mask);
}

bool
RefTage::predict(uint64_t pc)
{
    const int ntab = static_cast<int>(tables_.size());
    provider_ = -1;
    int alt = -1;
    for (int t = ntab - 1; t >= 0; --t) {
        if (tables_[t][tableIndex(pc, t)].tag == tableTag(pc, t)) {
            if (provider_ < 0) {
                provider_ = t;
            } else {
                alt = t;
                break;
            }
        }
    }
    bool base_pred = base_[(pc >> 2) & ((1u << config_.baseBits) - 1)] >= 2;
    alt_pred_ =
        alt >= 0 ? tables_[alt][tableIndex(pc, alt)].ctr >= 0 : base_pred;
    if (provider_ >= 0) {
        provider_pred_ = tables_[provider_][tableIndex(pc, provider_)].ctr >= 0;
        return provider_pred_;
    }
    provider_pred_ = base_pred;
    return base_pred;
}

void
RefTage::updateHistories(bool taken)
{
    // Plain circular buffer: modulo wrap, no power-of-two trickery.
    ghr_[static_cast<size_t>(ghr_pos_)] = taken ? 1 : 0;
    auto bit_at = [&](int age) {
        int idx = ghr_pos_ - age;
        if (idx < 0) {
            idx += static_cast<int>(ghr_.size());
        }
        return static_cast<uint32_t>(ghr_[static_cast<size_t>(idx)]);
    };
    const uint32_t newest = taken ? 1 : 0;
    for (size_t t = 0; t < tables_.size(); ++t) {
        uint32_t oldest = bit_at(config_.histLengths[t]);
        fold_idx_[t].update(newest, oldest);
        fold_tag0_[t].update(newest, oldest);
        fold_tag1_[t].update(newest, oldest);
    }
    ghr_pos_ = (ghr_pos_ + 1) % static_cast<int>(ghr_.size());
}

void
RefTage::update(uint64_t pc, bool taken, bool predicted)
{
    const int ntab = static_cast<int>(tables_.size());
    ++update_count_;

    if (predicted != taken && provider_ < ntab - 1) {
        int start = provider_ + 1;
        // Probabilistic start offset (LFSR), as in the reference TAGE.
        // Fault::BpredAlloc drops the offset — allocation then always
        // begins at provider+1, skewing which table captures a branch.
        lfsr_ =
            (lfsr_ >> 1) ^ (static_cast<uint32_t>(-(lfsr_ & 1u)) & 0xb400u);
        if (fault_ != Fault::BpredAlloc && start < ntab - 1 && (lfsr_ & 1)) {
            ++start;
        }
        bool allocated = false;
        for (int t = start; t < ntab; ++t) {
            Entry &e = tables_[t][tableIndex(pc, t)];
            if (e.u == 0) {
                e.tag = tableTag(pc, t);
                e.ctr = taken ? 0 : -1;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            for (int t = start; t < ntab; ++t) {
                Entry &e = tables_[t][tableIndex(pc, t)];
                if (e.u > 0) {
                    --e.u;
                }
            }
        }
    }

    if (provider_ >= 0) {
        Entry &e = tables_[provider_][tableIndex(pc, provider_)];
        if (taken && e.ctr < 3) {
            ++e.ctr;
        } else if (!taken && e.ctr > -4) {
            --e.ctr;
        }
        if (provider_pred_ != alt_pred_) {
            if (provider_pred_ == taken && e.u < 3) {
                ++e.u;
            } else if (provider_pred_ != taken && e.u > 0) {
                --e.u;
            }
        }
        if (provider_pred_ != taken) {
            uint8_t &b = base_[(pc >> 2) & ((1u << config_.baseBits) - 1)];
            if (taken && b < 3) {
                ++b;
            } else if (!taken && b > 0) {
                --b;
            }
        }
    } else {
        uint8_t &b = base_[(pc >> 2) & ((1u << config_.baseBits) - 1)];
        if (taken && b < 3) {
            ++b;
        } else if (!taken && b > 0) {
            --b;
        }
    }

    if ((update_count_ & ((1u << 18) - 1)) == 0) {
        for (auto &table : tables_) {
            for (Entry &e : table) {
                e.u >>= 1;
            }
        }
    }

    updateHistories(taken);
}

void
RefTage::reset()
{
    std::fill(base_.begin(), base_.end(), 2);
    for (auto &t : tables_) {
        std::fill(t.begin(), t.end(), Entry{});
    }
    std::fill(ghr_.begin(), ghr_.end(), 0);
    ghr_pos_ = 0;
    for (auto &f : fold_idx_) {
        f.comp = 0;
    }
    for (auto &f : fold_tag0_) {
        f.comp = 0;
    }
    for (auto &f : fold_tag1_) {
        f.comp = 0;
    }
    lfsr_ = 0xace1u;
    update_count_ = 0;
    provider_ = -1;
}

std::unique_ptr<bpred::BranchPredictor>
makeRefPredictor(const std::string &spec, Fault fault)
{
    // Only plain "tage-<N>KB" maps to the independent reference model;
    // tage-sc-l and the non-TAGE families share one implementation with
    // the fast path, which the core differential still drives.
    if (spec.rfind("tage-", 0) == 0 && spec.rfind("tage-sc-l", 0) != 0 &&
        spec.size() > 7 && spec.substr(spec.size() - 2) == "KB") {
        const std::string digits = spec.substr(5, spec.size() - 7);
        if (!digits.empty() &&
            digits.find_first_not_of("0123456789") == std::string::npos) {
            return std::make_unique<RefTage>(
                std::stoull(digits) * 1024, fault);
        }
    }
    return bpred::makePredictor(spec);
}

// ---------------------------------------------------------------------
// Backend energy references

double
refEnergyJoules(const backend::MachineProfile &p,
                const uarch::CoreStats &stats, Fault fault)
{
    // An independent transcription of the documented formula, term by
    // term in the documented order (bit-exact doubles demand it). The
    // injected fault swaps the L2 and LLC miss weights — a plausible
    // copy/paste bug a tolerance-based comparison would shrug off
    // whenever the two counters are close.
    const double l2_nj = fault == Fault::BackendEnergy
                             ? p.energy.llcMissNj
                             : p.energy.l2MissNj;
    const double llc_nj = fault == Fault::BackendEnergy
                              ? p.energy.l2MissNj
                              : p.energy.llcMissNj;
    const double nj =
        static_cast<double>(stats.instructions) * p.energy.instructionNj +
        static_cast<double>(stats.l1dMisses + stats.l1iMisses) *
            p.energy.l1MissNj +
        static_cast<double>(stats.l2Misses) * l2_nj +
        static_cast<double>(stats.llcMisses) * llc_nj +
        static_cast<double>(stats.mispredicts) * p.energy.mispredictNj;
    const double dynamic_j = nj * 1e-9;
    const double static_j = p.energy.staticWatts *
                            static_cast<double>(stats.cycles) /
                            (p.clockGhz * 1e9);
    return dynamic_j + static_j;
}

double
refFixedServiceSeconds(const backend::MachineProfile &p, uint64_t blocks,
                       Fault fault)
{
    if (fault == Fault::BackendEnergy) {
        ++blocks;  // One phantom block: the fencepost version of the bug.
    }
    return p.setupSeconds + static_cast<double>(blocks) * p.secondsPerBlock;
}

double
refFixedEnergyJoules(const backend::MachineProfile &p, uint64_t blocks,
                     Fault fault)
{
    if (fault == Fault::BackendEnergy) {
        ++blocks;
    }
    return p.energy.setupJ +
           static_cast<double>(blocks) * p.energy.blockNj * 1e-9;
}

// ---------------------------------------------------------------------
// Ladder: naive hull + naive scalers

std::vector<size_t>
refConvexHull(const std::vector<video::RdPoint> &pts, Fault fault)
{
    // Rule 1+2: candidate order (rate asc, psnr desc, index asc);
    // equal-rate groups keep only their first member.
    std::vector<size_t> order(pts.size());
    for (size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (pts[a].bitrateKbps != pts[b].bitrateKbps) {
            return pts[a].bitrateKbps < pts[b].bitrateKbps;
        }
        if (pts[a].psnrDb != pts[b].psnrDb) {
            return pts[a].psnrDb > pts[b].psnrDb;
        }
        return a < b;
    });
    std::vector<size_t> cand;
    for (size_t i : order) {
        if (!cand.empty() &&
            pts[cand.back()].bitrateKbps == pts[i].bitrateKbps) {
            continue;
        }
        cand.push_back(i);
    }
    // Rule 3: strictly increasing psnr.
    std::vector<size_t> mono;
    for (size_t i : cand) {
        if (mono.empty() || pts[i].psnrDb > pts[mono.back()].psnrDb) {
            mono.push_back(i);
        }
    }
    // Rule 4, exhaustively: keep m iff NO chord (a, b) of two other
    // surviving points straddling it passes on or above m. Same double
    // expression as the production monotone chain, so on integer-grid
    // inputs the arithmetic is exact and the two must agree.
    std::vector<size_t> hull;
    for (size_t mi = 0; mi < mono.size(); ++mi) {
        const video::RdPoint &m = pts[mono[mi]];
        bool keep = true;
        for (size_t ai = 0; ai < mi && keep; ++ai) {
            const video::RdPoint &a = pts[mono[ai]];
            for (size_t bi = mi + 1; bi < mono.size() && keep; ++bi) {
                const video::RdPoint &b = pts[mono[bi]];
                const double cross =
                    (m.psnrDb - a.psnrDb) * (b.bitrateKbps - a.bitrateKbps) -
                    (b.psnrDb - a.psnrDb) * (m.bitrateKbps - a.bitrateKbps);
                const bool cut = fault == Fault::LadderHull ? cross < 0.0
                                                           : cross <= 0.0;
                keep = keep && !cut;
            }
        }
        if (keep) {
            hull.push_back(mono[mi]);
        }
    }
    return hull;
}

video::Plane
refDownscalePlane(const video::Plane &src, int factor)
{
    const int dw = (src.width() + factor - 1) / factor;
    const int dh = (src.height() + factor - 1) / factor;
    video::Plane dst(dw, dh);
    for (int yd = 0; yd < dh; ++yd) {
        for (int xd = 0; xd < dw; ++xd) {
            const int x1 = std::min((xd + 1) * factor, src.width());
            const int y1 = std::min((yd + 1) * factor, src.height());
            uint32_t sum = 0;
            uint32_t cnt = 0;
            for (int y = yd * factor; y < y1; ++y) {
                for (int x = xd * factor; x < x1; ++x) {
                    sum += src.at(x, y);
                    ++cnt;
                }
            }
            dst.set(xd, yd, static_cast<uint8_t>((sum + cnt / 2) / cnt));
        }
    }
    return dst;
}

namespace
{

/** The production tap: source position of output x in 1/64 units,
 *  center-aligned, clamped to the plane. */
void
refTap(int x, int dst_n, int src_n, int &i0, int &w6)
{
    const int64_t s64 =
        (2 * static_cast<int64_t>(x) + 1) * src_n * 32 / dst_n - 32;
    if (s64 < 0) {
        i0 = 0;
        w6 = 0;
        return;
    }
    i0 = static_cast<int>(s64 >> 6);
    w6 = static_cast<int>(s64 & 63);
    if (i0 >= src_n - 1) {
        i0 = src_n - 1;
        w6 = 0;
    }
}

} // namespace

video::Plane
refUpscalePlane(const video::Plane &src, int dst_width, int dst_height)
{
    video::Plane dst(dst_width, dst_height);
    for (int yd = 0; yd < dst_height; ++yd) {
        int yi = 0, yw = 0;
        refTap(yd, dst_height, src.height(), yi, yw);
        const int yi1 = std::min(yi + 1, src.height() - 1);
        for (int xd = 0; xd < dst_width; ++xd) {
            int xi = 0, xw = 0;
            refTap(xd, dst_width, src.width(), xi, xw);
            const int xi1 = std::min(xi + 1, src.width() - 1);
            // Two-pass rounding order, exactly as production: vertical
            // blend to 8 bits first, then horizontal.
            const int a = (src.at(xi, yi) * (64 - yw) +
                           src.at(xi, yi1) * yw + 32) >> 6;
            const int b = (src.at(xi1, yi) * (64 - yw) +
                           src.at(xi1, yi1) * yw + 32) >> 6;
            dst.set(xd, yd, static_cast<uint8_t>(
                                (a * (64 - xw) + b * xw + 32) >> 6));
        }
    }
    return dst;
}

} // namespace vepro::check
