/**
 * @file
 * Reference OoO core: the pre-optimization batch replay, verbatim.
 *
 * This is the simulator as it stood before the hot-path rewrite — a
 * per-cycle full scan of the reservation station in vector order, a
 * sorted deque of in-flight load completions, per-op switch statements
 * for port mapping and latency — kept as the slow, obviously-correct
 * oracle the optimized uarch::Core is fuzzed against. It runs over the
 * reference cache hierarchy and reference predictor so a divergence in
 * any layer surfaces in the CoreStats comparison.
 *
 * Do not "improve" this file for speed; its value is that every rule is
 * written in the most literal form possible.
 */

#include "check/oracle.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace vepro::check
{

using trace::OpClass;
using trace::TraceOp;
using trace::isLoad;
using trace::isStore;

namespace
{

constexpr uint64_t kPending = std::numeric_limits<uint64_t>::max();
constexpr size_t kCompleteRing = 4096;

/** Execution port classes. */
enum class Port : uint8_t { Alu, Mul, Simd, Load, Store, Branch };

Port
portOf(OpClass cls)
{
    switch (cls) {
      case OpClass::Mul:
      case OpClass::Div:
        return Port::Mul;
      case OpClass::Load:
      case OpClass::SimdLoad:
        return Port::Load;
      case OpClass::Store:
      case OpClass::SimdStore:
        return Port::Store;
      case OpClass::BranchCond:
      case OpClass::BranchUncond:
        return Port::Branch;
      case OpClass::SimdAlu:
      case OpClass::SimdMul:
      case OpClass::SseAlu:
        return Port::Simd;
      default:
        return Port::Alu;
    }
}

int
execLatency(OpClass cls, Fault fault)
{
    switch (cls) {
      case OpClass::Mul: return 3;
      // Fault::CoreLatency shaves one cycle off the divider — the kind
      // of off-by-one a latency-table refactor would introduce.
      case OpClass::Div: return fault == Fault::CoreLatency ? 19 : 20;
      case OpClass::SimdMul: return 5;
      default: return 1;
    }
}

struct Uop {
    uint64_t idx = 0;  ///< Global dynamic-op index (foreign ops included).
    OpClass cls = OpClass::Alu;
    uint64_t pc = 0;
    uint64_t addr = 0;
    uint8_t dep1 = 0;
    uint8_t dep2 = 0;
    bool mispred = false;
};

struct RefCore {
    explicit RefCore(const uarch::CoreConfig &cfg,
                     const std::vector<TraceOp> &trace_in, Fault fault_in)
        : config(cfg), fault(fault_in),
          predictor(makeRefPredictor(cfg.predictorSpec, fault_in)),
          mem(cfg.mem, fault_in), trace(trace_in),
          complete(kCompleteRing, 0),
          fetchq_cap(static_cast<size_t>(cfg.width) * 4)
    {
        if (cfg.width < 1 || cfg.robSize < cfg.width) {
            throw std::invalid_argument("RefCore: bad geometry");
        }
        rs.reserve(static_cast<size_t>(cfg.rsSize));
        for (const TraceOp &op : trace) {
            if (!op.foreign) {
                ++n_instr;
            }
        }
    }

    uarch::CoreConfig config;
    Fault fault;
    std::unique_ptr<bpred::BranchPredictor> predictor;
    RefHierarchy mem;
    const std::vector<TraceOp> &trace;
    uarch::CoreStats stats;

    std::vector<uint64_t> complete;
    uint64_t pos = 0;
    uint64_t n_instr = 0;

    // Front end.
    std::deque<Uop> fetchq;
    size_t fetchq_cap;
    uint64_t redirect_until = 0;
    uint64_t icache_until = 0;
    uint64_t last_line = ~0ull;
    bool pending_redirect = false;

    // Back end.
    struct RobEntry {
        uint64_t idx;
        OpClass cls;
        uint64_t addr;
    };
    std::deque<RobEntry> rob;
    struct RsEntry {
        Uop uop;
        uint64_t alloc_cycle;
    };
    std::vector<RsEntry> rs;
    std::deque<uint64_t> load_completes;  // completion times, in-flight loads
    std::deque<uint64_t> store_drains;    // drain times of post-retire stores
    int lb_count = 0;
    int sb_count = 0;  // stores allocated but not drained
    uint64_t sb_drain_time = 0;

    uint64_t cycle = 0;
    uint64_t retired = 0;

    void stepCycle();
    uarch::CoreStats run();
};

void
RefCore::stepCycle()
{
    ++cycle;

    // Release load-buffer entries whose loads completed, and
    // store-buffer entries that drained.
    while (!load_completes.empty() && load_completes.front() <= cycle) {
        load_completes.pop_front();
        --lb_count;
    }
    while (!store_drains.empty() && store_drains.front() <= cycle) {
        store_drains.pop_front();
        --sb_count;
    }

    // ---- Retire (in order, up to width) --------------------------
    int retired_now = 0;
    while (!rob.empty() && retired_now < config.width) {
        const RobEntry &head = rob.front();
        if (complete[head.idx % kCompleteRing] == kPending ||
            complete[head.idx % kCompleteRing] > cycle) {
            break;
        }
        if (isStore(head.cls)) {
            // Senior store: drains to the cache after retirement.
            sb_drain_time = std::max(sb_drain_time + 1, cycle);
            mem.dataAccess(head.addr, true);
            store_drains.push_back(sb_drain_time);
        }
        rob.pop_front();
        ++retired;
        ++retired_now;
    }

    // ---- Issue / execute ----------------------------------------
    int alu_free = config.aluPorts;
    int simd_free = config.simdPorts;
    int mul_free = config.mulPorts;
    int load_free = config.loadPorts;
    int store_free = config.storePorts;
    int branch_free = config.branchPorts;
    for (size_t i = 0; i < rs.size();) {
        RsEntry &e = rs[i];
        if (e.alloc_cycle >= cycle) {
            ++i;
            continue;
        }
        const Uop &u = e.uop;
        // Dependency check via the completion ring.
        bool ready = true;
        for (uint8_t dep : {u.dep1, u.dep2}) {
            if (dep == 0) {
                continue;
            }
            if (u.idx < dep) {
                continue;  // producer precedes the trace window
            }
            uint64_t c = complete[(u.idx - dep) % kCompleteRing];
            if (c == kPending || c > cycle) {
                ready = false;
                break;
            }
        }
        if (!ready) {
            ++i;
            continue;
        }
        int *port = nullptr;
        switch (portOf(u.cls)) {
          case Port::Alu: port = &alu_free; break;
          case Port::Mul: port = &mul_free; break;
          case Port::Simd: port = &simd_free; break;
          case Port::Load: port = &load_free; break;
          case Port::Store: port = &store_free; break;
          case Port::Branch: port = &branch_free; break;
        }
        if (*port <= 0) {
            ++i;
            continue;
        }
        --*port;
        uint64_t done;
        if (isLoad(u.cls)) {
            int lat = mem.dataAccess(u.addr, false);
            done = cycle + static_cast<uint64_t>(lat);
            load_completes.push_back(done);
            std::sort(load_completes.begin(), load_completes.end());
        } else {
            done = cycle + static_cast<uint64_t>(execLatency(u.cls, fault));
        }
        complete[u.idx % kCompleteRing] = done;
        if (u.mispred) {
            redirect_until =
                done + static_cast<uint64_t>(config.mispredictPenalty);
            pending_redirect = false;
        }
        rs[i] = rs.back();
        rs.pop_back();
    }

    // ---- Allocate (width slots; classify every lost slot) -------
    int allocated = 0;
    bool counted_stall = false;
    while (allocated < config.width && !fetchq.empty()) {
        const Uop &u = fetchq.front();
        bool need_lb = isLoad(u.cls);
        bool need_sb = isStore(u.cls);
        bool rob_full = rob.size() >= static_cast<size_t>(config.robSize);
        bool rs_full = rs.size() >= static_cast<size_t>(config.rsSize);
        bool lb_full = need_lb && lb_count >= config.loadBufSize;
        bool sb_full = need_sb && sb_count >= config.storeBufSize;
        if (rob_full || rs_full || lb_full || sb_full) {
            if (!counted_stall) {
                counted_stall = true;
                if (rs_full) {
                    ++stats.stalls.rs;
                } else if (rob_full) {
                    ++stats.stalls.rob;
                } else if (lb_full) {
                    ++stats.stalls.loadBuf;
                } else {
                    ++stats.stalls.storeBuf;
                }
            }
            break;
        }
        complete[u.idx % kCompleteRing] = kPending;
        rob.push_back({u.idx, u.cls, u.addr});
        rs.push_back({u, cycle});
        if (need_lb) {
            ++lb_count;
        }
        if (need_sb) {
            ++sb_count;
        }
        fetchq.pop_front();
        ++allocated;
    }
    // Classify the lost allocation slots of this cycle.
    uint64_t lost = static_cast<uint64_t>(config.width - allocated);
    stats.slots.retiring += static_cast<uint64_t>(allocated);
    if (lost > 0) {
        if (counted_stall) {
            stats.slots.backend += lost;
            // Memory-bound if a load is outstanding past this cycle.
            bool memory_bound =
                !load_completes.empty() && load_completes.back() > cycle;
            if (memory_bound) {
                stats.slots.backendMemory += lost;
            } else {
                stats.slots.backendCore += lost;
            }
        } else if (fetchq.empty() &&
                   (pending_redirect || cycle < redirect_until)) {
            stats.slots.badSpec += lost;
        } else if (fetchq.empty()) {
            stats.slots.frontend += lost;
        } else {
            // Queue non-empty but nothing allocated: treat as backend
            // (structural), already counted above when counted_stall.
            stats.slots.backend += lost;
            stats.slots.backendCore += lost;
        }
    }

    // ---- Fetch ---------------------------------------------------
    const uint64_t end = trace.size();
    if (!pending_redirect && cycle >= redirect_until &&
        cycle >= icache_until) {
        int fetched = 0;
        while (fetched < config.width && fetchq.size() < fetchq_cap &&
               pos < end) {
            // Foreign stores: coherence traffic, no pipeline slots.
            while (pos < end && trace[pos].foreign) {
                mem.remoteStore(trace[pos].addr);
                ++pos;
            }
            if (pos >= end) {
                break;
            }
            const TraceOp &top = trace[pos];
            uint64_t line = top.pc >> 6;
            if (line != last_line) {
                last_line = line;
                int extra = mem.instrAccess(top.pc);
                if (extra > 0) {
                    icache_until = cycle + static_cast<uint64_t>(extra);
                    break;
                }
            }
            Uop u;
            u.idx = pos;
            u.cls = top.cls;
            u.pc = top.pc;
            u.addr = top.addr;
            u.dep1 = top.dep1;
            u.dep2 = top.dep2;
            bool stop_fetch = false;
            if (top.cls == OpClass::BranchCond) {
                bool pred = predictor->predict(top.pc);
                predictor->update(top.pc, top.taken, pred);
                ++stats.condBranches;
                if (pred != top.taken) {
                    ++stats.mispredicts;
                    u.mispred = true;
                    pending_redirect = true;
                    stop_fetch = true;
                } else if (top.taken) {
                    stop_fetch = true;  // taken-branch fetch bubble
                }
            } else if (top.cls == OpClass::BranchUncond) {
                stop_fetch = true;
            }
            fetchq.push_back(u);
            ++pos;
            ++fetched;
            if (stop_fetch) {
                if (config.takenBranchBubble > 0 && !u.mispred) {
                    icache_until = std::max(
                        icache_until,
                        cycle +
                            static_cast<uint64_t>(config.takenBranchBubble));
                }
                break;
            }
        }
    }

    // Consume trailing foreign ops so the run terminates even when
    // the trace ends with them.
    while (pos < end && trace[pos].foreign && fetchq.empty() &&
           rob.empty()) {
        mem.remoteStore(trace[pos].addr);
        ++pos;
    }
}

uarch::CoreStats
RefCore::run()
{
    while (retired < n_instr) {
        stepCycle();
    }
    stats.cycles = cycle;
    stats.instructions = n_instr;
    stats.l1iMisses = mem.l1i().misses();
    stats.l1dAccesses = mem.l1d().accesses();
    stats.l1dMisses = mem.l1d().misses();
    stats.l2Misses = mem.l2().misses();
    stats.llcMisses = mem.llc().misses();
    stats.invalidations =
        mem.l1d().invalidations() + mem.l2().invalidations();
    return stats;
}

} // namespace

uarch::CoreStats
refCoreRun(const uarch::CoreConfig &config,
           const std::vector<trace::TraceOp> &trace, Fault fault)
{
    RefCore core(config, trace, fault);
    return core.run();
}

} // namespace vepro::check
