/**
 * @file
 * `vepro-check` — differential fuzz driver for the optimized simulator:
 *
 *   vepro-check [--target=core|cache|bpred|kernels|store|parallel|energy|
 *                         tracefile|ladder|all]
 *               [--iters=N] [--seed=N] [--quick] [--no-shrink]
 *               [--corpus=DIR] [--case=FILE] [--inject=FAULT]
 *               [--repro-out=FILE]
 *
 * Runs the seeded property-fuzz harness (check::Fuzzer) that replays
 * randomized adversarial inputs through both the optimized hot paths
 * and the slow reference oracles, demanding bit-identical results. On a
 * divergence it prints the field-level mismatch, the ddmin-shrunk
 * failing input size, and a one-command repro, then exits 1.
 *
 * `--seed=N` (with `--target=<t>`) replays exactly one case — the repro
 * path. `--corpus=DIR` replays every *.case seed file first (CI runs
 * the checked-in corpus before fresh fuzzing). `--inject=<fault>`
 * deliberately breaks one reference rule; the run then MUST fail,
 * which is how the harness proves its own sensitivity.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "check/fuzzer.hpp"

namespace
{

using namespace vepro;

[[noreturn]] void
usage(const std::string &error)
{
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::fprintf(
        stderr,
        "usage: vepro-check "
        "[--target=core|cache|bpred|kernels|store|parallel|energy|"
        "tracefile|ladder|all]\n"
        "                   [--iters=N] [--seed=N] [--quick] [--no-shrink]\n"
        "                   [--corpus=DIR] [--case=FILE] [--inject=FAULT]\n"
        "                   [--repro-out=FILE]\n"
        "faults: none cache-lru core-latency bpred-alloc kernels-sad "
        "store-bit parallel-drop backend-energy tracefile-delta "
        "ladder-hull\n");
    std::exit(2);
}

uint64_t
parseU64(const std::string &text, const char *flag)
{
    try {
        size_t used = 0;
        const uint64_t v = std::stoull(text, &used);
        if (used != text.size()) {
            throw std::invalid_argument("trailing junk");
        }
        return v;
    } catch (const std::exception &) {
        usage(std::string(flag) + ": bad number '" + text + "'");
    }
}

void
printDivergences(const check::FuzzReport &report)
{
    for (const check::Divergence &d : report.divergences) {
        std::fprintf(stderr, "DIVERGENCE [%s seed=%llu]\n  %s\n  repro: %s\n",
                     check::targetName(d.target),
                     static_cast<unsigned long long>(d.seed),
                     d.detail.c_str(), d.repro.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    check::FuzzOptions options;
    std::string target_arg = "all";
    std::string corpus_dir;
    std::string case_file;
    std::string repro_out;
    bool seed_given = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--target=", 0) == 0) {
            target_arg = arg.substr(9);
        } else if (arg.rfind("--iters=", 0) == 0) {
            options.iters =
                static_cast<int>(parseU64(arg.substr(8), "--iters"));
        } else if (arg.rfind("--seed=", 0) == 0) {
            options.baseSeed = parseU64(arg.substr(7), "--seed");
            seed_given = true;
        } else if (arg == "--quick") {
            options.quick = true;
        } else if (arg == "--no-shrink") {
            options.shrink = false;
        } else if (arg.rfind("--corpus=", 0) == 0) {
            corpus_dir = arg.substr(9);
        } else if (arg.rfind("--case=", 0) == 0) {
            case_file = arg.substr(7);
        } else if (arg.rfind("--inject=", 0) == 0) {
            if (!check::parseFault(arg.substr(9), options.inject)) {
                usage("unknown fault '" + arg.substr(9) + "'");
            }
        } else if (arg.rfind("--repro-out=", 0) == 0) {
            repro_out = arg.substr(12);
        } else {
            usage("unknown flag '" + arg + "'");
        }
    }

    check::Target target = check::Target::Core;
    const bool all_targets = target_arg == "all";
    if (!all_targets && !check::parseTarget(target_arg, target)) {
        usage("unknown target '" + target_arg + "'");
    }

    check::Fuzzer fuzzer(options);
    check::FuzzReport report;

    if (!case_file.empty()) {
        check::CorpusCase c;
        std::string err;
        if (!check::loadCorpusCase(case_file, c, err)) {
            usage(err);
        }
        ++report.cases;
        check::Divergence d;
        if (fuzzer.runCase(c.target, c.seed, d)) {
            report.divergences.push_back(d);
        }
    } else if (seed_given && !all_targets && options.iters == 0) {
        // Repro mode: exactly the one printed case.
        ++report.cases;
        check::Divergence d;
        if (fuzzer.runCase(target, options.baseSeed, d)) {
            report.divergences.push_back(d);
        }
    } else {
        if (!corpus_dir.empty()) {
            check::FuzzReport corpus = fuzzer.runCorpus(corpus_dir);
            std::printf("corpus: %llu cases, %zu divergences\n",
                        static_cast<unsigned long long>(corpus.cases),
                        corpus.divergences.size());
            report.cases += corpus.cases;
            for (auto &d : corpus.divergences) {
                report.divergences.push_back(std::move(d));
            }
        }
        if (all_targets) {
            for (check::Target t : check::allTargets()) {
                check::FuzzReport r = fuzzer.run(t);
                std::printf("%-8s %3d cases, %zu divergences\n",
                            check::targetName(t), fuzzer.itersFor(t),
                            r.divergences.size());
                report.cases += r.cases;
                for (auto &d : r.divergences) {
                    report.divergences.push_back(std::move(d));
                }
            }
        } else {
            check::FuzzReport r = fuzzer.run(target);
            std::printf("%-8s %3d cases, %zu divergences\n",
                        check::targetName(target), fuzzer.itersFor(target),
                        r.divergences.size());
            report.cases += r.cases;
            for (auto &d : r.divergences) {
                report.divergences.push_back(std::move(d));
            }
        }
    }

    printDivergences(report);
    if (!repro_out.empty() && !report.divergences.empty()) {
        std::ofstream out(repro_out, std::ios::trunc);
        for (const check::Divergence &d : report.divergences) {
            out << d.repro << "\n  # " << d.detail << "\n";
        }
    }

    if (!report.divergences.empty()) {
        std::fprintf(stderr, "vepro-check: FAILED (%zu divergences in %llu "
                             "cases)\n",
                     report.divergences.size(),
                     static_cast<unsigned long long>(report.cases));
        return 1;
    }
    std::printf("vepro-check: OK (%llu cases, 0 divergences)\n",
                static_cast<unsigned long long>(report.cases));
    return 0;
}
