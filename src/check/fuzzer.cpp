#include "check/fuzzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>

#include "bpred/runner.hpp"
#include "codec/kernels.hpp"
#include "codec/transform.hpp"
#include "core/rng.hpp"
#include "lab/json.hpp"
#include "lab/store.hpp"
#include "ladder/ladder.hpp"
#include "trace/pipeline.hpp"
#include "trace/synth.hpp"
#include "trace/trace_io.hpp"
#include "uarch/cache.hpp"
#include "uarch/core.hpp"
#include "uarch/segment.hpp"
#include "video/scale.hpp"

namespace fs = std::filesystem;

namespace vepro::check
{

using core::SplitMix64;
using trace::TraceOp;

const std::vector<Target> &
allTargets()
{
    static const std::vector<Target> kAll = {
        Target::Core,  Target::Cache,    Target::Bpred,  Target::Kernels,
        Target::Store, Target::Parallel, Target::Energy, Target::TraceFile,
        Target::Ladder};
    return kAll;
}

const char *
targetName(Target target)
{
    switch (target) {
      case Target::Core: return "core";
      case Target::Cache: return "cache";
      case Target::Bpred: return "bpred";
      case Target::Kernels: return "kernels";
      case Target::Store: return "store";
      case Target::Parallel: return "parallel";
      case Target::Energy: return "energy";
      case Target::TraceFile: return "tracefile";
      case Target::Ladder: return "ladder";
    }
    return "?";
}

bool
parseTarget(const std::string &name, Target &out)
{
    for (Target t : allTargets()) {
        if (name == targetName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

std::string
Fuzzer::reproCommand(Target target, uint64_t seed, Fault inject, bool quick)
{
    std::ostringstream cmd;
    cmd << "vepro-check --target=" << targetName(target)
        << " --seed=" << seed;
    if (quick) {
        cmd << " --quick";
    }
    if (inject != Fault::None) {
        cmd << " --inject=" << faultName(inject);
    }
    return cmd.str();
}

bool
loadCorpusCase(const std::string &path, CorpusCase &out, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    bool have_target = false, have_seed = false;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        const size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#') {
            continue;
        }
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            err = path + ": expected key=value, got '" + line + "'";
            return false;
        }
        const std::string key = line.substr(first, eq - first);
        const std::string value = line.substr(eq + 1);
        if (key == "target") {
            if (!parseTarget(value, out.target)) {
                err = path + ": unknown target '" + value + "'";
                return false;
            }
            have_target = true;
        } else if (key == "seed") {
            try {
                out.seed = std::stoull(value);
            } catch (const std::exception &) {
                err = path + ": bad seed '" + value + "'";
                return false;
            }
            have_seed = true;
        } else {
            err = path + ": unknown key '" + key + "'";
            return false;
        }
    }
    if (!have_target || !have_seed) {
        err = path + ": needs both target= and seed= lines";
        return false;
    }
    return true;
}

std::vector<std::string>
listCorpus(const std::string &dir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".case") {
            paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

namespace
{

// ---------------------------------------------------------------------
// Shrinking: ddmin-lite. Repeatedly delete chunks (halving the chunk
// size when stuck) while the predicate keeps failing. Bounded by a
// predicate-evaluation budget so shrinking a slow reproduction cannot
// stall the harness.

template <typename T, typename Pred>
std::vector<T>
ddminShrink(std::vector<T> input, const Pred &still_fails, int max_evals)
{
    std::vector<T> cur = std::move(input);
    int evals = 0;
    size_t chunk = cur.size() / 2;
    while (chunk >= 1 && evals < max_evals) {
        bool removed = false;
        for (size_t start = 0; start + chunk <= cur.size() &&
                               evals < max_evals;) {
            std::vector<T> candidate;
            candidate.reserve(cur.size() - chunk);
            candidate.insert(candidate.end(), cur.begin(),
                             cur.begin() + static_cast<ptrdiff_t>(start));
            candidate.insert(candidate.end(),
                             cur.begin() +
                                 static_cast<ptrdiff_t>(start + chunk),
                             cur.end());
            ++evals;
            if (still_fails(candidate)) {
                cur = std::move(candidate);
                removed = true;
            } else {
                start += chunk;
            }
        }
        if (!removed) {
            if (chunk == 1) {
                break;
            }
        }
        chunk = std::max<size_t>(1, chunk / 2);
        if (chunk > cur.size()) {
            chunk = std::max<size_t>(1, cur.size() / 2);
        }
    }
    return cur;
}

// ---------------------------------------------------------------------
// Core target

uarch::CoreConfig
randomCoreConfig(SplitMix64 &rng)
{
    // 1-in-4 cases run a REGISTRY profile's exact geometry instead of a
    // random draw, so the differential keeps covering the machines the
    // fleet sweep actually buys (backend/profile.cpp) as the registry
    // grows.
    if (rng.chance(1, 4)) {
        const auto &names = backend::profileNames();
        const backend::MachineProfile &prof =
            backend::profile(names[rng.below(names.size())]);
        if (prof.kind == backend::Kind::Core) {
            return prof.core;
        }
    }
    uarch::CoreConfig cfg;
    cfg.width = static_cast<int>(rng.range(1, 6));
    cfg.robSize = std::max(
        cfg.width, static_cast<int>(rng.range(8, 224)));
    // The fast core's wakeup bitmask covers 256 RS entries.
    cfg.rsSize = static_cast<int>(rng.range(4, 256));
    cfg.loadBufSize = static_cast<int>(rng.range(2, 80));
    cfg.storeBufSize = static_cast<int>(rng.range(2, 48));
    cfg.aluPorts = static_cast<int>(rng.range(1, 4));
    cfg.simdPorts = static_cast<int>(rng.range(1, 3));
    cfg.mulPorts = static_cast<int>(rng.range(1, 2));
    cfg.loadPorts = static_cast<int>(rng.range(1, 3));
    cfg.storePorts = static_cast<int>(rng.range(1, 2));
    cfg.branchPorts = static_cast<int>(rng.range(1, 2));
    cfg.mispredictPenalty = static_cast<int>(rng.range(5, 20));
    cfg.takenBranchBubble = static_cast<int>(rng.range(0, 2));

    static const char *const kSpecs[] = {
        "tage-8KB",      "tage-64KB",     "gshare-32KB", "bimodal-4KB",
        "perceptron-8KB", "tournament-16KB"};
    cfg.predictorSpec = kSpecs[rng.below(6)];

    // 650 pushes load completions past the fast core's 512-entry
    // calendar ring, forcing the wrap/re-file path.
    static const int kMemLat[] = {60, 180, 650};
    cfg.mem.memoryLatency = kMemLat[rng.below(3)];
    cfg.mem.prefetch.enabled = rng.chance(1, 3);
    if (rng.chance(1, 2)) {
        // Shrink the hierarchy so the trace actually misses.
        cfg.mem.l1d.sizeBytes = size_t{4096} << rng.below(3);
        cfg.mem.l1d.ways = 1 << rng.below(4);
        cfg.mem.l2.sizeBytes = size_t{32 * 1024} << rng.below(3);
        cfg.mem.llc.sizeBytes = size_t{256 * 1024} << rng.below(3);
        cfg.mem.llc.ways = static_cast<int>(rng.range(2, 20));
    }
    return cfg;
}

/** All CoreStats counters as (name, value), for field-wise diffing. */
std::vector<std::pair<const char *, uint64_t>>
statFields(const uarch::CoreStats &s)
{
    return {
        {"cycles", s.cycles},
        {"instructions", s.instructions},
        {"slots.retiring", s.slots.retiring},
        {"slots.badSpec", s.slots.badSpec},
        {"slots.frontend", s.slots.frontend},
        {"slots.backend", s.slots.backend},
        {"slots.backendMemory", s.slots.backendMemory},
        {"slots.backendCore", s.slots.backendCore},
        {"stalls.rs", s.stalls.rs},
        {"stalls.rob", s.stalls.rob},
        {"stalls.loadBuf", s.stalls.loadBuf},
        {"stalls.storeBuf", s.stalls.storeBuf},
        {"condBranches", s.condBranches},
        {"mispredicts", s.mispredicts},
        {"l1iMisses", s.l1iMisses},
        {"l1dAccesses", s.l1dAccesses},
        {"l1dMisses", s.l1dMisses},
        {"l2Misses", s.l2Misses},
        {"llcMisses", s.llcMisses},
        {"invalidations", s.invalidations},
    };
}

/** Diff two stats; empty string when bit-identical. */
std::string
diffStats(const uarch::CoreStats &ref, const uarch::CoreStats &fast)
{
    const auto rf = statFields(ref);
    const auto ff = statFields(fast);
    std::ostringstream out;
    for (size_t i = 0; i < rf.size(); ++i) {
        if (rf[i].second != ff[i].second) {
            if (out.tellp() > 0) {
                out << ", ";
            }
            out << rf[i].first << " ref=" << rf[i].second
                << " fast=" << ff[i].second;
        }
    }
    return out.str();
}

/**
 * Run the optimized core. Chunked delivery exercises the streaming
 * backlog path; chunk boundaries come from the seed, so batch and
 * streamed runs are both covered across cases.
 */
uarch::CoreStats
fastCoreRun(const uarch::CoreConfig &cfg, const std::vector<TraceOp> &trace,
            SplitMix64 &rng)
{
    if (rng.chance(1, 2)) {
        return uarch::Core(cfg).run(trace);
    }
    uarch::StreamCore sim(cfg);
    size_t pos = 0;
    while (pos < trace.size()) {
        size_t n = std::min<size_t>(trace.size() - pos,
                                    rng.range(1, 8192));
        sim.onOps(trace.data() + pos, n);
        pos += n;
    }
    sim.flush();
    return sim.stats();
}

// ---------------------------------------------------------------------
// Cache target

struct CacheEvent {
    enum Kind : uint8_t { DataLoad, DataStore, Instr, Remote };
    Kind kind = DataLoad;
    uint64_t addr = 0;
};

uarch::Hierarchy::Config
randomHierarchyConfig(SplitMix64 &rng)
{
    uarch::Hierarchy::Config cfg;
    // The fast cache indexes with shifts: lineBytes must be a power of
    // two. Non-power-of-two way counts and set counts are fair game and
    // exercise the sets-round-down normalisation.
    const int line = 32 << rng.below(3);
    auto level = [&](uarch::CacheConfig &c, uint64_t min_sets,
                     uint64_t max_sets, int max_ways) {
        c.lineBytes = line;
        c.ways = static_cast<int>(rng.range(1, static_cast<uint64_t>(max_ways)));
        uint64_t sets = rng.range(min_sets, max_sets);
        c.sizeBytes = static_cast<size_t>(sets) *
                      static_cast<size_t>(c.ways) *
                      static_cast<size_t>(line);
    };
    level(cfg.l1i, 1, 64, 8);
    level(cfg.l1d, 1, 64, 8);
    level(cfg.l2, 4, 512, 12);
    level(cfg.llc, 16, 4096, 20);
    cfg.l1d.hitLatency = static_cast<int>(rng.range(1, 5));
    cfg.l2.hitLatency = static_cast<int>(rng.range(6, 20));
    cfg.llc.hitLatency = static_cast<int>(rng.range(21, 60));
    cfg.memoryLatency = static_cast<int>(rng.range(61, 400));
    cfg.prefetch.enabled = rng.chance(1, 2);
    cfg.prefetch.streams = static_cast<int>(rng.range(1, 16));
    cfg.prefetch.degree = static_cast<int>(rng.range(1, 4));
    return cfg;
}

std::vector<CacheEvent>
randomCacheEvents(SplitMix64 &rng, uint64_t n)
{
    std::vector<CacheEvent> events;
    events.reserve(n);
    // A small pool of hot lines plus strided walkers; segments switch
    // between reuse, streaming, set-conflict, and random modes.
    std::vector<uint64_t> hot;
    for (int i = 0; i < 16; ++i) {
        hot.push_back(rng.next() & 0xffff'ffffull);
    }
    while (events.size() < n) {
        const uint64_t seg = rng.range(8, 256);
        const uint64_t mode = rng.below(4);
        uint64_t base = rng.next() & 0xffff'ffffull;
        const uint64_t stride =
            (mode == 2) ? 4096 : (uint64_t{16} << rng.below(8));
        for (uint64_t i = 0; i < seg && events.size() < n; ++i) {
            CacheEvent e;
            const uint64_t k = rng.below(16);
            e.kind = k < 7    ? CacheEvent::DataLoad
                     : k < 11 ? CacheEvent::DataStore
                     : k < 14 ? CacheEvent::Instr
                              : CacheEvent::Remote;
            switch (mode) {
              case 0:  // hot-set reuse
                e.addr = hot[rng.below(hot.size())] + rng.below(64);
                break;
              case 1:  // streaming / strided (trains the prefetcher)
              case 2:  // 4 KiB stride: classic set-conflict ladder
                e.addr = base;
                base += stride;
                break;
              default:  // scattered
                e.addr = rng.next() & 0x3f'ffff'ffffull;
                break;
            }
            events.push_back(e);
        }
    }
    return events;
}

/**
 * Replay @p events on both hierarchies; returns the index of the first
 * latency mismatch (or SIZE_MAX), with the mismatching latencies.
 */
size_t
replayCacheEvents(const std::vector<CacheEvent> &events,
                  uarch::Hierarchy &fast, RefHierarchy &ref, int &lat_ref,
                  int &lat_fast)
{
    for (size_t i = 0; i < events.size(); ++i) {
        const CacheEvent &e = events[i];
        int lr = 0, lf = 0;
        switch (e.kind) {
          case CacheEvent::DataLoad:
            lr = ref.dataAccess(e.addr, false);
            lf = fast.dataAccess(e.addr, false);
            break;
          case CacheEvent::DataStore:
            lr = ref.dataAccess(e.addr, true);
            lf = fast.dataAccess(e.addr, true);
            break;
          case CacheEvent::Instr:
            lr = ref.instrAccess(e.addr);
            lf = fast.instrAccess(e.addr);
            break;
          case CacheEvent::Remote:
            ref.remoteStore(e.addr);
            fast.remoteStore(e.addr);
            break;
        }
        if (lr != lf) {
            lat_ref = lr;
            lat_fast = lf;
            return i;
        }
    }
    return SIZE_MAX;
}

std::string
diffCacheCounters(const RefHierarchy &ref, const uarch::Hierarchy &fast)
{
    struct Row {
        const char *name;
        uint64_t ref_v, fast_v;
    };
    const Row rows[] = {
        {"l1i.accesses", ref.l1i().accesses(), fast.l1i().accesses()},
        {"l1i.misses", ref.l1i().misses(), fast.l1i().misses()},
        {"l1d.accesses", ref.l1d().accesses(), fast.l1d().accesses()},
        {"l1d.misses", ref.l1d().misses(), fast.l1d().misses()},
        {"l1d.invalidations", ref.l1d().invalidations(),
         fast.l1d().invalidations()},
        {"l2.accesses", ref.l2().accesses(), fast.l2().accesses()},
        {"l2.misses", ref.l2().misses(), fast.l2().misses()},
        {"l2.invalidations", ref.l2().invalidations(),
         fast.l2().invalidations()},
        {"llc.accesses", ref.llc().accesses(), fast.llc().accesses()},
        {"llc.misses", ref.llc().misses(), fast.llc().misses()},
    };
    std::ostringstream out;
    for (const Row &r : rows) {
        if (r.ref_v != r.fast_v) {
            if (out.tellp() > 0) {
                out << ", ";
            }
            out << r.name << " ref=" << r.ref_v << " fast=" << r.fast_v;
        }
    }
    return out.str();
}

// ---------------------------------------------------------------------
// Store target helpers

uint64_t
bitsOf(double d)
{
    uint64_t u;
    std::memcpy(&u, &d, sizeof u);
    return u;
}

double
adversarialDouble(SplitMix64 &rng)
{
    switch (rng.below(10)) {
      case 0: return 0.0;
      case 1: return -0.0;
      case 2: return std::numeric_limits<double>::denorm_min();
      case 3: return -std::numeric_limits<double>::denorm_min();
      case 4: return std::numeric_limits<double>::max();
      case 5: return std::numeric_limits<double>::min();
      case 6: return 1.0 / 3.0;
      case 7: return -1.7976931348623157e308;
      case 8: return std::nextafter(1.0, 2.0);
      default: {
        // Random finite bit pattern.
        for (;;) {
            uint64_t u = rng.next();
            double d;
            std::memcpy(&d, &u, sizeof d);
            if (std::isfinite(d)) {
                return d;
            }
        }
      }
    }
}

std::string
randomString(SplitMix64 &rng)
{
    static const char kChars[] =
        "abcXYZ019 _-./\\\"';=\t\n{}[]<>%$#@!\xc3\xa9";  // incl. UTF-8 é
    const uint64_t len = rng.below(25);  // 0 = empty string
    std::string s;
    for (uint64_t i = 0; i < len; ++i) {
        s += kChars[rng.below(sizeof kChars - 1)];
    }
    return s;
}

lab::JobSpec
randomJobSpec(SplitMix64 &rng)
{
    lab::JobSpec spec;
    spec.encoder = randomString(rng);
    spec.video = randomString(rng);
    spec.crf = static_cast<int>(rng.next());
    spec.preset = static_cast<int>(rng.next());
    spec.threads = static_cast<int>(rng.range(1, 64));
    spec.divisor = static_cast<int>(rng.range(1, 16));
    spec.frames = static_cast<int>(rng.range(1, 600));
    spec.maxTraceOps = rng.chance(1, 4) ? rng.next() : rng.below(1u << 24);
    return spec;
}

lab::JobResult
randomJobResult(SplitMix64 &rng)
{
    lab::JobResult r;
    r.encode.wallSeconds = adversarialDouble(rng);
    r.encode.instructions = rng.chance(1, 8)
                                ? std::numeric_limits<uint64_t>::max()
                                : rng.next() >> rng.below(40);
    r.encode.bitrateKbps = adversarialDouble(rng);
    r.encode.psnrDb = adversarialDouble(rng);
    r.encode.droppedOps = rng.below(1u << 30);
    r.jobSeconds = adversarialDouble(rng);
    r.core.cycles = rng.next() >> rng.below(40);
    r.core.instructions = rng.next() >> rng.below(40);
    r.core.slots.retiring = rng.next() >> 20;
    r.core.slots.badSpec = rng.next() >> 30;
    r.core.slots.frontend = rng.next() >> 30;
    r.core.slots.backend = rng.next() >> 30;
    r.core.slots.backendMemory = rng.next() >> 32;
    r.core.slots.backendCore = rng.next() >> 32;
    r.core.stalls.rs = rng.next() >> 32;
    r.core.stalls.rob = rng.next() >> 32;
    r.core.stalls.loadBuf = rng.next() >> 32;
    r.core.stalls.storeBuf = rng.next() >> 32;
    r.core.condBranches = rng.next() >> 24;
    r.core.mispredicts = rng.next() >> 32;
    r.core.l1iMisses = rng.next() >> 32;
    r.core.l1dAccesses = rng.next() >> 24;
    r.core.l1dMisses = rng.next() >> 28;
    r.core.l2Misses = rng.next() >> 30;
    r.core.llcMisses = rng.next() >> 32;
    r.core.invalidations = rng.next() >> 32;
    return r;
}

/** Field-wise comparison, doubles by bit pattern; empty = identical. */
std::string
diffJobResult(const lab::JobResult &want, const lab::JobResult &got)
{
    std::ostringstream out;
    auto chk_u64 = [&](const char *name, uint64_t w, uint64_t g) {
        if (w != g) {
            if (out.tellp() > 0) {
                out << ", ";
            }
            out << name << " want=" << w << " got=" << g;
        }
    };
    auto chk_dbl = [&](const char *name, double w, double g) {
        if (bitsOf(w) != bitsOf(g)) {
            if (out.tellp() > 0) {
                out << ", ";
            }
            char wb[32], gb[32];
            std::snprintf(wb, sizeof wb, "%.17g", w);
            std::snprintf(gb, sizeof gb, "%.17g", g);
            out << name << " want=" << wb << " (0x" << std::hex
                << bitsOf(w) << ") got=" << gb << " (0x" << bitsOf(g)
                << std::dec << ")";
        }
    };
    chk_dbl("encode.wallSeconds", want.encode.wallSeconds,
            got.encode.wallSeconds);
    chk_u64("encode.instructions", want.encode.instructions,
            got.encode.instructions);
    chk_dbl("encode.bitrateKbps", want.encode.bitrateKbps,
            got.encode.bitrateKbps);
    chk_dbl("encode.psnrDb", want.encode.psnrDb, got.encode.psnrDb);
    chk_u64("encode.droppedOps", want.encode.droppedOps,
            got.encode.droppedOps);
    chk_dbl("jobSeconds", want.jobSeconds, got.jobSeconds);
    const auto wf = statFields(want.core);
    const auto gf = statFields(got.core);
    for (size_t i = 0; i < wf.size(); ++i) {
        chk_u64(wf[i].first, wf[i].second, gf[i].second);
    }
    return out.str();
}

// ---------------------------------------------------------------------
// Parallel target helpers

/**
 * Deterministically interleaved op/branch/kernel stream: the same
 * @p chunk_seed produces the identical record sequence (including chunk
 * boundaries) on every call, so the sequential reference and the
 * parallel runs under test consume exactly the same stream. The
 * ParallelDrop fault withholds the final branch record, which the
 * pipeline differential must flag as a predictor-count mismatch.
 */
void
replayInterleaved(trace::TraceSink &sink, uint64_t chunk_seed,
                  const std::vector<TraceOp> &ops,
                  const std::vector<trace::BranchRecord> &branches,
                  bool drop_last_branch)
{
    SplitMix64 rng(chunk_seed);
    const size_t br_end =
        branches.size() - (drop_last_branch && !branches.empty() ? 1 : 0);
    size_t op_pos = 0, br_pos = 0;
    while (op_pos < ops.size() || br_pos < br_end) {
        const bool do_ops =
            op_pos < ops.size() && (br_pos >= br_end || !rng.chance(1, 3));
        if (do_ops) {
            const size_t n = std::min<size_t>(ops.size() - op_pos,
                                              rng.range(1, 6000));
            sink.onOps(ops.data() + op_pos, n);
            op_pos += n;
        } else {
            const size_t n = std::min<size_t>(br_end - br_pos,
                                              rng.range(1, 512));
            for (size_t i = 0; i < n; ++i) {
                sink.onBranch(branches[br_pos + i]);
            }
            br_pos += n;
        }
        if (rng.chance(1, 16)) {
            sink.onKernel(0x4000 + rng.below(8) * 0x100);
        }
    }
    sink.flush();
}

/** Diff two cache-sink views (instructions + hierarchy counters). */
std::string
diffCacheSinks(const uarch::CacheSink &ref, const uarch::CacheSink &par)
{
    struct Row {
        const char *name;
        uint64_t ref_v, par_v;
    };
    const uarch::Hierarchy &r = ref.hierarchy();
    const uarch::Hierarchy &p = par.hierarchy();
    const Row rows[] = {
        {"instructions", ref.instructions(), par.instructions()},
        {"l1i.accesses", r.l1i().accesses(), p.l1i().accesses()},
        {"l1i.misses", r.l1i().misses(), p.l1i().misses()},
        {"l1d.accesses", r.l1d().accesses(), p.l1d().accesses()},
        {"l1d.misses", r.l1d().misses(), p.l1d().misses()},
        {"l2.misses", r.l2().misses(), p.l2().misses()},
        {"llc.misses", r.llc().misses(), p.llc().misses()},
    };
    std::ostringstream out;
    for (const Row &row : rows) {
        if (row.ref_v != row.par_v) {
            if (out.tellp() > 0) {
                out << ", ";
            }
            out << row.name << " seq=" << row.ref_v
                << " pipe=" << row.par_v;
        }
    }
    return out.str();
}

} // namespace

// ---------------------------------------------------------------------
// Per-target cases

bool
Fuzzer::runCoreCase(uint64_t seed, Divergence &out)
{
    SplitMix64 rng(seed);
    const uarch::CoreConfig cfg = randomCoreConfig(rng);
    uint64_t max_ops = options_.quick ? rng.range(2'000, 12'000)
                                      : rng.range(2'000, 60'000);
    if (rng.chance(1, 8)) {
        max_ops = rng.below(81);  // tiny traces: boundary behaviour
    }
    const std::vector<TraceOp> trace = trace::synthFuzzTrace(rng.fork(),
                                                             max_ops);

    const uarch::CoreStats ref = refCoreRun(cfg, trace, options_.inject);
    const uarch::CoreStats fast = fastCoreRun(cfg, trace, rng);
    std::string diff = diffStats(ref, fast);
    if (diff.empty()) {
        return false;
    }

    out.target = Target::Core;
    out.seed = seed;
    out.repro = reproCommand(Target::Core, seed, options_.inject, options_.quick);
    out.shrunkOps = trace.size();
    if (options_.shrink && trace.size() <= 150'000) {
        const Fault inject = options_.inject;
        auto still_fails = [&cfg, inject](const std::vector<TraceOp> &t) {
            return !diffStats(refCoreRun(cfg, t, inject),
                              uarch::Core(cfg).run(t))
                        .empty();
        };
        // The shrunk predicate uses the batch fast path; re-check the
        // original input under it before trusting shrink results.
        if (still_fails(trace)) {
            const std::vector<TraceOp> small =
                ddminShrink(trace, still_fails, 200);
            out.shrunkOps = small.size();
            diff = diffStats(refCoreRun(cfg, small, inject),
                             uarch::Core(cfg).run(small));
        }
    }
    out.detail = "CoreStats mismatch (" + std::to_string(trace.size()) +
                 " ops, shrunk to " + std::to_string(out.shrunkOps) +
                 "): " + diff;
    return true;
}

bool
Fuzzer::runCacheCase(uint64_t seed, Divergence &out)
{
    SplitMix64 rng(seed);
    const uarch::Hierarchy::Config cfg = randomHierarchyConfig(rng);
    const uint64_t n = options_.quick ? rng.range(5'000, 40'000)
                                      : rng.range(5'000, 120'000);
    const std::vector<CacheEvent> events = randomCacheEvents(rng, n);

    auto diverges = [&cfg, this](const std::vector<CacheEvent> &ev,
                                 std::string &detail) {
        uarch::Hierarchy fast(cfg);
        RefHierarchy ref(cfg, options_.inject);
        int lr = 0, lf = 0;
        const size_t idx = replayCacheEvents(ev, fast, ref, lr, lf);
        if (idx != SIZE_MAX) {
            std::ostringstream d;
            d << "latency mismatch at event " << idx << "/" << ev.size()
              << " (addr 0x" << std::hex << ev[idx].addr << std::dec
              << "): ref=" << lr << " fast=" << lf;
            detail = d.str();
            return true;
        }
        detail = diffCacheCounters(ref, fast);
        return !detail.empty();
    };

    std::string detail;
    if (!diverges(events, detail)) {
        return false;
    }
    out.target = Target::Cache;
    out.seed = seed;
    out.repro = reproCommand(Target::Cache, seed, options_.inject, options_.quick);
    out.shrunkOps = events.size();
    if (options_.shrink) {
        std::string scratch;
        auto still_fails = [&](const std::vector<CacheEvent> &ev) {
            return diverges(ev, scratch);
        };
        const std::vector<CacheEvent> small =
            ddminShrink(events, still_fails, 200);
        out.shrunkOps = small.size();
        diverges(small, detail);
    }
    out.detail = "cache divergence (" + std::to_string(events.size()) +
                 " events, shrunk to " + std::to_string(out.shrunkOps) +
                 "): " + detail;
    return true;
}

bool
Fuzzer::runBpredCase(uint64_t seed, Divergence &out)
{
    SplitMix64 rng(seed);
    static const size_t kBudgets[] = {8 * 1024, 64 * 1024, 192 * 1024};
    const size_t budget = kBudgets[rng.below(3)];
    const uint64_t n = options_.quick ? rng.range(5'000, 50'000)
                                      : rng.range(5'000, 200'000);
    const std::vector<trace::BranchRecord> branches =
        trace::synthFuzzBranches(rng.fork(), n);

    auto diverges = [&, this](const std::vector<trace::BranchRecord> &brs,
                              std::string &detail) {
        auto fast = bpred::makePredictor(
            "tage-" + std::to_string(budget / 1024) + "KB");
        RefTage ref(budget, options_.inject);
        for (size_t i = 0; i < brs.size(); ++i) {
            const bool pf = fast->predict(brs[i].pc);
            const bool pr = ref.predict(brs[i].pc);
            if (pf != pr) {
                std::ostringstream d;
                d << "prediction mismatch at branch " << i << "/"
                  << brs.size() << " (pc 0x" << std::hex << brs[i].pc
                  << std::dec << "): ref=" << pr << " fast=" << pf;
                detail = d.str();
                return true;
            }
            fast->update(brs[i].pc, brs[i].taken, pf);
            ref.update(brs[i].pc, brs[i].taken, pr);
        }
        return false;
    };

    std::string detail;
    if (!diverges(branches, detail)) {
        return false;
    }
    out.target = Target::Bpred;
    out.seed = seed;
    out.repro = reproCommand(Target::Bpred, seed, options_.inject, options_.quick);
    out.shrunkOps = branches.size();
    if (options_.shrink) {
        std::string scratch;
        auto still_fails = [&](const std::vector<trace::BranchRecord> &b) {
            return diverges(b, scratch);
        };
        const std::vector<trace::BranchRecord> small =
            ddminShrink(branches, still_fails, 200);
        out.shrunkOps = small.size();
        diverges(small, detail);
    }
    out.detail = "predictor divergence (" + std::to_string(branches.size()) +
                 " branches, shrunk to " + std::to_string(out.shrunkOps) +
                 "): " + detail;
    return true;
}

bool
Fuzzer::runKernelsCase(uint64_t seed, Divergence &out)
{
    SplitMix64 rng(seed);
    const codec::KernelTable &scalar = codec::scalarKernels();
    const codec::KernelTable &fast = codec::kernels();
    std::ostringstream detail;

    auto fail = [&](const std::string &what) {
        out.target = Target::Kernels;
        out.seed = seed;
        out.repro = reproCommand(Target::Kernels, seed, options_.inject, options_.quick);
        out.detail = "kernel divergence vs scalar oracle (isa=" +
                     std::string(fast.isa) + "): " + what;
        return true;
    };

    // Pixel kernels over a randomized geometry.
    static const int kDims[] = {4, 5, 7, 8, 12, 16, 24, 31, 32, 48, 64};
    const int w = kDims[rng.below(11)];
    const int h = kDims[rng.below(11)];
    const int a_stride = w + static_cast<int>(rng.below(25));
    const int b_stride = w + static_cast<int>(rng.below(25));
    std::vector<uint8_t> a(static_cast<size_t>(a_stride) * h);
    std::vector<uint8_t> b(static_cast<size_t>(b_stride) * h);
    for (uint8_t &x : a) {
        x = static_cast<uint8_t>(rng.next());
    }
    for (uint8_t &x : b) {
        x = static_cast<uint8_t>(rng.next());
    }

    uint64_t sad_want = scalar.sad(a.data(), a_stride, b.data(), b_stride,
                                   w, h);
    if (options_.inject == Fault::KernelsSad && w * h >= 64) {
        ++sad_want;  // deliberately wrong oracle; harness must notice
    }
    const uint64_t sad_got = fast.sad(a.data(), a_stride, b.data(),
                                      b_stride, w, h);
    if (sad_want != sad_got) {
        return fail("sad(" + std::to_string(w) + "x" + std::to_string(h) +
                    ") oracle=" + std::to_string(sad_want) +
                    " fast=" + std::to_string(sad_got));
    }
    if (scalar.sse(a.data(), a_stride, b.data(), b_stride, w, h) !=
        fast.sse(a.data(), a_stride, b.data(), b_stride, w, h)) {
        return fail("sse(" + std::to_string(w) + "x" + std::to_string(h) +
                    ")");
    }
    if (w >= 4 && h >= 4 &&
        scalar.satd4(a.data(), a_stride, b.data(), b_stride) !=
            fast.satd4(a.data(), a_stride, b.data(), b_stride)) {
        return fail("satd4");
    }
    if (w >= 8 && h >= 8 &&
        scalar.satd8(a.data(), a_stride, b.data(), b_stride) !=
            fast.satd8(a.data(), a_stride, b.data(), b_stride)) {
        return fail("satd8");
    }

    const size_t wh = static_cast<size_t>(w) * h;
    std::vector<int16_t> res_s(wh), res_f(wh);
    scalar.residual(a.data(), a_stride, b.data(), b_stride, w, h,
                    res_s.data());
    fast.residual(a.data(), a_stride, b.data(), b_stride, w, h,
                  res_f.data());
    if (res_s != res_f) {
        return fail("residual");
    }
    std::vector<uint8_t> rec_s(a.size(), 0), rec_f(a.size(), 0);
    scalar.reconstruct(a.data(), a_stride, res_s.data(), w, h, rec_s.data(),
                       a_stride);
    fast.reconstruct(a.data(), a_stride, res_s.data(), w, h, rec_f.data(),
                     a_stride);
    if (rec_s != rec_f) {
        return fail("reconstruct");
    }

    // Transform + quantiser round at a randomized size / q-point.
    static const int kTx[] = {4, 8, 16, 32};
    const int n = kTx[rng.below(4)];
    const int32_t *basis = codec::dctBasis(n);
    const size_t count = static_cast<size_t>(n) * n;
    std::vector<int16_t> src(count);
    for (int16_t &x : src) {
        x = static_cast<int16_t>(rng.next());
    }
    std::vector<int32_t> tx_s(count), tx_f(count);
    scalar.fdct(src.data(), tx_s.data(), n, basis);
    fast.fdct(src.data(), tx_f.data(), n, basis);
    if (tx_s != tx_f) {
        return fail("fdct(n=" + std::to_string(n) + ")");
    }
    std::vector<int32_t> coeff(count);
    for (int32_t &x : coeff) {
        x = static_cast<int32_t>(rng.next() % (1u << 23)) - (1 << 22);
    }
    for (const std::vector<int32_t> *in : {&tx_s, &coeff}) {
        std::vector<int16_t> px_s(count), px_f(count);
        scalar.idct(in->data(), px_s.data(), n, basis);
        fast.idct(in->data(), px_f.data(), n, basis);
        if (px_s != px_f) {
            return fail("idct(n=" + std::to_string(n) + ")");
        }
    }
    const double t = static_cast<double>(rng.below(64)) / 63.0;
    const double step = 0.6 * std::pow(2.0, t * 8.1);
    std::vector<int32_t> lv_s(count), lv_f(count);
    const int nz_s = scalar.quant(coeff.data(), lv_s.data(),
                                  static_cast<int>(count), step * 0.4,
                                  1.0 / step);
    const int nz_f = fast.quant(coeff.data(), lv_f.data(),
                                static_cast<int>(count), step * 0.4,
                                1.0 / step);
    if (nz_s != nz_f || lv_s != lv_f) {
        return fail("quant(n=" + std::to_string(n) + ")");
    }
    std::vector<int32_t> dq_s(count), dq_f(count);
    scalar.dequant(lv_s.data(), dq_s.data(), static_cast<int>(count), step);
    fast.dequant(lv_s.data(), dq_f.data(), static_cast<int>(count), step);
    if (dq_s != dq_f) {
        return fail("dequant(n=" + std::to_string(n) + ")");
    }
    return false;
}

bool
Fuzzer::runStoreCase(uint64_t seed, Divergence &out)
{
    SplitMix64 rng(seed);
    const fs::path base = options_.tempDir.empty()
                              ? fs::temp_directory_path()
                              : fs::path(options_.tempDir);
    char sub[64];
    std::snprintf(sub, sizeof sub, "vepro-check-store-%016llx",
                  static_cast<unsigned long long>(seed));
    const fs::path dir = base / sub;

    auto fail = [&](const std::string &what) {
        out.target = Target::Store;
        out.seed = seed;
        out.repro = reproCommand(Target::Store, seed, options_.inject, options_.quick);
        out.detail = "store round-trip: " + what;
        std::error_code ec;
        fs::remove_all(dir, ec);
        return true;
    };

    lab::ResultStore store(dir.string(), nullptr);
    const lab::JobSpec spec = randomJobSpec(rng);
    lab::JobResult result = randomJobResult(rng);

    if (rng.chance(1, 4)) {
        // Non-finite doubles must be rejected with JsonError before any
        // file is written — never persisted as "nan"/"inf" tokens.
        static const double kBad[] = {
            std::numeric_limits<double>::quiet_NaN(),
            std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};
        result.encode.psnrDb = kBad[rng.below(3)];
        bool threw = false;
        try {
            store.save(spec, result);
        } catch (const lab::JsonError &) {
            threw = true;
        }
        if (!threw) {
            return fail("save() accepted a non-finite double");
        }
        std::error_code ec;
        if (fs::exists(store.pathFor(spec), ec)) {
            return fail("non-finite save left a record behind");
        }
        if (store.load(spec)) {
            return fail("load() found a record after a failed save");
        }
        fs::remove_all(dir, ec);
        return false;
    }

    try {
        store.save(spec, result);
    } catch (const std::exception &e) {
        return fail(std::string("save() threw: ") + e.what());
    }
    const std::optional<lab::JobResult> loaded = store.load(spec);
    if (!loaded) {
        return fail("load() missed a just-saved record");
    }
    lab::JobResult want = result;
    if (options_.inject == Fault::StoreBit) {
        // Flip the low mantissa bit of one double on the expectation
        // side: the bit-exact comparison must flag it.
        uint64_t bits = bitsOf(want.encode.wallSeconds) ^ 1u;
        std::memcpy(&want.encode.wallSeconds, &bits, sizeof bits);
    }
    const std::string diff = diffJobResult(want, *loaded);
    if (!diff.empty()) {
        return fail(diff);
    }

    // A different spec must not alias onto this record.
    lab::JobSpec other = spec;
    other.crf = spec.crf ^ 1;
    if (store.load(other)) {
        return fail("load() of a different spec hit this record");
    }

    std::error_code ec;
    fs::remove_all(dir, ec);
    return false;
}

/**
 * The parallel-simulation differential (ISSUE 6 layer 4). One seeded
 * case asserts, on the same interleaved op/branch/kernel stream:
 *
 *  1. pipeline bit-identity — PipelineMux{StreamCore, CacheSink,
 *     StreamRunner} on worker threads produces the exact per-sink
 *     results of a sequential MuxSink replay, any thread count, any
 *     queue depth;
 *  2. segment exactness — SegmentSim's stitched event counters
 *     (instructions, retiring slots, conditional branches, L1D
 *     accesses) are bit-equal to the sequential core at every segment
 *     count and warmup depth, because warmup counters are discarded;
 *  3. segment convergence — segments=1 is bit-identical, and growing
 *     the warmup prefix does not move the timing counters away from
 *     the sequential answer beyond a small stitching bound (a leak of
 *     warmup cycles into the stats blows far past the bound).
 */
bool
Fuzzer::runParallelCase(uint64_t seed, Divergence &out)
{
    SplitMix64 rng(seed);
    const uarch::CoreConfig cfg = randomCoreConfig(rng);
    const uint64_t max_ops = options_.quick ? rng.range(16'000, 40'000)
                                            : rng.range(16'000, 120'000);
    const uint64_t max_brs = options_.quick ? rng.range(1'000, 8'000)
                                            : rng.range(1'000, 24'000);
    const std::vector<TraceOp> ops = trace::synthFuzzTrace(rng.fork(),
                                                           max_ops);
    const std::vector<trace::BranchRecord> branches =
        trace::synthFuzzBranches(rng.fork(), max_brs);
    const uint64_t chunk_seed = rng.next();
    const bool drop = options_.inject == Fault::ParallelDrop;

    auto fail = [&](const std::string &what) {
        out.target = Target::Parallel;
        out.seed = seed;
        out.repro = reproCommand(Target::Parallel, seed, options_.inject,
                                 options_.quick);
        out.shrunkOps = 0;  // two interleaved streams: not ddmin-shaped
        out.detail = "parallel divergence (" + std::to_string(ops.size()) +
                     " ops, " + std::to_string(branches.size()) +
                     " branches): " + what;
        return true;
    };

    // Sequential reference: one MuxSink replay on this thread. The
    // injected ParallelDrop fault breaks only this side.
    static const char *const kPredSpec = "tage-8KB";
    uarch::StreamCore seq_core(cfg);
    uarch::CacheSink seq_cache(cfg.mem);
    auto seq_pred = bpred::makePredictor(kPredSpec);
    bpred::StreamRunner seq_runner(*seq_pred);
    trace::MuxSink seq_mux{&seq_core, &seq_cache, &seq_runner};
    replayInterleaved(seq_mux, chunk_seed, ops, branches, drop);
    const uarch::CoreStats ref = seq_core.stats();

    // 1. Pipeline-parallel sinks: bit-identical per-sink results.
    {
        uarch::StreamCore core(cfg);
        uarch::CacheSink cache(cfg.mem);
        auto pred = bpred::makePredictor(kPredSpec);
        bpred::StreamRunner runner(*pred);
        trace::PipelineMux::Options popts;
        popts.jobs = static_cast<int>(rng.range(2, 4));
        popts.queueDepth = rng.chance(1, 3) ? 2 : 64;  // stress backpressure
        trace::PipelineMux mux({&core, &cache, &runner}, popts);
        replayInterleaved(mux, chunk_seed, ops, branches, false);

        const std::string core_diff = diffStats(ref, core.stats());
        if (!core_diff.empty()) {
            return fail("pipeline core: " + core_diff);
        }
        const std::string cache_diff = diffCacheSinks(seq_cache, cache);
        if (!cache_diff.empty()) {
            return fail("pipeline cache: " + cache_diff);
        }
        const bpred::RunResult sr = seq_runner.result();
        const bpred::RunResult pr = runner.result();
        if (sr.branches != pr.branches || sr.misses != pr.misses) {
            return fail("pipeline bpred: seq " +
                        std::to_string(sr.branches) + " branches/" +
                        std::to_string(sr.misses) + " misses, pipe " +
                        std::to_string(pr.branches) + "/" +
                        std::to_string(pr.misses));
        }
    }

    // Shared replay into a SegmentSim at the given geometry.
    auto segmentStats = [&](int segments, int warmup,
                            int jobs) -> uarch::CoreStats {
        uarch::SegmentSimConfig scfg;
        scfg.core = cfg;
        scfg.segments = segments;
        scfg.warmupBlocks = warmup;
        scfg.jobs = jobs;
        uarch::SegmentSim sim(scfg);
        replayInterleaved(sim, chunk_seed, ops, branches, false);
        return sim.stats();
    };

    // 2. segments=1 must be bit-identical (every field).
    const std::string one_diff = diffStats(ref, segmentStats(1, 8, 1));
    if (!one_diff.empty()) {
        return fail("segments=1: " + one_diff);
    }

    // 3. Real segmenting: exact counters bit-equal at two warmup depths;
    //    timing error must not grow as the warmup prefix deepens.
    const int segments = static_cast<int>(rng.range(2, 5));
    const int jobs = static_cast<int>(rng.range(1, 3));
    const uarch::CoreStats cold = segmentStats(segments, 0, jobs);
    const uarch::CoreStats warm = segmentStats(segments, 16, jobs);
    for (const uarch::CoreStats *s : {&cold, &warm}) {
        std::ostringstream diff;
        auto exact = [&](const char *name, uint64_t want, uint64_t got) {
            if (want != got) {
                if (diff.tellp() > 0) {
                    diff << ", ";
                }
                diff << name << " seq=" << want << " seg=" << got;
            }
        };
        exact("instructions", ref.instructions, s->instructions);
        exact("slots.retiring", ref.slots.retiring, s->slots.retiring);
        exact("condBranches", ref.condBranches, s->condBranches);
        exact("l1dAccesses", ref.l1dAccesses, s->l1dAccesses);
        if (diff.tellp() > 0) {
            return fail("segment exact counters (segments=" +
                        std::to_string(segments) + ", warmup=" +
                        std::to_string(s == &warm ? 16 : 0) +
                        "): " + diff.str());
        }
    }
    auto err = [&](const uarch::CoreStats &s) {
        return s.cycles > ref.cycles ? s.cycles - ref.cycles
                                     : ref.cycles - s.cycles;
    };
    // Generous stitching slack: a warmup-counter leak adds whole
    // blocks' worth of cycles per segment and lands far outside it.
    const uint64_t slack =
        ref.cycles / 32 + 1024 * static_cast<uint64_t>(segments);
    if (err(warm) > err(cold) + slack) {
        return fail("segment warmup diverges: |cycles-ref| grew from " +
                    std::to_string(err(cold)) + " (warmup=0) to " +
                    std::to_string(err(warm)) + " (warmup=16), ref=" +
                    std::to_string(ref.cycles) + ", segments=" +
                    std::to_string(segments));
    }
    return false;
}

/**
 * The trace capture/replay differential (tentpole of the TraceFile PR).
 * One seeded case streams the same deterministically interleaved
 * op/branch/kernel stream (a) live into a MuxSink{StreamCore,
 * CacheSink, StreamRunner} stack and (b) through a FileSink capture to
 * disk, then replays the file through FileSource into an identical
 * stack. Every counter — CoreStats fields, hierarchy counters, and
 * predictor branch/miss totals — must be bit-identical, proving the
 * codec (varint + delta + dictionary, per-class address chains,
 * positioned events) is lossless for everything the simulators consume.
 * The injected tracefile-delta fault skews every decoded pc delta by
 * one; the drifting PCs must surface here as a stats mismatch.
 */
bool
Fuzzer::runTraceFileCase(uint64_t seed, Divergence &out)
{
    SplitMix64 rng(seed);
    const uarch::CoreConfig cfg = randomCoreConfig(rng);
    const uint64_t max_ops = options_.quick ? rng.range(16'000, 40'000)
                                            : rng.range(16'000, 120'000);
    const uint64_t max_brs = options_.quick ? rng.range(1'000, 8'000)
                                            : rng.range(1'000, 24'000);
    const std::vector<TraceOp> ops = trace::synthFuzzTrace(rng.fork(),
                                                           max_ops);
    const std::vector<trace::BranchRecord> branches =
        trace::synthFuzzBranches(rng.fork(), max_brs);
    const uint64_t chunk_seed = rng.next();

    const fs::path base = options_.tempDir.empty()
                              ? fs::temp_directory_path()
                              : fs::path(options_.tempDir);
    char name[64];
    std::snprintf(name, sizeof name, "vepro-check-trace-%016llx.vetf",
                  static_cast<unsigned long long>(seed));
    const fs::path file = base / name;

    auto fail = [&](const std::string &what) {
        out.target = Target::TraceFile;
        out.seed = seed;
        out.repro = reproCommand(Target::TraceFile, seed, options_.inject,
                                 options_.quick);
        out.shrunkOps = 0;  // interleaved stream + a file: not ddmin-shaped
        out.detail = "tracefile divergence (" + std::to_string(ops.size()) +
                     " ops, " + std::to_string(branches.size()) +
                     " branches): " + what;
        std::error_code ec;
        fs::remove(file, ec);
        return true;
    };

    static const char *const kPredSpec = "tage-8KB";

    // Live reference: the fused stack fed record-at-a-time.
    uarch::StreamCore live_core(cfg);
    uarch::CacheSink live_cache(cfg.mem);
    auto live_pred = bpred::makePredictor(kPredSpec);
    bpred::StreamRunner live_runner(*live_pred);
    trace::MuxSink live_mux{&live_core, &live_cache, &live_runner};
    replayInterleaved(live_mux, chunk_seed, ops, branches, false);

    // Capture the identical stream to disk (flush() seals the file).
    try {
        trace::FileSink sink(file.string());
        replayInterleaved(sink, chunk_seed, ops, branches, false);
        if (sink.opCount() != ops.size()) {
            return fail("capture op count " +
                        std::to_string(sink.opCount()) + " != stream's " +
                        std::to_string(ops.size()));
        }
    } catch (const std::exception &e) {
        return fail(std::string("capture threw: ") + e.what());
    }

    // Replay into a fresh, identically configured stack.
    uarch::StreamCore rep_core(cfg);
    uarch::CacheSink rep_cache(cfg.mem);
    auto rep_pred = bpred::makePredictor(kPredSpec);
    bpred::StreamRunner rep_runner(*rep_pred);
    trace::MuxSink rep_mux{&rep_core, &rep_cache, &rep_runner};
    trace::FileSource source(file.string());
    if (options_.inject == Fault::TraceFileDelta) {
        source.injectDeltaFault(true);
    }
    try {
        const trace::TraceFileInfo info = source.replay(rep_mux);
        rep_mux.flush();
        if (info.opCount != ops.size()) {
            return fail("footer op count " + std::to_string(info.opCount) +
                        " != stream's " + std::to_string(ops.size()));
        }
    } catch (const std::exception &e) {
        return fail(std::string("replay threw: ") + e.what());
    }

    const std::string core_diff = diffStats(live_core.stats(),
                                            rep_core.stats());
    if (!core_diff.empty()) {
        return fail("replayed core: " + core_diff);
    }
    const std::string cache_diff = diffCacheSinks(live_cache, rep_cache);
    if (!cache_diff.empty()) {
        return fail("replayed cache: " + cache_diff);
    }
    const bpred::RunResult lr = live_runner.result();
    const bpred::RunResult rr = rep_runner.result();
    if (lr.branches != rr.branches || lr.misses != rr.misses) {
        return fail("replayed bpred: live " + std::to_string(lr.branches) +
                    " branches/" + std::to_string(lr.misses) +
                    " misses, replay " + std::to_string(rr.branches) + "/" +
                    std::to_string(rr.misses));
    }

    std::error_code ec;
    fs::remove(file, ec);
    return false;
}

// ---------------------------------------------------------------------
// Ladder target

bool
Fuzzer::runLadderCase(uint64_t seed, Divergence &out)
{
    SplitMix64 rng(seed);

    auto fail = [&](const std::string &what) {
        out.target = Target::Ladder;
        out.seed = seed;
        out.repro = reproCommand(Target::Ladder, seed, options_.inject,
                                 options_.quick);
        out.detail = "ladder divergence vs naive oracle: " + what;
        return true;
    };

    // Hull differential on an integer-grid RD point set. Small integer
    // coordinates keep every cross product exact in doubles, so the
    // monotone chain and the O(n^2) oracle must agree bit for bit. A
    // forced collinear triple per case keeps the harness sensitive to
    // the strict-cross fault; random extras add ties, duplicates and
    // dominated points around it.
    std::vector<video::RdPoint> pts;
    const double r0 = 1.0 + static_cast<double>(rng.below(20));
    const double q0 = 1.0 + static_cast<double>(rng.below(20));
    const double dr = 1.0 + static_cast<double>(rng.below(4));
    const double dq = 1.0 + static_cast<double>(rng.below(4));
    for (int t = 0; t < 3; ++t) {
        pts.push_back({r0 + t * dr, q0 + t * dq});
    }
    const size_t extras = 2 + rng.below(7);
    for (size_t i = 0; i < extras; ++i) {
        pts.push_back({1.0 + static_cast<double>(rng.below(40)),
                       1.0 + static_cast<double>(rng.below(40))});
    }
    if (rng.below(2) == 0) {
        pts.push_back(pts[rng.below(pts.size())]);  // exact duplicate
    }
    const std::vector<size_t> want =
        refConvexHull(pts, options_.inject);
    const std::vector<size_t> got = ladder::convexHull(pts);
    if (want != got) {
        auto render = [&](const std::vector<size_t> &hull) {
            std::string s = "{";
            for (size_t i : hull) {
                s += (s.size() > 1 ? "," : "") + std::to_string(i);
            }
            return s + "}";
        };
        return fail("convexHull over " + std::to_string(pts.size()) +
                    " points: oracle=" + render(want) +
                    " fast=" + render(got));
    }

    // Scaler differential: the kernel-table scaling path against naive
    // per-pixel references, bit for bit.
    static const int kPlaneDims[] = {1, 2, 3, 5, 8, 15, 16, 17, 31, 40, 64};
    const int w = kPlaneDims[rng.below(11)];
    const int h = kPlaneDims[rng.below(11)];
    const int factor = 1 + static_cast<int>(rng.below(4));
    video::Plane src(w, h);
    for (int y = 0; y < h; ++y) {
        uint8_t *row = src.row(y);
        for (int x = 0; x < w; ++x) {
            row[x] = static_cast<uint8_t>(rng.next());
        }
    }
    const video::Plane down_want = refDownscalePlane(src, factor);
    const video::Plane down_got = video::downscalePlane(src, factor);
    auto planesEqual = [](const video::Plane &a, const video::Plane &b,
                          std::string &where) {
        if (a.width() != b.width() || a.height() != b.height()) {
            where = "dims";
            return false;
        }
        for (int y = 0; y < a.height(); ++y) {
            for (int x = 0; x < a.width(); ++x) {
                if (a.at(x, y) != b.at(x, y)) {
                    where = "(" + std::to_string(x) + "," +
                            std::to_string(y) + ") oracle=" +
                            std::to_string(a.at(x, y)) + " fast=" +
                            std::to_string(b.at(x, y));
                    return false;
                }
            }
        }
        return true;
    };
    std::string where;
    if (!planesEqual(down_want, down_got, where)) {
        return fail("downscalePlane(" + std::to_string(w) + "x" +
                    std::to_string(h) + ", /" + std::to_string(factor) +
                    ") at " + where);
    }
    const int uw = 1 + static_cast<int>(rng.below(80));
    const int uh = 1 + static_cast<int>(rng.below(80));
    const video::Plane up_want = refUpscalePlane(down_want, uw, uh);
    const video::Plane up_got = video::upscalePlane(down_got, uw, uh);
    if (!planesEqual(up_want, up_got, where)) {
        return fail("upscalePlane(-> " + std::to_string(uw) + "x" +
                    std::to_string(uh) + ") at " + where);
    }
    return false;
}

// ---------------------------------------------------------------------
// Energy target

namespace
{

/** %a (hex-float) rendering: divergence reports must show the exact
 *  bits, not a rounded decimal that can print identically for two
 *  different doubles. */
std::string
hexDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

} // namespace

bool
Fuzzer::runEnergyCase(uint64_t seed, Divergence &out)
{
    SplitMix64 rng(seed);
    const auto &names = backend::profileNames();
    const backend::MachineProfile &prof =
        backend::profile(names[rng.below(names.size())]);

    auto fail = [&](const std::string &what) {
        out.target = Target::Energy;
        out.seed = seed;
        out.repro = reproCommand(Target::Energy, seed, options_.inject,
                                 options_.quick);
        out.detail =
            "energy divergence (profile " + prof.name + "): " + what;
        return true;
    };

    if (prof.kind == backend::Kind::Fixed) {
        const uint64_t blocks = rng.range(1, 5'000'000);
        const double fast_s = backend::fixedServiceSeconds(prof, blocks);
        const double ref_s =
            refFixedServiceSeconds(prof, blocks, options_.inject);
        if (fast_s != ref_s) {
            return fail("service seconds ref=" + hexDouble(ref_s) +
                        " fast=" + hexDouble(fast_s) + " at blocks=" +
                        std::to_string(blocks));
        }
        const double fast_j = backend::fixedEnergyJoules(prof, blocks);
        const double ref_j =
            refFixedEnergyJoules(prof, blocks, options_.inject);
        if (fast_j != ref_j) {
            return fail("joules ref=" + hexDouble(ref_j) +
                        " fast=" + hexDouble(fast_j) + " at blocks=" +
                        std::to_string(blocks));
        }
        return false;
    }

    // Random-but-plausible counters. The hierarchy invariant l2Misses
    // >= llcMisses is drawn with a STRICT gap, so the injected
    // weight-swap fault always moves the dynamic term.
    uarch::CoreStats s;
    s.instructions = rng.range(1, 50'000'000);
    s.cycles = s.instructions / rng.range(1, 4) + rng.range(1, 1'000'000);
    s.mispredicts = rng.range(0, 500'000);
    s.l1iMisses = rng.range(0, 1'000'000);
    s.l1dMisses = rng.range(0, 2'000'000);
    s.llcMisses = rng.range(0, 200'000);
    s.l2Misses = s.llcMisses + rng.range(1, 500'000);

    const double fast = backend::energyJoules(prof, s);
    const double ref = refEnergyJoules(prof, s, options_.inject);
    if (fast != ref) {
        return fail("joules ref=" + hexDouble(ref) +
                    " fast=" + hexDouble(fast) + " at instructions=" +
                    std::to_string(s.instructions));
    }

    // Cheap properties the formula must keep regardless of weights:
    // more retired instructions can never cost less energy, and energy
    // is non-negative.
    if (fast < 0.0) {
        return fail("negative joules " + hexDouble(fast));
    }
    uarch::CoreStats more = s;
    more.instructions += rng.range(1, 1'000'000);
    const double bigger = backend::energyJoules(prof, more);
    if (bigger <= fast) {
        return fail("energy not monotone in instructions: " +
                    hexDouble(fast) + " -> " + hexDouble(bigger));
    }
    return false;
}

// ---------------------------------------------------------------------
// Harness

bool
Fuzzer::runCase(Target target, uint64_t seed, Divergence &out)
{
    switch (target) {
      case Target::Core: return runCoreCase(seed, out);
      case Target::Cache: return runCacheCase(seed, out);
      case Target::Bpred: return runBpredCase(seed, out);
      case Target::Kernels: return runKernelsCase(seed, out);
      case Target::Store: return runStoreCase(seed, out);
      case Target::Parallel: return runParallelCase(seed, out);
      case Target::Energy: return runEnergyCase(seed, out);
      case Target::TraceFile: return runTraceFileCase(seed, out);
      case Target::Ladder: return runLadderCase(seed, out);
    }
    return false;
}

int
Fuzzer::itersFor(Target target) const
{
    if (options_.iters > 0) {
        return options_.iters;
    }
    switch (target) {
      case Target::Core: return options_.quick ? 12 : 60;
      case Target::Cache: return options_.quick ? 20 : 100;
      case Target::Bpred: return options_.quick ? 12 : 60;
      case Target::Kernels: return options_.quick ? 40 : 300;
      case Target::Store: return options_.quick ? 40 : 200;
      // Parallel cases run the trace through five simulator instances
      // (sequential reference, pipeline, and three segment variants).
      case Target::Parallel: return options_.quick ? 6 : 30;
      // Pure arithmetic over the profile registry: cheap, so plenty.
      case Target::Energy: return options_.quick ? 50 : 400;
      // Each case runs two live stacks plus a disk round-trip.
      case Target::TraceFile: return options_.quick ? 6 : 30;
      // Hull arithmetic plus two small-plane scaler round trips: cheap.
      case Target::Ladder: return options_.quick ? 40 : 300;
    }
    return 1;
}

FuzzReport
Fuzzer::run(Target target)
{
    FuzzReport report;
    const int iters = itersFor(target);
    for (int i = 0; i < iters; ++i) {
        ++report.cases;
        Divergence d;
        if (runCase(target, options_.baseSeed + static_cast<uint64_t>(i),
                    d)) {
            report.divergences.push_back(std::move(d));
        }
    }
    return report;
}

FuzzReport
Fuzzer::runAll()
{
    FuzzReport report;
    for (Target t : allTargets()) {
        FuzzReport r = run(t);
        report.cases += r.cases;
        for (Divergence &d : r.divergences) {
            report.divergences.push_back(std::move(d));
        }
    }
    return report;
}

FuzzReport
Fuzzer::runCorpus(const std::string &dir)
{
    FuzzReport report;
    for (const std::string &path : listCorpus(dir)) {
        CorpusCase c;
        std::string err;
        if (!loadCorpusCase(path, c, err)) {
            Divergence d;
            d.seed = 0;
            d.detail = "corpus: " + err;
            d.repro = "(fix " + path + ")";
            report.divergences.push_back(std::move(d));
            continue;
        }
        ++report.cases;
        Divergence d;
        if (runCase(c.target, c.seed, d)) {
            d.detail = "[" + path + "] " + d.detail;
            report.divergences.push_back(std::move(d));
        }
    }
    return report;
}

} // namespace vepro::check
