#ifndef VEPRO_CHECK_FUZZER_HPP
#define VEPRO_CHECK_FUZZER_HPP

/**
 * @file
 * Seeded property-fuzz harness asserting the optimized simulator paths
 * against the reference oracles (oracle.hpp).
 *
 * Every fuzz case is a pure function of one 64-bit seed: the seed picks
 * a randomized configuration (core geometry, cache geometry, predictor
 * budget) and an adversarial input (trace::synthFuzzTrace /
 * synthFuzzBranches, or randomized kernel blocks / store records), runs
 * the fast path and the reference side by side, and demands bit-equal
 * results. A divergence report always carries the one-command repro
 *
 *     vepro-check --target=<t> --seed=<N>
 *
 * and — for trace-shaped targets — a ddmin-shrunk minimal failing trace
 * so the first thing a human sees is the smallest input that breaks.
 *
 * The harness must stay sensitive: `vepro-check --inject=<fault>` runs
 * the same cases against a deliberately broken reference and must
 * report divergences (tests/test_check.cpp pins that).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.hpp"

namespace vepro::check
{

/** What to fuzz. */
enum class Target {
    Core,
    Cache,
    Bpred,
    Kernels,
    Store,
    Parallel,
    Energy,
    TraceFile,
    Ladder,
};

/** All targets, in the order `--target=all` runs them. */
const std::vector<Target> &allTargets();

/** CLI name of a target ("core", "cache", ...). */
const char *targetName(Target target);
/** Parse a CLI target name; returns false on unknown names. */
bool parseTarget(const std::string &name, Target &out);

/** Harness knobs, straight from the vepro-check CLI. */
struct FuzzOptions {
    uint64_t baseSeed = 1;  ///< Case i uses seed baseSeed + i.
    int iters = 0;          ///< Cases per target; 0 = target default.
    bool quick = false;     ///< CI smoke budget (~1 min for all targets).
    bool shrink = true;     ///< ddmin-shrink failing traces.
    Fault inject = Fault::None;  ///< Break the reference on purpose.
    /** Scratch directory for the store target (a per-seed subdirectory
     *  is created and removed per case); empty = system temp. */
    std::string tempDir;
};

/** One detected fast-vs-reference divergence. */
struct Divergence {
    Target target = Target::Core;
    uint64_t seed = 0;
    std::string detail;  ///< First mismatching quantity, both values.
    std::string repro;   ///< One shell command reproducing the failure.
    /** Ops in the ddmin-shrunk failing trace (0 = not applicable). */
    uint64_t shrunkOps = 0;
};

/** Outcome of a fuzz run. */
struct FuzzReport {
    uint64_t cases = 0;
    std::vector<Divergence> divergences;

    bool ok() const { return divergences.empty(); }
};

/** A corpus entry: `target=<name>` and `seed=<N>` lines, '#' comments. */
struct CorpusCase {
    Target target = Target::Core;
    uint64_t seed = 0;
};

/** Parse one .case file. Returns false with @p err set on bad input. */
bool loadCorpusCase(const std::string &path, CorpusCase &out,
                    std::string &err);

/** Sorted *.case paths under @p dir (empty when dir is absent). */
std::vector<std::string> listCorpus(const std::string &dir);

class Fuzzer
{
  public:
    explicit Fuzzer(const FuzzOptions &options) : options_(options) {}

    /** Fuzz one target for its iteration budget. */
    FuzzReport run(Target target);

    /** Fuzz every target (allTargets() order), one merged report. */
    FuzzReport runAll();

    /** Replay corpus entries from @p dir (all targets). */
    FuzzReport runCorpus(const std::string &dir);

    /**
     * Run exactly one seeded case. Returns true on divergence, with
     * @p out filled in (including the shrunk-trace size when shrinking
     * is enabled and the target is trace-shaped).
     */
    bool runCase(Target target, uint64_t seed, Divergence &out);

    /** Cases run for @p target by run(), after quick/iters knobs. */
    int itersFor(Target target) const;

    /**
     * The printed one-command repro for a failing (target, seed). A
     * case is a pure function of (target, seed, quick, inject), so the
     * command carries all four.
     */
    static std::string reproCommand(Target target, uint64_t seed,
                                    Fault inject, bool quick);

  private:
    bool runCoreCase(uint64_t seed, Divergence &out);
    bool runCacheCase(uint64_t seed, Divergence &out);
    bool runBpredCase(uint64_t seed, Divergence &out);
    bool runKernelsCase(uint64_t seed, Divergence &out);
    bool runStoreCase(uint64_t seed, Divergence &out);
    bool runParallelCase(uint64_t seed, Divergence &out);
    bool runEnergyCase(uint64_t seed, Divergence &out);
    bool runTraceFileCase(uint64_t seed, Divergence &out);
    bool runLadderCase(uint64_t seed, Divergence &out);

    FuzzOptions options_;
};

} // namespace vepro::check

#endif // VEPRO_CHECK_FUZZER_HPP
