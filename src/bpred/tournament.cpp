#include "bpred/tournament.hpp"

namespace vepro::bpred
{

TournamentPredictor::TournamentPredictor(size_t budget_bytes)
    : bimodal_(budget_bytes / 4), gshare_(budget_bytes / 2)
{
    size_t chooser_bytes = budget_bytes / 4;
    size_t entries = chooser_bytes * 4;
    size_t pow2 = 1;
    while (pow2 * 2 <= entries) {
        pow2 *= 2;
    }
    chooser_mask_ = static_cast<uint32_t>(pow2 - 1);
    chooser_.assign(pow2, 2);
}

std::string
TournamentPredictor::name() const
{
    return "tournament-" + std::to_string(sizeBytes() / 1024) + "KB";
}

size_t
TournamentPredictor::sizeBytes() const
{
    return bimodal_.sizeBytes() + gshare_.sizeBytes() + chooser_.size() / 4;
}

bool
TournamentPredictor::predict(uint64_t pc)
{
    last_bimodal_ = bimodal_.predict(pc);
    last_gshare_ = gshare_.predict(pc);
    bool use_gshare = chooser_[(pc >> 2) & chooser_mask_] >= 2;
    return use_gshare ? last_gshare_ : last_bimodal_;
}

void
TournamentPredictor::update(uint64_t pc, bool taken, bool /*predicted*/)
{
    // Train the chooser only when the components disagree.
    if (last_bimodal_ != last_gshare_) {
        uint8_t &c = chooser_[(pc >> 2) & chooser_mask_];
        if (last_gshare_ == taken && c < 3) {
            ++c;
        } else if (last_bimodal_ == taken && c > 0) {
            --c;
        }
    }
    bimodal_.update(pc, taken, last_bimodal_);
    gshare_.update(pc, taken, last_gshare_);
}

void
TournamentPredictor::reset()
{
    bimodal_.reset();
    gshare_.reset();
    std::fill(chooser_.begin(), chooser_.end(), 2);
}

} // namespace vepro::bpred
