#include "bpred/predictor.hpp"

#include <stdexcept>

#include "bpred/bimodal.hpp"
#include "bpred/gshare.hpp"
#include "bpred/perceptron.hpp"
#include "bpred/tage.hpp"
#include "bpred/tage_sc_l.hpp"
#include "bpred/tournament.hpp"

namespace vepro::bpred
{

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &spec)
{
    auto dash = spec.rfind('-');
    if (dash == std::string::npos) {
        throw std::invalid_argument("makePredictor: expected '<kind>-<N>KB'");
    }
    std::string kind = spec.substr(0, dash);
    std::string size = spec.substr(dash + 1);
    if (size.size() < 3 || size.substr(size.size() - 2) != "KB") {
        throw std::invalid_argument("makePredictor: budget must end in KB");
    }
    size_t kb = std::stoul(size.substr(0, size.size() - 2));
    size_t bytes = kb * 1024;

    if (kind == "gshare") {
        return std::make_unique<GsharePredictor>(bytes);
    }
    if (kind == "tage") {
        return std::make_unique<TagePredictor>(bytes);
    }
    if (kind == "tage-sc-l") {
        return std::make_unique<TageScLPredictor>(bytes);
    }
    if (kind == "bimodal") {
        return std::make_unique<BimodalPredictor>(bytes);
    }
    if (kind == "perceptron") {
        return std::make_unique<PerceptronPredictor>(bytes);
    }
    if (kind == "tournament") {
        return std::make_unique<TournamentPredictor>(bytes);
    }
    throw std::invalid_argument("makePredictor: unknown kind '" + kind + "'");
}

} // namespace vepro::bpred
