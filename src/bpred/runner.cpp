#include "bpred/runner.hpp"

namespace vepro::bpred
{

RunResult
runTrace(BranchPredictor &predictor,
         const std::vector<trace::BranchRecord> &records,
         uint64_t instructions)
{
    RunResult result;
    result.predictor = predictor.name();
    result.instructions = instructions;
    for (const trace::BranchRecord &r : records) {
        bool pred = predictor.predict(r.pc);
        predictor.update(r.pc, r.taken, pred);
        ++result.branches;
        result.misses += pred != r.taken;
    }
    return result;
}

} // namespace vepro::bpred
