#include "bpred/runner.hpp"

namespace vepro::bpred
{

RunResult
runTrace(BranchPredictor &predictor,
         const std::vector<trace::BranchRecord> &records,
         uint64_t instructions)
{
    StreamRunner runner(predictor);
    for (const trace::BranchRecord &r : records) {
        runner.onBranch(r);
    }
    runner.setInstructions(instructions);
    return runner.result();
}

} // namespace vepro::bpred
