#include "bpred/perceptron.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace vepro::bpred
{

PerceptronPredictor::PerceptronPredictor(size_t budget_bytes)
{
    if (budget_bytes < 256) {
        throw std::invalid_argument("PerceptronPredictor: budget too small");
    }
    history_len_ = 24;
    size_t row_bytes = static_cast<size_t>(history_len_) + 1;
    size_t rows = budget_bytes / row_bytes;
    size_t pow2 = 1;
    while (pow2 * 2 <= rows) {
        pow2 *= 2;
    }
    mask_ = static_cast<uint32_t>(pow2 - 1);
    weights_.assign(pow2 * row_bytes, 0);
    threshold_ = static_cast<int>(1.93 * history_len_ + 14);
}

std::string
PerceptronPredictor::name() const
{
    return "perceptron-" + std::to_string(sizeBytes() / 1024) + "KB";
}

size_t
PerceptronPredictor::sizeBytes() const
{
    return weights_.size();
}

bool
PerceptronPredictor::predict(uint64_t pc)
{
    const int8_t *row =
        &weights_[((pc >> 2) & mask_) * (static_cast<size_t>(history_len_) + 1)];
    int y = row[0];  // bias
    for (int i = 0; i < history_len_; ++i) {
        int x = ((history_ >> i) & 1) ? 1 : -1;
        y += x * row[i + 1];
    }
    last_output_ = y;
    return y >= 0;
}

void
PerceptronPredictor::update(uint64_t pc, bool taken, bool predicted)
{
    int t = taken ? 1 : -1;
    if (predicted != taken || std::abs(last_output_) <= threshold_) {
        int8_t *row = &weights_[((pc >> 2) & mask_) *
                                (static_cast<size_t>(history_len_) + 1)];
        auto bump = [&](int8_t &w, int x) {
            int v = w + t * x;
            if (v > 127) {
                v = 127;
            } else if (v < -128) {
                v = -128;
            }
            w = static_cast<int8_t>(v);
        };
        bump(row[0], 1);
        for (int i = 0; i < history_len_; ++i) {
            bump(row[i + 1], ((history_ >> i) & 1) ? 1 : -1);
        }
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
PerceptronPredictor::reset()
{
    std::fill(weights_.begin(), weights_.end(), 0);
    history_ = 0;
    last_output_ = 0;
}

} // namespace vepro::bpred
