#ifndef VEPRO_BPRED_RUNNER_HPP
#define VEPRO_BPRED_RUNNER_HPP

/**
 * @file
 * CBP-style trace evaluation: replay a captured branch trace through a
 * predictor and report the paper's metrics (miss rate and MPKI).
 */

#include <cstdint>
#include <vector>

#include "bpred/predictor.hpp"
#include "trace/probe.hpp"

namespace vepro::bpred
{

/** Metrics of one predictor on one trace. */
struct RunResult {
    std::string predictor;
    uint64_t branches = 0;      ///< Conditional branches evaluated.
    uint64_t misses = 0;        ///< Mispredicted branches.
    uint64_t instructions = 0;  ///< Instruction window the trace covers.

    /** Misprediction rate in percent. */
    double
    missRatePercent() const
    {
        return branches ? 100.0 * static_cast<double>(misses) /
                              static_cast<double>(branches)
                        : 0.0;
    }

    /** Mispredictions per kilo-instruction. */
    double
    mpki() const
    {
        return instructions ? 1000.0 * static_cast<double>(misses) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/**
 * Replay @p records through @p predictor (predict then update per
 * branch, CBP-2016 style).
 *
 * @param predictor     Predictor under test (not reset; callers reset
 *                      between traces for independent runs).
 * @param records       Captured branch trace.
 * @param instructions  Dynamic instruction count of the traced interval,
 *                      used as the MPKI denominator (the paper traces
 *                      ~1B-instruction intervals).
 */
RunResult runTrace(BranchPredictor &predictor,
                   const std::vector<trace::BranchRecord> &records,
                   uint64_t instructions);

/**
 * Streaming predictor evaluation: a trace::TraceSink that scores each
 * branch as the probe emits it (predict then update, CBP-2016 style),
 * fused with the producing encode instead of replaying a materialised
 * branch trace. Equivalent to runTrace on the same branch sequence.
 *
 * The MPKI denominator is not known until the encode finishes; set it
 * with setInstructions() before reading result() (callers typically use
 * Probe::branchTraceOpSpan()).
 */
class StreamRunner final : public trace::TraceSink
{
  public:
    /** @param predictor Predictor under test (not owned, not reset). */
    explicit StreamRunner(BranchPredictor &predictor)
        : predictor_(&predictor)
    {
        result_.predictor = predictor.name();
    }

    void
    onOp(const trace::TraceOp &) override
    {
    }

    /** Ops are irrelevant here; skip the base class's per-op loop. */
    void
    onOps(const trace::TraceOp *, size_t) override
    {
    }

    void
    onBranch(const trace::BranchRecord &r) override
    {
        bool pred = predictor_->predict(r.pc);
        predictor_->update(r.pc, r.taken, pred);
        ++result_.branches;
        result_.misses += pred != r.taken;
    }

    /** Instruction window the scored branches cover (MPKI denominator). */
    void setInstructions(uint64_t n) { result_.instructions = n; }

    const RunResult &result() const { return result_; }

  private:
    BranchPredictor *predictor_;
    RunResult result_;
};

} // namespace vepro::bpred

#endif // VEPRO_BPRED_RUNNER_HPP
