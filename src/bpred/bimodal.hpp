#ifndef VEPRO_BPRED_BIMODAL_HPP
#define VEPRO_BPRED_BIMODAL_HPP

/**
 * @file
 * Bimodal predictor: per-PC 2-bit counters with no history. The ablation
 * baseline below Gshare.
 */

#include <vector>

#include "bpred/predictor.hpp"

namespace vepro::bpred
{

/** Classic bimodal (Smith) predictor. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(size_t budget_bytes);

    std::string name() const override;
    size_t sizeBytes() const override;
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken, bool predicted) override;
    void reset() override;

  private:
    uint32_t mask_;
    std::vector<uint8_t> table_;
};

} // namespace vepro::bpred

#endif // VEPRO_BPRED_BIMODAL_HPP
