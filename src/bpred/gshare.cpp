#include "bpred/gshare.hpp"

#include <stdexcept>

namespace vepro::bpred
{

namespace
{

int
log2Floor(size_t v)
{
    int b = 0;
    while ((v >> (b + 1)) != 0) {
        ++b;
    }
    return b;
}

} // namespace

GsharePredictor::GsharePredictor(size_t budget_bytes)
{
    if (budget_bytes < 16) {
        throw std::invalid_argument("GsharePredictor: budget too small");
    }
    // Four 2-bit counters per byte.
    index_bits_ = log2Floor(budget_bytes * 4);
    mask_ = (1u << index_bits_) - 1;
    table_.assign(size_t{1} << index_bits_, 2);  // weakly taken
}

std::string
GsharePredictor::name() const
{
    return "gshare-" + std::to_string((table_.size() / 4) / 1024) + "KB";
}

size_t
GsharePredictor::sizeBytes() const
{
    return table_.size() / 4;
}

uint32_t
GsharePredictor::index(uint64_t pc) const
{
    return static_cast<uint32_t>(((pc >> 2) ^ history_) & mask_);
}

bool
GsharePredictor::predict(uint64_t pc)
{
    return table_[index(pc)] >= 2;
}

void
GsharePredictor::update(uint64_t pc, bool taken, bool /*predicted*/)
{
    uint8_t &ctr = table_[index(pc)];
    if (taken && ctr < 3) {
        ++ctr;
    } else if (!taken && ctr > 0) {
        --ctr;
    }
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_;
}

void
GsharePredictor::reset()
{
    std::fill(table_.begin(), table_.end(), 2);
    history_ = 0;
}

} // namespace vepro::bpred
