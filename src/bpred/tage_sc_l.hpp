#ifndef VEPRO_BPRED_TAGE_SC_L_HPP
#define VEPRO_BPRED_TAGE_SC_L_HPP

/**
 * @file
 * TAGE-SC-L (Seznec, "TAGE-SC-L branch predictors again" — the paper's
 * reference [33]): a TAGE core augmented with a loop predictor that
 * captures regular trip counts exactly, and a statistical corrector
 * that overrides TAGE when the weighted history vote disagrees with
 * high confidence.
 */

#include <vector>

#include "bpred/predictor.hpp"
#include "bpred/tage.hpp"

namespace vepro::bpred
{

/** TAGE + statistical corrector + loop predictor. */
class TageScLPredictor : public BranchPredictor
{
  public:
    explicit TageScLPredictor(size_t budget_bytes);

    std::string name() const override;
    size_t sizeBytes() const override;
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken, bool predicted) override;
    void reset() override;

  private:
    struct LoopEntry {
        uint16_t tag = 0;
        uint16_t tripCount = 0;   ///< Learned iterations per execution.
        uint16_t current = 0;     ///< Iterations seen this execution.
        uint8_t confidence = 0;   ///< Saturating confirmations.
        bool valid = false;
    };

    int scIndex(uint64_t pc, int table) const;
    LoopEntry &loopEntryFor(uint64_t pc);

    TagePredictor tage_;
    size_t budget_bytes_;

    // Statistical corrector: GEHL-style signed weight tables over
    // different history segment lengths.
    static constexpr int kScTables = 4;
    static constexpr int kScBits = 10;
    std::vector<std::vector<int8_t>> sc_;
    int sc_threshold_ = 24;

    // Loop predictor.
    std::vector<LoopEntry> loops_;

    uint64_t history_ = 0;

    // Prediction state carried to update().
    bool tage_pred_ = false;
    bool sc_used_ = false;
    bool loop_used_ = false;
    bool loop_pred_ = false;
    int sc_sum_ = 0;
};

} // namespace vepro::bpred

#endif // VEPRO_BPRED_TAGE_SC_L_HPP
