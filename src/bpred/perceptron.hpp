#ifndef VEPRO_BPRED_PERCEPTRON_HPP
#define VEPRO_BPRED_PERCEPTRON_HPP

/**
 * @file
 * Perceptron predictor (Jiménez & Lin): per-PC weight vectors dotted
 * with global history. An ablation point between Gshare and TAGE.
 */

#include <vector>

#include "bpred/predictor.hpp"

namespace vepro::bpred
{

/** Global-history perceptron predictor. */
class PerceptronPredictor : public BranchPredictor
{
  public:
    explicit PerceptronPredictor(size_t budget_bytes);

    std::string name() const override;
    size_t sizeBytes() const override;
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken, bool predicted) override;
    void reset() override;

  private:
    int history_len_;
    int threshold_;
    uint32_t mask_;
    uint64_t history_ = 0;
    std::vector<int8_t> weights_;  ///< rows x (history_len_ + 1 bias).
    int last_output_ = 0;
};

} // namespace vepro::bpred

#endif // VEPRO_BPRED_PERCEPTRON_HPP
