#include "bpred/bimodal.hpp"

#include <stdexcept>

namespace vepro::bpred
{

BimodalPredictor::BimodalPredictor(size_t budget_bytes)
{
    if (budget_bytes < 16) {
        throw std::invalid_argument("BimodalPredictor: budget too small");
    }
    size_t entries = budget_bytes * 4;
    // Round down to a power of two.
    size_t pow2 = 1;
    while (pow2 * 2 <= entries) {
        pow2 *= 2;
    }
    mask_ = static_cast<uint32_t>(pow2 - 1);
    table_.assign(pow2, 2);
}

std::string
BimodalPredictor::name() const
{
    return "bimodal-" + std::to_string(sizeBytes() / 1024) + "KB";
}

size_t
BimodalPredictor::sizeBytes() const
{
    return table_.size() / 4;
}

bool
BimodalPredictor::predict(uint64_t pc)
{
    return table_[(pc >> 2) & mask_] >= 2;
}

void
BimodalPredictor::update(uint64_t pc, bool taken, bool /*predicted*/)
{
    uint8_t &ctr = table_[(pc >> 2) & mask_];
    if (taken && ctr < 3) {
        ++ctr;
    } else if (!taken && ctr > 0) {
        --ctr;
    }
}

void
BimodalPredictor::reset()
{
    std::fill(table_.begin(), table_.end(), 2);
}

} // namespace vepro::bpred
