#ifndef VEPRO_BPRED_TOURNAMENT_HPP
#define VEPRO_BPRED_TOURNAMENT_HPP

/**
 * @file
 * Tournament predictor: a bimodal and a gshare component arbitrated by a
 * per-PC chooser (Alpha 21264 style). Ablation point for the "combining
 * branch predictors" lineage the paper cites via McFarling.
 */

#include <memory>
#include <vector>

#include "bpred/bimodal.hpp"
#include "bpred/gshare.hpp"
#include "bpred/predictor.hpp"

namespace vepro::bpred
{

/** Bimodal/gshare tournament with a 2-bit chooser table. */
class TournamentPredictor : public BranchPredictor
{
  public:
    explicit TournamentPredictor(size_t budget_bytes);

    std::string name() const override;
    size_t sizeBytes() const override;
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken, bool predicted) override;
    void reset() override;

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    uint32_t chooser_mask_;
    std::vector<uint8_t> chooser_;  ///< 2-bit: >=2 selects gshare.

    bool last_bimodal_ = false;
    bool last_gshare_ = false;
};

} // namespace vepro::bpred

#endif // VEPRO_BPRED_TOURNAMENT_HPP
