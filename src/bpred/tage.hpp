#ifndef VEPRO_BPRED_TAGE_HPP
#define VEPRO_BPRED_TAGE_HPP

/**
 * @file
 * TAGE predictor (Seznec): a bimodal base plus tagged tables indexed by
 * geometrically increasing global-history lengths, with useful-bit driven
 * allocation. This is the predictor family the paper shows beating
 * Gshare by a wide margin (8 KB and 64 KB points).
 */

#include <cstdint>
#include <vector>

#include "bpred/predictor.hpp"

namespace vepro::bpred
{

/** Geometry of one TAGE instance. */
struct TageConfig {
    int baseBits;                   ///< log2 entries of the bimodal base.
    int tableBits;                  ///< log2 entries per tagged table.
    int tagBits;                    ///< Tag width.
    std::vector<int> histLengths;   ///< History length per tagged table.
};

/** Standard geometry for a hardware budget (8 KB / 64 KB of the paper,
 *  but any >= 1 KB budget maps to something sensible). */
TageConfig tageGeometry(size_t budget_bytes);

/** TAGE direction predictor. */
class TagePredictor : public BranchPredictor
{
  public:
    explicit TagePredictor(size_t budget_bytes);
    TagePredictor(TageConfig config, size_t budget_bytes);

    std::string name() const override;
    size_t sizeBytes() const override;
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken, bool predicted) override;
    void reset() override;

    const TageConfig &config() const { return config_; }

  private:
    /** Incrementally folded history register (CBP idiom). The shift of
     *  the outgoing bit (origLength % compLength) and the width mask
     *  are fixed per register, so they are precomputed in init() — the
     *  update itself must stay division-free (it runs for every fold of
     *  every table on every branch). */
    struct FoldedHistory {
        uint32_t comp = 0;
        uint32_t mask = 0;
        int compLength = 0;
        int origLength = 0;
        int oldShift = 0;

        void
        init(int comp_len, int orig_len)
        {
            compLength = comp_len;
            origLength = orig_len;
            oldShift = orig_len % comp_len;
            mask = (1u << comp_len) - 1;
        }

        void
        update(uint32_t newest, uint32_t oldest)
        {
            comp = (comp << 1) | newest;
            comp ^= oldest << oldShift;
            comp ^= comp >> compLength;
            comp &= mask;
        }
    };

    struct Entry {
        uint16_t tag = 0;
        int8_t ctr = 0;   ///< 3-bit signed counter, taken when >= 0.
        uint8_t u = 0;    ///< 2-bit usefulness.
    };

    uint32_t tableIndex(uint64_t pc, int t) const;
    uint16_t tableTag(uint64_t pc, int t) const;
    void updateHistories(bool taken);

    /** Upper bound on tagged tables across all geometries. */
    static constexpr int kMaxTables = 8;

    TageConfig config_;
    size_t budget_bytes_;

    std::vector<uint8_t> base_;                  ///< 2-bit counters.
    std::vector<std::vector<Entry>> tables_;

    std::vector<uint8_t> ghr_;   ///< Circular history bits (pow-2 sized).
    uint32_t ghr_mask_ = 0;      ///< ghr_.size() - 1.
    int ghr_pos_ = 0;

    /** The three folded registers of one tagged table, kept adjacent so
     *  a history update touches one run of cache lines. */
    struct FoldSet {
        FoldedHistory idx;
        FoldedHistory tag0;
        FoldedHistory tag1;
    };
    std::vector<FoldSet> folds_;

    /** Precomputed pc-hash shift per table (tableBits - t % tableBits):
     *  the modulo is hoisted out of the per-branch index hash. */
    int idx_shift_[kMaxTables] = {};

    uint32_t lfsr_ = 0xace1u;
    uint64_t update_count_ = 0;

    // Prediction state carried from predict() to update(). The folded
    // histories only advance in update() (after all table reads), so the
    // per-table indices and tags computed once in predict() are exactly
    // what update()'s allocation scan and provider access would
    // recompute — caching them halves the per-branch hashing work.
    int provider_ = -1;
    bool provider_pred_ = false;
    bool alt_pred_ = false;
    uint32_t idx_cache_[kMaxTables] = {};
    uint16_t tag_cache_[kMaxTables] = {};
};

} // namespace vepro::bpred

#endif // VEPRO_BPRED_TAGE_HPP
