#ifndef VEPRO_BPRED_PREDICTOR_HPP
#define VEPRO_BPRED_PREDICTOR_HPP

/**
 * @file
 * CBP-style branch predictor interface.
 *
 * Mirrors the contract of the Championship Branch Prediction (CBP-2016)
 * framework the paper uses: a predictor sees a conditional branch's PC,
 * produces a taken/not-taken guess, and is then told the resolved
 * direction. Predictors are sized by a hardware byte budget so the
 * paper's 2 KB / 32 KB Gshare and 8 KB / 64 KB TAGE points are first-
 * class configurations.
 */

#include <cstdint>
#include <memory>
#include <string>

namespace vepro::bpred
{

/** Abstract conditional-branch direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Human-readable name including the budget, e.g. "gshare-32KB". */
    virtual std::string name() const = 0;

    /** Approximate implemented hardware budget in bytes. */
    virtual size_t sizeBytes() const = 0;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(uint64_t pc) = 0;

    /**
     * Train with the resolved direction. Called exactly once after each
     * predict(), with the same @p pc.
     *
     * @param pc        Branch PC.
     * @param taken     Resolved direction.
     * @param predicted The direction predict() returned (lets
     *                  predictors track their own provider state).
     */
    virtual void update(uint64_t pc, bool taken, bool predicted) = 0;

    /** Reset all tables to their power-on state. */
    virtual void reset() = 0;
};

/**
 * Build a predictor from a spec string: "gshare-2KB", "gshare-32KB",
 * "tage-8KB", "tage-64KB", "tage-sc-l-64KB", "bimodal-4KB",
 * "perceptron-8KB", "tournament-16KB". Any budget with the suffix KB is accepted.
 * @throws std::invalid_argument for unknown kinds or malformed specs.
 */
std::unique_ptr<BranchPredictor> makePredictor(const std::string &spec);

} // namespace vepro::bpred

#endif // VEPRO_BPRED_PREDICTOR_HPP
