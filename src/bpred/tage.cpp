#include "bpred/tage.hpp"

#include <algorithm>
#include <stdexcept>

namespace vepro::bpred
{

TageConfig
tageGeometry(size_t budget_bytes)
{
    if (budget_bytes < 1024) {
        throw std::invalid_argument("tageGeometry: budget too small");
    }
    TageConfig cfg;
    if (budget_bytes < 16 * 1024) {
        // 8 KB class: 1 KB base + 4 tables x 1K entries x 14 bits ~ 7 KB.
        cfg.baseBits = 12;
        cfg.tableBits = 10;
        cfg.tagBits = 9;
        cfg.histLengths = {5, 15, 44, 130};
    } else if (budget_bytes < 128 * 1024) {
        // 64 KB class: 4 KB base + 6 tables x 4K entries x 16 bits ~ 48 KB.
        cfg.baseBits = 14;
        cfg.tableBits = 12;
        cfg.tagBits = 11;
        cfg.histLengths = {4, 9, 21, 48, 110, 250};
    } else {
        cfg.baseBits = 16;
        cfg.tableBits = 13;
        cfg.tagBits = 12;
        cfg.histLengths = {4, 9, 21, 48, 110, 250, 500};
    }
    return cfg;
}

TagePredictor::TagePredictor(size_t budget_bytes)
    : TagePredictor(tageGeometry(budget_bytes), budget_bytes)
{
}

TagePredictor::TagePredictor(TageConfig config, size_t budget_bytes)
    : config_(std::move(config)), budget_bytes_(budget_bytes)
{
    const int ntab = static_cast<int>(config_.histLengths.size());
    if (ntab > kMaxTables) {
        throw std::invalid_argument("TagePredictor: too many tables");
    }
    base_.assign(size_t{1} << config_.baseBits, 2);
    tables_.assign(static_cast<size_t>(ntab),
                   std::vector<Entry>(size_t{1} << config_.tableBits));
    int max_hist = *std::max_element(config_.histLengths.begin(),
                                     config_.histLengths.end());
    // Power-of-two ring so age lookups are a mask, not a wrap branch.
    // Only the newest max_hist bits are ever read, so the extra slack
    // is invisible to the prediction stream.
    size_t ghr_len = 1;
    while (ghr_len < static_cast<size_t>(max_hist) + 8) {
        ghr_len *= 2;
    }
    ghr_.assign(ghr_len, 0);
    ghr_mask_ = static_cast<uint32_t>(ghr_len - 1);

    folds_.resize(static_cast<size_t>(ntab));
    for (int t = 0; t < ntab; ++t) {
        folds_[t].idx.init(config_.tableBits, config_.histLengths[t]);
        folds_[t].tag0.init(config_.tagBits, config_.histLengths[t]);
        folds_[t].tag1.init(config_.tagBits - 1, config_.histLengths[t]);
        idx_shift_[t] = config_.tableBits - (t % config_.tableBits);
    }
}

std::string
TagePredictor::name() const
{
    return "tage-" + std::to_string(budget_bytes_ / 1024) + "KB";
}

size_t
TagePredictor::sizeBytes() const
{
    size_t bits = base_.size() * 2;
    for (const auto &t : tables_) {
        bits += t.size() * (config_.tagBits + 3 + 2);
    }
    return bits / 8;
}

uint32_t
TagePredictor::tableIndex(uint64_t pc, int t) const
{
    uint32_t mask = (1u << config_.tableBits) - 1;
    uint64_t p = pc >> 2;
    return static_cast<uint32_t>(
               (p ^ (p >> idx_shift_[t]) ^ folds_[t].idx.comp)) & mask;
}

uint16_t
TagePredictor::tableTag(uint64_t pc, int t) const
{
    uint32_t mask = (1u << config_.tagBits) - 1;
    uint64_t p = pc >> 2;
    return static_cast<uint16_t>(
        (p ^ folds_[t].tag0.comp ^ (folds_[t].tag1.comp << 1)) & mask);
}

bool
TagePredictor::predict(uint64_t pc)
{
    const int ntab = static_cast<int>(tables_.size());
    // Hash every table once up front; the results stay valid through
    // update() because the folded histories only advance there. The
    // prefetch overlaps the six scattered table-entry loads (the tables
    // span ~96 KB, so the provider scan below otherwise serialises
    // cache misses).
    for (int t = 0; t < ntab; ++t) {
        idx_cache_[t] = tableIndex(pc, t);
        tag_cache_[t] = tableTag(pc, t);
        __builtin_prefetch(&tables_[t][idx_cache_[t]]);
    }
    provider_ = -1;
    int alt = -1;
    for (int t = ntab - 1; t >= 0; --t) {
        if (tables_[t][idx_cache_[t]].tag == tag_cache_[t]) {
            if (provider_ < 0) {
                provider_ = t;
            } else {
                alt = t;
                break;
            }
        }
    }
    bool base_pred = base_[(pc >> 2) & ((1u << config_.baseBits) - 1)] >= 2;
    alt_pred_ = alt >= 0
                    ? tables_[alt][idx_cache_[alt]].ctr >= 0
                    : base_pred;
    if (provider_ >= 0) {
        provider_pred_ = tables_[provider_][idx_cache_[provider_]].ctr >= 0;
        return provider_pred_;
    }
    provider_pred_ = base_pred;
    return base_pred;
}

void
TagePredictor::updateHistories(bool taken)
{
    // ghr_pos_ points at the slot for the newest bit; the ring is a
    // power of two, so ages resolve with a mask even when they wrap.
    const uint32_t newest = taken ? 1u : 0u;
    ghr_[static_cast<size_t>(ghr_pos_)] = static_cast<uint8_t>(newest);
    const int ntab = static_cast<int>(tables_.size());
    for (int t = 0; t < ntab; ++t) {
        const uint32_t oldest = ghr_[static_cast<uint32_t>(
            ghr_pos_ - config_.histLengths[t]) & ghr_mask_];
        FoldSet &f = folds_[t];
        f.idx.update(newest, oldest);
        f.tag0.update(newest, oldest);
        f.tag1.update(newest, oldest);
    }
    ghr_pos_ = static_cast<int>(
        static_cast<uint32_t>(ghr_pos_ + 1) & ghr_mask_);
}

void
TagePredictor::update(uint64_t pc, bool taken, bool predicted)
{
    const int ntab = static_cast<int>(tables_.size());
    ++update_count_;

    // Allocate on a final misprediction if a longer table is available.
    if (predicted != taken && provider_ < ntab - 1) {
        int start = provider_ + 1;
        // Probabilistic start offset (LFSR), as in the reference TAGE.
        lfsr_ = (lfsr_ >> 1) ^ (static_cast<uint32_t>(-(lfsr_ & 1u)) & 0xb400u);
        if (start < ntab - 1 && (lfsr_ & 1)) {
            ++start;
        }
        bool allocated = false;
        for (int t = start; t < ntab; ++t) {
            Entry &e = tables_[t][idx_cache_[t]];
            if (e.u == 0) {
                e.tag = tag_cache_[t];
                e.ctr = taken ? 0 : -1;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            for (int t = start; t < ntab; ++t) {
                Entry &e = tables_[t][idx_cache_[t]];
                if (e.u > 0) {
                    --e.u;
                }
            }
        }
    }

    // Update the provider counter (or the base table).
    if (provider_ >= 0) {
        Entry &e = tables_[provider_][idx_cache_[provider_]];
        if (taken && e.ctr < 3) {
            ++e.ctr;
        } else if (!taken && e.ctr > -4) {
            --e.ctr;
        }
        // Usefulness: provider differed from altpred and was right/wrong.
        if (provider_pred_ != alt_pred_) {
            if (provider_pred_ == taken && e.u < 3) {
                ++e.u;
            } else if (provider_pred_ != taken && e.u > 0) {
                --e.u;
            }
        }
        // The base table still trains slowly as a fallback.
        if (provider_pred_ != taken) {
            uint8_t &b = base_[(pc >> 2) & ((1u << config_.baseBits) - 1)];
            if (taken && b < 3) {
                ++b;
            } else if (!taken && b > 0) {
                --b;
            }
        }
    } else {
        uint8_t &b = base_[(pc >> 2) & ((1u << config_.baseBits) - 1)];
        if (taken && b < 3) {
            ++b;
        } else if (!taken && b > 0) {
            --b;
        }
    }

    // Periodic graceful aging of usefulness bits.
    if ((update_count_ & ((1u << 18) - 1)) == 0) {
        for (auto &table : tables_) {
            for (Entry &e : table) {
                e.u >>= 1;
            }
        }
    }

    updateHistories(taken);
}

void
TagePredictor::reset()
{
    std::fill(base_.begin(), base_.end(), 2);
    for (auto &t : tables_) {
        std::fill(t.begin(), t.end(), Entry{});
    }
    std::fill(ghr_.begin(), ghr_.end(), 0);
    ghr_pos_ = 0;
    for (auto &f : folds_) {
        f.idx.comp = 0;
        f.tag0.comp = 0;
        f.tag1.comp = 0;
    }
    lfsr_ = 0xace1u;
    update_count_ = 0;
    provider_ = -1;
}

} // namespace vepro::bpred
