#ifndef VEPRO_BPRED_GSHARE_HPP
#define VEPRO_BPRED_GSHARE_HPP

/**
 * @file
 * Gshare predictor (McFarling 1993): a single table of 2-bit saturating
 * counters indexed by PC xor global history. One of the two predictor
 * families the paper evaluates (2 KB and 32 KB points).
 */

#include <vector>

#include "bpred/predictor.hpp"

namespace vepro::bpred
{

/** Gshare direction predictor with a byte-budget-derived geometry. */
class GsharePredictor : public BranchPredictor
{
  public:
    /** @param budget_bytes Hardware budget; the table holds 4 counters
     *  per byte, so 2 KB = 8K counters (13 index bits). */
    explicit GsharePredictor(size_t budget_bytes);

    std::string name() const override;
    size_t sizeBytes() const override;
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken, bool predicted) override;
    void reset() override;

    int indexBits() const { return index_bits_; }

  private:
    uint32_t index(uint64_t pc) const;

    int index_bits_;
    uint32_t mask_;
    uint64_t history_ = 0;
    std::vector<uint8_t> table_;  ///< 2-bit counters, one per entry.
};

} // namespace vepro::bpred

#endif // VEPRO_BPRED_GSHARE_HPP
