#include "bpred/tage_sc_l.hpp"

#include <algorithm>
#include <cstdlib>

namespace vepro::bpred
{

TageScLPredictor::TageScLPredictor(size_t budget_bytes)
    : tage_(budget_bytes * 3 / 4), budget_bytes_(budget_bytes)
{
    sc_.assign(kScTables, std::vector<int8_t>(size_t{1} << kScBits, 0));
    loops_.assign(256, LoopEntry{});
}

std::string
TageScLPredictor::name() const
{
    return "tage-sc-l-" + std::to_string(budget_bytes_ / 1024) + "KB";
}

size_t
TageScLPredictor::sizeBytes() const
{
    return tage_.sizeBytes() + kScTables * (size_t{1} << kScBits) +
           loops_.size() * 8;
}

int
TageScLPredictor::scIndex(uint64_t pc, int table) const
{
    // Each table folds a geometrically longer history segment.
    static const int lengths[kScTables] = {3, 8, 16, 27};
    uint64_t seg = history_ & ((1ULL << lengths[table]) - 1);
    uint64_t h = (pc >> 2) ^ (seg * 0x9e3779b97f4a7c15ULL >> 17) ^
                 (static_cast<uint64_t>(table) << 7);
    return static_cast<int>(h & ((1u << kScBits) - 1));
}

TageScLPredictor::LoopEntry &
TageScLPredictor::loopEntryFor(uint64_t pc)
{
    size_t idx = (pc >> 2) % loops_.size();
    return loops_[idx];
}

bool
TageScLPredictor::predict(uint64_t pc)
{
    tage_pred_ = tage_.predict(pc);

    // Loop predictor: confident entries predict the trip-count exit.
    loop_used_ = false;
    LoopEntry &loop = loopEntryFor(pc);
    uint16_t tag = static_cast<uint16_t>((pc >> 10) & 0xffff);
    if (loop.valid && loop.tag == tag && loop.confidence >= 7 &&
        loop.tripCount > 2) {
        loop_used_ = true;
        loop_pred_ = loop.current + 1 < loop.tripCount;
        return loop_pred_;
    }

    // Statistical corrector vote; the TAGE core's opinion carries real
    // weight so the corrector only overrides on strong history evidence.
    sc_sum_ = tage_pred_ ? 40 : -40;
    for (int t = 0; t < kScTables; ++t) {
        sc_sum_ += sc_[static_cast<size_t>(t)]
                      [static_cast<size_t>(scIndex(pc, t))];
    }
    sc_used_ = std::abs(sc_sum_) >= sc_threshold_ &&
               (sc_sum_ >= 0) != tage_pred_;
    return sc_used_ ? sc_sum_ >= 0 : tage_pred_;
}

void
TageScLPredictor::update(uint64_t pc, bool taken, bool predicted)
{
    // Loop predictor training.
    LoopEntry &loop = loopEntryFor(pc);
    uint16_t tag = static_cast<uint16_t>((pc >> 10) & 0xffff);
    if (!loop.valid || loop.tag != tag) {
        // (Re)allocate on a not-taken outcome (a loop exit candidate).
        if (!taken) {
            loop = LoopEntry{};
            loop.tag = tag;
            loop.valid = true;
        }
    } else if (taken) {
        if (loop.current < 0xfffe) {
            ++loop.current;
        }
    } else {
        uint16_t trip = static_cast<uint16_t>(loop.current + 1);
        if (loop.tripCount == trip) {
            if (loop.confidence < 7) {
                ++loop.confidence;
            }
        } else {
            loop.tripCount = trip;
            loop.confidence = 0;
        }
        loop.current = 0;
    }

    // Statistical corrector training: on mispredicts or weak votes.
    if (!loop_used_ && predicted != taken) {
        for (int t = 0; t < kScTables; ++t) {
            int8_t &w = sc_[static_cast<size_t>(t)]
                           [static_cast<size_t>(scIndex(pc, t))];
            if (taken && w < 31) {
                ++w;
            } else if (!taken && w > -32) {
                --w;
            }
        }
    }

    // The TAGE core always trains with its own prediction.
    tage_.update(pc, taken, tage_pred_);
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
TageScLPredictor::reset()
{
    tage_.reset();
    for (auto &table : sc_) {
        std::fill(table.begin(), table.end(), 0);
    }
    std::fill(loops_.begin(), loops_.end(), LoopEntry{});
    history_ = 0;
}

} // namespace vepro::bpred
