#ifndef VEPRO_BACKEND_PROFILE_HPP
#define VEPRO_BACKEND_PROFILE_HPP

/**
 * @file
 * Named machine profiles: the registry that turns the fully
 * parameterised core model into concrete *backends* a fleet can buy.
 *
 * The paper measures one machine (a Broadwell Xeon) and concludes that
 * encode-time differences are instruction-count differences, not IPC
 * differences. "Where to Encode" (Mathá et al.) shows the cost/perf
 * answer flips between x86 and Arm EC2 instances, and the NVENC
 * longitudinal study shows fixed-function encoders trade latency and
 * energy on yet another axis. A MachineProfile bundles everything one
 * backend needs to enter that comparison:
 *
 *  - a uarch::CoreConfig (geometry the simulator runs) and a clock,
 *    replacing the previously hard-coded 3.0 GHz farm clock;
 *  - a core count (the task-graph speedup point for multi-core servers);
 *  - an energy model: per-event nanojoule weights over the counters
 *    CoreStats already keeps, plus static watts charged over cycles /
 *    clock;
 *  - an hourly price, so vepro-serve can rank backend mixes by
 *    $/encode-at-SLA.
 *
 * Fixed-function backends (Kind::Fixed, e.g. "hw-enc") bypass the core
 * model entirely: service time and energy are a constant per 16x16
 * block plus a fixed per-encode setup charge — the NVENC-style shape
 * where encode latency is resolution-proportional and almost
 * preset-independent.
 *
 * Energy formula (Kind::Core), evaluated in exactly this order — the
 * vepro-check energy oracle re-implements it independently and demands
 * bit-identical doubles:
 *
 *     nJ      = instructions x instructionNj
 *             + (l1dMisses + l1iMisses) x l1MissNj
 *             + l2Misses  x l2MissNj
 *             + llcMisses x llcMissNj
 *             + mispredicts x mispredictNj
 *     dynamic = nJ x 1e-9
 *     static  = staticWatts x cycles / (clockGhz x 1e9)
 *     joules  = dynamic + static
 */

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/core.hpp"

namespace vepro::backend
{

/** The profile every backend-less spec and config resolves to: the
 *  paper's measurement machine. */
inline constexpr const char *kDefaultProfile = "xeon-bdw";

/** Per-event energy weights (nanojoules) plus static power. The
 *  per-block fields apply only to Kind::Fixed profiles. */
struct EnergyModel {
    double instructionNj = 0.0;  ///< Per retired instruction.
    double l1MissNj = 0.0;       ///< Per L1D or L1I miss (L2 access).
    double l2MissNj = 0.0;       ///< Per L2 miss (LLC access).
    double llcMissNj = 0.0;      ///< Per LLC miss (DRAM access).
    double mispredictNj = 0.0;   ///< Per branch mispredict (flush work).
    double staticWatts = 0.0;    ///< Leakage/uncore, charged over time.

    // Fixed-function backends only:
    double blockNj = 0.0;        ///< Per encoded 16x16 block.
    double setupJ = 0.0;         ///< Per encode (session setup/teardown).
};

/** How a profile produces encode costs. */
enum class Kind {
    Core,   ///< Simulated on the out-of-order core model.
    Fixed,  ///< Fixed-function: constant per-block cost, no core sim.
};

/** One named backend. */
struct MachineProfile {
    std::string name;
    std::string description;
    Kind kind = Kind::Core;

    /** Core geometry the simulator runs (Kind::Core only). */
    uarch::CoreConfig core;
    double clockGhz = 3.0;
    /** Cores per server (the sched::schedule task-graph speedup point);
     *  1 for fixed-function backends (one encode session at a time). */
    int cores = 8;

    /** On-demand price per server-hour (USD). */
    double pricePerHour = 0.0;

    EnergyModel energy;

    // Fixed-function timing (Kind::Fixed): service seconds =
    // setupSeconds + blocks x secondsPerBlock, where blocks counts the
    // full-scale clip's 16x16 luma blocks across all frames.
    double setupSeconds = 0.0;
    double secondsPerBlock = 0.0;
};

/** Registry order: default profile first. Stable across runs — fleet
 *  tables iterate it. */
const std::vector<std::string> &profileNames();

/** True iff @p name is a registered profile. */
bool isProfile(const std::string &name);

/** Look up a profile. @throws std::out_of_range on unknown names, with
 *  the known names listed in the message. */
const MachineProfile &profile(const std::string &name);

/**
 * Resolve the profile a backend field names: the empty string (the
 * JobSpec/RunScale default, kept off serialized keys for store
 * compatibility) means kDefaultProfile.
 */
const MachineProfile &resolveProfile(const std::string &name_or_empty);

/**
 * Energy of one measured run on a Kind::Core profile, in joules: the
 * documented per-event + static formula over the counters @p stats
 * already holds. @throws std::invalid_argument for Kind::Fixed.
 */
double energyJoules(const MachineProfile &p, const uarch::CoreStats &stats);

/** Service seconds of a Kind::Fixed profile for @p blocks 16x16 blocks.
 *  @throws std::invalid_argument for Kind::Core. */
double fixedServiceSeconds(const MachineProfile &p, uint64_t blocks);

/** Energy (joules) of a Kind::Fixed profile for @p blocks blocks.
 *  @throws std::invalid_argument for Kind::Core. */
double fixedEnergyJoules(const MachineProfile &p, uint64_t blocks);

} // namespace vepro::backend

#endif // VEPRO_BACKEND_PROFILE_HPP
