#include "backend/profile.hpp"

#include <stdexcept>

namespace vepro::backend
{

namespace
{

/**
 * Weight provenance (DESIGN.md section 15): per-event energies are in
 * the range published for server-class parts (instruction ~0.3-0.5 nJ,
 * DRAM access tens of nJ, mispredict a few nJ of flushed work); the Arm
 * profile runs every event cheaper and leaks less, the hardware encoder
 * charges a few microjoules per coded block. Absolute joules are
 * model-grade, not measurements — what the fleet sweep consumes is the
 * *ratio* between backends, which these ratios (x86 vs Arm vs ASIC)
 * carry.
 */
MachineProfile
makeXeonBdw()
{
    MachineProfile p;
    p.name = kDefaultProfile;
    p.description =
        "the paper's Broadwell Xeon (E5-2650 v4 class): 4-wide OoO, "
        "192-entry ROB, 32K/32K/256K/30M caches";
    p.kind = Kind::Core;
    p.core = uarch::xeonBdwConfig();
    p.clockGhz = 3.0;  // The farm clock previously hard-coded in serve.
    p.cores = 8;
    p.pricePerHour = 0.40;
    p.energy.instructionNj = 0.50;
    p.energy.l1MissNj = 2.0;
    p.energy.l2MissNj = 6.0;
    p.energy.llcMissNj = 60.0;
    p.energy.mispredictNj = 4.0;
    p.energy.staticWatts = 35.0;
    return p;
}

MachineProfile
makeGravitonLike()
{
    MachineProfile p;
    p.name = "graviton-like";
    p.description =
        "Arm server core (Neoverse class): wider issue, bigger ROB, "
        "larger but slower caches, lower clock; NEON kernel path on Arm "
        "hosts";
    p.kind = Kind::Core;
    p.core = uarch::gravitonLikeConfig();
    p.clockGhz = 2.6;
    p.cores = 8;
    p.pricePerHour = 0.31;  // The Arm discount "Where to Encode" prices in.
    p.energy.instructionNj = 0.34;
    p.energy.l1MissNj = 1.6;
    p.energy.l2MissNj = 5.0;
    p.energy.llcMissNj = 48.0;
    p.energy.mispredictNj = 3.0;
    p.energy.staticWatts = 22.0;
    return p;
}

MachineProfile
makeHwEnc()
{
    MachineProfile p;
    p.name = "hw-enc";
    p.description =
        "fixed-function hardware encoder (NVENC class): per-block "
        "constant cost plus session setup, preset-independent";
    p.kind = Kind::Fixed;
    p.clockGhz = 1.5;  // Informational; no core model runs.
    p.cores = 1;       // One encode session at a time per device.
    p.pricePerHour = 0.55;
    // 1080p at ~500 fps: a 150-frame clip is ~1.22M 16x16 blocks in
    // ~0.3 s of encode, plus ~50 ms of session setup.
    p.setupSeconds = 0.05;
    p.secondsPerBlock = 2.5e-7;
    p.energy.blockNj = 4000.0;  // ~4 uJ/block: ~15 W while encoding.
    p.energy.setupJ = 0.5;
    return p;
}

const std::vector<MachineProfile> &
registry()
{
    static const std::vector<MachineProfile> profiles = {
        makeXeonBdw(), makeGravitonLike(), makeHwEnc()};
    return profiles;
}

} // namespace

const std::vector<std::string> &
profileNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const MachineProfile &p : registry()) {
            out.push_back(p.name);
        }
        return out;
    }();
    return names;
}

bool
isProfile(const std::string &name)
{
    for (const MachineProfile &p : registry()) {
        if (p.name == name) {
            return true;
        }
    }
    return false;
}

const MachineProfile &
profile(const std::string &name)
{
    for (const MachineProfile &p : registry()) {
        if (p.name == name) {
            return p;
        }
    }
    std::string known;
    for (const std::string &n : profileNames()) {
        known += known.empty() ? n : (", " + n);
    }
    throw std::out_of_range("backend: unknown profile '" + name +
                            "' (known: " + known + ")");
}

const MachineProfile &
resolveProfile(const std::string &name_or_empty)
{
    return profile(name_or_empty.empty() ? kDefaultProfile : name_or_empty);
}

double
energyJoules(const MachineProfile &p, const uarch::CoreStats &stats)
{
    if (p.kind != Kind::Core) {
        throw std::invalid_argument(
            "backend: energyJoules needs a core profile, not " + p.name);
    }
    // Evaluation order is part of the contract (see profile.hpp): the
    // check oracle reproduces it term by term and compares bit-exactly.
    const double nj =
        static_cast<double>(stats.instructions) * p.energy.instructionNj +
        static_cast<double>(stats.l1dMisses + stats.l1iMisses) *
            p.energy.l1MissNj +
        static_cast<double>(stats.l2Misses) * p.energy.l2MissNj +
        static_cast<double>(stats.llcMisses) * p.energy.llcMissNj +
        static_cast<double>(stats.mispredicts) * p.energy.mispredictNj;
    const double dynamicJ = nj * 1e-9;
    const double staticJ = p.energy.staticWatts *
                           static_cast<double>(stats.cycles) /
                           (p.clockGhz * 1e9);
    return dynamicJ + staticJ;
}

double
fixedServiceSeconds(const MachineProfile &p, uint64_t blocks)
{
    if (p.kind != Kind::Fixed) {
        throw std::invalid_argument(
            "backend: fixedServiceSeconds needs a fixed-function "
            "profile, not " + p.name);
    }
    return p.setupSeconds +
           static_cast<double>(blocks) * p.secondsPerBlock;
}

double
fixedEnergyJoules(const MachineProfile &p, uint64_t blocks)
{
    if (p.kind != Kind::Fixed) {
        throw std::invalid_argument(
            "backend: fixedEnergyJoules needs a fixed-function profile, "
            "not " + p.name);
    }
    return p.energy.setupJ +
           static_cast<double>(blocks) * p.energy.blockNj * 1e-9;
}

} // namespace vepro::backend
