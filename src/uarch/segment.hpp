#ifndef VEPRO_UARCH_SEGMENT_HPP
#define VEPRO_UARCH_SEGMENT_HPP

/**
 * @file
 * Segment-parallel core simulation: split one trace at block boundaries
 * into N segments, simulate each on its own thread, and stitch the
 * statistics deterministically in segment order.
 *
 * Pipeline parallelism (trace::PipelineMux) is capped by the slowest
 * sink — usually StreamCore itself. SegmentSim breaks that wall: it
 * captures the trace as a sequence of TraceBlocks (taking ownership of
 * each block via the onBlock move path, so capture adds no copying),
 * then simulates N contiguous segments concurrently, each on a private
 * StreamCore.
 *
 * Every segment after the first replays a configurable warmup prefix —
 * the last `warmupBlocks` blocks of the preceding segment — before its
 * own span, so caches and the TAGE predictor are warm at the
 * measurement boundary; the prefix's counters are then discarded with
 * StreamCore::resetStats(). Stitched counters are exact where the
 * simulation is history-free (instructions, retiring slots, conditional
 * branches, L1D accesses) and carry a warmup-bounded error elsewhere
 * (cycles, miss and mispredict counts): the error shrinks as
 * warmupBlocks grows and collapses to zero at segments=1, which is
 * bit-identical to a sequential StreamCore run. The residual floor is
 * the boundary drain bubble — each segment starts from an empty
 * pipeline window. See DESIGN.md §13 for the bound.
 *
 * Determinism: segment boundaries depend only on the block sequence and
 * the segment count, each segment's simulation is single-threaded and
 * self-contained, and stitching sums per-segment stats in segment
 * order — so the result is identical across runs, thread counts, and
 * scheduling, for a fixed (trace, segments, warmupBlocks).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/sink.hpp"
#include "uarch/core.hpp"

namespace vepro::uarch
{

/** Configuration of one segment-parallel run. */
struct SegmentSimConfig {
    CoreConfig core;
    /**
     * Segment count. 0 = auto (one per available hardware thread, via
     * trace::resolveJobs); clamped to the number of captured blocks.
     * 1 = sequential, bit-identical to a plain StreamCore.
     */
    int segments = 0;
    /** Warmup prefix replayed before each segment (in TraceBlocks of
     *  TraceBlock::kOps ops); counters of the prefix are discarded. */
    int warmupBlocks = 8;
    /** Worker threads for the segment loop. 0 = auto; clamped to the
     *  segment count. Thread count never changes the stitched result. */
    int jobs = 0;
};

/**
 * Trace sink running the segment-parallel simulation described in the
 * file docs. Feed it a trace (directly from a Probe, or as whole
 * blocks), then flush(); stats() holds the stitched result.
 *
 * Capture materialises the trace (O(trace length) memory, in blocks) —
 * the price of simulating the middle of the trace before its start has
 * finished. Use PipelineMux when O(1) trace memory matters more than
 * core-model throughput.
 */
class SegmentSim final : public trace::TraceSink
{
  public:
    explicit SegmentSim(const SegmentSimConfig &config);
    ~SegmentSim() override;

    SegmentSim(const SegmentSim &) = delete;
    SegmentSim &operator=(const SegmentSim &) = delete;

    void onOp(const trace::TraceOp &op) override;
    void onOps(const trace::TraceOp *ops, size_t n) override;
    void onBranch(const trace::BranchRecord &branch) override;
    void onKernel(uint64_t site) override;
    /** Takes ownership of the block (moves it into the capture). */
    void onBlock(trace::TraceBlock &&block) override;

    /** Run the segments and stitch the statistics. */
    void flush() override;

    bool finished() const;

    /** Stitched whole-trace statistics; valid once flush() has run. */
    const CoreStats &stats() const;

    /** Segments actually simulated (after clamping); valid post-flush. */
    int segmentsUsed() const;
    /** Captured trace blocks. */
    size_t blockCount() const;
    /** Total warmup ops replayed and discarded across segments. */
    uint64_t warmupOps() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace vepro::uarch

#endif // VEPRO_UARCH_SEGMENT_HPP
