#include "uarch/segment.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "trace/pipeline.hpp"

namespace vepro::uarch
{

using trace::TraceBlock;

struct SegmentSim::Impl {
    SegmentSimConfig config;
    std::vector<TraceBlock> blocks;
    TraceBlock stage;
    CoreStats stitched;
    bool finished = false;
    int segments_used = 0;
    uint64_t warmup_ops = 0;

    explicit Impl(const SegmentSimConfig &cfg) : config(cfg)
    {
        stage.reserveStandard();
    }

    void
    publishStage()
    {
        if (stage.empty()) {
            return;
        }
        blocks.push_back(std::move(stage));
        stage = TraceBlock{};
        stage.reserveStandard();
    }

    void
    capture(TraceBlock &&block)
    {
        publishStage();
        blocks.push_back(std::move(block));
    }

    /** Simulate blocks [first, last) on a fresh core, with the warmup
     *  prefix [wfirst, first) replayed and discarded beforehand. */
    CoreStats
    runSegment(size_t wfirst, size_t first, size_t last,
               uint64_t *warmup_count) const
    {
        StreamCore core(config.core);
        if (wfirst < first) {
            for (size_t b = wfirst; b < first; ++b) {
                replayBlock(blocks[b], core);
                *warmup_count += blocks[b].ops.size();
            }
            core.resetStats();
        }
        for (size_t b = first; b < last; ++b) {
            replayBlock(blocks[b], core);
        }
        core.flush();
        return core.stats();
    }

    void
    stitch(const CoreStats &s)
    {
        stitched.cycles += s.cycles;
        stitched.instructions += s.instructions;
        stitched.slots.retiring += s.slots.retiring;
        stitched.slots.badSpec += s.slots.badSpec;
        stitched.slots.frontend += s.slots.frontend;
        stitched.slots.backend += s.slots.backend;
        stitched.slots.backendMemory += s.slots.backendMemory;
        stitched.slots.backendCore += s.slots.backendCore;
        stitched.stalls.rs += s.stalls.rs;
        stitched.stalls.rob += s.stalls.rob;
        stitched.stalls.loadBuf += s.stalls.loadBuf;
        stitched.stalls.storeBuf += s.stalls.storeBuf;
        stitched.condBranches += s.condBranches;
        stitched.mispredicts += s.mispredicts;
        stitched.l1iMisses += s.l1iMisses;
        stitched.l1dAccesses += s.l1dAccesses;
        stitched.l1dMisses += s.l1dMisses;
        stitched.l2Misses += s.l2Misses;
        stitched.llcMisses += s.llcMisses;
        stitched.invalidations += s.invalidations;
    }

    void
    run()
    {
        publishStage();
        const size_t nblocks = blocks.size();
        int want = config.segments > 0
                       ? config.segments
                       : trace::resolveJobs(config.segments);
        segments_used = static_cast<int>(std::min<size_t>(
            std::max(want, 1), std::max<size_t>(nblocks, 1)));
        const size_t nseg = static_cast<size_t>(segments_used);
        const size_t warm =
            config.warmupBlocks > 0
                ? static_cast<size_t>(config.warmupBlocks)
                : 0;

        // Contiguous even split at block boundaries: segment i covers
        // [i*n/S, (i+1)*n/S) — a pure function of (n, S).
        std::vector<CoreStats> results(nseg);
        std::vector<uint64_t> warm_counts(nseg, 0);
        auto runOne = [&](size_t i) {
            const size_t first = i * nblocks / nseg;
            const size_t last = (i + 1) * nblocks / nseg;
            const size_t wfirst = first >= warm ? first - warm : 0;
            results[i] =
                runSegment(i == 0 ? first : wfirst, first, last,
                           &warm_counts[i]);
        };

        const int jobs = std::min<int>(trace::resolveJobs(config.jobs),
                                       segments_used);
        if (jobs <= 1 || nseg <= 1) {
            for (size_t i = 0; i < nseg; ++i) {
                runOne(i);
            }
        } else {
            // uarch sits below core::parallelFor in the layering, so
            // the segment loop carries its own claim-by-index pool.
            std::atomic<size_t> next{0};
            std::vector<std::exception_ptr> errors(
                static_cast<size_t>(jobs));
            std::vector<std::thread> pool;
            pool.reserve(static_cast<size_t>(jobs));
            for (int w = 0; w < jobs; ++w) {
                pool.emplace_back([&, w] {
                    try {
                        for (;;) {
                            const size_t i = next.fetch_add(
                                1, std::memory_order_relaxed);
                            if (i >= nseg) {
                                return;
                            }
                            runOne(i);
                        }
                    } catch (...) {
                        errors[static_cast<size_t>(w)] =
                            std::current_exception();
                        // Drain remaining claims so siblings finish.
                        while (next.fetch_add(1,
                                              std::memory_order_relaxed) <
                               nseg) {
                        }
                    }
                });
            }
            for (std::thread &t : pool) {
                t.join();
            }
            for (std::exception_ptr &err : errors) {
                if (err) {
                    std::rethrow_exception(err);
                }
            }
        }

        // Stitch in segment order: the sum is independent of which
        // thread simulated which segment, and of completion order.
        for (size_t i = 0; i < nseg; ++i) {
            stitch(results[i]);
            warmup_ops += warm_counts[i];
        }
        finished = true;
    }
};

SegmentSim::SegmentSim(const SegmentSimConfig &config)
    : impl_(std::make_unique<Impl>(config))
{
}

SegmentSim::~SegmentSim() = default;

void
SegmentSim::onOp(const trace::TraceOp &op)
{
    TraceBlock &stage = impl_->stage;
    if (stage.ops.size() >= TraceBlock::kOps) {
        impl_->publishStage();
    }
    stage.ops.push_back(op);
}

void
SegmentSim::onOps(const trace::TraceOp *ops, size_t n)
{
    TraceBlock &stage = impl_->stage;
    while (n > 0) {
        if (stage.ops.size() >= TraceBlock::kOps) {
            impl_->publishStage();
        }
        const size_t take =
            std::min(n, TraceBlock::kOps - stage.ops.size());
        stage.ops.insert(stage.ops.end(), ops, ops + take);
        ops += take;
        n -= take;
    }
}

void
SegmentSim::onBranch(const trace::BranchRecord &branch)
{
    TraceBlock::Event ev;
    ev.pos = static_cast<uint32_t>(impl_->stage.ops.size());
    ev.kind = TraceBlock::Event::Branch;
    ev.taken = branch.taken;
    ev.value = branch.pc;
    impl_->stage.events.push_back(ev);
    if (impl_->stage.events.size() >= TraceBlock::kOps) {
        impl_->publishStage();
    }
}

void
SegmentSim::onKernel(uint64_t site)
{
    TraceBlock::Event ev;
    ev.pos = static_cast<uint32_t>(impl_->stage.ops.size());
    ev.kind = TraceBlock::Event::Kernel;
    ev.value = site;
    impl_->stage.events.push_back(ev);
    if (impl_->stage.events.size() >= TraceBlock::kOps) {
        impl_->publishStage();
    }
}

void
SegmentSim::onBlock(TraceBlock &&block)
{
    impl_->capture(std::move(block));
}

void
SegmentSim::flush()
{
    if (impl_->finished) {
        return;
    }
    impl_->run();
}

bool
SegmentSim::finished() const
{
    return impl_->finished;
}

const CoreStats &
SegmentSim::stats() const
{
    return impl_->stitched;
}

int
SegmentSim::segmentsUsed() const
{
    return impl_->segments_used;
}

size_t
SegmentSim::blockCount() const
{
    return impl_->blocks.size() + (impl_->stage.empty() ? 0 : 1);
}

uint64_t
SegmentSim::warmupOps() const
{
    return impl_->warmup_ops;
}

} // namespace vepro::uarch
