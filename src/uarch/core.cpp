#include "uarch/core.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "uarch/ring.hpp"

namespace vepro::uarch
{

using trace::OpClass;
using trace::TraceOp;
using trace::isLoad;
using trace::isStore;
using trace::kNumOpClasses;

namespace
{

constexpr uint64_t kPending = std::numeric_limits<uint64_t>::max();
constexpr size_t kCompleteRing = 4096;

/**
 * Streaming high-water mark: once this many ops are queued ahead of the
 * fetch stage, the engine simulates until the backlog drains. Bounds
 * peak trace memory of a fused encode at ~kBacklog * sizeof(TraceOp)
 * regardless of trace length.
 */
constexpr size_t kBacklog = 32768;

/** Execution port classes. */
enum class Port : uint8_t { Alu, Mul, Simd, Load, Store, Branch };
constexpr int kNumPorts = 6;

/**
 * Static issue properties of an op class, precomputed so the per-cycle
 * reservation-station rescan does no switch dispatch: execution port,
 * execution latency (loads get theirs from the cache model), and the
 * load/store buffer flags.
 */
struct OpInfo {
    uint8_t port;
    uint8_t latency;
    bool load;
    bool store;
};

constexpr OpInfo
opInfoOf(OpClass cls)
{
    Port port = Port::Alu;
    uint8_t lat = 1;
    switch (cls) {
      case OpClass::Mul:
        port = Port::Mul;
        lat = 3;
        break;
      case OpClass::Div:
        port = Port::Mul;
        lat = 20;
        break;
      case OpClass::Load:
      case OpClass::SimdLoad:
        port = Port::Load;
        break;
      case OpClass::Store:
      case OpClass::SimdStore:
        port = Port::Store;
        break;
      case OpClass::BranchCond:
      case OpClass::BranchUncond:
        port = Port::Branch;
        break;
      case OpClass::SimdMul:
        port = Port::Simd;
        lat = 5;
        break;
      case OpClass::SimdAlu:
      case OpClass::SseAlu:
        port = Port::Simd;
        break;
      default:
        break;
    }
    return {static_cast<uint8_t>(port), lat, isLoad(cls), isStore(cls)};
}

constexpr std::array<OpInfo, kNumOpClasses> kOpInfo = [] {
    std::array<OpInfo, kNumOpClasses> t{};
    for (int i = 0; i < kNumOpClasses; ++i) {
        t[static_cast<size_t>(i)] = opInfoOf(static_cast<OpClass>(i));
    }
    return t;
}();

struct Uop {
    uint64_t idx = 0;  ///< Global dynamic-op index (foreign ops included).
    OpClass cls = OpClass::Alu;
    uint64_t pc = 0;
    uint64_t addr = 0;
    uint8_t dep1 = 0;
    uint8_t dep2 = 0;
    bool mispred = false;
};

} // namespace

/**
 * The simulation engine. One stepCycle() is the cycle loop body of the
 * old batch replay, verbatim, with the trace vector replaced by a
 * sliding ring-buffer window: consumed ops are released once the fetch
 * index passes them. A cycle is only stepped when the fetch stage is
 * guaranteed not to under-run mid-cycle — at least `width` non-foreign
 * ops queued — or when flushing, where end-of-buffer genuinely is
 * end-of-trace. That guarantee makes the streamed simulation
 * cycle-for-cycle identical to batch replay, at any delivery
 * granularity.
 *
 * Scheduling structures (see DESIGN.md §11): the trace window, fetch
 * queue, ROB, and store-drain queue are power-of-two rings; in-flight
 * load completions sit in a binary min-heap (the old implementation
 * re-sorted a deque on every issued load); and the RS rescan reads
 * precomputed port/latency/flags from each entry instead of re-deriving
 * them from the op class every cycle.
 */
struct StreamCore::Impl {
    explicit Impl(const CoreConfig &cfg)
        : config(cfg), predictor(bpred::makePredictor(cfg.predictorSpec)),
          mem(cfg.mem), complete(kCompleteRing, 0),
          fetchq(static_cast<size_t>(cfg.width) * 4),
          fetchq_cap(static_cast<size_t>(cfg.width) * 4), buf(kBacklog)
    {
        if (cfg.width < 1 || cfg.robSize < cfg.width) {
            throw std::invalid_argument("Core: bad geometry");
        }
        if (cfg.rsSize > static_cast<int>(kMaskWords * 64)) {
            throw std::invalid_argument("Core: rsSize above 256");
        }
        rs.reserve(static_cast<size_t>(cfg.rsSize));
        // The completion ring must reach past the slowest possible
        // data access so a future slot is never reused before it fires.
        const int worst_lat =
            std::max({cfg.mem.memoryLatency, cfg.mem.l1d.hitLatency,
                      cfg.mem.l2.hitLatency, cfg.mem.llc.hitLatency, 1});
        size_t load_ring = 64;
        while (load_ring <= static_cast<size_t>(worst_lat)) {
            load_ring *= 2;
        }
        load_done_cnt.assign(load_ring, 0);
        load_ring_mask = load_ring - 1;
        pos_by_idx.assign(kCompleteRing, 0);
        cal_head.assign(kCalRing, kPending);
        cal_next.assign(kCompleteRing, kPending);
        waiter_head.assign(kWaitRing, kPending);
        wnext1.assign(kWaitRing, kPending);
        wnext2.assign(kWaitRing, kPending);
        rob_cap = static_cast<size_t>(cfg.robSize);
        port_quota[static_cast<int>(Port::Alu)] = cfg.aluPorts;
        port_quota[static_cast<int>(Port::Mul)] = cfg.mulPorts;
        port_quota[static_cast<int>(Port::Simd)] = cfg.simdPorts;
        port_quota[static_cast<int>(Port::Load)] = cfg.loadPorts;
        port_quota[static_cast<int>(Port::Store)] = cfg.storePorts;
        port_quota[static_cast<int>(Port::Branch)] = cfg.branchPorts;
    }

    CoreConfig config;
    std::unique_ptr<bpred::BranchPredictor> predictor;
    Hierarchy mem;
    CoreStats stats;

    std::vector<uint64_t> complete;
    int port_quota[kNumPorts] = {};

    // Front end.
    Ring<Uop> fetchq;
    size_t fetchq_cap;
    uint64_t redirect_until = 0;
    uint64_t icache_until = 0;
    uint64_t last_line = ~0ull;
    bool pending_redirect = false;

    // Input window: ops [base, base + buf.size()); fetch index pos.
    Ring<TraceOp> buf;
    uint64_t base = 0;
    uint64_t pos = 0;
    uint64_t nf_avail = 0;  ///< Non-foreign ops in [pos, end).
    uint64_t n_instr = 0;   ///< Non-foreign ops received in total.

    // Back end.
    struct RobEntry {
        uint64_t idx;
        uint64_t addr;
        bool store;
    };
    Ring<RobEntry> rob;
    size_t rob_cap = 0;
    struct RsEntry {
        uint64_t idx;
        uint64_t addr;
        uint64_t alloc_cycle;
        /**
         * Cycle at which both producers have completed, or kPending if a
         * producer has not issued yet. Completion-ring slots referenced
         * by a live entry are never overwritten (the ROB window is far
         * smaller than the ring), so once resolved the value a live read
         * would return can never change and caching it is exact.
         */
        uint64_t ready_at;
        uint8_t dep1;
        uint8_t dep2;
        uint8_t port;
        uint8_t latency;
        uint8_t wait_cnt;  ///< Producers not yet issued (0 when resolved)
        bool load;
        bool mispred;
    };
    std::vector<RsEntry> rs;
    /**
     * Event-driven wakeup, so the issue scan touches only entries that
     * can actually issue instead of walking the whole station every
     * cycle. Three pieces cooperate:
     *
     *  - `cal`, a calendar ring bucketed by cycle: when an entry's ready
     *    time becomes known (at allocation, or when its last producer
     *    issues), its op index is filed under
     *    max(ready_at, alloc_cycle + 1). Times beyond the ring period
     *    simply re-file on fire, so the ring size is a performance
     *    knob, not a correctness bound.
     *  - `eligible`, a bitmask over RS *positions*: set when the
     *    calendar fires, cleared on issue. Port-starved entries keep
     *    their bit and retry next cycle, exactly like the full scan.
     *  - `pending`, a bitmask of entries whose ready time is unknown
     *    (some producer unissued). Producers complete only by issuing,
     *    so these are re-resolved only after scans that issued.
     *
     * Scanning ascending set bits of `eligible` visits entries in
     * vector order, and issues swap-remove both the vector and the mask
     * bits, so the visit order — which decides who wins a contended
     * port — is exactly the full scan's. A cycle with no set bits
     * provably issues nothing and skips the scan outright.
     */
    static constexpr size_t kCalRing = 512;
    static constexpr size_t kMaskWords = 4;  // supports rsSize <= 256
    std::array<uint64_t, kMaskWords> eligible{}, pending{};
    std::vector<uint32_t> pos_by_idx;  ///< RS position of op idx (mod ring)
    /**
     * Calendar buckets as intrusive lists: cal_head[t & mask] chains op
     * indices through cal_next[idx % kCompleteRing] — an entry sits in
     * at most one bucket at a time (it is drained before any re-file),
     * so the per-idx next slot cannot collide. Bucket order is
     * irrelevant: firing only sets eligibility bits, and issue order is
     * decided by the position scan. Filing is two stores, draining a
     * pointer walk — no per-cycle vector churn.
     */
    std::vector<uint64_t> cal_head;  // bucket -> first idx, kPending empty
    std::vector<uint64_t> cal_next;  // idx slot -> next idx in bucket
    /**
     * Reverse dependency map: for each unissued producer, an intrusive
     * list of the pending consumers waiting on it, keyed by op index
     * modulo kWaitRing (dependency distances are < 256 and the live
     * window is bounded by the ROB, so slots never collide). A
     * consumer's issue walks its own waiter chain, decrements each
     * waiter's wait_cnt, and files newly resolved waiters in the
     * calendar — pending entries are touched exactly when one of their
     * producers issues, never rescanned. Sized like the completion ring
     * so slot collisions are impossible under the same window bound.
     */
    static constexpr size_t kWaitRing = kCompleteRing;
    std::vector<uint64_t> waiter_head;  // producer slot -> first waiter idx
    std::vector<uint64_t> wnext1, wnext2;  // waiter idx -> next, per dep

    void schedule(uint64_t idx, uint64_t t)
    {
        uint64_t &head = cal_head[t & (kCalRing - 1)];
        cal_next[idx % kCompleteRing] = head;
        head = idx;
    }
    static bool maskTest(const std::array<uint64_t, kMaskWords> &m,
                         size_t pos)
    {
        return (m[pos >> 6] >> (pos & 63)) & 1;
    }
    static void maskSet(std::array<uint64_t, kMaskWords> &m, size_t pos)
    {
        m[pos >> 6] |= 1ull << (pos & 63);
    }
    static void maskClear(std::array<uint64_t, kMaskWords> &m, size_t pos)
    {
        m[pos >> 6] &= ~(1ull << (pos & 63));
    }
    /** First set bit at position >= @p from, or SIZE_MAX. */
    static size_t maskFirstFrom(const std::array<uint64_t, kMaskWords> &m,
                                size_t from)
    {
        size_t w = from >> 6;
        if (w >= kMaskWords) {
            return SIZE_MAX;
        }
        uint64_t bits = m[w] & (~0ull << (from & 63));
        while (bits == 0) {
            if (++w >= kMaskWords) {
                return SIZE_MAX;
            }
            bits = m[w];
        }
        return w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
    }
    /**
     * In-flight load completions as a counting ring: slot (done & mask)
     * holds how many loads finish at that cycle. Completion times are at
     * most the worst memory latency ahead, and the ring is sized past
     * that, so a slot is always drained (at its own cycle) before it
     * could be reused. load_max is the largest completion time queued
     * while any load was outstanding — the same quantity the old
     * min-heap tracked, at two array ops per load instead of heap churn.
     */
    std::vector<uint32_t> load_done_cnt;
    uint64_t load_ring_mask = 0;
    uint64_t loads_outstanding = 0;
    uint64_t load_max = 0;
    Ring<uint64_t> store_drains;  // drain times, pushed in nondecr. order
    int lb_count = 0;
    int sb_count = 0;  // stores allocated but not drained
    uint64_t sb_drain_time = 0;

    uint64_t cycle = 0;
    uint64_t retired = 0;
    bool finished = false;

    /**
     * Measurement bases, snapshotted by resetStats(): finish() reports
     * each monotone counter minus its base, so a reset discards the
     * warmup prefix without touching warm cache/predictor state. All
     * zero by default — finish() is unchanged for whole-trace runs.
     */
    uint64_t base_cycle = 0;
    uint64_t base_instr = 0;
    uint64_t base_l1i_misses = 0;
    uint64_t base_l1d_accesses = 0;
    uint64_t base_l1d_misses = 0;
    uint64_t base_l2_misses = 0;
    uint64_t base_llc_misses = 0;
    uint64_t base_invalidations = 0;

    uint64_t end() const { return base + buf.size(); }
    const TraceOp &at(uint64_t idx) const
    {
        return buf[static_cast<size_t>(idx - base)];
    }

    void pushBlock(const TraceOp *ops, size_t n);
    void stepCycle();
    void finish();
    void resetStats();
};

void
StreamCore::Impl::pushBlock(const TraceOp *ops, size_t n)
{
    buf.append(ops, n);
    uint64_t nf = 0;
    for (size_t i = 0; i < n; ++i) {
        nf += !ops[i].foreign;
    }
    nf_avail += nf;
    n_instr += nf;
    // Drain the backlog, keeping the fetch-feed guarantee: each cycle
    // consumes at most `width` non-foreign ops plus the foreign runs
    // between them, so `width` queued non-foreign ops ensure the fetch
    // loop never sees a buffer end the batch replay would not have seen.
    while (buf.size() >= kBacklog &&
           nf_avail >= static_cast<uint64_t>(config.width)) {
        stepCycle();
        if (pos > base) {
            buf.pop_front(static_cast<size_t>(pos - base));
            base = pos;
        }
    }
}

void
StreamCore::Impl::stepCycle()
{
    ++cycle;

    // Release load-buffer entries whose loads completed, and
    // store-buffer entries that drained.
    if (loads_outstanding != 0) {
        uint32_t &done_now = load_done_cnt[cycle & load_ring_mask];
        if (done_now != 0) {
            lb_count -= static_cast<int>(done_now);
            loads_outstanding -= done_now;
            done_now = 0;
        }
    }
    while (!store_drains.empty() && store_drains.front() <= cycle) {
        store_drains.pop_front();
        --sb_count;
    }

    // ---- Retire (in order, up to width) --------------------------
    int retired_now = 0;
    while (!rob.empty() && retired_now < config.width) {
        const RobEntry &head = rob.front();
        const uint64_t done = complete[head.idx % kCompleteRing];
        if (done == kPending || done > cycle) {
            break;
        }
        if (head.store) {
            // Senior store: drains to the cache after retirement.
            sb_drain_time = std::max(sb_drain_time + 1, cycle);
            mem.dataAccess(head.addr, true);
            store_drains.push_back(sb_drain_time);
        }
        rob.pop_front();
        ++retired;
        ++retired_now;
    }

    // ---- Issue / execute ----------------------------------------
    // Wake the entries whose scheduled ready cycle arrived. Entries
    // filed more than a ring period out re-file instead of waking.
    {
        uint64_t wake = cal_head[cycle & (kCalRing - 1)];
        if (wake != kPending) {
            cal_head[cycle & (kCalRing - 1)] = kPending;
            while (wake != kPending) {
                // Read the link before handling: a re-file overwrites it.
                const uint64_t next = cal_next[wake % kCompleteRing];
                const uint32_t p = pos_by_idx[wake % kCompleteRing];
                if (p < rs.size() && rs[p].idx == wake) {
                    const RsEntry &e = rs[p];
                    uint64_t t = std::max(e.ready_at, e.alloc_cycle + 1);
                    if (t > cycle) {
                        schedule(wake, t);  // calendar wrap
                    } else {
                        maskSet(eligible, p);
                    }
                }
                wake = next;
            }
        }
    }
    if ((eligible[0] | eligible[1] | eligible[2] | eligible[3]) != 0) {
        int port_free[kNumPorts];
        for (int p = 0; p < kNumPorts; ++p) {
            port_free[p] = port_quota[p];
        }
        size_t i = maskFirstFrom(eligible, 0);
        while (i < rs.size()) {
            RsEntry &e = rs[i];
            int &port = port_free[e.port];
            if (port <= 0) {
                // Port-starved: the bit stays set, retry next cycle.
                i = maskFirstFrom(eligible, i + 1);
                continue;
            }
            --port;
            uint64_t done;
            if (e.load) {
                int lat = mem.dataAccess(e.addr, false);
                done = cycle + static_cast<uint64_t>(lat);
                ++load_done_cnt[done & load_ring_mask];
                ++loads_outstanding;
                load_max = std::max(load_max, done);
            } else {
                done = cycle + e.latency;
            }
            complete[e.idx % kCompleteRing] = done;
            if (e.mispred) {
                redirect_until =
                    done + static_cast<uint64_t>(config.mispredictPenalty);
                pending_redirect = false;
            }
            // Wake the consumers chained on this producer; those whose
            // last producer this was are now resolved — file them.
            uint64_t wi = waiter_head[e.idx & (kWaitRing - 1)];
            waiter_head[e.idx & (kWaitRing - 1)] = kPending;
            while (wi != kPending) {
                const size_t wp = pos_by_idx[wi % kCompleteRing];
                RsEntry &c = rs[wp];
                const uint64_t next =
                    (c.dep1 != 0 && wi - c.dep1 == e.idx)
                        ? wnext1[wi & (kWaitRing - 1)]
                        : wnext2[wi & (kWaitRing - 1)];
                if (--c.wait_cnt == 0) {
                    uint64_t r = 0;
                    if (c.dep1 != 0 && wi >= c.dep1) {
                        r = complete[(wi - c.dep1) % kCompleteRing];
                    }
                    if (c.dep2 != 0 && wi >= c.dep2) {
                        r = std::max(
                            r, complete[(wi - c.dep2) % kCompleteRing]);
                    }
                    c.ready_at = r;
                    maskClear(pending, wp);
                    schedule(wi, std::max(r, cycle + 1));
                }
                wi = next;
            }
            // Swap-remove the vector and both masks together; the
            // swapped-in entry is re-examined at this position, exactly
            // as the full scan would.
            const size_t last = rs.size() - 1;
            const bool el = maskTest(eligible, last);
            const bool pe = maskTest(pending, last);
            maskClear(eligible, last);
            maskClear(pending, last);
            maskClear(eligible, i);
            maskClear(pending, i);
            if (i != last) {
                rs[i] = rs[last];
                pos_by_idx[rs[i].idx % kCompleteRing] =
                    static_cast<uint32_t>(i);
                if (el) {
                    maskSet(eligible, i);
                }
                if (pe) {
                    maskSet(pending, i);
                }
            }
            rs.pop_back();
            i = maskFirstFrom(eligible, i);
        }
    }

    // ---- Allocate (width slots; classify every lost slot) -------
    int allocated = 0;
    bool counted_stall = false;
    while (allocated < config.width && !fetchq.empty()) {
        const Uop &u = fetchq.front();
        const OpInfo &info = kOpInfo[static_cast<size_t>(u.cls)];
        bool rob_full = rob.size() >= rob_cap;
        bool rs_full = rs.size() >= static_cast<size_t>(config.rsSize);
        bool lb_full = info.load && lb_count >= config.loadBufSize;
        bool sb_full = info.store && sb_count >= config.storeBufSize;
        if (rob_full || rs_full || lb_full || sb_full) {
            if (!counted_stall) {
                counted_stall = true;
                if (rs_full) {
                    ++stats.stalls.rs;
                } else if (rob_full) {
                    ++stats.stalls.rob;
                } else if (lb_full) {
                    ++stats.stalls.loadBuf;
                } else {
                    ++stats.stalls.storeBuf;
                }
            }
            break;
        }
        complete[u.idx % kCompleteRing] = kPending;
        rob.push_back({u.idx, u.addr, info.store});
        // Resolve the entry's ready time now if both producers have
        // already issued; otherwise chain it onto each unissued
        // producer's waiter list — the last producer's issue files it.
        const uint8_t dep1 = u.dep1;
        // A doubled dependency is a single producer: register it once.
        const uint8_t dep2 = u.dep2 != dep1 ? u.dep2 : 0;
        uint64_t d1 = 0, d2 = 0;
        if (dep1 != 0 && u.idx >= dep1) {
            d1 = complete[(u.idx - dep1) % kCompleteRing];
        }
        if (dep2 != 0 && u.idx >= dep2) {
            d2 = complete[(u.idx - dep2) % kCompleteRing];
        }
        const size_t rs_pos = rs.size();
        pos_by_idx[u.idx % kCompleteRing] = static_cast<uint32_t>(rs_pos);
        uint8_t wait_cnt = 0;
        uint64_t r;
        if (d1 != kPending && d2 != kPending) {
            r = std::max(d1, d2);
            schedule(u.idx, std::max(r, cycle + 1));
        } else {
            r = kPending;
            maskSet(pending, rs_pos);
            const size_t wslot = u.idx & (kWaitRing - 1);
            if (d1 == kPending) {
                const size_t p1 = (u.idx - dep1) & (kWaitRing - 1);
                wnext1[wslot] = waiter_head[p1];
                waiter_head[p1] = u.idx;
                ++wait_cnt;
            }
            if (d2 == kPending) {
                const size_t p2 = (u.idx - dep2) & (kWaitRing - 1);
                wnext2[wslot] = waiter_head[p2];
                waiter_head[p2] = u.idx;
                ++wait_cnt;
            }
        }
        rs.push_back({u.idx, u.addr, cycle, r, u.dep1, u.dep2, info.port,
                      info.latency, wait_cnt, info.load, u.mispred});
        if (info.load) {
            ++lb_count;
        }
        if (info.store) {
            ++sb_count;
        }
        fetchq.pop_front();
        ++allocated;
    }
    // Classify the lost allocation slots of this cycle.
    uint64_t lost = static_cast<uint64_t>(config.width - allocated);
    stats.slots.retiring += static_cast<uint64_t>(allocated);
    if (lost > 0) {
        if (counted_stall) {
            stats.slots.backend += lost;
            // Memory-bound if a load is outstanding past this cycle.
            bool memory_bound = loads_outstanding != 0 && load_max > cycle;
            if (memory_bound) {
                stats.slots.backendMemory += lost;
            } else {
                stats.slots.backendCore += lost;
            }
        } else if (fetchq.empty() &&
                   (pending_redirect || cycle < redirect_until)) {
            stats.slots.badSpec += lost;
        } else if (fetchq.empty()) {
            stats.slots.frontend += lost;
        } else {
            // Queue non-empty but nothing allocated: treat as backend
            // (structural), already counted above when counted_stall.
            stats.slots.backend += lost;
            stats.slots.backendCore += lost;
        }
    }

    // ---- Fetch ---------------------------------------------------
    if (!pending_redirect && cycle >= redirect_until &&
        cycle >= icache_until) {
        int fetched = 0;
        while (fetched < config.width && fetchq.size() < fetchq_cap &&
               pos < end()) {
            // Foreign stores: coherence traffic, no pipeline slots.
            while (pos < end() && at(pos).foreign) {
                mem.remoteStore(at(pos).addr);
                ++pos;
            }
            if (pos >= end()) {
                break;
            }
            const TraceOp &top = at(pos);
            uint64_t line = top.pc >> 6;
            if (line != last_line) {
                last_line = line;
                int extra = mem.instrAccess(top.pc);
                if (extra > 0) {
                    icache_until = cycle + static_cast<uint64_t>(extra);
                    break;
                }
            }
            Uop u;
            u.idx = pos;
            u.cls = top.cls;
            u.pc = top.pc;
            u.addr = top.addr;
            u.dep1 = top.dep1;
            u.dep2 = top.dep2;
            bool stop_fetch = false;
            if (top.cls == OpClass::BranchCond) {
                bool pred = predictor->predict(top.pc);
                predictor->update(top.pc, top.taken, pred);
                ++stats.condBranches;
                if (pred != top.taken) {
                    ++stats.mispredicts;
                    u.mispred = true;
                    pending_redirect = true;
                    stop_fetch = true;
                } else if (top.taken) {
                    stop_fetch = true;  // taken-branch fetch bubble
                }
            } else if (top.cls == OpClass::BranchUncond) {
                stop_fetch = true;
            }
            fetchq.push_back(u);
            ++pos;
            --nf_avail;
            ++fetched;
            if (stop_fetch) {
                if (config.takenBranchBubble > 0 && !u.mispred) {
                    icache_until = std::max(
                        icache_until,
                        cycle +
                            static_cast<uint64_t>(config.takenBranchBubble));
                }
                break;
            }
        }
    }

    // Consume trailing foreign ops so the run terminates even when
    // the trace ends with them.
    while (pos < end() && at(pos).foreign && fetchq.empty() &&
           rob.empty()) {
        mem.remoteStore(at(pos).addr);
        ++pos;
    }
}

void
StreamCore::Impl::finish()
{
    if (finished) {
        return;
    }
    while (retired < n_instr) {
        stepCycle();
    }
    buf.clear();
    base = pos;
    stats.cycles = cycle - base_cycle;
    stats.instructions = n_instr - base_instr;
    stats.l1iMisses = mem.l1i().misses() - base_l1i_misses;
    stats.l1dAccesses = mem.l1d().accesses() - base_l1d_accesses;
    stats.l1dMisses = mem.l1d().misses() - base_l1d_misses;
    stats.l2Misses = mem.l2().misses() - base_l2_misses;
    stats.llcMisses = mem.llc().misses() - base_llc_misses;
    stats.invalidations = mem.l1d().invalidations() +
                          mem.l2().invalidations() - base_invalidations;
    finished = true;
}

void
StreamCore::Impl::resetStats()
{
    // Drain: everything received so far retires, so the post-reset
    // measurement starts from an empty pipeline window.
    while (retired < n_instr) {
        stepCycle();
    }
    // Anything still buffered is a trailing foreign run; apply it as
    // coherence traffic inside the discarded prefix.
    while (pos < end()) {
        mem.remoteStore(at(pos).addr);
        ++pos;
    }
    buf.clear();
    base = pos;
    // Incremental counters restart; monotone ones subtract their base.
    stats = CoreStats{};
    base_cycle = cycle;
    base_instr = n_instr;
    base_l1i_misses = mem.l1i().misses();
    base_l1d_accesses = mem.l1d().accesses();
    base_l1d_misses = mem.l1d().misses();
    base_l2_misses = mem.l2().misses();
    base_llc_misses = mem.llc().misses();
    base_invalidations =
        mem.l1d().invalidations() + mem.l2().invalidations();
}

StreamCore::StreamCore(const CoreConfig &config)
    : impl_(std::make_unique<Impl>(config))
{
}

StreamCore::~StreamCore() = default;
StreamCore::StreamCore(StreamCore &&) noexcept = default;
StreamCore &StreamCore::operator=(StreamCore &&) noexcept = default;

void
StreamCore::onOp(const trace::TraceOp &op)
{
    if (impl_->finished) {
        throw std::logic_error("StreamCore: onOp after flush");
    }
    impl_->pushBlock(&op, 1);
}

void
StreamCore::onOps(const trace::TraceOp *ops, size_t n)
{
    if (impl_->finished) {
        throw std::logic_error("StreamCore: onOps after flush");
    }
    impl_->pushBlock(ops, n);
}

void
StreamCore::flush()
{
    impl_->finish();
}

void
StreamCore::resetStats()
{
    if (impl_->finished) {
        throw std::logic_error("StreamCore: resetStats after flush");
    }
    impl_->resetStats();
}

bool
StreamCore::finished() const
{
    return impl_->finished;
}

const CoreStats &
StreamCore::stats() const
{
    return impl_->stats;
}

Core::Core(const CoreConfig &config) : config_(config)
{
    if (config.width < 1 || config.robSize < config.width) {
        throw std::invalid_argument("Core: bad geometry");
    }
}

CoreStats
Core::run(const std::vector<TraceOp> &trace)
{
    StreamCore sim(config_);
    sim.onOps(trace.data(), trace.size());
    sim.flush();
    return sim.stats();
}

void
CacheSink::onOp(const trace::TraceOp &op)
{
    step(op);
}

void
CacheSink::onOps(const trace::TraceOp *ops, size_t n)
{
    // Real batch loop: one virtual dispatch per block, not per op.
    for (size_t i = 0; i < n; ++i) {
        step(ops[i]);
    }
}

void
CacheSink::step(const trace::TraceOp &op)
{
    if (op.foreign) {
        mem_.remoteStore(op.addr);
        return;
    }
    ++instructions_;
    uint64_t line = op.pc >> 6;
    if (line != last_line_) {
        last_line_ = line;
        mem_.instrAccess(op.pc);
    }
    if (isLoad(op.cls)) {
        mem_.dataAccess(op.addr, false);
    } else if (isStore(op.cls)) {
        mem_.dataAccess(op.addr, true);
    }
}

CoreConfig
xeonBdwConfig()
{
    // The defaults ARE the paper machine; the named form exists so
    // profile registries construct it explicitly (and test_backend pins
    // the equivalence, so the two can never drift apart silently).
    return CoreConfig{};
}

CoreConfig
gravitonLikeConfig()
{
    CoreConfig cfg;
    cfg.width = 6;
    cfg.robSize = 256;
    cfg.rsSize = 120;
    cfg.loadBufSize = 96;
    cfg.storeBufSize = 56;
    cfg.aluPorts = 4;
    cfg.simdPorts = 2;
    cfg.mulPorts = 1;
    cfg.loadPorts = 2;
    cfg.storePorts = 2;
    cfg.branchPorts = 1;
    cfg.mispredictPenalty = 11;  // Shorter pipe than the Xeon's.
    cfg.takenBranchBubble = 1;
    cfg.predictorSpec = "tage-64KB";
    // Larger, private-heavy hierarchy with a slower outer edge: 64K
    // L1s, a 1M private L2, a 32M shared LLC slice, and a longer trip
    // to DRAM than the Xeon's integrated controller.
    cfg.mem.l1i = CacheConfig{"L1I", 64 * 1024, 4, 64, 1};
    cfg.mem.l1d = CacheConfig{"L1D", 64 * 1024, 4, 64, 4};
    cfg.mem.l2 = CacheConfig{"L2", 1024 * 1024, 8, 64, 13};
    cfg.mem.llc = CacheConfig{"LLC", 32 * 1024 * 1024, 16, 64, 42};
    cfg.mem.memoryLatency = 210;
    return cfg;
}

} // namespace vepro::uarch
