#ifndef VEPRO_UARCH_CORE_HPP
#define VEPRO_UARCH_CORE_HPP

/**
 * @file
 * Trace-driven out-of-order core model with Intel-style top-down
 * pipeline-slot accounting.
 *
 * The model follows the paper's measurement machine (Xeon E5-2650 v4,
 * Broadwell): 4-wide allocation/retire, 192-entry ROB, unified 60-entry
 * scheduler, 72/42-entry load/store buffers, two load ports and one
 * store port, a TAGE-class front-end direction predictor, and the
 * 32K/32K/256K/30M cache hierarchy. It consumes the
 * op traces captured by the instrumentation probes and produces exactly
 * the statistics the paper reports: IPC, the four top-down slot
 * categories (plus the memory/core backend split), branch miss rate and
 * MPKI, per-level cache MPKI, and resource-stall cycle counts for the
 * RS, ROB, and load/store buffers (Figs. 4-7, 11, 16).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bpred/predictor.hpp"
#include "trace/probe.hpp"
#include "uarch/cache.hpp"

namespace vepro::uarch
{

/** Core geometry and timing. Defaults model the paper's Xeon. */
struct CoreConfig {
    int width = 4;             ///< Allocation/retire width (slots/cycle).
    int robSize = 192;
    int rsSize = 60;
    int loadBufSize = 72;
    int storeBufSize = 42;

    int aluPorts = 3;
    int simdPorts = 2;
    int mulPorts = 1;
    int loadPorts = 2;
    int storePorts = 1;
    int branchPorts = 1;

    int mispredictPenalty = 14;  ///< Redirect cycles after a bad branch.
    int takenBranchBubble = 1;   ///< Fetch bubble after a taken branch.

    /** Front-end direction predictor (see bpred::makePredictor specs). */
    std::string predictorSpec = "tage-64KB";

    Hierarchy::Config mem;
};

/**
 * The paper's measurement machine, explicitly: identical to a
 * default-constructed CoreConfig (pinned by test_backend), but named so
 * profile-constructed configs read as what they are.
 */
CoreConfig xeonBdwConfig();

/**
 * An Arm server core of the Graviton/Neoverse class: wider issue and a
 * deeper window than the Broadwell Xeon, more L1/L2 capacity but a
 * slower outer hierarchy — the geometry "Where to Encode" prices
 * against x86. Consumed by the backend profile registry and the
 * vepro-check fuzzer (so the differential oracles exercise a real
 * profile geometry, not only random ones).
 */
CoreConfig gravitonLikeConfig();

/** Top-down pipeline-slot totals (slots = cycles x width). */
struct TopDownSlots {
    uint64_t retiring = 0;
    uint64_t badSpec = 0;
    uint64_t frontend = 0;
    uint64_t backend = 0;
    uint64_t backendMemory = 0;  ///< Portion of backend due to memory.
    uint64_t backendCore = 0;    ///< Portion due to execution resources.

    uint64_t
    total() const
    {
        return retiring + badSpec + frontend + backend;
    }

    double fraction(uint64_t part) const
    {
        return total() ? static_cast<double>(part) /
                             static_cast<double>(total())
                       : 0.0;
    }
};

/** Cycles during which allocation was blocked, by first blocking unit. */
struct ResourceStalls {
    uint64_t rs = 0;
    uint64_t rob = 0;
    uint64_t loadBuf = 0;
    uint64_t storeBuf = 0;
};

/** Everything measured by one simulation. */
struct CoreStats {
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    TopDownSlots slots;
    ResourceStalls stalls;

    uint64_t condBranches = 0;
    uint64_t mispredicts = 0;

    uint64_t l1iMisses = 0;
    uint64_t l1dAccesses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Misses = 0;
    uint64_t llcMisses = 0;
    uint64_t invalidations = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    double
    branchMissRatePercent() const
    {
        return condBranches ? 100.0 * static_cast<double>(mispredicts) /
                                  static_cast<double>(condBranches)
                            : 0.0;
    }

    double mpkiOf(uint64_t misses) const
    {
        return instructions ? 1000.0 * static_cast<double>(misses) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    double branchMpki() const { return mpkiOf(mispredicts); }
    double l1dMpki() const { return mpkiOf(l1dMisses); }
    double l2Mpki() const { return mpkiOf(l2Misses); }
    double llcMpki() const { return mpkiOf(llcMisses); }
    double l1iMpki() const { return mpkiOf(l1iMisses); }
};

/**
 * Streaming core model: a trace::TraceSink that simulates the op stream
 * as it arrives, fused with the producing encode.
 *
 * Ops are buffered in a small ring and simulated as soon as enough are
 * queued to keep the fetch stage fed; flush() drains the pipeline and
 * finalises the statistics. Cycle-for-cycle identical to replaying the
 * materialised trace through Core::run (which delegates here), but with
 * O(ring) memory instead of O(trace length), so uncapped full-fidelity
 * traces need no truncation or sampling.
 */
class StreamCore final : public trace::TraceSink
{
  public:
    explicit StreamCore(const CoreConfig &config = {});
    ~StreamCore() override;

    StreamCore(const StreamCore &) = delete;
    StreamCore &operator=(const StreamCore &) = delete;
    StreamCore(StreamCore &&) noexcept;
    StreamCore &operator=(StreamCore &&) noexcept;

    /**
     * Consume the next dynamic op. Foreign ops are applied as coherence
     * invalidations, not instructions. Throws std::logic_error after
     * flush().
     */
    void onOp(const trace::TraceOp &op) override;
    void onOps(const trace::TraceOp *ops, size_t n) override;

    /** End of trace: drain the pipeline and finalise stats(). */
    void flush() override;

    /**
     * Discard the statistics accumulated so far while keeping all
     * microarchitectural state warm (caches, branch predictor, TLB-less
     * hierarchy contents). The pipeline is drained first — every op
     * received so far retires — so the post-reset measurement starts
     * from an empty window; the drain itself is the boundary bubble of
     * segment-parallel simulation (see uarch::SegmentSim). After this,
     * flush() reports only the ops consumed since the reset. Throws
     * std::logic_error after flush().
     */
    void resetStats();

    bool finished() const;

    /** The simulation results; valid once flush() has run. */
    const CoreStats &stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** The core model. One instance simulates one trace start-to-finish. */
class Core
{
  public:
    explicit Core(const CoreConfig &config = {});

    /**
     * Simulate the trace and return the statistics: the batch-replay
     * entry point, equivalent to streaming the trace through a
     * StreamCore. Foreign ops in the trace are applied as coherence
     * invalidations, not instructions.
     */
    CoreStats run(const std::vector<trace::TraceOp> &trace);

  private:
    CoreConfig config_;
};

/**
 * Cache-hierarchy-only sink: runs the memory side of the op stream (data
 * accesses, instruction-line fetches, coherence invalidations) through a
 * Hierarchy without the out-of-order core on top. Orders of magnitude
 * cheaper than StreamCore when only miss counts are needed.
 */
class CacheSink final : public trace::TraceSink
{
  public:
    explicit CacheSink(const Hierarchy::Config &config = Hierarchy::Config{})
        : mem_(config)
    {
    }

    void onOp(const trace::TraceOp &op) override;
    void onOps(const trace::TraceOp *ops, size_t n) override;

    const Hierarchy &hierarchy() const { return mem_; }
    uint64_t instructions() const { return instructions_; }

    /** Misses per kilo-instruction of one level's counter. */
    double
    mpkiOf(uint64_t misses) const
    {
        return instructions_ ? 1000.0 * static_cast<double>(misses) /
                                   static_cast<double>(instructions_)
                             : 0.0;
    }

  private:
    void step(const trace::TraceOp &op);

    Hierarchy mem_;
    uint64_t last_line_ = ~0ull;
    uint64_t instructions_ = 0;
};

} // namespace vepro::uarch

#endif // VEPRO_UARCH_CORE_HPP
