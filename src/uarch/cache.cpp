#include "uarch/cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace vepro::uarch
{

Cache::Cache(const CacheConfig &config) : config_(config)
{
    if (config.sizeBytes == 0 || config.ways <= 0 || config.lineBytes <= 0) {
        throw std::invalid_argument("Cache: bad geometry");
    }
    size_t lines = config.sizeBytes / config.lineBytes;
    num_sets_ = static_cast<int>(lines / config.ways);
    if (num_sets_ == 0) {
        throw std::invalid_argument("Cache: fewer lines than ways");
    }
    // Sets must be a power of two for cheap indexing.
    if ((num_sets_ & (num_sets_ - 1)) != 0) {
        int p = 1;
        while (p * 2 <= num_sets_) {
            p *= 2;
        }
        num_sets_ = p;
    }
    lines_.assign(static_cast<size_t>(num_sets_) * config.ways, Line{});
}

uint64_t
Cache::setOf(uint64_t addr) const
{
    return (addr / config_.lineBytes) & (static_cast<uint64_t>(num_sets_) - 1);
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return (addr / config_.lineBytes) / static_cast<uint64_t>(num_sets_);
}

bool
Cache::access(uint64_t addr, bool is_write)
{
    ++accesses_;
    ++tick_;
    Line *set = &lines_[setOf(addr) * config_.ways];
    uint64_t tag = tagOf(addr);
    Line *victim = &set[0];
    for (int w = 0; w < config_.ways; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = tick_;
            line.dirty |= is_write;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    victim->dirty = is_write;
    return false;
}

void
Cache::fill(uint64_t addr)
{
    ++tick_;
    Line *set = &lines_[setOf(addr) * config_.ways];
    uint64_t tag = tagOf(addr);
    Line *victim = &set[0];
    for (int w = 0; w < config_.ways; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            return;  // already resident; leave recency untouched
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    victim->dirty = false;
}

void
Cache::invalidate(uint64_t addr)
{
    Line *set = &lines_[setOf(addr) * config_.ways];
    uint64_t tag = tagOf(addr);
    for (int w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].valid = false;
            ++invalidations_;
            return;
        }
    }
}

void
Cache::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
    invalidations_ = 0;
}

Hierarchy::Hierarchy(const Config &config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      llc_(config.llc),
      streams_(static_cast<size_t>(std::max(1, config.prefetch.streams)))
{
}

void
Hierarchy::trainPrefetcher(uint64_t addr)
{
    const uint64_t region = addr >> 12;
    Stream &s = streams_[static_cast<size_t>(region) % streams_.size()];
    if (!s.valid || s.region != region) {
        s = Stream{region, addr, 0, 0, true};
        return;
    }
    int64_t delta = static_cast<int64_t>(addr) -
                    static_cast<int64_t>(s.lastAddr);
    if (delta != 0 && delta == s.stride) {
        if (s.confirmations < 4) {
            ++s.confirmations;
        }
    } else {
        s.stride = delta;
        s.confirmations = 0;
    }
    s.lastAddr = addr;
    if (s.confirmations >= 2 && s.stride != 0) {
        // Fetch the next lines of the stream into L2 (fill only: a
        // prefetch is not a demand access and must not perturb the
        // demand hit/miss statistics).
        for (int d = 1; d <= config_.prefetch.degree; ++d) {
            uint64_t target = addr + static_cast<uint64_t>(s.stride * d);
            l2_.fill(target);
            ++prefetches_;
        }
    }
}

int
Hierarchy::dataAccess(uint64_t addr, bool is_write)
{
    if (l1d_.access(addr, is_write)) {
        return config_.l1d.hitLatency;
    }
    if (config_.prefetch.enabled) {
        trainPrefetcher(addr);
    }
    if (l2_.access(addr, is_write)) {
        return config_.l2.hitLatency;
    }
    if (llc_.access(addr, is_write)) {
        return config_.llc.hitLatency;
    }
    return config_.memoryLatency;
}

int
Hierarchy::instrAccess(uint64_t addr)
{
    if (l1i_.access(addr, false)) {
        return 0;
    }
    // Instruction misses fill from L2 (shared with data).
    if (l2_.access(addr, false)) {
        return config_.l2.hitLatency;
    }
    if (llc_.access(addr, false)) {
        return config_.llc.hitLatency;
    }
    return config_.memoryLatency;
}

void
Hierarchy::remoteStore(uint64_t addr)
{
    // MESI-style: a remote write invalidates our private copies; the
    // shared LLC keeps the (updated) line.
    l1d_.invalidate(addr);
    l2_.invalidate(addr);
    llc_.access(addr, true);
}

void
Hierarchy::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
    llc_.resetStats();
    prefetches_ = 0;
}

} // namespace vepro::uarch
