#include "uarch/cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace vepro::uarch
{

namespace
{

/** log2 of a power of two, or -1 if @p v is not one. */
int
exactLog2(uint64_t v)
{
    if (v == 0 || (v & (v - 1)) != 0) {
        return -1;
    }
    int s = 0;
    while ((v >> s) != 1) {
        ++s;
    }
    return s;
}

} // namespace

Cache::Cache(const CacheConfig &config) : config_(config)
{
    if (config.sizeBytes == 0 || config.ways <= 0 || config.lineBytes <= 0) {
        throw std::invalid_argument("Cache: bad geometry");
    }
    size_t lines = config.sizeBytes / config.lineBytes;
    num_sets_ = static_cast<int>(lines / config.ways);
    if (num_sets_ == 0) {
        throw std::invalid_argument("Cache: fewer lines than ways");
    }
    // Sets must be a power of two for cheap indexing.
    if ((num_sets_ & (num_sets_ - 1)) != 0) {
        int p = 1;
        while (p * 2 <= num_sets_) {
            p *= 2;
        }
        num_sets_ = p;
    }
    line_shift_ = exactLog2(static_cast<uint64_t>(config.lineBytes));
    set_shift_ = exactLog2(static_cast<uint64_t>(num_sets_));
    set_mask_ = static_cast<uint64_t>(num_sets_) - 1;
    size_t total = static_cast<size_t>(num_sets_) * config.ways;
    tags_.assign(total, 0);
    last_use_.assign(total, 0);
    meta_.assign(total, 0);
    mru_.assign(static_cast<size_t>(num_sets_), 0);
}

void
Cache::fill(uint64_t addr)
{
    ++tick_;
    const uint64_t set = setOf(addr);
    const uint64_t tag = tagOf(addr);
    const size_t base = static_cast<size_t>(set) * config_.ways;
    uint64_t *tags = &tags_[base];
    uint8_t *meta = &meta_[base];
    for (int w = 0; w < config_.ways; ++w) {
        if ((meta[w] & kValid) != 0 && tags[w] == tag) {
            return;  // already resident; leave recency untouched
        }
    }
    int victim = 0;
    for (int w = 0; w < config_.ways; ++w) {
        if ((meta[w] & kValid) == 0) {
            victim = w;
        } else if ((meta[victim] & kValid) != 0 &&
                   last_use_[base + w] < last_use_[base + victim]) {
            victim = w;
        }
    }
    tags[victim] = tag;
    last_use_[base + victim] = tick_;
    meta[victim] = kValid;
    mru_[set] = static_cast<uint8_t>(victim);
}

void
Cache::invalidate(uint64_t addr)
{
    const uint64_t set = setOf(addr);
    const uint64_t tag = tagOf(addr);
    const size_t base = static_cast<size_t>(set) * config_.ways;
    for (int w = 0; w < config_.ways; ++w) {
        if ((meta_[base + w] & kValid) != 0 && tags_[base + w] == tag) {
            meta_[base + w] = 0;
            ++invalidations_;
            return;
        }
    }
}

void
Cache::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
    invalidations_ = 0;
}

Hierarchy::Hierarchy(const Config &config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      llc_(config.llc),
      streams_(static_cast<size_t>(std::max(1, config.prefetch.streams)))
{
}

void
Hierarchy::trainPrefetcher(uint64_t addr)
{
    const uint64_t region = addr >> 12;
    Stream &s = streams_[static_cast<size_t>(region) % streams_.size()];
    if (!s.valid || s.region != region) {
        s = Stream{region, addr, 0, 0, true};
        return;
    }
    int64_t delta = static_cast<int64_t>(addr) -
                    static_cast<int64_t>(s.lastAddr);
    if (delta != 0 && delta == s.stride) {
        if (s.confirmations < 4) {
            ++s.confirmations;
        }
    } else {
        s.stride = delta;
        s.confirmations = 0;
    }
    s.lastAddr = addr;
    if (s.confirmations >= 2 && s.stride != 0) {
        // Fetch the next lines of the stream into L2 (fill only: a
        // prefetch is not a demand access and must not perturb the
        // demand hit/miss statistics).
        for (int d = 1; d <= config_.prefetch.degree; ++d) {
            uint64_t target = addr + static_cast<uint64_t>(s.stride * d);
            l2_.fill(target);
            ++prefetches_;
        }
    }
}

void
Hierarchy::remoteStore(uint64_t addr)
{
    // MESI-style: a remote write invalidates our private copies; the
    // shared LLC keeps the (updated) line.
    l1d_.invalidate(addr);
    l2_.invalidate(addr);
    llc_.access(addr, true);
}

void
Hierarchy::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
    llc_.resetStats();
    prefetches_ = 0;
}

} // namespace vepro::uarch
