#ifndef VEPRO_UARCH_RING_HPP
#define VEPRO_UARCH_RING_HPP

/**
 * @file
 * Power-of-two ring buffer: the FIFO workhorse of the simulator hot
 * path (core.cpp). Replaces std::deque in StreamCore's sliding trace
 * window, fetch queue, ROB, and store-drain queue, where deque's
 * chunked indexing and allocation churn dominated the cycle loop.
 *
 * Index access is head-relative (`ring[i]` is the i-th oldest element)
 * and costs one mask. push_back grows by doubling (amortised O(1));
 * pop_front(n) releases n elements in O(1). Elements must be trivially
 * copyable-ish value types (they are memmoved on growth via std::copy).
 */

#include <cstddef>
#include <vector>

namespace vepro::uarch
{

template <typename T>
class Ring
{
  public:
    explicit Ring(size_t min_capacity = 16)
    {
        size_t cap = 16;
        while (cap < min_capacity) {
            cap *= 2;
        }
        slots_.resize(cap);
    }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    size_t capacity() const { return slots_.size(); }

    T &operator[](size_t i) { return slots_[(head_ + i) & mask()]; }
    const T &operator[](size_t i) const
    {
        return slots_[(head_ + i) & mask()];
    }

    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }
    T &back() { return slots_[(head_ + size_ - 1) & mask()]; }
    const T &back() const { return slots_[(head_ + size_ - 1) & mask()]; }

    void
    push_back(const T &v)
    {
        if (size_ == slots_.size()) {
            grow(size_ + 1);
        }
        slots_[(head_ + size_) & mask()] = v;
        ++size_;
    }

    /** Append @p n elements in at most two contiguous copies. */
    void
    append(const T *src, size_t n)
    {
        if (size_ + n > slots_.size()) {
            grow(size_ + n);
        }
        size_t tail = (head_ + size_) & mask();
        size_t first = std::min(n, slots_.size() - tail);
        std::copy(src, src + first, slots_.begin() + tail);
        std::copy(src + first, src + n, slots_.begin());
        size_ += n;
    }

    void
    pop_front(size_t n = 1)
    {
        head_ = (head_ + n) & mask();
        size_ -= n;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    size_t mask() const { return slots_.size() - 1; }

    void
    grow(size_t need)
    {
        size_t cap = slots_.size();
        while (cap < need) {
            cap *= 2;
        }
        std::vector<T> next(cap);
        for (size_t i = 0; i < size_; ++i) {
            next[i] = slots_[(head_ + i) & mask()];
        }
        slots_.swap(next);
        head_ = 0;
    }

    std::vector<T> slots_;
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace vepro::uarch

#endif // VEPRO_UARCH_RING_HPP
