#ifndef VEPRO_UARCH_CACHE_HPP
#define VEPRO_UARCH_CACHE_HPP

/**
 * @file
 * Set-associative cache model with LRU replacement, chainable into the
 * paper machine's hierarchy (32K L1I / 32K L1D / 256K L2 / 30M LLC),
 * plus coherence invalidation for the thread-study traces.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace vepro::uarch
{

/** Geometry and timing of one cache level. */
struct CacheConfig {
    std::string name = "L1";
    size_t sizeBytes = 32 * 1024;
    int ways = 8;
    int lineBytes = 64;
    int hitLatency = 4;  ///< Cycles to return data on a hit at this level.
};

/** One cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up @p addr; on miss the line is filled (write-allocate).
     * @param is_write Marks the line dirty on hit/fill.
     * @return true on hit.
     */
    bool access(uint64_t addr, bool is_write);

    /** Drop the line containing @p addr if present (coherence). */
    void invalidate(uint64_t addr);

    /**
     * Insert the line containing @p addr without touching the demand
     * hit/miss statistics (prefetch fill). Replaces the LRU way.
     */
    void fill(uint64_t addr);

    const CacheConfig &config() const { return config_; }
    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    uint64_t invalidations() const { return invalidations_; }

    /** Misses per kilo-instruction given an instruction count. */
    double
    mpki(uint64_t instructions) const
    {
        return instructions ? 1000.0 * static_cast<double>(misses_) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    void resetStats();

  private:
    struct Line {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    uint64_t setOf(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;

    CacheConfig config_;
    int num_sets_;
    std::vector<Line> lines_;  ///< num_sets_ x ways, row-major.
    uint64_t tick_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t invalidations_ = 0;
};

/** Stride prefetcher configuration (off by default; ablation knob). */
struct PrefetcherConfig {
    bool enabled = false;
    /** Tracked access streams (per 4 KiB region). */
    int streams = 16;
    /** Lines fetched ahead once a stride is confirmed. */
    int degree = 2;
};

/**
 * The three-level data-side hierarchy plus the instruction L1. Returns
 * total access latency and keeps per-level hit/miss statistics.
 */
class Hierarchy
{
  public:
    /** Timing/geometry of the paper's Xeon E5-2650 v4. */
    struct Config {
        CacheConfig l1i{"L1I", 32 * 1024, 8, 64, 1};
        CacheConfig l1d{"L1D", 32 * 1024, 8, 64, 4};
        CacheConfig l2{"L2", 256 * 1024, 8, 64, 12};
        CacheConfig llc{"LLC", 30 * 1024 * 1024, 20, 64, 38};
        int memoryLatency = 180;
        PrefetcherConfig prefetch{};
    };

    Hierarchy() : Hierarchy(Config{}) {}
    explicit Hierarchy(const Config &config);

    /** Data access; returns total latency in cycles. */
    int dataAccess(uint64_t addr, bool is_write);

    /** Instruction fetch; returns extra cycles beyond a pipelined hit. */
    int instrAccess(uint64_t addr);

    /** Coherence invalidation from a remote core's store. */
    void remoteStore(uint64_t addr);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc() const { return llc_; }

    uint64_t prefetchesIssued() const { return prefetches_; }

    void resetStats();

  private:
    /** Stride detection + L2 fill on L1D misses. */
    void trainPrefetcher(uint64_t addr);

    struct Stream {
        uint64_t region = 0;       ///< 4 KiB region tag.
        uint64_t lastAddr = 0;
        int64_t stride = 0;
        int confirmations = 0;
        bool valid = false;
    };

    Config config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache llc_;
    std::vector<Stream> streams_;
    uint64_t prefetches_ = 0;
};

} // namespace vepro::uarch

#endif // VEPRO_UARCH_CACHE_HPP
