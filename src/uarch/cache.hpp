#ifndef VEPRO_UARCH_CACHE_HPP
#define VEPRO_UARCH_CACHE_HPP

/**
 * @file
 * Set-associative cache model with LRU replacement, chainable into the
 * paper machine's hierarchy (32K L1I / 32K L1D / 256K L2 / 30M LLC),
 * plus coherence invalidation for the thread-study traces.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace vepro::uarch
{

/** Geometry and timing of one cache level. */
struct CacheConfig {
    std::string name = "L1";
    size_t sizeBytes = 32 * 1024;
    int ways = 8;
    int lineBytes = 64;
    int hitLatency = 4;  ///< Cycles to return data on a hit at this level.
};

/** One cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up @p addr; on miss the line is filled (write-allocate).
     * Defined inline below: this is the hottest call in the simulator
     * (every load/store/fetch of every modelled level) and must inline
     * into the core and sink loops rather than pay a cross-TU call.
     * @param is_write Marks the line dirty on hit/fill.
     * @return true on hit.
     */
    bool access(uint64_t addr, bool is_write);

    /** Drop the line containing @p addr if present (coherence). */
    void invalidate(uint64_t addr);

    /**
     * Insert the line containing @p addr without touching the demand
     * hit/miss statistics (prefetch fill). Replaces the LRU way.
     */
    void fill(uint64_t addr);

    const CacheConfig &config() const { return config_; }
    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    uint64_t invalidations() const { return invalidations_; }

    /** Misses per kilo-instruction given an instruction count. */
    double
    mpki(uint64_t instructions) const
    {
        return instructions ? 1000.0 * static_cast<double>(misses_) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    void resetStats();

  private:
    /** meta_ bits. */
    static constexpr uint8_t kValid = 1;
    static constexpr uint8_t kDirty = 2;

    uint64_t lineOf(uint64_t addr) const
    {
        return line_shift_ >= 0
                   ? addr >> line_shift_
                   : addr / static_cast<uint64_t>(config_.lineBytes);
    }
    uint64_t setOf(uint64_t addr) const { return lineOf(addr) & set_mask_; }
    uint64_t tagOf(uint64_t addr) const { return lineOf(addr) >> set_shift_; }

    CacheConfig config_;
    int num_sets_;
    int line_shift_;     ///< log2(lineBytes), or -1 if not a power of two.
    int set_shift_;      ///< log2(num_sets_); sets are forced to pow2.
    uint64_t set_mask_;  ///< num_sets_ - 1.

    /**
     * Line state, structure-of-arrays (num_sets_ x ways, row-major).
     * The hot lookup touches one tag row plus the per-set MRU hint;
     * recency and dirty bits live in separate arrays so a hit on the
     * hinted way never scans the set.
     */
    std::vector<uint64_t> tags_;
    std::vector<uint64_t> last_use_;
    std::vector<uint8_t> meta_;  ///< kValid | kDirty per line.
    std::vector<uint8_t> mru_;   ///< Most-recently-hit way per set (hint).

    uint64_t tick_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t invalidations_ = 0;
};

/** Stride prefetcher configuration (off by default; ablation knob). */
struct PrefetcherConfig {
    bool enabled = false;
    /** Tracked access streams (per 4 KiB region). */
    int streams = 16;
    /** Lines fetched ahead once a stride is confirmed. */
    int degree = 2;
};

/**
 * The three-level data-side hierarchy plus the instruction L1. Returns
 * total access latency and keeps per-level hit/miss statistics.
 */
class Hierarchy
{
  public:
    /** Timing/geometry of the paper's Xeon E5-2650 v4. */
    struct Config {
        CacheConfig l1i{"L1I", 32 * 1024, 8, 64, 1};
        CacheConfig l1d{"L1D", 32 * 1024, 8, 64, 4};
        CacheConfig l2{"L2", 256 * 1024, 8, 64, 12};
        CacheConfig llc{"LLC", 30 * 1024 * 1024, 20, 64, 38};
        int memoryLatency = 180;
        PrefetcherConfig prefetch{};
    };

    Hierarchy() : Hierarchy(Config{}) {}
    explicit Hierarchy(const Config &config);

    /** Data access; returns total latency in cycles (inline below). */
    int dataAccess(uint64_t addr, bool is_write);

    /** Instruction fetch; returns extra cycles beyond a pipelined hit
     *  (inline below). */
    int instrAccess(uint64_t addr);

    /** Coherence invalidation from a remote core's store. */
    void remoteStore(uint64_t addr);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc() const { return llc_; }

    uint64_t prefetchesIssued() const { return prefetches_; }

    void resetStats();

  private:
    /** Stride detection + L2 fill on L1D misses. */
    void trainPrefetcher(uint64_t addr);

    struct Stream {
        uint64_t region = 0;       ///< 4 KiB region tag.
        uint64_t lastAddr = 0;
        int64_t stride = 0;
        int confirmations = 0;
        bool valid = false;
    };

    Config config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache llc_;
    std::vector<Stream> streams_;
    uint64_t prefetches_ = 0;
};

// ---------------------------------------------------------------------
// Hot-path definitions. Kept in the header so the per-op simulator
// loops (core load/store issue, CacheSink, StreamRunner) inline the
// whole lookup; the cold paths (fill, invalidate, prefetcher training)
// stay in cache.cpp.

inline bool
Cache::access(uint64_t addr, bool is_write)
{
    ++accesses_;
    ++tick_;
    const uint64_t set = setOf(addr);
    const uint64_t tag = tagOf(addr);
    const size_t base = static_cast<size_t>(set) * config_.ways;
    uint64_t *tags = &tags_[base];
    uint8_t *meta = &meta_[base];

    // Fast path: re-hitting the most recently hit way of the set, the
    // common case on streaming workloads. Hit bookkeeping (recency,
    // dirty bit) is what the full scan would have done, so the stats
    // are unaffected by the probe order.
    const uint8_t hint = mru_[set];
    if ((meta[hint] & kValid) != 0 && tags[hint] == tag) {
        last_use_[base + hint] = tick_;
        meta[hint] |= is_write ? kDirty : 0;
        return true;
    }

    // Hit scan: touches only the set's tag row (one cache line for
    // 8 ways) and the meta bytes; recency is written for the hit way
    // alone, so the no-allocate probe never strides the LRU array.
    for (int w = 0; w < config_.ways; ++w) {
        if ((meta[w] & kValid) != 0 && tags[w] == tag) {
            last_use_[base + w] = tick_;
            meta[w] |= is_write ? kDirty : 0;
            mru_[set] = static_cast<uint8_t>(w);
            return true;
        }
    }

    // Miss: LRU victim selection. The rule replicates the AoS model
    // exactly — the last invalid way in scan order wins; otherwise the
    // first way with the strictly smallest lastUse. Valid ways never
    // tie (tick_ is unique per touch).
    int victim = 0;
    for (int w = 0; w < config_.ways; ++w) {
        if ((meta[w] & kValid) == 0) {
            victim = w;
        } else if ((meta[victim] & kValid) != 0 &&
                   last_use_[base + w] < last_use_[base + victim]) {
            victim = w;
        }
    }
    ++misses_;
    tags[victim] = tag;
    last_use_[base + victim] = tick_;
    meta[victim] = static_cast<uint8_t>(kValid | (is_write ? kDirty : 0));
    mru_[set] = static_cast<uint8_t>(victim);
    return false;
}

inline int
Hierarchy::dataAccess(uint64_t addr, bool is_write)
{
    if (l1d_.access(addr, is_write)) {
        return config_.l1d.hitLatency;
    }
    if (config_.prefetch.enabled) {
        trainPrefetcher(addr);
    }
    if (l2_.access(addr, is_write)) {
        return config_.l2.hitLatency;
    }
    if (llc_.access(addr, is_write)) {
        return config_.llc.hitLatency;
    }
    return config_.memoryLatency;
}

inline int
Hierarchy::instrAccess(uint64_t addr)
{
    if (l1i_.access(addr, false)) {
        return 0;
    }
    // Instruction misses fill from L2 (shared with data).
    if (l2_.access(addr, false)) {
        return config_.l2.hitLatency;
    }
    if (llc_.access(addr, false)) {
        return config_.llc.hitLatency;
    }
    return config_.memoryLatency;
}

} // namespace vepro::uarch

#endif // VEPRO_UARCH_CACHE_HPP
