#include "core/threadstudy.hpp"

#include <algorithm>
#include <stdexcept>

namespace vepro::core
{

using sched::Placement;
using sched::ScheduleResult;
using trace::OpClass;
using trace::TraceOp;

std::vector<ThreadPoint>
scalabilityCurve(const encoders::EncodeResult &result, int max_threads)
{
    if (result.taskGraph.empty()) {
        throw std::invalid_argument(
            "scalabilityCurve: encode lacks a task graph (pass "
            "build_tasks = true)");
    }
    const uint64_t single = sched::schedule(result.taskGraph, 1).makespan;
    const double instr_rate =
        result.wallSeconds > 0
            ? static_cast<double>(result.instructions) / result.wallSeconds
            : 0.0;

    std::vector<ThreadPoint> curve;
    for (int n = 1; n <= max_threads; ++n) {
        ScheduleResult sr = sched::schedule(result.taskGraph, n);
        ThreadPoint p;
        p.threads = n;
        p.makespan = sr.makespan;
        p.speedup = sr.speedupVs(single);
        p.occupancy = sr.occupancy;
        p.estSeconds = instr_rate > 0
                           ? static_cast<double>(sr.makespan) / instr_rate
                           : 0.0;
        curve.push_back(p);
    }
    return curve;
}

std::vector<TraceOp>
buildSystemTrace(const std::vector<TraceOp> &op_trace,
                 const sched::TaskGraph &graph, int threads,
                 const SystemTraceConfig &config)
{
    ScheduleResult sr = sched::schedule(graph, threads);

    // Time-ordered segments across all cores: executed tasks plus the
    // idle (spin-wait) gaps between them.
    struct Segment {
        uint64_t start;
        uint64_t end;
        int core;
        int task;  ///< -1 for a spin segment.
    };
    std::vector<Segment> segments;

    std::vector<std::vector<const Placement *>> per_core(
        static_cast<size_t>(threads));
    for (const Placement &p : sr.placements) {
        if (p.core >= 0 && p.core < threads) {
            per_core[static_cast<size_t>(p.core)].push_back(&p);
        }
    }
    for (int c = 0; c < threads; ++c) {
        auto &list = per_core[static_cast<size_t>(c)];
        std::sort(list.begin(), list.end(),
                  [](const Placement *a, const Placement *b) {
                      return a->start < b->start;
                  });
        uint64_t cursor = 0;
        for (const Placement *p : list) {
            if (p->start > cursor) {
                segments.push_back({cursor, p->start, c, -1});
            }
            segments.push_back({p->start, p->end, c, p->task});
            cursor = p->end;
        }
        if (cursor < sr.makespan) {
            segments.push_back({cursor, sr.makespan, c, -1});
        }
    }
    std::sort(segments.begin(), segments.end(),
              [](const Segment &a, const Segment &b) {
                  return a.start != b.start ? a.start < b.start
                                            : a.core < b.core;
              });

    static const uint64_t spin_site = trace::sitePc("core.spinwait");
    constexpr uint64_t kQueueLine = 0x7f000000ULL;

    // Sample spin iterations at the same op/instruction ratio as the
    // captured task trace so the reconstructed stream keeps the socket's
    // true spin/task balance (each iteration emits 3 executed ops).
    double ratio = config.spinSampleRatio;
    if (ratio <= 0.0) {
        uint64_t sampled = 0;
        for (const sched::Task &t : graph.tasks()) {
            sampled += std::min(t.opEnd, op_trace.size()) -
                       std::min(t.opBegin, op_trace.size());
        }
        uint64_t weight = graph.totalWeight();
        ratio = weight > 0 ? static_cast<double>(sampled) /
                                 static_cast<double>(weight)
                           : 0.0;
    }

    std::vector<TraceOp> out;
    out.reserve(std::min(config.maxOps, op_trace.size() + (1u << 20)));
    for (const Segment &seg : segments) {
        if (out.size() >= config.maxOps) {
            break;
        }
        if (seg.task >= 0) {
            const sched::Task &t = graph.task(seg.task);
            size_t begin = std::min(t.opBegin, op_trace.size());
            size_t end = std::min(t.opEnd, op_trace.size());
            for (size_t i = begin; i < end && out.size() < config.maxOps;
                 ++i) {
                out.push_back(op_trace[i]);
            }
        } else {
            if (!config.pollingWaits) {
                continue;  // blocked workers execute nothing
            }
            // Spin-wait: the idle core polls the shared work queue; the
            // producer's enqueue invalidates the line each iteration, so
            // every poll load is a coherence miss.
            uint64_t idle = seg.end - seg.start;
            uint64_t iters = static_cast<uint64_t>(
                static_cast<double>(idle) * config.spinDuty * ratio / 3.0);
            for (uint64_t i = 0; i < iters && out.size() < config.maxOps;
                 ++i) {
                TraceOp inv;
                inv.pc = spin_site;
                inv.addr = kQueueLine;
                inv.cls = OpClass::Store;
                inv.foreign = true;
                out.push_back(inv);
                // The poll load chains to the previous iteration's load
                // (4 trace slots back), modelling the pause-paced polling
                // cadence of a real spin-wait loop.
                out.push_back({spin_site, kQueueLine, OpClass::Load, false,
                               4, 0, false});
                out.push_back({spin_site + 4, 0, OpClass::Alu, false, 1, 0,
                               false});
                out.push_back({spin_site + 8, 0, OpClass::BranchCond,
                               i + 1 < iters, 1, 0, false});
            }
        }
    }
    return out;
}

} // namespace vepro::core
