#include "core/experiment.hpp"

#include <cstring>
#include <stdexcept>

namespace vepro::core
{

RunScale
RunScale::fromArgs(int argc, char **argv)
{
    RunScale scale;
    scale.suite.divisor = 8;
    scale.suite.frames = 6;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            scale.suite.divisor = 8;
            scale.suite.frames = 6;
        } else if (arg == "--full") {
            scale.suite.divisor = 4;
            scale.suite.frames = 12;
            scale.maxTraceOps = 4'000'000;
        } else if (arg.rfind("--videos=", 0) == 0) {
            std::string list = arg.substr(9);
            size_t pos = 0;
            while (pos < list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos) {
                    comma = list.size();
                }
                scale.videos.push_back(list.substr(pos, comma - pos));
                pos = comma + 1;
            }
        } else if (arg.rfind("--benchmark", 0) == 0) {
            // Google-benchmark flags pass through untouched.
        } else {
            throw std::invalid_argument("unknown argument: " + arg);
        }
    }
    return scale;
}

const std::vector<int> &
crfSweepAv1()
{
    static const std::vector<int> sweep = {10, 20, 30, 40, 50, 60};
    return sweep;
}

const std::vector<int> &
crfSweepX26x()
{
    static const std::vector<int> sweep = [] {
        std::vector<int> v;
        for (int crf : crfSweepAv1()) {
            v.push_back(mapCrfToX26x(crf));
        }
        return v;
    }();
    return sweep;
}

int
mapCrfToX26x(int crf_av1)
{
    return crf_av1 * 51 / 63;
}

SweepPoint
runPoint(const encoders::EncoderModel &encoder, const video::Video &clip,
         int crf, int preset, const RunScale &scale)
{
    encoders::EncodeParams params;
    params.crf = crf;
    params.preset = preset;

    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = scale.maxTraceOps;
    pc.opWindow = 150'000;
    pc.opInterval = 600'000;

    SweepPoint point;
    point.encode = encoder.encode(clip, params, pc);
    uarch::Core core;
    point.core = core.run(point.encode.opTrace);
    return point;
}

std::vector<video::SuiteEntry>
selectedVideos(const RunScale &scale)
{
    if (scale.videos.empty()) {
        return video::vbenchMini();
    }
    std::vector<video::SuiteEntry> out;
    for (const std::string &name : scale.videos) {
        out.push_back(video::suiteEntry(name));
    }
    return out;
}

} // namespace vepro::core
