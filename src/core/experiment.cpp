#include "core/experiment.hpp"

#include <atomic>
#include <charconv>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "backend/profile.hpp"
#include "trace/pipeline.hpp"
#include "uarch/segment.hpp"

namespace vepro::core
{

RunScale
RunScale::fromArgs(int argc, char **argv)
{
    RunScale scale;
    scale.suite.divisor = 8;
    scale.suite.frames = 6;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            scale.suite.divisor = 8;
            scale.suite.frames = 6;
        } else if (arg == "--full") {
            scale.suite.divisor = 4;
            scale.suite.frames = 12;
            scale.maxTraceOps = 4'000'000;
        } else if (arg == "--uncapped") {
            scale.maxTraceOps = 0;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            int jobs = parseIntStrict(arg.substr(7), "--jobs");
            if (jobs < 0) {
                throw std::invalid_argument("--jobs must be >= 0");
            }
            scale.jobs = trace::resolveJobs(jobs);  // 0 = auto-detect
        } else if (arg.rfind("--sim-jobs=", 0) == 0) {
            int jobs = parseIntStrict(arg.substr(11), "--sim-jobs");
            if (jobs < 0) {
                throw std::invalid_argument("--sim-jobs must be >= 0");
            }
            scale.simJobs = trace::resolveJobs(jobs);  // 0 = auto-detect
        } else if (arg.rfind("--segments=", 0) == 0) {
            int segments = parseIntStrict(arg.substr(11), "--segments");
            if (segments < 0) {
                throw std::invalid_argument("--segments must be >= 0");
            }
            scale.segments = trace::resolveJobs(segments);  // 0 = auto
        } else if (arg.rfind("--segment-warmup=", 0) == 0) {
            scale.segmentWarmup =
                parseIntStrict(arg.substr(17), "--segment-warmup");
            if (scale.segmentWarmup < 0) {
                throw std::invalid_argument(
                    "--segment-warmup must be >= 0");
            }
        } else if (arg.rfind("--backend=", 0) == 0) {
            scale.backend = arg.substr(10);
            if (scale.backend.empty()) {
                throw std::invalid_argument("--backend expects a name");
            }
            // Validate at parse time so typos fail before any encode;
            // fixed-function profiles have no core to simulate on.
            const backend::MachineProfile &profile =
                backend::resolveProfile(scale.backend);
            if (profile.kind != backend::Kind::Core) {
                throw std::invalid_argument(
                    "--backend=" + scale.backend +
                    " is a fixed-function profile; sweep points need a "
                    "core-model backend");
            }
        } else if (arg == "--no-cache") {
            scale.noCache = true;
        } else if (arg.rfind("--store=", 0) == 0) {
            scale.storeDir = arg.substr(8);
            if (scale.storeDir.empty()) {
                throw std::invalid_argument("--store expects a directory");
            }
        } else if (arg.rfind("--videos=", 0) == 0) {
            std::string list = arg.substr(9);
            size_t pos = 0;
            while (pos < list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos) {
                    comma = list.size();
                }
                scale.videos.push_back(list.substr(pos, comma - pos));
                pos = comma + 1;
            }
        } else if (arg.rfind("--benchmark", 0) == 0) {
            // Google-benchmark flags pass through untouched.
        } else {
            throw std::invalid_argument("unknown argument: " + arg);
        }
    }
    return scale;
}

int
parseIntStrict(const std::string &text, const std::string &flag)
{
    int value = 0;
    const char *first = text.data();
    const char *last = first + text.size();
    auto [ptr, ec] = std::from_chars(first, last, value);
    // Partial consumption ("4abc") is as wrong as no digits at all:
    // std::stoi would silently accept it.
    if (ec != std::errc() || ptr != last || text.empty()) {
        throw std::invalid_argument(flag + " expects an integer, got '" +
                                    text + "'");
    }
    return value;
}

const std::vector<int> &
crfSweepAv1()
{
    static const std::vector<int> sweep = {10, 20, 30, 40, 50, 60};
    return sweep;
}

const std::vector<int> &
crfSweepX26x()
{
    static const std::vector<int> sweep = [] {
        std::vector<int> v;
        for (int crf : crfSweepAv1()) {
            v.push_back(mapCrfToX26x(crf));
        }
        return v;
    }();
    return sweep;
}

int
mapCrfToX26x(int crf_av1)
{
    return crf_av1 * 51 / 63;
}

trace::ProbeConfig
tracingConfig(const RunScale &scale)
{
    trace::ProbeConfig pc;
    pc.collectOps = true;
    if (scale.maxTraceOps == 0) {
        pc.maxOps = std::numeric_limits<size_t>::max();
        pc.opWindow = 1;
        pc.opInterval = 1;  // opWindow >= opInterval: record everything.
    } else {
        pc.maxOps = scale.maxTraceOps;
        pc.opWindow = 150'000;
        pc.opInterval = 600'000;
    }
    return pc;
}

SweepPoint
runPoint(const encoders::EncoderModel &encoder, const video::Video &clip,
         int crf, int preset, const RunScale &scale)
{
    encoders::EncodeParams params;
    params.crf = crf;
    params.preset = preset;

    // The machine the point simulates on: default-constructed (the
    // paper's Xeon) when no backend is named, so pre-backend callers
    // and cache entries see the exact geometry they always did.
    uarch::CoreConfig core_cfg;
    if (!scale.backend.empty()) {
        const backend::MachineProfile &profile =
            backend::resolveProfile(scale.backend);
        if (profile.kind != backend::Kind::Core) {
            throw std::invalid_argument(
                "runPoint: backend '" + scale.backend +
                "' is fixed-function and cannot run the core model");
        }
        core_cfg = profile.core;
    }

    SweepPoint point;
    if (scale.segments > 1) {
        // Segment-parallel: capture the trace in blocks, simulate N
        // contiguous segments concurrently, stitch deterministically.
        uarch::SegmentSimConfig cfg;
        cfg.core = core_cfg;
        cfg.segments = scale.segments;
        cfg.warmupBlocks = scale.segmentWarmup;
        cfg.jobs = 0;  // auto; SegmentSim clamps to the segment count
        uarch::SegmentSim sim(cfg);
        point.encode =
            encoder.encode(clip, params, tracingConfig(scale), false, &sim);
        point.core = sim.stats();
    } else if (scale.simJobs > 1) {
        // Pipeline-parallel: the core model consumes blocks on a worker
        // thread while the encode keeps producing. Bit-identical to the
        // sequential fused path.
        uarch::StreamCore sim(core_cfg);
        trace::PipelineMux::Options opts;
        opts.jobs = scale.simJobs;
        trace::PipelineMux mux({&sim}, opts);
        point.encode =
            encoder.encode(clip, params, tracingConfig(scale), false, &mux);
        point.core = sim.stats();
    } else {
        uarch::StreamCore sim(core_cfg);
        point.encode =
            encoder.encode(clip, params, tracingConfig(scale), false, &sim);
        point.core = sim.stats();
    }
    return point;
}

namespace
{

/** K StreamCores + the sink pointer list a PipelineMux wants. */
struct CoreFan {
    std::vector<std::unique_ptr<uarch::StreamCore>> cores;
    std::vector<trace::TraceSink *> sinks;

    explicit CoreFan(const std::vector<uarch::CoreConfig> &configs)
    {
        cores.reserve(configs.size());
        sinks.reserve(configs.size());
        for (const uarch::CoreConfig &cfg : configs) {
            cores.push_back(std::make_unique<uarch::StreamCore>(cfg));
            sinks.push_back(cores.back().get());
        }
    }

    std::vector<uarch::CoreStats>
    stats() const
    {
        std::vector<uarch::CoreStats> out;
        out.reserve(cores.size());
        for (const auto &core : cores) {
            out.push_back(core->stats());
        }
        return out;
    }
};

} // namespace

std::vector<SweepPoint>
runPointMulti(const encoders::EncoderModel &encoder, const video::Video &clip,
              int crf, int preset, const RunScale &scale,
              const std::vector<uarch::CoreConfig> &configs)
{
    if (scale.segments > 1) {
        throw std::invalid_argument(
            "runPointMulti: segment-parallel simulation is per-config "
            "state; run segment points through runPoint");
    }
    if (configs.empty()) {
        return {};
    }
    encoders::EncodeParams params;
    params.crf = crf;
    params.preset = preset;

    CoreFan fan(configs);
    trace::PipelineMux::Options opts;
    opts.jobs = scale.simJobs;  // 1 = inline fan-out, 0/N = workers
    trace::PipelineMux mux(fan.sinks, opts);
    encoders::EncodeResult enc =
        encoder.encode(clip, params, tracingConfig(scale), false, &mux);

    std::vector<uarch::CoreStats> stats = fan.stats();
    std::vector<SweepPoint> points(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        points[i].encode = enc;  // one encode serves every config
        points[i].core = stats[i];
    }
    return points;
}

std::vector<uarch::CoreStats>
replayMulti(const trace::FileSource &source,
            const std::vector<uarch::CoreConfig> &configs, int jobs)
{
    if (configs.empty()) {
        return {};
    }
    CoreFan fan(configs);
    trace::PipelineMux::Options opts;
    opts.jobs = jobs;
    trace::PipelineMux mux(fan.sinks, opts);
    source.replay(mux);
    mux.flush();
    return fan.stats();
}

void
parallelFor(size_t n, int jobs, const std::function<void(size_t)> &fn)
{
    if (jobs <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }
    size_t workers = std::min(static_cast<size_t>(jobs), n);
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            while (!failed.load(std::memory_order_relaxed)) {
                size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n) {
                    return;
                }
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error) {
                        error = std::current_exception();
                    }
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }
    for (std::thread &t : pool) {
        t.join();
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

std::vector<video::SuiteEntry>
selectedVideos(const RunScale &scale)
{
    if (scale.videos.empty()) {
        return video::vbenchMini();
    }
    std::vector<video::SuiteEntry> out;
    for (const std::string &name : scale.videos) {
        out.push_back(video::suiteEntry(name));
    }
    return out;
}

} // namespace vepro::core
