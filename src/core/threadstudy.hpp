#ifndef VEPRO_CORE_THREADSTUDY_HPP
#define VEPRO_CORE_THREADSTUDY_HPP

/**
 * @file
 * Thread-scalability study plumbing (Figs. 12-16).
 *
 * The encoder models emit their real task graphs (weights measured in
 * instructions, dependencies from their threading structure); the
 * discrete-event scheduler places them on N simulated cores. Speedup is
 * makespan(1)/makespan(N).
 *
 * For the top-down-vs-threads study, buildSystemTrace() reconstructs the
 * instruction stream the whole socket executes: every core's task ops in
 * simulated-time order, with idle cores filled by work-queue spin-wait
 * loops whose polled line is invalidated by the producer (modelled as
 * foreign stores). An encoder that divides work evenly has almost no
 * idle time and its merged trace matches the single-thread one; an
 * encoder with a serial spine (x265) spends most of its slots in
 * coherence-missing spin loads — exactly the growing backend-boundedness
 * the paper observes.
 */

#include <cstdint>
#include <vector>

#include "encoders/encoder_model.hpp"
#include "sched/scheduler.hpp"
#include "trace/probe.hpp"

namespace vepro::core
{

/** Scalability result for one encoder at one thread count. */
struct ThreadPoint {
    int threads = 1;
    uint64_t makespan = 0;     ///< In instructions (work units).
    double speedup = 1.0;      ///< vs the same graph on one core.
    double occupancy = 1.0;    ///< Busy fraction of core-time.
    double estSeconds = 0.0;   ///< makespan / measured instr-rate.
};

/**
 * Schedule @p result's task graph on 1..max_threads cores.
 *
 * @param result      An encode produced with build_tasks = true.
 * @param max_threads Largest core count to evaluate (paper uses 8).
 */
std::vector<ThreadPoint> scalabilityCurve(
    const encoders::EncodeResult &result, int max_threads);

/** Knobs for the merged-socket trace reconstruction. */
struct SystemTraceConfig {
    /**
     * Whether idle workers poll the work queue (x265's thread pool spins
     * before sleeping) or block on a futex (the other encoders). Polling
     * cores execute coherence-missing spin loops that show up in the
     * socket's slot accounting; blocked cores execute nothing.
     */
    bool pollingWaits = true;
    /**
     * Spin ops are emitted at the same sampling ratio as the task ops in
     * the captured trace (ops-in-trace / total task weight), so the
     * spin/task instruction balance in the reconstructed stream matches
     * the real socket's. Override the ratio here if nonzero.
     */
    double spinSampleRatio = 0.0;
    /**
     * Fraction of each wait interval actually spent polling before the
     * pool parks the thread (x265 spins for a bounded window, then
     * sleeps). The rest of the idle time executes nothing.
     */
    double spinDuty = 0.015;
    /** Cap on emitted ops. */
    size_t maxOps = 3'000'000;
};

/**
 * Reconstruct the socket-wide instruction stream for @p threads cores.
 *
 * @param op_trace Full-run op trace the task graph indexes into.
 * @param graph    Task graph from the same encode.
 * @param threads  Core count.
 */
std::vector<trace::TraceOp> buildSystemTrace(
    const std::vector<trace::TraceOp> &op_trace,
    const sched::TaskGraph &graph, int threads,
    const SystemTraceConfig &config = {});

} // namespace vepro::core

#endif // VEPRO_CORE_THREADSTUDY_HPP
