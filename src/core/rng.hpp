#ifndef VEPRO_CORE_RNG_HPP
#define VEPRO_CORE_RNG_HPP

/**
 * @file
 * Shared deterministic RNGs for synthetic workloads, fuzzing, and
 * randomized tests.
 *
 * Every randomized component in the repo (trace::synth, check::Fuzzer,
 * the test suites) draws from these generators so that a failure is
 * always reproducible from a single printed 64-bit seed: same seed,
 * same stream, on every platform, in every build mode. Neither engine
 * depends on libstdc++'s distribution internals (std::uniform_* are
 * implementation-defined), so seeds recorded in tests/corpus/ replay
 * bit-identically across toolchains.
 */

#include <cstdint>

namespace vepro::core
{

/**
 * SplitMix64 (Steele et al.): the recommended seeder/stream-splitter.
 * Full 64-bit period, passes BigCrush, and — unlike xorshift — has no
 * bad seeds (0 is fine), which matters when seeds come from a CLI flag.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed = 0) : state_(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); bound == 0 yields 0. */
    uint64_t
    below(uint64_t bound)
    {
        return bound != 0 ? next() % bound : 0;
    }

    /** Uniform value in [lo, hi] (inclusive). */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** True with probability @p num / @p den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return below(den) < num;
    }

    /** Derive an independent child seed (for per-case sub-streams). */
    uint64_t
    fork()
    {
        return next();
    }

  private:
    uint64_t state_;
};

/**
 * xorshift64 (Marsaglia): the historical generator of trace::synth.
 * Kept bit-compatible with the inline copies it replaces — the golden
 * stats in tests/test_core.cpp pin counters computed from its exact
 * stream. Any non-zero state is preserved exactly (so re-wrapping a
 * mid-stream state is lossless); only the degenerate 0 is bumped.
 * Callers traditionally seed with `seed | 1`.
 */
class XorShift64
{
  public:
    explicit XorShift64(uint64_t seed) : state_(seed != 0 ? seed : 1) {}

    uint64_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }

    uint64_t state() const { return state_; }

  private:
    uint64_t state_;
};

} // namespace vepro::core

#endif // VEPRO_CORE_RNG_HPP
