#ifndef VEPRO_CORE_EXPERIMENT_HPP
#define VEPRO_CORE_EXPERIMENT_HPP

/**
 * @file
 * Shared experiment plumbing for the bench binaries: standard sweep
 * points, quick/full scaling, and the encode+simulate pipeline used by
 * every microarchitectural figure.
 */

#include <string>
#include <vector>

#include "encoders/encoder_model.hpp"
#include "uarch/core.hpp"
#include "video/suite.hpp"

namespace vepro::core
{

/** Run-scale options shared by all benches. */
struct RunScale {
    /** Suite geometry; --full halves the divisor and doubles frames. */
    video::SuiteScale suite{};
    /** Videos to run; empty = the whole vbench-mini suite. */
    std::vector<std::string> videos;
    /** Cap on retained ops for core-model traces. */
    size_t maxTraceOps = 1'200'000;

    /** Parse --quick / --full / --videos=a,b,c from argv. */
    static RunScale fromArgs(int argc, char **argv);
};

/** The CRF sweep points used throughout the paper's Section 4. */
const std::vector<int> &crfSweepAv1();   ///< {10, 20, 30, 40, 50, 60}
const std::vector<int> &crfSweepX26x();  ///< Scaled onto the 0-51 range.

/** Map a 0-63 family CRF onto an equivalent 0-51 family CRF. */
int mapCrfToX26x(int crf_av1);

/** Encode + microarchitectural simulation of one sweep point. */
struct SweepPoint {
    encoders::EncodeResult encode;
    uarch::CoreStats core;
};

/**
 * Run one encode with op tracing and simulate the captured trace on the
 * paper machine's core model.
 */
SweepPoint runPoint(const encoders::EncoderModel &encoder,
                    const video::Video &clip, int crf, int preset,
                    const RunScale &scale);

/** The suite entries selected by @p scale (all 15 when unfiltered). */
std::vector<video::SuiteEntry> selectedVideos(const RunScale &scale);

} // namespace vepro::core

#endif // VEPRO_CORE_EXPERIMENT_HPP
