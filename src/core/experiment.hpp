#ifndef VEPRO_CORE_EXPERIMENT_HPP
#define VEPRO_CORE_EXPERIMENT_HPP

/**
 * @file
 * Shared experiment plumbing for the bench binaries: standard sweep
 * points, quick/full scaling, the fused encode+simulate pipeline used by
 * every microarchitectural figure, and the thread-pool driver that runs
 * independent sweep points concurrently.
 */

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "encoders/encoder_model.hpp"
#include "trace/trace_io.hpp"
#include "uarch/core.hpp"
#include "video/suite.hpp"

namespace vepro::core
{

/** Run-scale options shared by all benches. */
struct RunScale {
    /** Suite geometry; --full halves the divisor and doubles frames. */
    video::SuiteScale suite{};
    /** Videos to run; empty = the whole vbench-mini suite. */
    std::vector<std::string> videos;
    /**
     * Cap on retained ops for core-model traces. 0 = uncapped and
     * unsampled: the fused streaming pipeline simulates every dynamic
     * op, which stays O(1) in memory but costs proportionally more time.
     */
    size_t maxTraceOps = 1'200'000;
    /** Worker threads for independent sweep points (--jobs=N;
     *  0 = auto-detect, resolved to a concrete count at parse time). */
    int jobs = 1;
    /**
     * Pipeline-parallel simulation inside one sweep point
     * (--sim-jobs=N): with N > 1 the point's sinks run on worker
     * threads behind a trace::PipelineMux, overlapping the encode with
     * the simulation. 0 = auto-detect; 1 = classic sequential fused
     * path. Never changes the measured statistics (bit-identical by
     * construction), so it is not part of a point's cache identity.
     */
    int simJobs = 1;
    /**
     * Segment-parallel core simulation (--segments=N): the point's
     * trace is split into N block-aligned segments simulated
     * concurrently by uarch::SegmentSim. 0 = auto-detect; 1 = off.
     * Segment mode changes the measured numbers (bounded warmup error,
     * see DESIGN.md §13), so segments/segmentWarmup ARE cache-identity
     * fields when segments > 1.
     */
    int segments = 1;
    /** Warmup prefix per segment, in 4096-op trace blocks
     *  (--segment-warmup=K); counters of the prefix are discarded. */
    int segmentWarmup = 8;
    /**
     * Named machine profile the point simulates on (--backend=NAME):
     * "" = the default xeon-bdw geometry, i.e. exactly the config every
     * pre-backend run used, so the default changes nothing. Must name a
     * core-model profile — fixed-function backends (hw-enc) have no
     * trace to simulate and are priced analytically by serve's cost
     * model instead. Changes the measured numbers, so it is a cache
     * identity field (see lab::JobSpec::canonicalKey).
     */
    std::string backend;
    /** Bypass the lab result cache: recompute (and refresh) every point. */
    bool noCache = false;
    /** Directory of the persistent lab result store. */
    std::string storeDir = ".vepro-lab";

    /**
     * Parse --quick / --full / --videos=a,b,c / --jobs=N / --sim-jobs=N
     * / --segments=N / --segment-warmup=K / --uncapped / --no-cache /
     * --store=DIR / --backend=NAME. Numeric flags are strict: trailing garbage
     * ("--jobs=4abc") is rejected, not silently truncated. All three
     * parallelism flags accept 0 = auto-detect via
     * std::thread::hardware_concurrency() (floor 1).
     */
    static RunScale fromArgs(int argc, char **argv);
};

/**
 * Strict decimal parse of an entire string: the value must consume all
 * of @p text and fit in an int. @throws std::invalid_argument otherwise
 * (with @p flag naming the offender).
 */
int parseIntStrict(const std::string &text, const std::string &flag);

/** The CRF sweep points used throughout the paper's Section 4. */
const std::vector<int> &crfSweepAv1();   ///< {10, 20, 30, 40, 50, 60}
const std::vector<int> &crfSweepX26x();  ///< Scaled onto the 0-51 range.

/** Map a 0-63 family CRF onto an equivalent 0-51 family CRF. */
int mapCrfToX26x(int crf_av1);

/** Encode + microarchitectural simulation of one sweep point. */
struct SweepPoint {
    encoders::EncodeResult encode;
    uarch::CoreStats core;
};

/**
 * The probe configuration runPoint uses for a given scale — the sampled
 * capped window, or full fidelity when scale.maxTraceOps is 0.
 */
trace::ProbeConfig tracingConfig(const RunScale &scale);

/**
 * Run one encode with op tracing and simulate it on the paper machine's
 * core model, fused: the encode streams its ops straight into a
 * uarch::StreamCore, so no trace is materialised. Numerically identical
 * to capturing the trace and replaying it through uarch::Core.
 */
SweepPoint runPoint(const encoders::EncoderModel &encoder,
                    const video::Video &clip, int crf, int preset,
                    const RunScale &scale);

/**
 * One-pass multi-config simulation: run ONE encode and fan its trace
 * through @p configs.size() independent uarch::StreamCore instances
 * behind a trace::PipelineMux, returning one SweepPoint per config.
 * Each returned point's CoreStats is bit-identical to what a sequential
 * runPoint with that config would measure (the mux preserves per-sink
 * record order exactly), but the encode+emit cost — and on the replay
 * variants the decode cost — is paid once instead of K times.
 *
 * scale.simJobs drives the fan-out parallelism: 1 runs every core
 * inline on the producing thread (still one encode), >1 or 0 (auto)
 * runs each core on its own mux worker. scale.backend is ignored — the
 * configs are explicit. Segment mode is per-config simulation state and
 * is not supported here; @throws std::invalid_argument when
 * scale.segments > 1.
 */
std::vector<SweepPoint>
runPointMulti(const encoders::EncoderModel &encoder, const video::Video &clip,
              int crf, int preset, const RunScale &scale,
              const std::vector<uarch::CoreConfig> &configs);

/**
 * The replay half of the capture-once/replay-many workflow: stream one
 * on-disk TraceFile through K core configs in a single pass. Same
 * determinism contract as runPointMulti; @p jobs as PipelineMux
 * (0 = auto, 1 = sequential).
 */
std::vector<uarch::CoreStats>
replayMulti(const trace::FileSource &source,
            const std::vector<uarch::CoreConfig> &configs, int jobs = 0);

/**
 * Run fn(0..n-1) on a pool of @p jobs worker threads (inline when jobs
 * <= 1 or n <= 1). Each index is claimed atomically, so items need not
 * take uniform time. Exceptions propagate: the first one thrown is
 * rethrown on the caller's thread after all workers join.
 *
 * Sweep points are independent — each worker's encode owns its probe
 * and sinks — which makes this the driver for every bench sweep.
 */
void parallelFor(size_t n, int jobs, const std::function<void(size_t)> &fn);

/** The suite entries selected by @p scale (all 15 when unfiltered). */
std::vector<video::SuiteEntry> selectedVideos(const RunScale &scale);

} // namespace vepro::core

#endif // VEPRO_CORE_EXPERIMENT_HPP
