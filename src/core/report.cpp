#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace vepro::core
{

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty()) {
        throw std::invalid_argument("Table: empty header");
    }
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        throw std::invalid_argument("Table: row width mismatch");
    }
    rows_.push_back(std::move(row));
}

std::string
Table::toMarkdown() const
{
    // Column widths for aligned output.
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) {
        width[c] = header_[c].size();
    }
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        out << "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            out << " " << cells[c]
                << std::string(width[c] - cells[c].size(), ' ') << " |";
        }
        out << "\n";
    };
    emit(header_);
    out << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
        out << std::string(width[c] + 2, '-') << "|";
    }
    out << "\n";
    for (const auto &row : rows_) {
        emit(row);
    }
    return out.str();
}

namespace
{

/** RFC-4180: quote cells holding separators; double embedded quotes. */
std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
        return cell;
    }
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

/** Minimal JSON string escape for table cells and header names. */
std::string
jsonCell(const std::string &cell)
{
    std::string out;
    out.reserve(cell.size() + 2);
    out.push_back('"');
    for (char c : cell) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace

std::string
Table::toCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c) {
                out << ",";
            }
            out << csvCell(cells[c]);
        }
        out << "\n";
    };
    emit(header_);
    for (const auto &row : rows_) {
        emit(row);
    }
    return out.str();
}

std::string
Table::toJson() const
{
    std::ostringstream out;
    out << "[";
    for (size_t r = 0; r < rows_.size(); ++r) {
        out << (r ? ",\n  " : "\n  ") << "{";
        for (size_t c = 0; c < header_.size(); ++c) {
            if (c) {
                out << ", ";
            }
            out << jsonCell(header_[c]) << ": " << jsonCell(rows_[r][c]);
        }
        out << "}";
    }
    out << (rows_.empty() ? "]" : "\n]");
    return out.str();
}

void
Table::print(const std::string &caption) const
{
    std::printf("\n== %s ==\n%s", caption.c_str(), toMarkdown().c_str());
    std::fflush(stdout);
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string
fmtCount(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0) {
            out.push_back(',');
        }
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

std::string
fmtSci(double value)
{
    if (value == 0.0) {
        return "0";
    }
    int exp = static_cast<int>(std::floor(std::log10(std::fabs(value))));
    double mant = value / std::pow(10.0, exp);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1fE+%02d", mant, exp);
    return buf;
}

} // namespace vepro::core
