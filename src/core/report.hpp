#ifndef VEPRO_CORE_REPORT_HPP
#define VEPRO_CORE_REPORT_HPP

/**
 * @file
 * Small table/series formatters shared by the bench binaries: every bench
 * prints the rows/series of its paper artifact through these, so output
 * is uniform and machine-greppable.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vepro::core
{

/** A printable table: header plus rows of preformatted cells. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render as github-style markdown. */
    std::string toMarkdown() const;

    /**
     * Render as RFC-4180 CSV: cells containing commas, quotes, or
     * newlines are quoted (quotes doubled), so fmtCount's
     * thousands-separated values survive the round trip.
     */
    std::string toCsv() const;

    /**
     * Render as a JSON array of row objects keyed by the header, with
     * the preformatted cell text as string values. Deterministic: the
     * same table always serialises to the same bytes (the vepro-lab
     * artifact contract).
     */
    std::string toJson() const;

    /** Print the markdown form to stdout with a caption line. */
    void print(const std::string &caption) const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format with @p decimals fraction digits. */
std::string fmt(double value, int decimals = 2);

/** Format an integer count with thousands separators ("12,345,678"). */
std::string fmtCount(uint64_t value);

/** Format in engineering notation like the paper's Table 2 ("1.7E+11"). */
std::string fmtSci(double value);

} // namespace vepro::core

#endif // VEPRO_CORE_REPORT_HPP
