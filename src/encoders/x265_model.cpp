#include "encoders/x265_model.hpp"

#include <cmath>

namespace vepro::encoders
{

codec::ToolConfig
X265Model::toolConfig(const EncodeParams &params) const
{
    const double s = slowness(params.preset);
    codec::ToolConfig tc;
    tc.superblockSize = 64;
    tc.minBlockSize = 8;
    tc.partitionMask = codec::kPartitionsRect;
    tc.intraModes = 4 + static_cast<int>(std::lround(8 * s));
    tc.intraModesRect = 2 + static_cast<int>(std::lround(3 * s));
    tc.txSizeCandidates = s > 0.7 ? 2 : 1;
    tc.txTypeCandidates = 1;
    tc.refFramesSearched = 1 + static_cast<int>(std::lround(1.2 * s));
    tc.interpFilterCands = 1;
    tc.me.range = 4 + static_cast<int>(std::lround(10 * s));
    tc.me.exhaustive = false;
    tc.me.subpel = s > 0.3;
    tc.me.sharpSubpel = true;
    tc.me.earlyExitPerPel = (1.0 - s) * 2.5;
    tc.fullRd = s >= 0.65;
    tc.earlyExitScale = 0.3 + (1.0 - s) * (1.0 - s) * 2.2;
    tc.modePatience = 1 + static_cast<int>(std::lround(3 * s));
    tc.filterPasses = 1;
    tc.coeffContexts = 2;
    codec::applyQuality(tc, params.crf, crfRange());
    return tc;
}

} // namespace vepro::encoders
