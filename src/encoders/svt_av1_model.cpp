#include "encoders/svt_av1_model.hpp"

#include <cmath>

namespace vepro::encoders
{

codec::ToolConfig
SvtAv1Model::toolConfig(const EncodeParams &params) const
{
    const double s = slowness(params.preset);
    codec::ToolConfig tc;
    tc.superblockSize = 64;
    tc.minBlockSize = s >= 0.5 ? 4 : 8;
    tc.partitionMask = codec::kPartitionsAv1;
    tc.intraModes = 6 + static_cast<int>(std::lround(10 * s));
    tc.intraModesRect = 2 + static_cast<int>(std::lround(4 * s));
    tc.txSizeCandidates = s > 0.5 ? 2 : 1;
    tc.txTypeCandidates = 1 + static_cast<int>(std::lround(2 * s));
    tc.refFramesSearched = 1 + static_cast<int>(std::lround(3 * s));
    tc.interpFilterCands = 1 + static_cast<int>(std::lround(2 * s));
    tc.me.range = 6 + static_cast<int>(std::lround(14 * s));
    tc.me.exhaustive = s > 0.9;
    tc.me.subpel = s > 0.2;
    tc.me.sharpSubpel = true;
    tc.me.earlyExitPerPel = (1.0 - s) * 1.2;
    tc.fullRd = s >= 0.35;
    tc.earlyExitScale = 0.05 + (1.0 - s) * (1.0 - s) * 1.1;
    tc.modePatience = 1 + static_cast<int>(std::lround(4 * s));
    tc.filterPasses = 2;
    tc.pruneMinDepth = 1;
    tc.coeffContexts = 4;
    codec::applyQuality(tc, params.crf, crfRange());
    return tc;
}

} // namespace vepro::encoders
