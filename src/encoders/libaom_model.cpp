#include "encoders/libaom_model.hpp"

#include <cmath>

namespace vepro::encoders
{

codec::ToolConfig
LibaomModel::toolConfig(const EncodeParams &params) const
{
    const double s = slowness(params.preset);
    codec::ToolConfig tc;
    tc.superblockSize = 64;
    tc.minBlockSize = s >= 0.6 ? 4 : 8;
    tc.partitionMask = codec::kPartitionsAv1;
    tc.intraModes = 5 + static_cast<int>(std::lround(9 * s));
    tc.intraModesRect = 2 + static_cast<int>(std::lround(3 * s));
    tc.txSizeCandidates = s > 0.6 ? 2 : 1;
    tc.txTypeCandidates = 1 + static_cast<int>(std::lround(1.4 * s));
    tc.refFramesSearched = 1 + static_cast<int>(std::lround(2.4 * s));
    tc.interpFilterCands = 1 + static_cast<int>(std::lround(1.2 * s));
    tc.me.range = 5 + static_cast<int>(std::lround(11 * s));
    tc.me.exhaustive = s > 0.92;
    tc.me.subpel = s > 0.25;
    tc.me.sharpSubpel = true;
    tc.me.earlyExitPerPel = (1.0 - s) * 1.5;
    tc.fullRd = s >= 0.45;
    tc.earlyExitScale = 0.08 + (1.0 - s) * (1.0 - s) * 1.4;
    tc.modePatience = 1 + static_cast<int>(std::lround(3 * s));
    tc.filterPasses = 2;
    tc.pruneMinDepth = 1;
    tc.coeffContexts = 4;
    codec::applyQuality(tc, params.crf, crfRange());
    return tc;
}

} // namespace vepro::encoders
