#ifndef VEPRO_ENCODERS_X265_MODEL_HPP
#define VEPRO_ENCODERS_X265_MODEL_HPP

/**
 * @file
 * x265 model: HEVC's 64x64 CTU quad-tree with rectangular PUs and a
 * mid-sized intra set. Threading follows the paper's observation that
 * x265 concentrates work in a primary thread with light helpers, which
 * is what its ~1.3x scaling ceiling and growing backend-boundedness
 * imply.
 */

#include "encoders/encoder_model.hpp"

namespace vepro::encoders
{

/** Model of the x265 HEVC encoder. */
class X265Model : public EncoderModel
{
  public:
    std::string name() const override { return "x265"; }
    int crfRange() const override { return 51; }
    int presetRange() const override { return 9; }
    bool presetInverted() const override { return true; }
    ThreadModel threadModel() const override
    {
        return ThreadModel::SerialSpine;
    }
    codec::ToolConfig toolConfig(const EncodeParams &params) const override;
};

} // namespace vepro::encoders

#endif // VEPRO_ENCODERS_X265_MODEL_HPP
