#ifndef VEPRO_ENCODERS_ENCODER_MODEL_HPP
#define VEPRO_ENCODERS_ENCODER_MODEL_HPP

/**
 * @file
 * Encoder models: the five encoders the paper benchmarks, rebuilt on the
 * shared block-codec toolkit.
 *
 * Each model contributes (a) a ToolConfig mapping its CRF/preset envelope
 * onto toolkit knobs — partition arity, intra-mode count, motion-search
 * effort, RD depth, pruning — and (b) a threading structure used to emit
 * the task graph for the scalability study. The shared encode loop is
 * identical, so differences in instruction count, branch behaviour, and
 * scaling between models are consequences of those two declarations,
 * mirroring how the real encoders differ.
 */

#include <memory>
#include <string>
#include <vector>

#include "codec/rdo.hpp"
#include "sched/taskgraph.hpp"
#include "trace/probe.hpp"
#include "video/frame.hpp"

namespace vepro::encoders
{

/** User-facing encode parameters (one point of the paper's sweeps). */
struct EncodeParams {
    int crf = 32;     ///< Within the model's crfRange().
    int preset = 4;   ///< Within the model's presetRange().
};

/** How a model structures its parallel work. */
enum class ThreadModel {
    Wavefront,      ///< SVT-AV1: superblock wavefront + frame pipelining.
    FrameParallel,  ///< x264: serial frames overlapped with row lag.
    TileParallel,   ///< libaom: independent tiles, serial frames.
    SerialSpine,    ///< x265 model: heavy main thread + light helpers.
};

/** Everything measured during one instrumented encode. */
struct EncodeResult {
    std::string encoder;
    EncodeParams params;

    double wallSeconds = 0.0;       ///< Host wall time of the encode.
    uint64_t instructions = 0;      ///< Modeled dynamic instructions.
    trace::MixCounters mix;         ///< Instruction mix (Table 2 / Fig 3).
    codec::EncodeStats stats;       ///< Search/commit statistics.

    double psnrDb = 0.0;            ///< Sequence luma PSNR.
    double bitrateKbps = 0.0;       ///< Real entropy-coded bitrate.

    /**
     * The probe's captured traces. Only populated when the encode ran
     * without an external sink — fused pipelines consume ops as they
     * are produced and materialise nothing here.
     */
    trace::VectorSink capture;
    /** Captured op trace, for batch replay through the core model. */
    const std::vector<trace::TraceOp> &opTrace() const { return capture.ops(); }
    /** Captured branch trace, for batch CBP replay. */
    const std::vector<trace::BranchRecord> &
    branchTrace() const
    {
        return capture.branches();
    }
    /** Instruction span the branch trace covers (CBP MPKI denominator). */
    uint64_t branchTraceInstructions = 0;
    /**
     * In-window records cut by the probe's maxOps/maxBranches caps.
     * Non-zero means the recorded streams under-represent the run;
     * benches warn rather than report silently clipped denominators.
     */
    uint64_t droppedOps = 0;
    uint64_t droppedBranches = 0;

    sched::TaskGraph taskGraph;     ///< For the scalability study.
};

/** Abstract encoder model. */
class EncoderModel
{
  public:
    virtual ~EncoderModel() = default;

    /** Display name matching the paper ("SVT-AV1", "x264", ...). */
    virtual std::string name() const = 0;

    /** Upper CRF bound (63 for the AV1/VP9 family, 51 for x264/x265). */
    virtual int crfRange() const = 0;

    /** Upper preset bound (8 for the AV1/VP9 family, 9 for x264/x265). */
    virtual int presetRange() const = 0;

    /**
     * True when larger preset numbers mean *slower* encodes (x264/x265
     * count presets in the opposite direction from the AV1 family).
     */
    virtual bool presetInverted() const = 0;

    /** Threading structure for the scalability study. */
    virtual ThreadModel threadModel() const = 0;

    /** Toolkit parameterisation for one sweep point. */
    virtual codec::ToolConfig toolConfig(const EncodeParams &params) const = 0;

    /**
     * Encode a clip with full instrumentation.
     *
     * @param video        Input clip.
     * @param params       CRF / preset point.
     * @param probe_config What to collect (mix counters are always on).
     * @param build_tasks  Also emit the scalability task graph.
     * @param sink         When non-null, stream trace events there
     *                     instead of materialising them in the result's
     *                     capture — the fused encode->simulate path.
     *                     flush() is called before encode() returns.
     */
    EncodeResult encode(const video::Video &video, const EncodeParams &params,
                        const trace::ProbeConfig &probe_config = {},
                        bool build_tasks = false,
                        trace::TraceSink *sink = nullptr) const;

  protected:
    /**
     * Normalised "slowness" in [0, 1] for a preset: 1 = the slowest
     * preset of this model, handling the inverted ranges uniformly.
     */
    double slowness(int preset) const;
};

/**
 * Lookahead pre-analysis (x264/x265): motion estimation over the frame
 * pair ahead of encoding. Costs are reported via the current probe.
 *
 * @param thorough x265-style: adds a full-resolution pass (slice-type
 *                 decision + adaptive quantisation analysis) on top of
 *                 the half-resolution one.
 */
void lookaheadPass(const video::Frame &cur, const video::Frame &prev,
                   uint64_t v_cur, uint64_t v_prev, bool thorough = false);

} // namespace vepro::encoders

#endif // VEPRO_ENCODERS_ENCODER_MODEL_HPP
