#include "encoders/registry.hpp"

#include <stdexcept>

#include "encoders/libaom_model.hpp"
#include "encoders/libvpx_vp9_model.hpp"
#include "encoders/svt_av1_model.hpp"
#include "encoders/x264_model.hpp"
#include "encoders/x265_model.hpp"

namespace vepro::encoders
{

std::vector<std::shared_ptr<const EncoderModel>>
allEncoders()
{
    static const std::vector<std::shared_ptr<const EncoderModel>> models = {
        std::make_shared<SvtAv1Model>(),
        std::make_shared<LibaomModel>(),
        std::make_shared<LibvpxVp9Model>(),
        std::make_shared<X265Model>(),
        std::make_shared<X264Model>(),
    };
    return models;
}

std::shared_ptr<const EncoderModel>
encoderByName(const std::string &name)
{
    for (const auto &m : allEncoders()) {
        if (m->name() == name) {
            return m;
        }
    }
    throw std::out_of_range("encoderByName: unknown encoder '" + name + "'");
}

} // namespace vepro::encoders
