#include "encoders/x264_model.hpp"

#include <cmath>

namespace vepro::encoders
{

codec::ToolConfig
X264Model::toolConfig(const EncodeParams &params) const
{
    const double s = slowness(params.preset);
    codec::ToolConfig tc;
    tc.superblockSize = 16;
    tc.minBlockSize = 8;
    tc.partitionMask = codec::kPartitionsRect;
    tc.intraModes = 3 + static_cast<int>(std::lround(3 * s));
    tc.intraModesRect = 2;
    tc.txSizeCandidates = 1;
    tc.txTypeCandidates = 1;
    tc.refFramesSearched = s > 0.75 ? 2 : 1;
    tc.interpFilterCands = 1;
    tc.me.range = 4 + static_cast<int>(std::lround(8 * s));
    tc.me.exhaustive = s > 0.95;  // the "placebo" esa search
    tc.me.subpel = s > 0.3;
    tc.me.earlyExitPerPel = (1.0 - s) * 3.0 + 0.6;
    tc.fullRd = s >= 0.8;
    tc.earlyExitScale = 0.8 + (1.0 - s) * (1.0 - s) * 3.5;
    tc.modePatience = 1 + static_cast<int>(std::lround(1.5 * s));
    tc.filterPasses = 1;
    tc.coeffContexts = 1;
    codec::applyQuality(tc, params.crf, crfRange());
    return tc;
}

} // namespace vepro::encoders
