#ifndef VEPRO_ENCODERS_REGISTRY_HPP
#define VEPRO_ENCODERS_REGISTRY_HPP

/**
 * @file
 * Lookup for the five encoder models by paper name.
 */

#include <memory>
#include <string>
#include <vector>

#include "encoders/encoder_model.hpp"

namespace vepro::encoders
{

/** All five models in the paper's comparison order. */
std::vector<std::shared_ptr<const EncoderModel>> allEncoders();

/**
 * Look up a model by its paper name ("SVT-AV1", "x264", "x265",
 * "Libaom", "Libvpx-vp9"); case sensitive.
 * @throws std::out_of_range for unknown names.
 */
std::shared_ptr<const EncoderModel> encoderByName(const std::string &name);

} // namespace vepro::encoders

#endif // VEPRO_ENCODERS_REGISTRY_HPP
