#ifndef VEPRO_ENCODERS_SVT_AV1_MODEL_HPP
#define VEPRO_ENCODERS_SVT_AV1_MODEL_HPP

/**
 * @file
 * SVT-AV1 model: the full AV1 toolset (10 partition modes, the largest
 * intra-mode set, multiple transform sizes, two-pass loop filtering) with
 * SVT's segment-wavefront threading.
 */

#include "encoders/encoder_model.hpp"

namespace vepro::encoders
{

/** Model of the SVT-AV1 encoder (the paper's primary subject). */
class SvtAv1Model : public EncoderModel
{
  public:
    std::string name() const override { return "SVT-AV1"; }
    int crfRange() const override { return 63; }
    int presetRange() const override { return 8; }
    bool presetInverted() const override { return false; }
    ThreadModel threadModel() const override { return ThreadModel::Wavefront; }
    codec::ToolConfig toolConfig(const EncodeParams &params) const override;
};

} // namespace vepro::encoders

#endif // VEPRO_ENCODERS_SVT_AV1_MODEL_HPP
