#ifndef VEPRO_ENCODERS_X264_MODEL_HPP
#define VEPRO_ENCODERS_X264_MODEL_HPP

/**
 * @file
 * x264 model: AVC's 16x16 macroblocks with one split level and two
 * rectangular shapes, a small intra set, and frame-level threading with
 * a row lag — the fastest and most mature of the paper's encoders.
 */

#include "encoders/encoder_model.hpp"

namespace vepro::encoders
{

/** Model of the x264 AVC encoder. */
class X264Model : public EncoderModel
{
  public:
    std::string name() const override { return "x264"; }
    int crfRange() const override { return 51; }
    int presetRange() const override { return 9; }
    bool presetInverted() const override { return true; }
    ThreadModel threadModel() const override
    {
        return ThreadModel::FrameParallel;
    }
    codec::ToolConfig toolConfig(const EncodeParams &params) const override;
};

} // namespace vepro::encoders

#endif // VEPRO_ENCODERS_X264_MODEL_HPP
