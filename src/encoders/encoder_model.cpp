#include "encoders/encoder_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "codec/mc.hpp"
#include "codec/sad.hpp"
#include "video/metrics.hpp"

namespace vepro::encoders
{

using codec::FrameCodec;
using codec::ToolConfig;
using sched::Task;
using sched::TaskKind;
using trace::OpClass;
using trace::Probe;

double
EncoderModel::slowness(int preset) const
{
    int range = presetRange();
    preset = std::clamp(preset, 0, range);
    double t = static_cast<double>(preset) / range;
    return presetInverted() ? t : 1.0 - t;
}

void
lookaheadPass(const video::Frame &cur, const video::Frame &prev,
              uint64_t v_cur, uint64_t v_prev, bool thorough)
{
    // Half-resolution downscale of both luma planes followed by 16x16
    // diamond motion estimation — the shape of x264/x265's lookahead.
    const int hw = cur.width() / 2, hh = cur.height() / 2;
    video::Plane half_cur(hw, hh), half_prev(hw, hh);
    auto downscale = [](const video::Plane &src, video::Plane &dst) {
        for (int y = 0; y < dst.height(); ++y) {
            const uint8_t *r0 = src.row(2 * y);
            const uint8_t *r1 = src.row(2 * y + 1);
            uint8_t *out = dst.row(y);
            for (int x = 0; x < dst.width(); ++x) {
                out[x] = static_cast<uint8_t>(
                    (r0[2 * x] + r0[2 * x + 1] + r1[2 * x] + r1[2 * x + 1] + 2) >> 2);
            }
        }
    };
    downscale(cur.y(), half_cur);
    downscale(prev.y(), half_prev);

    if (Probe *p = trace::currentProbe()) {
        static const uint64_t site = trace::sitePc("encoders.lookahead.scale");
        p->enterKernel(site, 10);
        uint64_t vecs = static_cast<uint64_t>(hw) * hh / 16;
        for (uint64_t i = 0; i < vecs; ++i) {
            p->mem(OpClass::SimdLoad, v_cur + i * 64);
            p->mem(OpClass::SimdLoad, v_cur + i * 64 + 32);
            p->ops(OpClass::SimdAlu, 3, 1, 2);
            p->mem(OpClass::SimdStore, v_cur + (1 << 22) + i * 32, 1);
        }
        p->loopBranches(vecs);
    }

    codec::PelView cur_view{half_cur.data(), half_cur.stride(),
                            v_cur + (1 << 22)};
    codec::PelView prev_view{half_prev.data(), half_prev.stride(),
                             v_prev + (1 << 22)};
    codec::MeConfig me;
    me.range = 8;
    me.subpel = false;
    for (int by = 0; by + 16 <= hh; by += 16) {
        for (int bx = 0; bx + 16 <= hw; bx += 16) {
            codec::motionSearch(cur_view, prev_view, hw, hh, bx, by, 16, 16,
                                {}, me);
        }
    }

    if (thorough) {
        // Full-resolution refinement pass (slice-type decision + adaptive
        // quantisation analysis, as x265's heavier lookahead performs).
        codec::PelView full_cur{cur.y().data(), cur.y().stride(), v_cur};
        codec::PelView full_prev{prev.y().data(), prev.y().stride(), v_prev};
        codec::MeConfig fme;
        fme.range = 10;
        fme.subpel = false;
        const int fw = cur.width(), fh = cur.height();
        for (int by = 0; by + 8 <= fh; by += 8) {
            for (int bx = 0; bx + 8 <= fw; bx += 8) {
                codec::motionSearch(full_cur, full_prev, fw, fh, bx, by, 8,
                                    8, {}, fme);
                codec::satd(full_cur.sub(bx, by), full_prev.sub(bx, by), 8,
                            8);
            }
        }
    }
}

namespace
{

/** Mutable bookkeeping shared by the per-model task-graph builders. */
struct TaskBuild {
    bool enabled = false;
    sched::TaskGraph graph;

    int sb_rows = 0, sb_cols = 0;
    std::vector<int> cur_sb;          ///< Task id per (row, col), this frame.
    std::vector<int> prev_filter_row; ///< Filter-row task ids, prev frame.
    std::vector<int> prev_frame_all;  ///< All task ids of prev frame (tiles).
    int prev_lookahead = -1;
    int prev_spine = -1;
    int last_raster = -1;             ///< Previous SB task (serial chains).
    int tile_last[4] = {-1, -1, -1, -1};

    uint64_t spine_weight = 0;
    size_t spine_op_begin = 0;

    int
    tileOf(int r, int c) const
    {
        return (r >= sb_rows / 2 ? 2 : 0) + (c >= sb_cols / 2 ? 1 : 0);
    }
};

} // namespace

EncodeResult
EncoderModel::encode(const video::Video &video, const EncodeParams &params,
                     const trace::ProbeConfig &probe_config,
                     bool build_tasks, trace::TraceSink *sink) const
{
    if (video.frameCount() == 0) {
        throw std::invalid_argument("encode: empty video");
    }
    EncodeResult result;
    result.encoder = name();
    result.params = params;

    Probe probe(probe_config);
    probe.setSink(sink);
    trace::ProbeScope scope(&probe);

    ToolConfig tc = toolConfig(params);
    FrameCodec fc(tc, video.width(), video.height(), &probe);
    const uint64_t v_la_cur = probe.allocRegion(1 << 23);
    const uint64_t v_la_prev = probe.allocRegion(1 << 23);

    const ThreadModel tm = threadModel();
    const int rows = fc.sbRows();
    const int cols = fc.sbCols();
    const int sb = tc.superblockSize;

    TaskBuild tb;
    tb.enabled = build_tasks;
    tb.sb_rows = rows;
    tb.sb_cols = cols;
    tb.cur_sb.assign(static_cast<size_t>(rows) * cols, -1);
    tb.prev_filter_row.assign(static_cast<size_t>(rows), -1);

    double psnr_sum = 0.0;
    uint64_t total_bits = 0;

    const auto t0 = std::chrono::steady_clock::now();
    for (int f = 0; f < video.frameCount(); ++f) {
        const video::Frame &frame = video.frame(f);

        // Lookahead pre-analysis (frame-parallel and serial-spine models).
        if ((tm == ThreadModel::FrameParallel ||
             tm == ThreadModel::SerialSpine) && f > 0) {
            uint64_t ops_before = probe.totalOps();
            size_t op_before = probe.recordedOps();
            lookaheadPass(frame, video.frame(f - 1), v_la_cur, v_la_prev,
                          tm == ThreadModel::SerialSpine);
            if (tb.enabled) {
                Task t;
                t.kind = TaskKind::Lookahead;
                t.weight = std::max<uint64_t>(1, probe.totalOps() - ops_before);
                t.frame = f;
                t.opBegin = op_before;
                t.opEnd = probe.recordedOps();
                if (tb.prev_lookahead >= 0) {
                    t.deps.push_back(tb.prev_lookahead);
                }
                tb.prev_lookahead = tb.graph.addTask(std::move(t));
            }
        }

        fc.beginFrame(frame, f == 0);
        tb.last_raster = -1;
        std::fill(tb.tile_last, tb.tile_last + 4, -1);
        tb.spine_weight = 0;
        tb.spine_op_begin = probe.recordedOps();
        uint64_t frame_sb_ops_begin = probe.totalOps();
        (void)frame_sb_ops_begin;

        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
                uint64_t ops_before = probe.totalOps();
                size_t op_before = probe.recordedOps();
                fc.encodeSuperblock(c * sb, r * sb);
                uint64_t weight =
                    std::max<uint64_t>(1, probe.totalOps() - ops_before);

                if (!tb.enabled) {
                    continue;
                }
                if (tm == ThreadModel::SerialSpine) {
                    tb.spine_weight += weight;
                    continue;
                }
                Task t;
                t.kind = TaskKind::Superblock;
                t.weight = weight;
                t.frame = f;
                t.row = r;
                t.col = c;
                t.opBegin = op_before;
                t.opEnd = probe.recordedOps();
                switch (tm) {
                  case ThreadModel::Wavefront: {
                    // SVT-style: wavefront within the frame, pipelined
                    // against the previous frame's filtered rows.
                    if (c > 0) {
                        t.deps.push_back(
                            tb.cur_sb[static_cast<size_t>(r) * cols + c - 1]);
                    }
                    if (r > 0) {
                        int cc = std::min(c + 1, cols - 1);
                        t.deps.push_back(
                            tb.cur_sb[static_cast<size_t>(r - 1) * cols + cc]);
                    }
                    int fr = std::min(r + 1, rows - 1);
                    if (tb.prev_filter_row[static_cast<size_t>(fr)] >= 0) {
                        t.deps.push_back(
                            tb.prev_filter_row[static_cast<size_t>(fr)]);
                    }
                    break;
                  }
                  case ThreadModel::FrameParallel: {
                    // x264-style: strictly serial within the frame,
                    // overlapped across frames with a two-row lag.
                    if (tb.last_raster >= 0) {
                        t.deps.push_back(tb.last_raster);
                    }
                    // Frame-thread lag scales with the motion-vector
                    // range, as x264's frame threading requires.
                    int lag = std::max(2, rows / 6);
                    int fr = std::min(r + lag, rows - 1);
                    if (tb.prev_filter_row[static_cast<size_t>(fr)] >= 0) {
                        t.deps.push_back(
                            tb.prev_filter_row[static_cast<size_t>(fr)]);
                    }
                    if (tb.prev_lookahead >= 0 && tb.last_raster < 0) {
                        t.deps.push_back(tb.prev_lookahead);
                    }
                    break;
                  }
                  case ThreadModel::TileParallel: {
                    // libaom-style: four independent tiles, frames serial.
                    int tile = tb.tileOf(r, c);
                    if (tb.tile_last[tile] >= 0) {
                        t.deps.push_back(tb.tile_last[tile]);
                    } else {
                        t.deps = tb.prev_frame_all;
                    }
                    break;
                  }
                  default:
                    break;
                }
                int id = tb.graph.addTask(std::move(t));
                tb.cur_sb[static_cast<size_t>(r) * cols + c] = id;
                tb.last_raster = id;
                tb.tile_last[tb.tileOf(r, c)] = id;
            }
        }

        // Serial-spine models collapse the frame's block work into one
        // main-thread task.
        int spine_id = -1;
        if (tb.enabled && tm == ThreadModel::SerialSpine) {
            Task t;
            t.kind = TaskKind::Serial;
            t.weight = std::max<uint64_t>(1, tb.spine_weight);
            t.frame = f;
            t.opBegin = tb.spine_op_begin;
            t.opEnd = probe.recordedOps();
            if (tb.prev_spine >= 0) {
                t.deps.push_back(tb.prev_spine);
            }
            if (tb.prev_lookahead >= 0) {
                t.deps.push_back(tb.prev_lookahead);
            }
            spine_id = tb.graph.addTask(std::move(t));
            tb.prev_spine = spine_id;
        }

        uint64_t filter_ops_begin = probe.totalOps();
        size_t filter_op_begin = probe.recordedOps();
        codec::EncodeStats frame_stats = fc.endFrame();
        uint64_t filter_weight =
            std::max<uint64_t>(rows, probe.totalOps() - filter_ops_begin);
        size_t filter_op_end = probe.recordedOps();

        result.stats += frame_stats;
        total_bits += frame_stats.bits;
        psnr_sum += video::psnr(frame.y(), fc.recon().y());

        if (tb.enabled) {
            // Split the filter + reference-update work into per-row
            // helper tasks.
            std::vector<int> filter_ids(static_cast<size_t>(rows), -1);
            std::vector<int> frame_all;
            uint64_t per_row = filter_weight / rows;
            size_t ops_per_row =
                (filter_op_end - filter_op_begin) / static_cast<size_t>(rows);
            for (int r = 0; r < rows; ++r) {
                Task t;
                t.kind = TaskKind::Filter;
                t.weight = std::max<uint64_t>(1, per_row);
                t.frame = f;
                t.row = r;
                t.opBegin = filter_op_begin + static_cast<size_t>(r) * ops_per_row;
                t.opEnd = r + 1 == rows
                              ? filter_op_end
                              : filter_op_begin +
                                    static_cast<size_t>(r + 1) * ops_per_row;
                if (tm == ThreadModel::SerialSpine) {
                    t.deps.push_back(spine_id);
                } else if (tm == ThreadModel::TileParallel) {
                    for (int last : tb.tile_last) {
                        if (last >= 0) {
                            t.deps.push_back(last);
                        }
                    }
                } else {
                    // Wavefront / frame-parallel: a filter row needs its
                    // own and the next superblock row reconstructed.
                    for (int rr = r; rr <= std::min(r + 1, rows - 1); ++rr) {
                        for (int c = 0; c < cols; ++c) {
                            int id = tb.cur_sb[static_cast<size_t>(rr) * cols + c];
                            if (id >= 0) {
                                t.deps.push_back(id);
                            }
                        }
                    }
                }
                std::sort(t.deps.begin(), t.deps.end());
                t.deps.erase(std::unique(t.deps.begin(), t.deps.end()),
                             t.deps.end());
                filter_ids[static_cast<size_t>(r)] = tb.graph.addTask(std::move(t));
                frame_all.push_back(filter_ids[static_cast<size_t>(r)]);
            }
            tb.prev_filter_row = filter_ids;
            tb.prev_frame_all = std::move(frame_all);
            std::fill(tb.cur_sb.begin(), tb.cur_sb.end(), -1);
        }
    }
    const auto t1 = std::chrono::steady_clock::now();

    result.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    result.instructions = probe.totalOps();
    result.mix = probe.mix();
    result.psnrDb = psnr_sum / video.frameCount();
    double duration = video.durationSeconds();
    result.bitrateKbps =
        duration > 0 ? static_cast<double>(total_bits) / duration / 1000.0
                     : 0.0;
    result.stats.bits = total_bits;
    result.branchTraceInstructions = probe.branchTraceOpSpan();
    result.droppedOps = probe.droppedOps();
    result.droppedBranches = probe.droppedBranches();
    if (sink != nullptr) {
        probe.flushToSink();
        sink->flush();
    } else {
        result.capture = probe.takeCapture();
    }
    if (tb.enabled) {
        result.taskGraph = std::move(tb.graph);
    }
    return result;
}

} // namespace vepro::encoders
