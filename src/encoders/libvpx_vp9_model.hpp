#ifndef VEPRO_ENCODERS_LIBVPX_VP9_MODEL_HPP
#define VEPRO_ENCODERS_LIBVPX_VP9_MODEL_HPP

/**
 * @file
 * libvpx-VP9 model: VP9's 4 partition modes and mid-sized intra set —
 * the paper's direct predecessor comparison for AV1 (10 partition modes
 * vs 4 is its worked example of search-space growth).
 */

#include "encoders/encoder_model.hpp"

namespace vepro::encoders
{

/** Model of the libvpx VP9 encoder. */
class LibvpxVp9Model : public EncoderModel
{
  public:
    std::string name() const override { return "Libvpx-vp9"; }
    int crfRange() const override { return 63; }
    int presetRange() const override { return 8; }
    bool presetInverted() const override { return false; }
    ThreadModel threadModel() const override
    {
        return ThreadModel::TileParallel;
    }
    codec::ToolConfig toolConfig(const EncodeParams &params) const override;
};

} // namespace vepro::encoders

#endif // VEPRO_ENCODERS_LIBVPX_VP9_MODEL_HPP
