#ifndef VEPRO_ENCODERS_LIBAOM_MODEL_HPP
#define VEPRO_ENCODERS_LIBAOM_MODEL_HPP

/**
 * @file
 * libaom model: the AV1 toolset with the reference encoder's somewhat
 * leaner per-preset search (at the paper's operating points libaom ran
 * below SVT-AV1), and tile-based threading.
 */

#include "encoders/encoder_model.hpp"

namespace vepro::encoders
{

/** Model of the libaom AV1 reference encoder. */
class LibaomModel : public EncoderModel
{
  public:
    std::string name() const override { return "Libaom"; }
    int crfRange() const override { return 63; }
    int presetRange() const override { return 8; }
    bool presetInverted() const override { return false; }
    ThreadModel threadModel() const override
    {
        return ThreadModel::TileParallel;
    }
    codec::ToolConfig toolConfig(const EncodeParams &params) const override;
};

} // namespace vepro::encoders

#endif // VEPRO_ENCODERS_LIBAOM_MODEL_HPP
