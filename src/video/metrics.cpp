#include "video/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace vepro::video
{

double
mse(const Plane &a, const Plane &b)
{
    if (a.width() != b.width() || a.height() != b.height()) {
        throw std::invalid_argument("mse: plane size mismatch");
    }
    double sum = 0.0;
    for (int y = 0; y < a.height(); ++y) {
        const uint8_t *ra = a.row(y);
        const uint8_t *rb = b.row(y);
        for (int x = 0; x < a.width(); ++x) {
            double d = static_cast<double>(ra[x]) - rb[x];
            sum += d * d;
        }
    }
    return sum / static_cast<double>(a.pixelCount());
}

double
psnr(const Plane &a, const Plane &b)
{
    double m = mse(a, b);
    if (m <= 1e-12) {
        return 99.0;
    }
    return 10.0 * std::log10(255.0 * 255.0 / m);
}

double
videoPsnr(const Video &reference, const Video &reconstructed)
{
    if (reference.frameCount() != reconstructed.frameCount() ||
        reference.frameCount() == 0) {
        throw std::invalid_argument("videoPsnr: frame count mismatch");
    }
    double sum = 0.0;
    for (int i = 0; i < reference.frameCount(); ++i) {
        sum += psnr(reference.frame(i).y(), reconstructed.frame(i).y());
    }
    return sum / reference.frameCount();
}

namespace
{

/**
 * Cubic fit in a centred/scaled abscissa u = (x - mean) / scale.
 *
 * The normal equations accumulate powers up to x^6; on raw PSNR values
 * (~45 dB) that reaches ~8e9 and the 4x4 system is nearly singular, so
 * the fit (and thus BD-Rate) loses shift invariance to rounding. With
 * u in roughly [-1, 1] the system is well conditioned.
 */
struct CubicFit {
    std::array<double, 4> c{};  ///< coefficients in the u domain
    double mean = 0.0;
    double scale = 1.0;
};

CubicFit
fitCubic(const std::vector<double> &xs, const std::vector<double> &ys)
{
    CubicFit fit;
    for (double x : xs) {
        fit.mean += x;
    }
    fit.mean /= static_cast<double>(xs.size());
    double max_dev = 0.0;
    for (double x : xs) {
        max_dev = std::max(max_dev, std::fabs(x - fit.mean));
    }
    fit.scale = max_dev > 1e-9 ? max_dev : 1.0;

    constexpr int n = 4;
    double a[n][n] = {};
    double rhs[n] = {};
    for (size_t k = 0; k < xs.size(); ++k) {
        double u = (xs[k] - fit.mean) / fit.scale;
        double powx[2 * n - 1];
        powx[0] = 1.0;
        for (int i = 1; i < 2 * n - 1; ++i) {
            powx[i] = powx[i - 1] * u;
        }
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                a[i][j] += powx[i + j];
            }
            rhs[i] += powx[i] * ys[k];
        }
    }
    // Gaussian elimination with partial pivoting.
    int perm[n] = {0, 1, 2, 3};
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        for (int r = col + 1; r < n; ++r) {
            if (std::fabs(a[perm[r]][col]) > std::fabs(a[perm[pivot]][col])) {
                pivot = r;
            }
        }
        std::swap(perm[col], perm[pivot]);
        double diag = a[perm[col]][col];
        if (std::fabs(diag) < 1e-12) {
            throw std::invalid_argument("bdRate: degenerate RD curve");
        }
        for (int r = col + 1; r < n; ++r) {
            double f = a[perm[r]][col] / diag;
            for (int c = col; c < n; ++c) {
                a[perm[r]][c] -= f * a[perm[col]][c];
            }
            rhs[perm[r]] -= f * rhs[perm[col]];
        }
    }
    for (int row = n - 1; row >= 0; --row) {
        double acc = rhs[perm[row]];
        for (int c = row + 1; c < n; ++c) {
            acc -= a[perm[row]][c] * fit.c[c];
        }
        fit.c[row] = acc / a[perm[row]][row];
    }
    return fit;
}

/** Definite integral of the fitted cubic over [lo, hi] in the x domain. */
double
integrateCubic(const CubicFit &f, double lo, double hi)
{
    auto eval = [&](double u) {
        return f.c[0] * u + f.c[1] * u * u / 2.0 + f.c[2] * u * u * u / 3.0 +
               f.c[3] * u * u * u * u / 4.0;
    };
    double ulo = (lo - f.mean) / f.scale;
    double uhi = (hi - f.mean) / f.scale;
    // dx = scale * du
    return f.scale * (eval(uhi) - eval(ulo));
}

} // namespace

double
bdRate(const std::vector<RdPoint> &reference, const std::vector<RdPoint> &test)
{
    if (reference.size() < 4 || test.size() < 4) {
        throw std::invalid_argument("bdRate: need at least 4 RD points");
    }
    auto split = [](const std::vector<RdPoint> &pts, std::vector<double> &xs,
                    std::vector<double> &ys) {
        for (const RdPoint &p : pts) {
            if (p.bitrateKbps <= 0.0) {
                throw std::invalid_argument("bdRate: non-positive bitrate");
            }
            xs.push_back(p.psnrDb);
            ys.push_back(std::log(p.bitrateKbps));
        }
    };
    std::vector<double> xr, yr, xt, yt;
    split(reference, xr, yr);
    split(test, xt, yt);

    auto cr = fitCubic(xr, yr);
    auto ct = fitCubic(xt, yt);

    double lo = std::max(*std::min_element(xr.begin(), xr.end()),
                         *std::min_element(xt.begin(), xt.end()));
    double hi = std::min(*std::max_element(xr.begin(), xr.end()),
                         *std::max_element(xt.begin(), xt.end()));
    if (hi - lo < 1e-9) {
        throw std::invalid_argument("bdRate: PSNR ranges do not overlap");
    }
    double avg_diff =
        (integrateCubic(ct, lo, hi) - integrateCubic(cr, lo, hi)) / (hi - lo);
    return (std::exp(avg_diff) - 1.0) * 100.0;
}

double
histogramEntropy(const std::vector<uint64_t> &histogram)
{
    uint64_t total = 0;
    for (uint64_t v : histogram) {
        total += v;
    }
    if (total == 0) {
        return 0.0;
    }
    double h = 0.0;
    for (uint64_t v : histogram) {
        if (v == 0) {
            continue;
        }
        double p = static_cast<double>(v) / static_cast<double>(total);
        h -= p * std::log2(p);
    }
    return h;
}

double
measureEntropy(const Video &video)
{
    if (video.frameCount() == 0) {
        return 0.0;
    }
    std::vector<uint64_t> hist(256, 0);
    for (int f = 0; f < video.frameCount(); ++f) {
        const Plane &p = video.frame(f).y();
        // Horizontal spatial gradients.
        for (int y = 0; y < p.height(); ++y) {
            const uint8_t *row = p.row(y);
            for (int x = 1; x < p.width(); ++x) {
                hist[static_cast<uint8_t>(row[x] - row[x - 1])]++;
            }
        }
        // Temporal differences against the previous frame.
        if (f > 0) {
            const Plane &q = video.frame(f - 1).y();
            for (int y = 0; y < p.height(); ++y) {
                const uint8_t *cur = p.row(y);
                const uint8_t *prev = q.row(y);
                for (int x = 0; x < p.width(); ++x) {
                    hist[static_cast<uint8_t>(cur[x] - prev[x])]++;
                }
            }
        }
    }
    return histogramEntropy(hist);
}

} // namespace vepro::video
