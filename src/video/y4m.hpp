#ifndef VEPRO_VIDEO_Y4M_HPP
#define VEPRO_VIDEO_Y4M_HPP

/**
 * @file
 * YUV4MPEG2 (.y4m) reader/writer so real clips can be fed to the
 * encoder models and synthetic clips exported for inspection with
 * standard tools (ffplay, mpv). Only the 4:2:0 chroma layout used by
 * the rest of the library is supported.
 */

#include <string>

#include "video/frame.hpp"

namespace vepro::video
{

/**
 * Write @p video as YUV4MPEG2 with C420 chroma.
 * @throws std::runtime_error on I/O failure or an empty video.
 */
void writeY4m(const std::string &path, const Video &video);

/**
 * Read a YUV4MPEG2 file (C420 family chroma only).
 *
 * @param path       Input file.
 * @param max_frames Stop after this many frames (0 = all).
 * @throws std::runtime_error on malformed headers or unsupported chroma.
 */
Video readY4m(const std::string &path, int max_frames = 0);

} // namespace vepro::video

#endif // VEPRO_VIDEO_Y4M_HPP
