#ifndef VEPRO_VIDEO_GENERATOR_HPP
#define VEPRO_VIDEO_GENERATOR_HPP

/**
 * @file
 * Deterministic synthetic video generator.
 *
 * The paper evaluates on vbench, whose videos were selected to span a
 * content-complexity axis measured as entropy (0.2 .. 7.7 bits). We do not
 * ship the vbench clips, so this generator synthesises content with a
 * target entropy: smooth gradients and rigid UI-like rectangles at the low
 * end, dense texture plus fast multi-object motion at the high end.
 *
 * The generator is fully deterministic given (seed, params): every run of
 * every bench sees bit-identical pixels.
 */

#include <cstdint>

#include "video/frame.hpp"

namespace vepro::video
{

/** Parameters controlling synthetic content complexity. */
struct GeneratorParams {
    int width = 128;          ///< Luma width (even).
    int height = 80;          ///< Luma height (even).
    int frames = 8;           ///< Number of frames to synthesise.
    double fps = 30.0;        ///< Nominal frame rate (metadata only).
    double entropy = 4.0;     ///< Target content entropy in [0, 8] bits.
    uint64_t seed = 1;        ///< RNG seed.
};

/**
 * A small, fast deterministic RNG (xorshift64*).
 *
 * std::mt19937 is avoided in pixel loops for speed; this generator is
 * statistically adequate for content synthesis and is stable across
 * platforms and library versions.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    uint32_t nextBelow(uint32_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextRange(double lo, double hi);

  private:
    uint64_t state_;
};

/**
 * Synthesise a video clip with the requested complexity.
 *
 * Content model (all deterministic in the seed):
 *  - a smooth illumination gradient (always present),
 *  - axis-aligned rectangles emulating UI/desktop content (low entropy),
 *  - a band-limited value-noise texture whose amplitude grows with the
 *    entropy target (spatial complexity),
 *  - moving textured discs whose count and velocity grow with the entropy
 *    target (temporal complexity),
 *  - a global pan proportional to entropy.
 *
 * @param name   Clip name recorded in the Video metadata.
 * @param params Complexity and geometry parameters.
 * @return The synthesised clip.
 */
Video generate(const std::string &name, const GeneratorParams &params);

} // namespace vepro::video

#endif // VEPRO_VIDEO_GENERATOR_HPP
