#include "video/y4m.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vepro::video
{

namespace
{

void
writePlane(std::ofstream &out, const Plane &plane)
{
    for (int y = 0; y < plane.height(); ++y) {
        out.write(reinterpret_cast<const char *>(plane.row(y)),
                  plane.width());
    }
}

void
readPlane(std::ifstream &in, Plane &plane)
{
    for (int y = 0; y < plane.height(); ++y) {
        in.read(reinterpret_cast<char *>(plane.row(y)), plane.width());
        if (!in) {
            throw std::runtime_error("y4m: truncated frame payload");
        }
    }
}

} // namespace

void
writeY4m(const std::string &path, const Video &video)
{
    if (video.frameCount() == 0) {
        throw std::runtime_error("y4m: cannot write an empty video");
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw std::runtime_error("y4m: cannot open " + path);
    }
    // Frame rate as a rational; the suite uses integral-ish rates.
    int fps_num = static_cast<int>(video.fps() * 1000.0 + 0.5);
    out << "YUV4MPEG2 W" << video.width() << " H" << video.height() << " F"
        << fps_num << ":1000 Ip A1:1 C420\n";
    for (int f = 0; f < video.frameCount(); ++f) {
        out << "FRAME\n";
        writePlane(out, video.frame(f).y());
        writePlane(out, video.frame(f).u());
        writePlane(out, video.frame(f).v());
    }
    if (!out) {
        throw std::runtime_error("y4m: write failed for " + path);
    }
}

Video
readY4m(const std::string &path, int max_frames)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("y4m: cannot open " + path);
    }
    std::string header;
    if (!std::getline(in, header) || header.rfind("YUV4MPEG2", 0) != 0) {
        throw std::runtime_error("y4m: missing YUV4MPEG2 signature");
    }

    int width = 0, height = 0;
    double fps = 30.0;
    std::istringstream tokens(header);
    std::string tok;
    tokens >> tok;  // signature
    while (tokens >> tok) {
        try {
            switch (tok[0]) {
              case 'W': width = std::stoi(tok.substr(1)); break;
              case 'H': height = std::stoi(tok.substr(1)); break;
              case 'F': {
                auto colon = tok.find(':');
                if (colon != std::string::npos) {
                    double num = std::stod(tok.substr(1, colon - 1));
                    double den = std::stod(tok.substr(colon + 1));
                    if (den > 0) {
                        fps = num / den;
                    }
                }
                break;
              }
              case 'C':
                // Only 8-bit 4:2:0 layouts decode into our frame type;
                // a prefix match would let C420p10/C420p12 (16-bit) parse
                // into garbage, so whitelist the exact variants.
                if (tok != "C420" && tok != "C420jpeg" &&
                    tok != "C420mpeg2" && tok != "C420paldv") {
                    throw std::runtime_error("y4m: unsupported chroma " +
                                             tok + " in " + path);
                }
                break;
              default:
                break;  // interlacing/aspect parameters are ignored
            }
        } catch (const std::runtime_error &) {
            throw;  // already a descriptive y4m error
        } catch (const std::exception &) {
            // std::stoi/std::stod failures surface as bare
            // invalid_argument/out_of_range with no file context.
            throw std::runtime_error("y4m: bad header token '" + tok +
                                     "' in " + path);
        }
    }
    if (width <= 0 || height <= 0 || (width % 2) || (height % 2)) {
        throw std::runtime_error("y4m: bad geometry in header");
    }

    Video video(path, fps);
    std::string frame_line;
    while (std::getline(in, frame_line)) {
        if (frame_line.rfind("FRAME", 0) != 0) {
            throw std::runtime_error("y4m: expected FRAME marker");
        }
        Frame frame(width, height);
        readPlane(in, frame.y());
        readPlane(in, frame.u());
        readPlane(in, frame.v());
        video.addFrame(std::move(frame));
        if (max_frames > 0 && video.frameCount() >= max_frames) {
            break;
        }
    }
    if (video.frameCount() == 0) {
        throw std::runtime_error("y4m: no frames in " + path);
    }
    return video;
}

} // namespace vepro::video
