#include "video/suite.hpp"

#include <stdexcept>

#include "video/generator.hpp"

namespace vepro::video
{

const std::vector<SuiteEntry> &
vbenchMini()
{
    // Mirrors the paper's Table 1 (with the duplicate "bike" row replaced
    // by "house", which Table 2 references). Entropy values are vbench's.
    static const std::vector<SuiteEntry> entries = {
        {"desktop",      1280,  720, 30, 0.2},
        {"presentation", 1920, 1080, 25, 0.2},
        {"bike",         1280,  720, 29, 0.92},
        {"funny",        1920, 1080, 30, 2.5},
        {"house",        1280,  720, 29, 3.4},
        {"cricket",      1280,  720, 30, 3.4},
        {"game1",        1920, 1080, 60, 4.6},
        {"game2",        1280,  720, 30, 4.9},
        {"game3",        1280,  720, 59, 6.1},
        {"girl",         1280,  720, 30, 5.9},
        {"chicken",      3840, 2160, 30, 5.9},
        {"cat",           854,  480, 29, 6.8},
        {"holi",          854,  480, 30, 7.0},
        {"landscape",    1920, 1080, 29, 7.2},
        {"hall",         1920, 1080, 29, 7.7},
    };
    return entries;
}

const SuiteEntry &
suiteEntry(const std::string &name)
{
    for (const SuiteEntry &e : vbenchMini()) {
        if (e.name == name) {
            return e;
        }
    }
    throw std::out_of_range("suiteEntry: unknown clip '" + name + "'");
}

std::pair<int, int>
scaledSize(const SuiteEntry &entry, const SuiteScale &scale)
{
    if (scale.divisor <= 0) {
        throw std::invalid_argument("scaledSize: divisor must be positive");
    }
    auto round16 = [](int v) {
        int r = ((v + 8) / 16) * 16;
        return r < 32 ? 32 : r;
    };
    return {round16(entry.nominalWidth / scale.divisor),
            round16(entry.nominalHeight / scale.divisor)};
}

std::string
resolutionClass(const SuiteEntry &entry)
{
    return std::to_string(entry.nominalHeight) + "p";
}

Video
loadSuiteVideo(const SuiteEntry &entry, const SuiteScale &scale)
{
    auto [w, h] = scaledSize(entry, scale);
    GeneratorParams params;
    params.width = w;
    params.height = h;
    params.frames = scale.frames;
    params.fps = entry.fps;
    params.entropy = entry.paperEntropy;
    // Stable per-clip seed so every experiment sees identical content.
    uint64_t seed = 0xcbf29ce484222325ULL;
    for (char c : entry.name) {
        seed = (seed ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
    }
    params.seed = seed;
    return generate(entry.name, params);
}

Video
loadSuiteVideo(const std::string &name, const SuiteScale &scale)
{
    return loadSuiteVideo(suiteEntry(name), scale);
}

} // namespace vepro::video
