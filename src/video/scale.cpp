#include "video/scale.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "codec/kernels.hpp"
#include "video/metrics.hpp"

namespace vepro::video
{

namespace
{

/**
 * Rounded mean of the (possibly clipped) box with top-left (x0, y0).
 * Shared scalar code for every edge box, so edge handling is identical
 * no matter which kernel table ran the interior.
 */
uint8_t
partialBoxAvg(const Plane &src, int x0, int y0, int factor)
{
    const int x1 = std::min(x0 + factor, src.width());
    const int y1 = std::min(y0 + factor, src.height());
    uint32_t sum = 0;
    for (int y = y0; y < y1; ++y) {
        const uint8_t *r = src.row(y);
        for (int x = x0; x < x1; ++x) {
            sum += r[x];
        }
    }
    const uint32_t cnt = static_cast<uint32_t>(x1 - x0) *
                         static_cast<uint32_t>(y1 - y0);
    return static_cast<uint8_t>((sum + cnt / 2) / cnt);
}

/**
 * Center-aligned bilinear tap for output coordinate @p x: source index
 * @p i0 and 6-bit blend weight @p w6 toward index i0+1. Pure integer:
 * the source position in 1/64 units is floor((2x+1)*src_n*32/dst_n)-32,
 * clamped to the plane. dst_n == src_n yields (i0, w6) == (x, 0), so
 * same-size resampling is the identity.
 */
void
tapAt(int x, int dst_n, int src_n, int &i0, int &w6)
{
    const int64_t s64 =
        (2 * static_cast<int64_t>(x) + 1) * src_n * 32 / dst_n - 32;
    if (s64 < 0) {
        i0 = 0;
        w6 = 0;
        return;
    }
    i0 = static_cast<int>(s64 >> 6);
    w6 = static_cast<int>(s64 & 63);
    if (i0 >= src_n - 1) {
        i0 = src_n - 1;
        w6 = 0;
    }
}

} // namespace

Plane
downscalePlane(const Plane &src, int factor)
{
    if (factor < 1) {
        throw std::invalid_argument("downscalePlane: factor must be >= 1");
    }
    const int w = src.width();
    const int h = src.height();
    const int dw = (w + factor - 1) / factor;
    const int dh = (h + factor - 1) / factor;
    Plane dst(dw, dh);
    if (w == 0 || h == 0) {
        return dst;
    }
    const int fullW = w / factor;  // outputs whose box is fully in-bounds
    const int fullH = h / factor;
    const codec::KernelTable &k = codec::kernels();
    for (int yd = 0; yd < dh; ++yd) {
        const int y0 = yd * factor;
        uint8_t *out = dst.row(yd);
        int xd = 0;
        if (yd < fullH && fullW > 0) {
            k.boxdown(src.row(y0), src.stride(), factor, out, fullW);
            xd = fullW;
        }
        for (; xd < dw; ++xd) {
            out[xd] = partialBoxAvg(src, xd * factor, y0, factor);
        }
    }
    return dst;
}

Frame
downscaleFrame(const Frame &src, int factor)
{
    Plane y = downscalePlane(src.y(), factor);
    if (y.width() % 2 != 0 || y.height() % 2 != 0) {
        throw std::invalid_argument(
            "downscaleFrame: result dimensions must be even (got " +
            std::to_string(y.width()) + "x" + std::to_string(y.height()) +
            ")");
    }
    Frame out(y.width(), y.height());
    out.y() = std::move(y);
    out.u() = downscalePlane(src.u(), factor);
    out.v() = downscalePlane(src.v(), factor);
    return out;
}

Video
downscaleVideo(const Video &src, int factor)
{
    Video out(src.name(), src.fps());
    for (int i = 0; i < src.frameCount(); ++i) {
        out.addFrame(downscaleFrame(src.frame(i), factor));
    }
    return out;
}

Plane
upscalePlane(const Plane &src, int dst_width, int dst_height)
{
    const int sw = src.width();
    const int sh = src.height();
    if (dst_width < 1 || dst_height < 1) {
        throw std::invalid_argument("upscalePlane: target must be >= 1x1");
    }
    if (sw < 1 || sh < 1) {
        throw std::invalid_argument("upscalePlane: source plane is empty");
    }
    Plane dst(dst_width, dst_height);
    std::vector<int> hx(static_cast<size_t>(dst_width));
    std::vector<int> hw(static_cast<size_t>(dst_width));
    for (int x = 0; x < dst_width; ++x) {
        tapAt(x, dst_width, sw, hx[static_cast<size_t>(x)],
              hw[static_cast<size_t>(x)]);
    }
    std::vector<uint8_t> tmp(static_cast<size_t>(sw));
    const codec::KernelTable &k = codec::kernels();
    for (int yd = 0; yd < dst_height; ++yd) {
        int i0 = 0;
        int w6 = 0;
        tapAt(yd, dst_height, sh, i0, w6);
        const int i1 = std::min(i0 + 1, sh - 1);
        k.lerpblend(src.row(i0), src.row(i1), w6, tmp.data(), sw);
        uint8_t *out = dst.row(yd);
        for (int x = 0; x < dst_width; ++x) {
            const int xi = hx[static_cast<size_t>(x)];
            const int xw = hw[static_cast<size_t>(x)];
            const int a = tmp[static_cast<size_t>(xi)];
            const int b = tmp[static_cast<size_t>(std::min(xi + 1, sw - 1))];
            out[x] = static_cast<uint8_t>((a * (64 - xw) + b * xw + 32) >> 6);
        }
    }
    return dst;
}

Frame
upscaleFrame(const Frame &src, int width, int height)
{
    if (width < 2 || height < 2 || width % 2 != 0 || height % 2 != 0) {
        throw std::invalid_argument(
            "upscaleFrame: target dimensions must be even and >= 2");
    }
    Frame out(width, height);
    out.y() = upscalePlane(src.y(), width, height);
    out.u() = upscalePlane(src.u(), width / 2, height / 2);
    out.v() = upscalePlane(src.v(), width / 2, height / 2);
    return out;
}

Video
upscaleVideo(const Video &src, int width, int height)
{
    Video out(src.name(), src.fps());
    for (int i = 0; i < src.frameCount(); ++i) {
        out.addFrame(upscaleFrame(src.frame(i), width, height));
    }
    return out;
}

int
clampDownscale(int width, int height, int factor)
{
    if (factor < 1) {
        throw std::invalid_argument("clampDownscale: factor must be >= 1");
    }
    const auto fits = [&](int f) {
        const int dw = (width + f - 1) / f;
        const int dh = (height + f - 1) / f;
        return dw >= 16 && dh >= 16 && dw % 2 == 0 && dh % 2 == 0;
    };
    int f = factor;
    while (f > 1 && !fits(f)) {
        f /= 2;
    }
    return f >= 1 ? f : 1;
}

double
scaleRoundTripMse(const Video &src, int factor)
{
    if (factor < 1) {
        throw std::invalid_argument("scaleRoundTripMse: factor must be >= 1");
    }
    if (factor == 1 || src.frameCount() == 0) {
        return 0.0;
    }
    double total = 0.0;
    for (int i = 0; i < src.frameCount(); ++i) {
        const Frame &ref = src.frame(i);
        Frame down = downscaleFrame(ref, factor);
        Frame up = upscaleFrame(down, ref.width(), ref.height());
        total += mse(ref.y(), up.y());
    }
    return total / src.frameCount();
}

} // namespace vepro::video
