#ifndef VEPRO_VIDEO_METRICS_HPP
#define VEPRO_VIDEO_METRICS_HPP

/**
 * @file
 * Video quality and complexity metrics: PSNR, Bjøntegaard delta rate
 * (BD-Rate), and the vbench-style content-entropy measure.
 */

#include <vector>

#include "video/frame.hpp"

namespace vepro::video
{

/** Mean squared error between two equally-sized planes. */
double mse(const Plane &a, const Plane &b);

/**
 * Peak signal-to-noise ratio between two planes, in dB.
 *
 * Returns +inf (as 99.0 dB, the conventional cap) for identical planes.
 */
double psnr(const Plane &a, const Plane &b);

/**
 * Sequence PSNR between two videos: the per-frame luma PSNR averaged over
 * all frames, the standard reporting convention used by the paper.
 *
 * @pre Both videos have the same geometry and frame count.
 */
double videoPsnr(const Video &reference, const Video &reconstructed);

/** One point on a rate-distortion curve. */
struct RdPoint {
    double bitrateKbps;  ///< Encoded bitrate in kilobits per second.
    double psnrDb;       ///< Quality at that bitrate.
};

/**
 * Bjøntegaard delta rate between a test RD curve and a reference RD curve.
 *
 * Fits a cubic polynomial log(rate) = p(psnr) to each curve by least
 * squares, integrates the difference over the overlapping PSNR range, and
 * returns the average bitrate change in percent. Negative means the test
 * encoder needs less bitrate for the same quality (better).
 *
 * @pre Each curve has at least four points with distinct PSNR values.
 * @throws std::invalid_argument on malformed curves.
 */
double bdRate(const std::vector<RdPoint> &reference,
              const std::vector<RdPoint> &test);

/**
 * vbench-style content entropy of a clip, in bits (roughly 0..8).
 *
 * Computed as the Shannon entropy of the pooled distribution of horizontal
 * spatial gradients and frame-to-frame temporal differences of the luma
 * plane. Smooth static content scores near 0; dense texture with fast
 * motion approaches 8.
 */
double measureEntropy(const Video &video);

/** Shannon entropy (bits) of an arbitrary non-negative histogram. */
double histogramEntropy(const std::vector<uint64_t> &histogram);

} // namespace vepro::video

#endif // VEPRO_VIDEO_METRICS_HPP
