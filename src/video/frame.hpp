#ifndef VEPRO_VIDEO_FRAME_HPP
#define VEPRO_VIDEO_FRAME_HPP

/**
 * @file
 * Planar YUV420 frame and video containers.
 *
 * Frames are the raw input to every encoder model in this repository.
 * All planes are 8-bit with an explicit stride so that encoder block
 * kernels exercise realistic strided access patterns.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace vepro::video
{

/** A single 8-bit image plane with an explicit row stride. */
class Plane
{
  public:
    Plane() = default;

    /**
     * Construct a zero-initialised plane.
     *
     * @param width  Plane width in pixels.
     * @param height Plane height in pixels.
     * @param pad    Extra padding pixels added to each row (stride =
     *               width + pad). Padding keeps edge blocks in-bounds for
     *               motion search without special-casing.
     */
    Plane(int width, int height, int pad = 0);

    int width() const { return width_; }
    int height() const { return height_; }
    int stride() const { return stride_; }

    /** Mutable pointer to the first pixel of row @p y. */
    uint8_t *row(int y) { return data_.data() + static_cast<size_t>(y) * stride_; }
    /** Const pointer to the first pixel of row @p y. */
    const uint8_t *row(int y) const
    {
        return data_.data() + static_cast<size_t>(y) * stride_;
    }

    /** Pixel accessor with no bounds checking (hot path). */
    uint8_t at(int x, int y) const { return row(y)[x]; }
    void set(int x, int y, uint8_t v) { row(y)[x] = v; }

    /** Pixel accessor that clamps coordinates to the plane bounds. */
    uint8_t atClamped(int x, int y) const;

    /** Fill the entire plane (including padding) with @p value. */
    void fill(uint8_t value);

    /** Number of payload pixels (width * height, excluding padding). */
    int64_t pixelCount() const
    {
        return static_cast<int64_t>(width_) * height_;
    }

    uint8_t *data() { return data_.data(); }
    const uint8_t *data() const { return data_.data(); }
    size_t sizeBytes() const { return data_.size(); }

  private:
    int width_ = 0;
    int height_ = 0;
    int stride_ = 0;
    std::vector<uint8_t> data_;
};

/** One YUV420 picture: full-resolution luma plus half-resolution chroma. */
class Frame
{
  public:
    Frame() = default;

    /** Construct a black frame. Dimensions must be even. */
    Frame(int width, int height);

    int width() const { return y_.width(); }
    int height() const { return y_.height(); }

    Plane &y() { return y_; }
    Plane &u() { return u_; }
    Plane &v() { return v_; }
    const Plane &y() const { return y_; }
    const Plane &u() const { return u_; }
    const Plane &v() const { return v_; }

  private:
    Plane y_;
    Plane u_;
    Plane v_;
};

/** An in-memory video clip: a frame sequence plus rate metadata. */
class Video
{
  public:
    Video() = default;
    Video(std::string name, double fps) : name_(std::move(name)), fps_(fps) {}

    const std::string &name() const { return name_; }
    double fps() const { return fps_; }

    int frameCount() const { return static_cast<int>(frames_.size()); }
    int width() const { return frames_.empty() ? 0 : frames_[0].width(); }
    int height() const { return frames_.empty() ? 0 : frames_[0].height(); }

    Frame &frame(int i) { return frames_[i]; }
    const Frame &frame(int i) const { return frames_[i]; }

    void addFrame(Frame f) { frames_.push_back(std::move(f)); }

    /** Duration of the clip in seconds. */
    double durationSeconds() const
    {
        return fps_ > 0 ? frameCount() / fps_ : 0.0;
    }

  private:
    std::string name_;
    double fps_ = 0.0;
    std::vector<Frame> frames_;
};

} // namespace vepro::video

#endif // VEPRO_VIDEO_FRAME_HPP
