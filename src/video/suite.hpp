#ifndef VEPRO_VIDEO_SUITE_HPP
#define VEPRO_VIDEO_SUITE_HPP

/**
 * @file
 * The vbench-mini suite: synthetic stand-ins for the 15 vbench clips the
 * paper evaluates (Table 1), matched on name, resolution class, frame
 * rate, and content entropy.
 *
 * The paper's Table 1 lists "bike" twice; its Table 2 additionally reports
 * a "house" clip. We treat the duplicate row as a typo and carry "house"
 * so that every clip referenced anywhere in the paper exists here.
 */

#include <string>
#include <vector>

#include "video/frame.hpp"

namespace vepro::video
{

/** Static metadata for one suite clip (mirrors the paper's Table 1). */
struct SuiteEntry {
    std::string name;      ///< Clip name as used in the paper's figures.
    int nominalWidth;      ///< Full-scale width (e.g. 1920 for 1080p).
    int nominalHeight;     ///< Full-scale height.
    double fps;            ///< Frame rate from Table 1.
    double paperEntropy;   ///< Entropy reported by vbench / Table 1.
};

/** Geometry scaling applied when materialising a suite clip. */
struct SuiteScale {
    /**
     * Linear downscale divisor. The default of 8 turns 1080p into a
     * 240x144-class clip so the entire characterization suite runs in
     * minutes on one core; shapes (who is slower, what grows with CRF)
     * are resolution-independent for block codecs.
     */
    int divisor = 8;
    /** Frames to synthesise (the paper's clips are 5 s long). */
    int frames = 8;
};

/** All 15 suite entries, ordered by ascending entropy as in Table 1. */
const std::vector<SuiteEntry> &vbenchMini();

/** Look up a suite entry by name. @throws std::out_of_range if unknown. */
const SuiteEntry &suiteEntry(const std::string &name);

/**
 * Materialise a suite clip: synthesises deterministic content with the
 * entry's entropy target at the scaled resolution.
 */
Video loadSuiteVideo(const SuiteEntry &entry, const SuiteScale &scale = {});

/** Convenience overload: look up by name and materialise. */
Video loadSuiteVideo(const std::string &name, const SuiteScale &scale = {});

/** Scaled dimensions for an entry (multiples of 16, minimum 32). */
std::pair<int, int> scaledSize(const SuiteEntry &entry,
                               const SuiteScale &scale);

/** Human-readable resolution class ("720p", "1080p", ...). */
std::string resolutionClass(const SuiteEntry &entry);

} // namespace vepro::video

#endif // VEPRO_VIDEO_SUITE_HPP
