#include "video/frame.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace vepro::video
{

Plane::Plane(int width, int height, int pad)
    : width_(width), height_(height), stride_(width + pad)
{
    if (width < 0 || height < 0 || pad < 0) {
        throw std::invalid_argument("Plane: negative dimension");
    }
    data_.assign(static_cast<size_t>(stride_) * height_, 0);
}

uint8_t
Plane::atClamped(int x, int y) const
{
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return at(x, y);
}

void
Plane::fill(uint8_t value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Frame::Frame(int width, int height)
{
    if (width <= 0 || height <= 0 || (width % 2) != 0 || (height % 2) != 0) {
        throw std::invalid_argument("Frame: dimensions must be positive and even");
    }
    y_ = Plane(width, height);
    u_ = Plane(width / 2, height / 2);
    v_ = Plane(width / 2, height / 2);
}

} // namespace vepro::video
