#ifndef VEPRO_VIDEO_SCALE_HPP
#define VEPRO_VIDEO_SCALE_HPP

/**
 * @file
 * Resolution scaling for ABR ladder rungs.
 *
 * Downscaling is exact box averaging by an integer factor: each output
 * pixel is the rounded mean (sum + cnt/2) / cnt of its source box.
 * Edge boxes that fall off an odd-sized plane average only the pixels
 * that exist. Upscaling is separable bilinear with center-aligned
 * sampling and 6-bit integer weights. Both paths are pure integer
 * arithmetic, so results are bit-identical across platforms and across
 * the scalar/AVX2/NEON kernel tables (codec::KernelTable::boxdown /
 * ::lerpblend carry the hot loops; edge handling and the horizontal
 * upscale pass are shared scalar code by construction).
 *
 * Upscaling to the source size after a downscale gives the "decode and
 * compare at source resolution" half of per-title ladder RD: see
 * scaleRoundTripMse and ladder::sweep (DESIGN.md §17).
 */

#include <string>

#include "video/frame.hpp"

namespace vepro::video
{

/**
 * Box-downscale a plane by an integer @p factor >= 1. Output dimensions
 * are ceil(w/factor) x ceil(h/factor); partial edge boxes average the
 * available pixels. @throws std::invalid_argument for factor < 1.
 */
Plane downscalePlane(const Plane &src, int factor);

/**
 * Downscale a YUV420 frame: luma and both chroma planes each by
 * @p factor. @throws std::invalid_argument when the resulting luma
 * dimensions would be odd (YUV420 needs even dimensions).
 */
Frame downscaleFrame(const Frame &src, int factor);

/** Downscale every frame of a clip; name and fps are preserved. */
Video downscaleVideo(const Video &src, int factor);

/**
 * Bilinear-upscale (or identity-resample) a plane to exactly
 * @p dst_width x @p dst_height. Center-aligned taps with 6-bit weights;
 * upscaling to the source size reproduces the input bit-for-bit.
 * @throws std::invalid_argument for empty targets or an empty source.
 */
Plane upscalePlane(const Plane &src, int dst_width, int dst_height);

/** Upscale a YUV420 frame to @p width x @p height (must be even). */
Frame upscaleFrame(const Frame &src, int width, int height);

/** Upscale every frame of a clip; name and fps are preserved. */
Video upscaleVideo(const Video &src, int width, int height);

/**
 * Largest usable downscale factor <= @p factor for a @p width x
 * @p height luma plane: halves the factor until the result is even in
 * both dimensions (YUV420) and at least 16x16 (the FrameCodec minimum).
 * Coarse simulation proxies use this to stand in for rungs deeper than
 * the proxy geometry can represent; at production resolutions it is the
 * identity. Returns 1 when even halving cannot fit.
 */
int clampDownscale(int width, int height, int factor);

/**
 * Mean luma MSE of the downscale(factor) -> upscale-to-source round
 * trip over all frames of @p src: the resolution-loss half of a ladder
 * rung's distortion, independent of any encoder (DESIGN.md §17).
 * Exactly 0.0 for factor == 1.
 */
double scaleRoundTripMse(const Video &src, int factor);

} // namespace vepro::video

#endif // VEPRO_VIDEO_SCALE_HPP
