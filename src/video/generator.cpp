#include "video/generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace vepro::video
{

uint64_t
Rng::next()
{
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
}

uint32_t
Rng::nextBelow(uint32_t bound)
{
    return static_cast<uint32_t>(next() % bound);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::nextRange(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

namespace
{

/** A rigid rectangle of near-constant luma (UI / desktop content). */
struct Rect {
    double x, y, w, h;
    uint8_t luma;
};

/** A textured moving disc (foreground object). */
struct Disc {
    double x, y;     // centre
    double vx, vy;   // velocity in pixels/frame
    double radius;
    uint8_t luma;
    uint32_t textureSeed;
};

/**
 * Band-limited value noise: bilinear interpolation of a coarse random
 * lattice, summed over two octaves. Smooth enough to be encodable,
 * detailed enough to defeat flat-block prediction at high amplitude.
 */
class ValueNoise
{
  public:
    ValueNoise(uint64_t seed, int lattice_w, int lattice_h)
        : w_(lattice_w), h_(lattice_h), grid_(static_cast<size_t>(w_) * h_)
    {
        Rng rng(seed);
        for (auto &g : grid_) {
            g = static_cast<float>(rng.nextDouble() * 2.0 - 1.0);
        }
    }

    /** Sample at continuous coordinates; period = lattice size. */
    float
    sample(double x, double y) const
    {
        int x0 = static_cast<int>(std::floor(x));
        int y0 = static_cast<int>(std::floor(y));
        double fx = x - x0;
        double fy = y - y0;
        float v00 = at(x0, y0), v10 = at(x0 + 1, y0);
        float v01 = at(x0, y0 + 1), v11 = at(x0 + 1, y0 + 1);
        double top = v00 + (v10 - v00) * fx;
        double bot = v01 + (v11 - v01) * fx;
        return static_cast<float>(top + (bot - top) * fy);
    }

  private:
    float
    at(int x, int y) const
    {
        x = ((x % w_) + w_) % w_;
        y = ((y % h_) + h_) % h_;
        return grid_[static_cast<size_t>(y) * w_ + x];
    }

    int w_, h_;
    std::vector<float> grid_;
};

uint8_t
clampPixel(double v)
{
    return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
}

} // namespace

Video
generate(const std::string &name, const GeneratorParams &params)
{
    const double e = std::clamp(params.entropy, 0.0, 8.0);
    Rng rng(params.seed * 0x100000001b3ULL + 0xcbf29ce484222325ULL);

    // Complexity knobs derived from the entropy target. The mapping was
    // calibrated against measureEntropy() (see tests/video/test_generator)
    // so that requesting entropy E yields measured entropy within ~1 bit.
    const double noise_amp = 3.0 * std::pow(e, 1.45);       // texture strength
    const double fine_amp = 1.2 * std::pow(e, 1.6);         // 2nd octave
    const int num_rects = 4 + static_cast<int>((8.0 - e));  // UI content
    const int num_discs = static_cast<int>(std::round(e * 1.5));
    const double motion_mag = 0.35 * e;                     // px/frame
    const double pan_speed = 0.15 * e;                      // px/frame

    std::vector<Rect> rects;
    for (int i = 0; i < num_rects; ++i) {
        rects.push_back({
            rng.nextRange(0, params.width * 0.8),
            rng.nextRange(0, params.height * 0.8),
            rng.nextRange(params.width * 0.08, params.width * 0.35),
            rng.nextRange(params.height * 0.08, params.height * 0.35),
            static_cast<uint8_t>(40 + rng.nextBelow(180)),
        });
    }

    std::vector<Disc> discs;
    for (int i = 0; i < num_discs; ++i) {
        double angle = rng.nextRange(0, 2 * M_PI);
        double speed = rng.nextRange(0.3, 1.0) * motion_mag + 0.2;
        discs.push_back({
            rng.nextRange(0, params.width),
            rng.nextRange(0, params.height),
            std::cos(angle) * speed,
            std::sin(angle) * speed,
            rng.nextRange(params.width * 0.03, params.width * 0.12),
            static_cast<uint8_t>(30 + rng.nextBelow(200)),
            static_cast<uint32_t>(rng.next()),
        });
    }

    const int lattice = std::max(8, params.width / 8);
    ValueNoise coarse(params.seed ^ 0xabcdef12, lattice, lattice);
    ValueNoise fine(params.seed ^ 0x12345678, lattice * 4, lattice * 4);

    // Per-pixel white noise layer: only significant at very high entropy
    // (film-grain-like content such as "hall" / "holi").
    const double grain_amp = e > 5.5 ? (e - 5.5) * 2.2 : 0.0;

    Video video(name, params.fps);
    for (int f = 0; f < params.frames; ++f) {
        Frame frame(params.width, params.height);
        Plane &yp = frame.y();

        const double pan_x = pan_speed * f;
        const double pan_y = pan_speed * 0.37 * f;

        Rng grain_rng(params.seed * 1000003ULL + f);

        for (int y = 0; y < params.height; ++y) {
            uint8_t *row = yp.row(y);
            for (int x = 0; x < params.width; ++x) {
                // Smooth illumination gradient.
                double v = 90.0 + 50.0 * (static_cast<double>(x) / params.width)
                         + 30.0 * (static_cast<double>(y) / params.height);

                // Static UI rectangles (sampled in panned coordinates so
                // they translate rigidly under the global pan).
                double wx = x + pan_x;
                double wy = y + pan_y;
                for (const Rect &r : rects) {
                    if (wx >= r.x && wx < r.x + r.w && wy >= r.y &&
                        wy < r.y + r.h) {
                        v = r.luma;
                        break;
                    }
                }

                // Band-limited texture, translating with the pan.
                double nx = (wx) * lattice / params.width;
                double ny = (wy) * lattice / params.height;
                v += noise_amp * coarse.sample(nx, ny);
                v += fine_amp * fine.sample(nx * 4, ny * 4);

                if (grain_amp > 0.0) {
                    v += grain_amp * (grain_rng.nextDouble() * 2.0 - 1.0);
                }
                row[x] = clampPixel(v);
            }
        }

        // Foreground discs drawn over the background.
        for (const Disc &d : discs) {
            double cx = d.x + d.vx * f;
            double cy = d.y + d.vy * f;
            // Wrap object positions so they stay in frame.
            cx = std::fmod(std::fmod(cx, params.width) + params.width,
                           params.width);
            cy = std::fmod(std::fmod(cy, params.height) + params.height,
                           params.height);
            int x0 = std::max(0, static_cast<int>(cx - d.radius));
            int x1 = std::min(params.width - 1,
                              static_cast<int>(cx + d.radius));
            int y0 = std::max(0, static_cast<int>(cy - d.radius));
            int y1 = std::min(params.height - 1,
                              static_cast<int>(cy + d.radius));
            ValueNoise tex(d.textureSeed, 8, 8);
            for (int y = y0; y <= y1; ++y) {
                uint8_t *row = yp.row(y);
                for (int x = x0; x <= x1; ++x) {
                    double dx = x - cx, dy = y - cy;
                    if (dx * dx + dy * dy <= d.radius * d.radius) {
                        double t = tex.sample((x - cx) * 0.8, (y - cy) * 0.8);
                        row[x] = clampPixel(d.luma + noise_amp * 0.6 * t);
                    }
                }
            }
        }

        // Chroma: smooth, low-detail downscale-style fill derived from the
        // gradient plus a slow hue drift. Real clips carry most of their
        // complexity in luma; encoders spend most work there too.
        Plane &up = frame.u();
        Plane &vp = frame.v();
        for (int y = 0; y < up.height(); ++y) {
            uint8_t *urow = up.row(y);
            uint8_t *vrow = vp.row(y);
            for (int x = 0; x < up.width(); ++x) {
                double base_u = 118.0 + 14.0 * std::sin((x + pan_x) * 0.05);
                double base_v = 130.0 + 12.0 * std::cos((y + pan_y) * 0.06);
                double n = coarse.sample(x * 0.3, y * 0.3);
                urow[x] = clampPixel(base_u + 0.25 * noise_amp * n);
                vrow[x] = clampPixel(base_v - 0.2 * noise_amp * n);
            }
        }

        video.addFrame(std::move(frame));
    }
    return video;
}

} // namespace vepro::video
