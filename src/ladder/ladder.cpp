#include "ladder/ladder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

#include "lab/figures.hpp"
#include "video/scale.hpp"
#include "video/suite.hpp"

namespace vepro::ladder
{

namespace
{

constexpr double kPeakSq = 255.0 * 255.0;
constexpr double kPsnrCap = 99.0;  // matches video::psnr's identical cap

std::string
rungLabel(int scale)
{
    return "1/" + std::to_string(scale);
}

std::string
fmtSigned(double v, int decimals)
{
    return (v >= 0.0 ? "+" : "") + core::fmt(v, decimals);
}

/** Per-scale CoreStats totals in double precision (mix rows blend). */
struct Agg {
    double count = 0;
    double cycles = 0, instructions = 0;
    double retiring = 0, badSpec = 0, frontend = 0, backend = 0;
    double backendMemory = 0;
    double mispredicts = 0, l1dMisses = 0, l2Misses = 0, llcMisses = 0;

    void
    add(const uarch::CoreStats &c)
    {
        count += 1;
        cycles += static_cast<double>(c.cycles);
        instructions += static_cast<double>(c.instructions);
        retiring += static_cast<double>(c.slots.retiring);
        badSpec += static_cast<double>(c.slots.badSpec);
        frontend += static_cast<double>(c.slots.frontend);
        backend += static_cast<double>(c.slots.backend);
        backendMemory += static_cast<double>(c.slots.backendMemory);
        mispredicts += static_cast<double>(c.mispredicts);
        l1dMisses += static_cast<double>(c.l1dMisses);
        l2Misses += static_cast<double>(c.l2Misses);
        llcMisses += static_cast<double>(c.llcMisses);
    }

    double ipc() const { return cycles > 0 ? instructions / cycles : 0.0; }
    double
    slotsTotal() const
    {
        return retiring + badSpec + frontend + backend;
    }
    double
    share(double part) const
    {
        return slotsTotal() > 0 ? 100.0 * part / slotsTotal() : 0.0;
    }
    double
    mpki(double misses) const
    {
        return instructions > 0 ? 1000.0 * misses / instructions : 0.0;
    }
};

std::vector<std::string>
aggRow(const std::string &scale_cell, const std::string &share_cell,
       const std::string &points_cell, const Agg &a)
{
    return {scale_cell,
            share_cell,
            points_cell,
            core::fmt(a.ipc(), 2),
            core::fmt(a.share(a.retiring), 1),
            core::fmt(a.share(a.badSpec), 1),
            core::fmt(a.share(a.frontend), 1),
            core::fmt(a.share(a.backend), 1),
            core::fmt(a.share(a.backendMemory), 1),
            core::fmt(a.mpki(a.mispredicts), 3),
            core::fmt(a.mpki(a.l1dMisses), 3),
            core::fmt(a.mpki(a.l2Misses), 3),
            core::fmt(a.mpki(a.llcMisses), 3)};
}

const char *
dominantStall(const Agg &a)
{
    const double bad = a.badSpec;
    const double fe = a.frontend;
    const double be = a.backend;
    if (be >= fe && be >= bad) {
        return "backend";
    }
    if (fe >= bad) {
        return "frontend";
    }
    return "bad-speculation";
}

} // namespace

LadderConfig
ladderConfigFromScale(const core::RunScale &scale, bool full)
{
    LadderConfig config;
    for (const video::SuiteEntry &entry : lab::sweepClips(scale)) {
        config.clips.push_back(entry.name);
    }
    const std::vector<int> crfs =
        full ? core::crfSweepAv1() : std::vector<int>{20, 32, 44, 56};
    for (int s : {1, 2, 4}) {
        config.rungs.push_back({s, crfs});
    }
    config.divisor = scale.suite.divisor;
    config.frames = scale.suite.frames;
    config.maxTraceOps = scale.maxTraceOps;
    config.backend = scale.backend;
    return config;
}

std::vector<size_t>
convexHull(const std::vector<video::RdPoint> &pts)
{
    std::vector<size_t> order(pts.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (pts[a].bitrateKbps != pts[b].bitrateKbps) {
            return pts[a].bitrateKbps < pts[b].bitrateKbps;
        }
        if (pts[a].psnrDb != pts[b].psnrDb) {
            return pts[a].psnrDb > pts[b].psnrDb;
        }
        return a < b;
    });

    // Rate-duplicate and dominance filters (rules 2 and 3).
    std::vector<size_t> kept;
    double last_rate = 0.0;
    bool have_rate = false;
    double best_psnr = -std::numeric_limits<double>::infinity();
    for (size_t idx : order) {
        if (have_rate && pts[idx].bitrateKbps == last_rate) {
            continue;
        }
        last_rate = pts[idx].bitrateKbps;
        have_rate = true;
        if (pts[idx].psnrDb <= best_psnr) {
            continue;
        }
        best_psnr = pts[idx].psnrDb;
        kept.push_back(idx);
    }

    // Upper-concave chain (rule 4): drop points on or below the chord
    // of their neighbours. The cross expression must stay byte-for-byte
    // this one — the vepro-check oracle evaluates the identical
    // expression, so agreement is exact, not within-epsilon.
    std::vector<size_t> hull;
    for (size_t idx : kept) {
        while (hull.size() >= 2) {
            const video::RdPoint &a = pts[hull[hull.size() - 2]];
            const video::RdPoint &m = pts[hull.back()];
            const video::RdPoint &b = pts[idx];
            const double cross =
                (m.psnrDb - a.psnrDb) * (b.bitrateKbps - a.bitrateKbps) -
                (b.psnrDb - a.psnrDb) * (m.bitrateKbps - a.bitrateKbps);
            if (cross <= 0.0) {
                hull.pop_back();
            } else {
                break;
            }
        }
        hull.push_back(idx);
    }
    return hull;
}

double
composePsnrAtSource(double psnr_rung_db, double mse_scale)
{
    if (mse_scale <= 0.0) {
        // Exact reduction at scale == 1: no resampling loss means the
        // stored rung PSNR is already the source PSNR.
        return std::min(kPsnrCap, psnr_rung_db);
    }
    const double mse_coding = kPeakSq * std::pow(10.0, -psnr_rung_db / 10.0);
    const double total = mse_scale + mse_coding;
    return std::min(kPsnrCap, 10.0 * std::log10(kPeakSq / total));
}

LadderResult
sweep(const LadderConfig &config, lab::Orchestrator &orch)
{
    if (config.clips.empty() || config.rungs.empty()) {
        throw std::invalid_argument("ladder::sweep: empty clip or rung set");
    }
    for (const RungSpec &rung : config.rungs) {
        if (rung.scale < 1) {
            throw std::invalid_argument("ladder::sweep: rung scale < 1");
        }
        if (rung.crfs.empty()) {
            throw std::invalid_argument("ladder::sweep: rung with no CRFs");
        }
    }

    // Request every (title, rung, crf) point; the orchestrator dedupes
    // and serves cache-first.
    struct Pending {
        size_t title;
        int scale;
        int crf;
        size_t handle;
    };
    std::vector<Pending> pending;
    for (size_t t = 0; t < config.clips.size(); ++t) {
        for (const RungSpec &rung : config.rungs) {
            for (int crf : rung.crfs) {
                lab::JobSpec spec;
                spec.encoder = config.encoder;
                spec.video = config.clips[t];
                spec.crf = crf;
                spec.preset = config.preset;
                spec.divisor = config.divisor;
                spec.frames = config.frames;
                spec.maxTraceOps = config.maxTraceOps;
                spec.backend = config.backend;
                spec.scale = rung.scale;
                pending.push_back(
                    {t, rung.scale, crf, orch.request(spec)});
            }
        }
    }
    orch.run();

    // Resampling loss per (title, scale), measured once from the source
    // clip — no encoder involved, so warm sweeps still run zero encodes.
    video::SuiteScale suite;
    suite.divisor = config.divisor;
    suite.frames = config.frames;
    std::map<std::pair<std::string, int>, double> scale_mse;
    for (const Pending &p : pending) {
        scale_mse.emplace(std::make_pair(config.clips[p.title], p.scale),
                          -1.0);
    }
    for (auto &entry : scale_mse) {
        if (entry.first.second == 1) {
            entry.second = 0.0;
        } else {
            const video::Video src =
                video::loadSuiteVideo(entry.first.first, suite);
            entry.second =
                video::scaleRoundTripMse(src, entry.first.second);
        }
    }

    LadderResult out{
        {},
        core::Table({"title", "rung", "crf", "kbps", "psnr@rung",
                     "psnr@src"}),
        core::Table({"title", "rung", "crf", "kbps", "psnr@rung",
                     "psnr@src", "hull"}),
        core::Table({"scale", "share", "points", "IPC", "retiring%",
                     "bad-spec%", "frontend%", "backend%", "bknd-mem%",
                     "br-MPKI", "L1D-MPKI", "L2-MPKI", "LLC-MPKI"}),
        ""};

    out.titles.resize(config.clips.size());
    for (size_t t = 0; t < config.clips.size(); ++t) {
        out.titles[t].clip = config.clips[t];
    }
    for (const Pending &p : pending) {
        const lab::JobResult &result = orch.result(p.handle);
        RungPoint point;
        point.clip = config.clips[p.title];
        point.scale = p.scale;
        point.crf = p.crf;
        point.bitrateKbps = result.encode.bitrateKbps;
        point.psnrRungDb = result.encode.psnrDb;
        point.psnrSourceDb = composePsnrAtSource(
            result.encode.psnrDb,
            scale_mse.at({point.clip, p.scale}));
        point.result = result;
        out.titles[p.title].points.push_back(std::move(point));
    }

    // Per-title hull on (bitrate, source PSNR).
    for (TitleLadder &title : out.titles) {
        std::vector<video::RdPoint> rd(title.points.size());
        for (size_t i = 0; i < title.points.size(); ++i) {
            rd[i] = {title.points[i].bitrateKbps,
                     title.points[i].psnrSourceDb};
        }
        title.hull = convexHull(rd);
        for (size_t idx : title.hull) {
            title.points[idx].onHull = true;
        }
        for (size_t idx : title.hull) {
            const RungPoint &p = title.points[idx];
            out.ladder.addRow({p.clip, rungLabel(p.scale),
                               std::to_string(p.crf),
                               core::fmt(p.bitrateKbps, 1),
                               core::fmt(p.psnrRungDb, 2),
                               core::fmt(p.psnrSourceDb, 2)});
        }
        for (const RungPoint &p : title.points) {
            out.rd.addRow({p.clip, rungLabel(p.scale),
                           std::to_string(p.crf),
                           core::fmt(p.bitrateKbps, 1),
                           core::fmt(p.psnrRungDb, 2),
                           core::fmt(p.psnrSourceDb, 2),
                           p.onHull ? "yes" : ""});
        }
    }

    // Uarch characterization: per-scale aggregates over every measured
    // point (the rung workload, not just hull members), then the
    // traffic-mix blend and its delta against full resolution.
    std::vector<int> scales;
    for (const RungSpec &rung : config.rungs) {
        if (std::find(scales.begin(), scales.end(), rung.scale) ==
            scales.end()) {
            scales.push_back(rung.scale);
        }
    }
    std::map<int, Agg> by_scale;
    for (const TitleLadder &title : out.titles) {
        for (const RungPoint &p : title.points) {
            by_scale[p.scale].add(p.result.core);
        }
    }
    double mix_total = 0.0;
    std::map<int, double> mix_share;
    for (const RungShare &share : config.rungMix) {
        if (share.weight <= 0.0) {
            throw std::invalid_argument(
                "ladder::sweep: rung-mix weight must be > 0");
        }
        mix_share[share.scale] += share.weight;
        mix_total += share.weight;
    }
    for (auto &entry : mix_share) {
        entry.second /= mix_total;
        if (!by_scale.count(entry.first) ||
            by_scale.at(entry.first).count == 0) {
            throw std::invalid_argument(
                "ladder::sweep: rung mix references scale 1/" +
                std::to_string(entry.first) + " with no measured points");
        }
    }

    for (int s : scales) {
        const Agg &agg = by_scale.at(s);
        const std::string share =
            mix_share.count(s) ? core::fmt(100.0 * mix_share.at(s), 1) : "-";
        out.uarch.addRow(aggRow(
            rungLabel(s), share,
            std::to_string(static_cast<long long>(agg.count)), agg));
    }

    // Mix row: per-encode averages blended by traffic share.
    Agg mix;
    for (const auto &entry : mix_share) {
        const Agg &agg = by_scale.at(entry.first);
        const double w = entry.second / agg.count;
        mix.count += entry.second;
        mix.cycles += w * agg.cycles;
        mix.instructions += w * agg.instructions;
        mix.retiring += w * agg.retiring;
        mix.badSpec += w * agg.badSpec;
        mix.frontend += w * agg.frontend;
        mix.backend += w * agg.backend;
        mix.backendMemory += w * agg.backendMemory;
        mix.mispredicts += w * agg.mispredicts;
        mix.l1dMisses += w * agg.l1dMisses;
        mix.l2Misses += w * agg.l2Misses;
        mix.llcMisses += w * agg.llcMisses;
    }
    out.uarch.addRow(aggRow("mix", "100.0", "-", mix));

    const Agg &base =
        by_scale.count(1) ? by_scale.at(1) : by_scale.at(scales.front());
    out.uarch.addRow(
        {"Δ mix vs 1/1", "-", "-",
         fmtSigned(mix.ipc() - base.ipc(), 2),
         fmtSigned(mix.share(mix.retiring) - base.share(base.retiring), 1),
         fmtSigned(mix.share(mix.badSpec) - base.share(base.badSpec), 1),
         fmtSigned(mix.share(mix.frontend) - base.share(base.frontend), 1),
         fmtSigned(mix.share(mix.backend) - base.share(base.backend), 1),
         fmtSigned(mix.share(mix.backendMemory) -
                       base.share(base.backendMemory),
                   1),
         fmtSigned(mix.mpki(mix.mispredicts) - base.mpki(base.mispredicts),
                   3),
         fmtSigned(mix.mpki(mix.l1dMisses) - base.mpki(base.l1dMisses), 3),
         fmtSigned(mix.mpki(mix.l2Misses) - base.mpki(base.l2Misses), 3),
         fmtSigned(mix.mpki(mix.llcMisses) - base.mpki(base.llcMisses), 3)});

    std::string mix_desc;
    for (const auto &entry : mix_share) {
        if (!mix_desc.empty()) {
            mix_desc += ", ";
        }
        mix_desc += rungLabel(entry.first) + "=" +
                    core::fmt(100.0 * entry.second, 0) + "%";
    }
    const char *base_dom = dominantStall(base);
    const char *mix_dom = dominantStall(mix);
    out.mixLine =
        "rung mix (" + mix_desc + "): backend-bound " +
        core::fmt(base.share(base.backend), 1) + "% -> " +
        core::fmt(mix.share(mix.backend), 1) + "% (" +
        fmtSigned(mix.share(mix.backend) - base.share(base.backend), 1) +
        "pp), LLC MPKI " + core::fmt(base.mpki(base.llcMisses), 3) +
        " -> " + core::fmt(mix.mpki(mix.llcMisses), 3) + ", IPC " +
        core::fmt(base.ipc(), 2) + " -> " + core::fmt(mix.ipc(), 2) +
        " — dominant stall " +
        (std::string(base_dom) == mix_dom
             ? "stays " + std::string(mix_dom) + " (story holds)"
             : std::string("flips ") + base_dom + " -> " + mix_dom +
                   " (story flips)");
    return out;
}

} // namespace vepro::ladder
