#ifndef VEPRO_LADDER_LADDER_HPP
#define VEPRO_LADDER_LADDER_HPP

/**
 * @file
 * Per-title ABR ladders: multi-resolution encoding as a first-class
 * workload.
 *
 * A ladder rung is (scale divisor, CRF): the suite clip is box-downscaled
 * by `scale` before encoding (JobSpec::scale, src/video/scale.hpp), and
 * its delivered quality is judged AT SOURCE RESOLUTION — what a client
 * upscaling the rung back to display size would see. `sweep` encodes
 * every rung of every title cache-first through the lab Orchestrator
 * (rung JobSpecs reuse JobSpec::traceKey(), so trace capture/replay
 * amortises across backends exactly like full-resolution points), then
 * extracts the per-title convex hull of (bitrate, source PSNR): the
 * "per-title ladder" — the rungs worth serving for that content.
 *
 * Source-resolution PSNR is composed, not re-measured: a warm sweep must
 * run zero encodes, and the cached record stores only the rung-resolution
 * PSNR. The scaling loss is measured independently by a deterministic
 * downscale->upscale round trip on the source (video::scaleRoundTripMse)
 * and added in the MSE domain:
 *
 *   mse_total = mse_scale + 255^2 * 10^(-psnr_rung/10)
 *   psnr_source = 10 * log10(255^2 / mse_total)     (capped at 99 dB)
 *
 * which treats coding noise and resampling loss as independent — the
 * standard additive-distortion assumption — and reduces exactly to the
 * stored PSNR at scale == 1. See DESIGN.md §17.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "lab/orchestrator.hpp"
#include "video/metrics.hpp"

namespace vepro::ladder
{

/** One resolution rung of the ladder: a scale divisor and its CRF grid. */
struct RungSpec {
    int scale = 1;          ///< Extra downscale on top of suite geometry.
    std::vector<int> crfs;  ///< CRFs encoded at this rung.
};

/** Traffic share of one rung scale in the characterization mix. */
struct RungShare {
    int scale = 1;
    double weight = 1.0;  ///< Relative; normalised over the mix.
};

/** A full ladder experiment. */
struct LadderConfig {
    std::string encoder = "SVT-AV1";
    std::vector<std::string> clips;  ///< Suite clip names.
    std::vector<RungSpec> rungs;
    int preset = 6;

    // Suite geometry / simulation knobs (JobSpec fields).
    int divisor = 8;
    int frames = 8;
    uint64_t maxTraceOps = 1'200'000;
    std::string backend;

    /**
     * Job mix for the uarch characterization table: the production
     * share of each rung scale. The default models the ISSUE's
     * 80%-low-res farm (60% of jobs below half resolution).
     */
    std::vector<RungShare> rungMix = {{1, 0.2}, {2, 0.2}, {4, 0.6}};
};

/**
 * The default ladder derived from a parsed RunScale: sweepClips(scale)
 * titles, scales {1, 2, 4}, the CRF grid {20, 32, 44, 56} (--full: the
 * paper's 6-point AV1 sweep), suite geometry/backend from @p scale.
 */
LadderConfig ladderConfigFromScale(const core::RunScale &scale, bool full);

/**
 * Convex (bitrate, PSNR) hull: indices into @p pts of the rungs on the
 * upper-left hull, in ascending bitrate order. Deterministic contract
 * (mirrored by the naive O(n^2) oracle in vepro-check):
 *  1. order by (rate asc, psnr desc, index asc);
 *  2. equal-rate duplicates: keep only the first (highest psnr, then
 *     lowest index);
 *  3. drop dominated points (psnr not strictly above the running max);
 *  4. drop points on or below the chord of their hull neighbours
 *     (collinear points are dropped), via the exact double expression
 *     (m.q-a.q)*(b.r-a.r) - (b.q-a.q)*(m.r-a.r) <= 0.
 */
std::vector<size_t> convexHull(const std::vector<video::RdPoint> &pts);

/**
 * Compose rung-resolution coding PSNR with resampling loss into
 * source-resolution PSNR (see file header). @p mse_scale is the
 * downscale->upscale round-trip luma MSE; 0 returns @p psnr_rung_db
 * (capped at 99).
 */
double composePsnrAtSource(double psnr_rung_db, double mse_scale);

/** One measured rung point of one title. */
struct RungPoint {
    std::string clip;
    int scale = 1;
    int crf = 0;
    double bitrateKbps = 0.0;
    double psnrRungDb = 0.0;    ///< At encode (rung) resolution.
    double psnrSourceDb = 0.0;  ///< Composed at source resolution.
    bool onHull = false;
    lab::JobResult result;
};

/** All rungs of one title plus its extracted ladder. */
struct TitleLadder {
    std::string clip;
    std::vector<RungPoint> points;  ///< Rung-major, CRF-minor order.
    std::vector<size_t> hull;       ///< Indices into points, rate asc.
};

/** Everything `vepro-lab --ladder` renders. */
struct LadderResult {
    std::vector<TitleLadder> titles;
    core::Table ladder;  ///< Hull rungs per title.
    core::Table rd;      ///< Every measured point.
    core::Table uarch;   ///< Per-scale CPI stack / MPKI + mix + deltas.
    std::string mixLine; ///< One-line verdict on the CPI-stack story.
};

/**
 * Encode every rung of every title through @p orch (cache-first,
 * deduped, trace-amortised), compose source-resolution RD, extract
 * per-title hulls, and render the three tables. Output is byte-identical
 * for a given config regardless of worker count or cache temperature.
 */
LadderResult sweep(const LadderConfig &config, lab::Orchestrator &orch);

} // namespace vepro::ladder

#endif // VEPRO_LADDER_LADDER_HPP
