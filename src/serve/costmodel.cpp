#include "serve/costmodel.hpp"

#include <stdexcept>
#include <utility>

#include "encoders/registry.hpp"
#include "sched/scheduler.hpp"
#include "video/suite.hpp"

namespace vepro::serve
{

CostModel::CostModel(lab::Orchestrator &orch, CostModelConfig config)
    : orch_(orch), config_(std::move(config))
{
    if (config_.presets.empty()) {
        throw std::invalid_argument("serve: empty preset ladder");
    }
}

std::string
CostModel::comboKey(const std::string &clip, int crf, int preset)
{
    return clip + "|" + std::to_string(crf) + "|" + std::to_string(preset);
}

lab::JobSpec
CostModel::specFor(const std::string &clip, int crf, int preset) const
{
    lab::JobSpec spec;
    spec.encoder = config_.encoder;
    spec.video = clip;
    spec.crf = crf;
    spec.preset = preset;
    spec.divisor = config_.divisor;
    spec.frames = config_.frames;
    spec.maxTraceOps = config_.maxTraceOps;
    return spec;
}

void
CostModel::resolve(const std::vector<std::string> &clips,
                   const std::vector<int> &crfs)
{
    // Per-preset parallel speedup from the encoder's own task graph:
    // one cheap instrumented encode per rung (graph only, no trace),
    // list-scheduled at 1 and at serverCores. Deterministic, so it
    // never perturbs the SLA table across runs.
    const auto model = encoders::encoderByName(config_.encoder);
    for (int preset : config_.presets) {
        if (speedups_.count(preset) != 0) {
            continue;
        }
        const video::SuiteScale scale{config_.divisor, config_.frames};
        const video::Video clip =
            video::loadSuiteVideo(clips.front(), scale);
        encoders::EncodeParams params;
        params.crf = crfs.front();
        params.preset = preset;
        trace::ProbeConfig probe;  // Mix counters only: cheapest run.
        const encoders::EncodeResult enc =
            model->encode(clip, params, probe, /*build_tasks=*/true);
        const sched::ScheduleResult serial =
            sched::schedule(enc.taskGraph, 1);
        const sched::ScheduleResult wide =
            sched::schedule(enc.taskGraph, config_.serverCores);
        double up = wide.speedupVs(serial.makespan);
        speedups_[preset] = up > 1.0 ? up : 1.0;
    }

    // Cost specs go through the orchestrator's persistent service:
    // async intake, cache-first against the store, parallel across its
    // workers. Duplicate combos dedupe to the same handle for free.
    std::vector<std::pair<std::string, size_t>> pending;
    for (const std::string &clip : clips) {
        for (int crf : crfs) {
            for (int preset : config_.presets) {
                const std::string key = comboKey(clip, crf, preset);
                if (seconds_.count(key) != 0) {
                    continue;
                }
                const auto handle = orch_.submit(specFor(clip, crf, preset));
                if (!handle.has_value()) {
                    throw std::runtime_error(
                        "serve: cost spec rejected by admission control");
                }
                pending.emplace_back(key, *handle);
            }
        }
    }
    for (const auto &[key, handle] : pending) {
        orch_.await(handle);
        const lab::JobResult &result = orch_.result(handle);
        const double ipc = result.core.ipc();
        if (result.encode.instructions == 0 || ipc <= 0.0) {
            throw std::runtime_error("serve: degenerate cost record for " +
                                     key);
        }
        const double scale =
            static_cast<double>(config_.divisor) *
            static_cast<double>(config_.divisor) *
            (static_cast<double>(config_.referenceFrames) /
             static_cast<double>(config_.frames));
        const double full_instructions =
            static_cast<double>(result.encode.instructions) * scale;
        const double single_core =
            full_instructions / (ipc * config_.nominalGhz * 1e9);
        const int preset = std::stoi(key.substr(key.rfind('|') + 1));
        seconds_[key] = single_core / speedups_.at(preset);
    }
}

double
CostModel::serviceSeconds(const std::string &clip, int crf,
                          int preset) const
{
    const auto it = seconds_.find(comboKey(clip, crf, preset));
    if (it == seconds_.end()) {
        throw std::out_of_range("serve: unresolved cost combo " +
                                comboKey(clip, crf, preset));
    }
    return it->second;
}

const std::vector<int> &
CostModel::presetLadder() const
{
    return config_.presets;
}

double
CostModel::speedup(int preset) const
{
    const auto it = speedups_.find(preset);
    if (it == speedups_.end()) {
        throw std::out_of_range("serve: no speedup probe for preset " +
                                std::to_string(preset));
    }
    return it->second;
}

} // namespace vepro::serve
