#include "serve/costmodel.hpp"

#include <stdexcept>
#include <utility>

#include "backend/profile.hpp"
#include "encoders/registry.hpp"
#include "sched/scheduler.hpp"
#include "serve/traffic.hpp"
#include "video/scale.hpp"
#include "video/suite.hpp"

namespace vepro::serve
{

namespace
{

/** Production-scale 16x16 luma blocks of one encode of @p clip_id over
 *  @p reference_frames (how fixed-function backends are priced). A
 *  rung-carrying id ("name@scale") is priced at the rung's delivery
 *  resolution, nominal/scale. */
uint64_t
fullScaleBlocks(const std::string &clip_id, int reference_frames)
{
    const RungId rung = parseRungId(clip_id);
    const video::SuiteEntry &entry = video::suiteEntry(rung.clip);
    const int width = entry.nominalWidth / rung.scale;
    const int height = entry.nominalHeight / rung.scale;
    const uint64_t across = static_cast<uint64_t>((width + 15) / 16);
    const uint64_t down = static_cast<uint64_t>((height + 15) / 16);
    return across * down * static_cast<uint64_t>(reference_frames);
}

} // namespace

CostModel::CostModel(lab::Orchestrator &orch, CostModelConfig config)
    : orch_(orch), config_(std::move(config))
{
    if (config_.presets.empty()) {
        throw std::invalid_argument("serve: empty preset ladder");
    }
    // Resolve (and thereby validate) the primary profile up front, so a
    // typo'd --backend fails before any traffic is generated.
    primary_ = backend::resolveProfile(config_.backend).name;
}

std::string
CostModel::comboKey(const std::string &backend, const std::string &clip,
                    int crf, int preset)
{
    return backend + "|" + clip + "|" + std::to_string(crf) + "|" +
           std::to_string(preset);
}

double
CostModel::effectiveGhz(const std::string &backend) const
{
    if (config_.nominalGhz > 0.0) {
        return config_.nominalGhz;
    }
    return backend::resolveProfile(backend).clockGhz;
}

int
CostModel::effectiveCores(const std::string &backend) const
{
    if (config_.serverCores > 0) {
        return config_.serverCores;
    }
    return backend::resolveProfile(backend).cores;
}

lab::JobSpec
CostModel::specFor(const std::string &clip, int crf, int preset) const
{
    lab::JobSpec spec;
    spec.encoder = config_.encoder;
    const RungId rung = parseRungId(clip);
    spec.video = rung.clip;
    // The simulation proxy (divisor-scaled clip) can be too coarse to
    // represent the deepest rungs; measure the deepest encodable proxy
    // instead. Pricing (fullScaleBlocks, the divisor^2 extrapolation)
    // still uses the true rung resolution.
    const auto [pw, ph] = video::scaledSize(
        video::suiteEntry(rung.clip),
        video::SuiteScale{config_.divisor, config_.frames});
    spec.scale = video::clampDownscale(pw, ph, rung.scale);
    spec.crf = crf;
    spec.preset = preset;
    spec.divisor = config_.divisor;
    spec.frames = config_.frames;
    spec.maxTraceOps = config_.maxTraceOps;
    // The default profile keeps the pre-backend canonical key (JobSpec
    // normalises it away), so warm stores from before the backend field
    // existed still hit.
    spec.backend = primary_;
    return spec;
}

void
CostModel::resolve(const std::vector<std::string> &clips,
                   const std::vector<int> &crfs)
{
    resolveOn({primary_}, clips, crfs);
}

void
CostModel::resolveOn(const std::vector<std::string> &backends,
                     const std::vector<std::string> &clips,
                     const std::vector<int> &crfs)
{
    // Per-preset parallel speedup from the encoder's own task graph:
    // one cheap instrumented encode per rung (graph only, no trace),
    // list-scheduled at 1 and at the backend's core count. The graph
    // depends only on the preset, so the probe is shared across
    // backends with equal core counts. Deterministic, so it never
    // perturbs the SLA or fleet tables across runs.
    const auto model = encoders::encoderByName(config_.encoder);
    for (const std::string &name : backends) {
        const backend::MachineProfile &prof = backend::resolveProfile(name);
        if (prof.kind != backend::Kind::Core) {
            continue;
        }
        const int cores = effectiveCores(name);
        for (int preset : config_.presets) {
            const std::string skey =
                std::to_string(preset) + "|" + std::to_string(cores);
            if (speedups_.count(skey) != 0) {
                continue;
            }
            const video::SuiteScale scale{config_.divisor, config_.frames};
            // The probe only needs a task graph; the rung suffix (if
            // any) does not change its shape, so strip it.
            const video::Video clip = video::loadSuiteVideo(
                parseRungId(clips.front()).clip, scale);
            encoders::EncodeParams params;
            params.crf = crfs.front();
            params.preset = preset;
            trace::ProbeConfig probe;  // Mix counters only: cheapest run.
            const encoders::EncodeResult enc =
                model->encode(clip, params, probe, /*build_tasks=*/true);
            const sched::ScheduleResult serial =
                sched::schedule(enc.taskGraph, 1);
            const sched::ScheduleResult wide =
                sched::schedule(enc.taskGraph, cores);
            double up = wide.speedupVs(serial.makespan);
            speedups_[skey] = up > 1.0 ? up : 1.0;
        }
    }

    // Cost specs go through the orchestrator's persistent service:
    // async intake, cache-first against the store, parallel across its
    // workers. Duplicate combos dedupe to the same handle for free.
    // Fixed-function backends never submit: they are priced
    // analytically from the clip's full-scale block count.
    struct Pending {
        std::string key;
        std::string backend;
        int preset = 0;
        size_t handle = 0;
    };
    std::vector<Pending> pending;
    for (const std::string &name : backends) {
        const backend::MachineProfile &prof = backend::resolveProfile(name);
        for (const std::string &clip : clips) {
            for (int crf : crfs) {
                for (int preset : config_.presets) {
                    const std::string key =
                        comboKey(prof.name, clip, crf, preset);
                    if (costs_.count(key) != 0) {
                        continue;
                    }
                    if (prof.kind == backend::Kind::Fixed) {
                        const uint64_t blocks = fullScaleBlocks(
                            clip, config_.referenceFrames);
                        Cost c;
                        c.seconds =
                            backend::fixedServiceSeconds(prof, blocks);
                        c.joules = backend::fixedEnergyJoules(prof, blocks);
                        costs_[key] = c;
                        continue;
                    }
                    lab::JobSpec spec = specFor(clip, crf, preset);
                    spec.backend = prof.name;
                    const auto handle = orch_.submit(spec);
                    if (!handle.has_value()) {
                        throw std::runtime_error(
                            "serve: cost spec rejected by admission "
                            "control");
                    }
                    pending.push_back({key, prof.name, preset, *handle});
                }
            }
        }
    }
    for (const Pending &p : pending) {
        orch_.await(p.handle);
        const lab::JobResult &result = orch_.result(p.handle);
        const double ipc = result.core.ipc();
        if (result.encode.instructions == 0 || ipc <= 0.0) {
            throw std::runtime_error("serve: degenerate cost record for " +
                                     p.key);
        }
        const double scale =
            static_cast<double>(config_.divisor) *
            static_cast<double>(config_.divisor) *
            (static_cast<double>(config_.referenceFrames) /
             static_cast<double>(config_.frames));
        const double full_instructions =
            static_cast<double>(result.encode.instructions) * scale;
        const double single_core =
            full_instructions / (ipc * effectiveGhz(p.backend) * 1e9);
        const std::string skey = std::to_string(p.preset) + "|" +
                                 std::to_string(effectiveCores(p.backend));
        Cost c;
        c.seconds = single_core / speedups_.at(skey);

        // Energy, in the order documented in the header: per-event
        // dynamic nanojoules scaled to the full clip, plus static watts
        // over the (parallel) service time the server is occupied.
        const backend::MachineProfile &prof = backend::profile(p.backend);
        const uarch::CoreStats &s = result.core;
        const double dynamic_nj =
            static_cast<double>(s.instructions) * prof.energy.instructionNj +
            static_cast<double>(s.l1dMisses + s.l1iMisses) *
                prof.energy.l1MissNj +
            static_cast<double>(s.l2Misses) * prof.energy.l2MissNj +
            static_cast<double>(s.llcMisses) * prof.energy.llcMissNj +
            static_cast<double>(s.mispredicts) * prof.energy.mispredictNj;
        c.joules = dynamic_nj * scale * 1e-9 +
                   prof.energy.staticWatts * c.seconds;
        costs_[p.key] = c;
    }
}

const CostModel::Cost &
CostModel::costFor(const std::string &backend, const std::string &clip,
                   int crf, int preset) const
{
    const std::string name = backend::resolveProfile(backend).name;
    const auto it = costs_.find(comboKey(name, clip, crf, preset));
    if (it == costs_.end()) {
        throw std::out_of_range("serve: unresolved cost combo " +
                                comboKey(name, clip, crf, preset));
    }
    return it->second;
}

double
CostModel::serviceSeconds(const std::string &clip, int crf,
                          int preset) const
{
    return costFor(primary_, clip, crf, preset).seconds;
}

double
CostModel::serviceSecondsOn(const std::string &backend,
                            const std::string &clip, int crf,
                            int preset) const
{
    return costFor(backend, clip, crf, preset).seconds;
}

double
CostModel::energyJoulesOn(const std::string &backend,
                          const std::string &clip, int crf,
                          int preset) const
{
    return costFor(backend, clip, crf, preset).joules;
}

double
CostModel::energyJoules(const std::string &clip, int crf, int preset) const
{
    return costFor(primary_, clip, crf, preset).joules;
}

const std::vector<int> &
CostModel::presetLadder() const
{
    return config_.presets;
}

double
CostModel::speedup(int preset) const
{
    const auto it = speedups_.find(std::to_string(preset) + "|" +
                                   std::to_string(effectiveCores(primary_)));
    if (it == speedups_.end()) {
        throw std::out_of_range("serve: no speedup probe for preset " +
                                std::to_string(preset));
    }
    return it->second;
}

} // namespace vepro::serve
