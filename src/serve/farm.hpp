#ifndef VEPRO_SERVE_FARM_HPP
#define VEPRO_SERVE_FARM_HPP

/**
 * @file
 * Discrete-event encode-farm simulator and its SLA metrics layer.
 *
 * The farm models N identical multi-core servers behind a sharded
 * earliest-deadline-first queue with admission control. Arrivals come
 * from serve::generateTraffic; per-job service times come from a
 * CostOracle (serve::CostModel in production — real encoder-model
 * numbers, cache-first through the ResultStore); the preset each job
 * runs at is chosen by a serve::Policy at dispatch time.
 *
 * The simulation itself is single-threaded and pure: the outcome is a
 * function of (arrivals, config, policy, oracle) only — never of the
 * host's --jobs value, which parallelises only the cost resolution.
 * That is what makes the SLA table byte-identical across worker counts
 * (pinned in tests/test_serve.cpp).
 *
 * SLA definitions:
 *  - queue latency   = dispatch - arrival (seconds waiting, excluding
 *    service); reported as p50/p99 over completed jobs;
 *  - deadline miss   = completion > arrival + latencyTargetSec;
 *    missRate = misses / completed;
 *  - throughput      = completed jobs per simulated minute, over the
 *    horizon max(window end, last completion);
 *  - preset switches = dispatches whose chosen preset differs from the
 *    previous dispatch's (0 for any static policy by construction);
 *  - rejected        = arrivals turned away by admission control
 *    (queue already at admissionLimit); rejected jobs never enter the
 *    latency population.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "serve/policy.hpp"
#include "serve/traffic.hpp"

namespace vepro::serve
{

/** Farm shape and SLA contract. */
struct FarmConfig {
    int servers = 4;      ///< Identical encode servers (>= 1).
    int shards = 4;       ///< EDF queue shards (>= 1).
    /** Max jobs waiting (not yet started) before arrivals are
     *  rejected. 0 = unbounded. */
    size_t admissionLimit = 0;
    /** SLA: a job should complete within this many seconds of its
     *  arrival. Also the deadline EDF orders by. */
    double latencyTargetSec = 60.0;
};

/** One homogeneous slice of a heterogeneous server pool: @p servers
 *  machines of the named backend profile ("" = default). */
struct ServerGroup {
    std::string backend;
    int servers = 1;
};

/** Per-job outcome, in dispatch order (rejected jobs in arrival order
 *  at the point of rejection). Exposed for tests and tooling. */
struct JobOutcome {
    size_t id = 0;
    double arrivalSec = 0.0;
    bool rejected = false;
    int preset = 0;          ///< Chosen by the policy (0 if rejected).
    double startSec = 0.0;   ///< Dispatch time.
    double endSec = 0.0;     ///< Completion time.
    bool missedDeadline = false;
    /** Profile of the server that ran the job (heterogeneous overload
     *  only; empty in the homogeneous farm and for rejected jobs). */
    std::string backend;
};

/** The SLA metrics layer: one row of the per-policy table. */
struct SlaReport {
    std::string policy;
    size_t offered = 0;    ///< Arrivals presented to the farm.
    size_t completed = 0;
    size_t rejected = 0;
    double p50QueueSec = 0.0;
    double p99QueueSec = 0.0;
    double throughputPerMin = 0.0;
    double deadlineMissRate = 0.0;  ///< misses / completed, in [0, 1].
    size_t deadlineMisses = 0;
    size_t presetSwitches = 0;
    double meanServiceSec = 0.0;
};

struct FarmResult {
    SlaReport sla;
    std::vector<JobOutcome> outcomes;
    /** Modelled energy over all completed jobs (heterogeneous overload
     *  only — the plain CostOracle has no energy channel). */
    double energyJoules = 0.0;
    /** max(last completion, last arrival): the window fleet economics
     *  charge server-hours over. */
    double horizonSec = 0.0;
};

/**
 * Run the farm over @p arrivals (must be sorted by arrivalSec — the
 * generateTraffic contract) under @p policy. Pure and deterministic.
 */
FarmResult simulateFarm(const std::vector<UploadJob> &arrivals,
                        const FarmConfig &config, const Policy &policy,
                        const CostOracle &cost);

/**
 * Heterogeneous overload: the pool is the concatenation of @p pool's
 * groups (config.servers is ignored; shards / admission / latency
 * target still apply). Each server carries its group's backend;
 * service times and energy come from the FleetCostOracle's *On
 * methods, and the policy is consulted through a per-backend view so
 * adaptive switching sees the costs of the machine actually dispatching
 * the job. Ties between simultaneously free servers break toward the
 * lowest server index (earlier groups first) — deterministic, like
 * everything else here.
 */
FarmResult simulateFarm(const std::vector<UploadJob> &arrivals,
                        const FarmConfig &config, const Policy &policy,
                        const FleetCostOracle &cost,
                        const std::vector<ServerGroup> &pool);

/**
 * Render per-policy reports as the SLA table (markdown/CSV/JSON via
 * core::Table). Deterministic: same reports, same bytes — the
 * serve-smoke CI leg diffs two runs' toJson() output.
 */
core::Table slaTable(const std::vector<SlaReport> &reports);

} // namespace vepro::serve

#endif // VEPRO_SERVE_FARM_HPP
