#ifndef VEPRO_SERVE_POLICY_HPP
#define VEPRO_SERVE_POLICY_HPP

/**
 * @file
 * Pluggable scheduling policies for the encode farm: given a job about
 * to start and the time left until its deadline, choose the encoder
 * preset it runs at.
 *
 * Two families ship:
 *  - StaticPolicy: every job runs the same preset — the baselines the
 *    paper-style characterization implies (fixed quality, whatever the
 *    latency outcome);
 *  - AdaptivePolicy: speed-adaptive preset switching (after
 *    Eichermüller et al., PAPERS.md) — pick the SLOWEST (best-quality)
 *    preset whose predicted completion still meets the job's latency
 *    deadline, falling back to the fastest rung when nothing fits.
 *    Under load the farm automatically trades quality for latency, and
 *    trades back when the queue drains.
 *
 * Policies are consulted at dispatch time (not at arrival), so the
 * decision sees the queueing delay the job has already absorbed.
 */

#include <memory>
#include <string>
#include <vector>

#include "serve/traffic.hpp"

namespace vepro::serve
{

/**
 * What a policy may ask about encode costs: predicted service seconds
 * per (clip, crf, preset) and the preset ladder it may choose from.
 * Implemented by serve::CostModel for real model-derived costs and by
 * test fakes for policy-logic pins.
 */
class CostOracle
{
  public:
    virtual ~CostOracle() = default;

    /** Predicted wall seconds to encode @p clip at (@p crf, @p preset)
     *  on one farm server. */
    virtual double serviceSeconds(const std::string &clip, int crf,
                                  int preset) const = 0;

    /** Presets a policy may choose, ordered slowest (best quality)
     *  first. Never empty. */
    virtual const std::vector<int> &presetLadder() const = 0;
};

/**
 * A CostOracle that can price the same combo on several named machine
 * profiles (backend registry, src/backend). The base-class methods
 * answer for the oracle's primary backend; the *On variants take the
 * profile name explicitly, which is what the heterogeneous farm and
 * the fleet sweep consult per server. Implemented by serve::CostModel.
 */
class FleetCostOracle : public CostOracle
{
  public:
    /** Predicted wall seconds to encode @p clip at (@p crf, @p preset)
     *  on one server of @p backend ("" = the default profile). */
    virtual double serviceSecondsOn(const std::string &backend,
                                    const std::string &clip, int crf,
                                    int preset) const = 0;

    /**
     * Modelled energy in joules one such encode costs on @p backend:
     * dynamic event energy plus static burn over the service time (see
     * CostModel docs for the exact evaluation order).
     */
    virtual double energyJoulesOn(const std::string &backend,
                                  const std::string &clip, int crf,
                                  int preset) const = 0;
};

/** Scheduling policy: preset selection at dispatch time. */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Row label in the SLA table ("static-p2", "adaptive", ...). */
    virtual std::string name() const = 0;

    /**
     * Choose the preset @p job runs at.
     *
     * @param job      The upload being dispatched.
     * @param now      Dispatch time (>= job.arrivalSec).
     * @param deadline Absolute SLA deadline (arrival + latency target).
     * @param cost     Cost oracle for predicted service times.
     */
    virtual int choosePreset(const UploadJob &job, double now,
                             double deadline,
                             const CostOracle &cost) const = 0;
};

/** Baseline: every job runs @p preset, load notwithstanding. */
class StaticPolicy final : public Policy
{
  public:
    explicit StaticPolicy(int preset);
    std::string name() const override;
    int choosePreset(const UploadJob &job, double now, double deadline,
                     const CostOracle &cost) const override;

  private:
    int preset_;
};

/** Speed-adaptive preset switching (see file docs). */
class AdaptivePolicy final : public Policy
{
  public:
    std::string name() const override;
    int choosePreset(const UploadJob &job, double now, double deadline,
                     const CostOracle &cost) const override;
};

} // namespace vepro::serve

#endif // VEPRO_SERVE_POLICY_HPP
