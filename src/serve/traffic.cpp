#include "serve/traffic.hpp"

#include <cmath>
#include <stdexcept>

#include "core/rng.hpp"

namespace vepro::serve
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** Uniform double in (0, 1]: 53 mantissa bits, never exactly 0 so it is
 *  always safe inside a log(). */
double
uniform01(core::SplitMix64 &rng)
{
    return (static_cast<double>(rng.next() >> 11) + 1.0) * 0x1.0p-53;
}

} // namespace

std::string
rungClipId(const std::string &clip, int scale)
{
    if (scale == 1) {
        return clip;
    }
    return clip + "@" + std::to_string(scale);
}

RungId
parseRungId(const std::string &id)
{
    RungId out;
    const size_t at = id.rfind('@');
    if (at == std::string::npos) {
        out.clip = id;
        return out;
    }
    out.clip = id.substr(0, at);
    const std::string tail = id.substr(at + 1);
    if (out.clip.empty() || tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("serve: malformed rung clip id '" + id +
                                    "' (want name@scale)");
    }
    out.scale = std::stoi(tail);
    if (out.scale < 1) {
        throw std::invalid_argument("serve: rung scale must be >= 1 in '" +
                                    id + "'");
    }
    return out;
}

bool
rungMixActive(const std::vector<TrafficConfig::RungShare> &mix)
{
    for (const TrafficConfig::RungShare &share : mix) {
        if (share.scale != 1) {
            return true;
        }
    }
    return false;
}

std::vector<std::string>
rungClipIds(const TrafficConfig &config)
{
    if (!rungMixActive(config.rungMix)) {
        return config.clips;
    }
    std::vector<int> scales;
    for (const TrafficConfig::RungShare &share : config.rungMix) {
        bool known = false;
        for (int s : scales) {
            known = known || s == share.scale;
        }
        if (!known) {
            scales.push_back(share.scale);
        }
    }
    std::vector<std::string> ids;
    ids.reserve(config.clips.size() * scales.size());
    for (const std::string &clip : config.clips) {
        for (int scale : scales) {
            ids.push_back(rungClipId(clip, scale));
        }
    }
    return ids;
}

double
arrivalRatePerSec(const TrafficConfig &config, double t)
{
    const double base = static_cast<double>(config.users) *
                        config.uploadsPerUserPerHour / 3600.0;
    if (config.diurnalAmplitude == 0.0 || config.diurnalPeriodSec <= 0.0) {
        return base;
    }
    const double phase =
        2.0 * kPi * (t + config.diurnalPhaseSec) / config.diurnalPeriodSec;
    const double rate =
        base * (1.0 + config.diurnalAmplitude * std::sin(phase));
    return rate > 0.0 ? rate : 0.0;
}

std::vector<UploadJob>
generateTraffic(const TrafficConfig &config)
{
    if (config.clips.empty() || config.crfs.empty()) {
        throw std::invalid_argument(
            "serve: traffic needs a non-empty clip and CRF mix");
    }
    if (config.rungMix.empty()) {
        throw std::invalid_argument("serve: traffic needs a non-empty "
                                    "rung mix");
    }
    double rung_weight_total = 0.0;
    for (const TrafficConfig::RungShare &share : config.rungMix) {
        if (share.scale < 1) {
            throw std::invalid_argument(
                "serve: rung scale must be >= 1");
        }
        if (!(share.weight > 0.0)) {
            throw std::invalid_argument(
                "serve: rung weights must be positive");
        }
        rung_weight_total += share.weight;
    }
    // Drawing a rung costs one RNG step, so it only happens when the
    // mix actually asks for a non-full-resolution rung; the default mix
    // keeps every pre-ladder traffic sequence byte-identical.
    const bool rungs_active = rungMixActive(config.rungMix);
    std::vector<UploadJob> jobs;
    const double rate_max =
        static_cast<double>(config.users) * config.uploadsPerUserPerHour /
        3600.0 * (1.0 + std::fabs(config.diurnalAmplitude));
    if (rate_max <= 0.0 || config.durationSec <= 0.0) {
        return jobs;
    }

    // Lewis-Shedler thinning: draw a homogeneous process at rate_max,
    // keep each point with probability rate(t)/rate_max. One RNG
    // stream drives both the clock and the mix so the whole sequence
    // replays from the single seed.
    core::SplitMix64 rng(config.seed);
    double t = 0.0;
    for (;;) {
        t += -std::log(uniform01(rng)) / rate_max;
        if (t >= config.durationSec) {
            break;
        }
        if (uniform01(rng) * rate_max > arrivalRatePerSec(config, t)) {
            continue;  // Thinned out.
        }
        UploadJob job;
        job.id = jobs.size();
        job.arrivalSec = t;
        job.clip = config.clips[rng.below(config.clips.size())];
        job.crf = config.crfs[rng.below(config.crfs.size())];
        if (rungs_active) {
            double pick = uniform01(rng) * rung_weight_total;
            int scale = config.rungMix.back().scale;
            for (const TrafficConfig::RungShare &share : config.rungMix) {
                pick -= share.weight;
                if (pick <= 0.0) {
                    scale = share.scale;
                    break;
                }
            }
            job.clip = rungClipId(job.clip, scale);
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace vepro::serve
