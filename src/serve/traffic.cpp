#include "serve/traffic.hpp"

#include <cmath>
#include <stdexcept>

#include "core/rng.hpp"

namespace vepro::serve
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** Uniform double in (0, 1]: 53 mantissa bits, never exactly 0 so it is
 *  always safe inside a log(). */
double
uniform01(core::SplitMix64 &rng)
{
    return (static_cast<double>(rng.next() >> 11) + 1.0) * 0x1.0p-53;
}

} // namespace

double
arrivalRatePerSec(const TrafficConfig &config, double t)
{
    const double base = static_cast<double>(config.users) *
                        config.uploadsPerUserPerHour / 3600.0;
    if (config.diurnalAmplitude == 0.0 || config.diurnalPeriodSec <= 0.0) {
        return base;
    }
    const double phase =
        2.0 * kPi * (t + config.diurnalPhaseSec) / config.diurnalPeriodSec;
    const double rate =
        base * (1.0 + config.diurnalAmplitude * std::sin(phase));
    return rate > 0.0 ? rate : 0.0;
}

std::vector<UploadJob>
generateTraffic(const TrafficConfig &config)
{
    if (config.clips.empty() || config.crfs.empty()) {
        throw std::invalid_argument(
            "serve: traffic needs a non-empty clip and CRF mix");
    }
    std::vector<UploadJob> jobs;
    const double rate_max =
        static_cast<double>(config.users) * config.uploadsPerUserPerHour /
        3600.0 * (1.0 + std::fabs(config.diurnalAmplitude));
    if (rate_max <= 0.0 || config.durationSec <= 0.0) {
        return jobs;
    }

    // Lewis-Shedler thinning: draw a homogeneous process at rate_max,
    // keep each point with probability rate(t)/rate_max. One RNG
    // stream drives both the clock and the mix so the whole sequence
    // replays from the single seed.
    core::SplitMix64 rng(config.seed);
    double t = 0.0;
    for (;;) {
        t += -std::log(uniform01(rng)) / rate_max;
        if (t >= config.durationSec) {
            break;
        }
        if (uniform01(rng) * rate_max > arrivalRatePerSec(config, t)) {
            continue;  // Thinned out.
        }
        UploadJob job;
        job.id = jobs.size();
        job.arrivalSec = t;
        job.clip = config.clips[rng.below(config.clips.size())];
        job.crf = config.crfs[rng.below(config.crfs.size())];
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace vepro::serve
