#include "serve/cli.hpp"

#include <exception>
#include <sstream>

#include "backend/profile.hpp"
#include "core/experiment.hpp"

namespace vepro::serve
{

namespace
{

/** ','-split with empty fields dropped. */
std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(text);
    while (std::getline(in, item, ',')) {
        if (!item.empty()) {
            out.push_back(item);
        }
    }
    return out;
}

/** Parse "scale:weight,scale:weight,..." into a rung mix. */
std::vector<TrafficConfig::RungShare>
parseRungMix(const std::string &text)
{
    std::vector<TrafficConfig::RungShare> mix;
    for (const std::string &item : splitList(text)) {
        const size_t colon = item.find(':');
        if (colon == std::string::npos || colon + 1 >= item.size()) {
            throw std::invalid_argument(
                "--rung-mix expects scale:weight pairs, got '" + item + "'");
        }
        TrafficConfig::RungShare share;
        share.scale =
            core::parseIntStrict(item.substr(0, colon), "--rung-mix scale");
        const std::string weight_text = item.substr(colon + 1);
        size_t consumed = 0;
        share.weight = std::stod(weight_text, &consumed);
        if (consumed != weight_text.size()) {
            throw std::invalid_argument(
                "--rung-mix: bad weight '" + weight_text + "'");
        }
        if (share.scale < 1) {
            throw std::invalid_argument("--rung-mix scales must be >= 1");
        }
        if (!(share.weight > 0.0)) {
            throw std::invalid_argument("--rung-mix weights must be > 0");
        }
        mix.push_back(share);
    }
    if (mix.empty()) {
        throw std::invalid_argument(
            "--rung-mix needs at least one scale:weight pair");
    }
    return mix;
}

std::string
knownProfiles()
{
    std::string names;
    for (const std::string &name : backend::profileNames()) {
        names += names.empty() ? name : ", " + name;
    }
    return names;
}

} // namespace

std::string
serveUsage()
{
    return "usage: vepro-serve [options]\n"
           "\n"
           "Encode-farm simulator: seeded upload traffic, EDF queue,\n"
           "static vs speed-adaptive preset policies, SLA table — and\n"
           "with --fleet, $/encode-at-SLA across machine-profile mixes.\n"
           "\n"
           "  --quick                CI-sized reference overload scenario\n"
           "  --seed N               traffic RNG seed\n"
           "  --users N              active uploaders\n"
           "  --uploads-per-hour X   mean uploads per user per hour\n"
           "  --duration SEC         simulated window length\n"
           "  --servers N            farm servers (fleet: servers per mix)\n"
           "  --shards N             EDF queue shards\n"
           "  --admission N          admission limit (queued jobs; 0 = off)\n"
           "  --latency-target SEC   SLA deadline per job\n"
           "  --rung-mix S:W,..      ABR rung mix as scale:weight pairs\n"
           "                         (e.g. 1:20,2:20,4:60 = 60% of jobs\n"
           "                         at 1/4 resolution); default all jobs\n"
           "                         run at full resolution\n"
           "  --backend NAME         machine profile servers run\n"
           "                         (" +
           knownProfiles() +
           ");\n"
           "                         sets the clock and core count from\n"
           "                         the profile\n"
           "  --ghz X                override the profile's clock\n"
           "  --server-cores N       override the profile's cores/server\n"
           "  --fleet                sweep backend mixes: $/1k-encodes,\n"
           "                         J/encode, miss rate per mix\n"
           "  --backends A,B,..      profiles the fleet sweep mixes\n"
           "                         (default: the full registry)\n"
           "  --jobs N               cost-resolution workers (default 1)\n"
           "  --store DIR            result store directory (.vepro-lab)\n"
           "  --json PATH            write the SLA/fleet table as JSON\n"
           "  --markdown PATH        write the fleet table as markdown\n"
           "  --help                 this text\n";
}

ServeCli
parseServeCli(const std::vector<std::string> &args)
{
    ServeCli cli;
    cli.scenario = referenceScenario(false);

    // Flag overrides are applied AFTER the full pass, so "--backend x
    // --quick" and "--quick --backend x" mean the same run.
    bool saw_quick = false;
    std::vector<std::pair<std::string, std::string>> seen;

    for (size_t i = 0; i < args.size(); ++i) {
        // Both "--flag value" and "--flag=value" are accepted; the CI
        // smoke legs use the '=' form.
        std::string arg = args[i];
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.erase(eq);
                has_inline = true;
            }
        }
        const auto value = [&]() -> std::string {
            if (has_inline) {
                return inline_value;
            }
            if (i + 1 >= args.size()) {
                cli.error = arg + " needs a value";
                return "";
            }
            return args[++i];
        };
        if (arg == "--help" || arg == "-h") {
            cli.showHelp = true;
            return cli;
        } else if (arg == "--quick" || arg == "--fleet") {
            if (has_inline) {
                cli.error = arg + " takes no value";
                return cli;
            }
            (arg == "--quick" ? saw_quick : cli.fleet) = true;
        } else if (arg == "--seed" || arg == "--users" ||
                   arg == "--uploads-per-hour" || arg == "--duration" ||
                   arg == "--servers" || arg == "--shards" ||
                   arg == "--admission" || arg == "--latency-target" ||
                   arg == "--rung-mix" ||
                   arg == "--backend" || arg == "--ghz" ||
                   arg == "--server-cores" || arg == "--backends" ||
                   arg == "--jobs" || arg == "--store" ||
                   arg == "--json" || arg == "--markdown") {
            const std::string v = value();
            if (!cli.error.empty()) {
                return cli;
            }
            seen.emplace_back(arg, v);
        } else {
            cli.error = "unknown option " + arg;
            return cli;
        }
    }

    cli.quick = saw_quick;
    cli.scenario = referenceScenario(saw_quick);

    try {
        for (const auto &[flag, v] : seen) {
            if (flag == "--seed") {
                cli.scenario.traffic.seed = std::stoull(v);
            } else if (flag == "--users") {
                cli.scenario.traffic.users = core::parseIntStrict(v, flag);
            } else if (flag == "--uploads-per-hour") {
                cli.scenario.traffic.uploadsPerUserPerHour = std::stod(v);
            } else if (flag == "--duration") {
                cli.scenario.traffic.durationSec = std::stod(v);
            } else if (flag == "--servers") {
                cli.scenario.farm.servers = core::parseIntStrict(v, flag);
            } else if (flag == "--shards") {
                cli.scenario.farm.shards = core::parseIntStrict(v, flag);
            } else if (flag == "--admission") {
                const int limit = core::parseIntStrict(v, flag);
                if (limit < 0) {
                    throw std::invalid_argument(
                        "--admission must be >= 0");
                }
                cli.scenario.farm.admissionLimit =
                    static_cast<size_t>(limit);
            } else if (flag == "--latency-target") {
                cli.scenario.farm.latencyTargetSec = std::stod(v);
            } else if (flag == "--rung-mix") {
                cli.scenario.traffic.rungMix = parseRungMix(v);
            } else if (flag == "--backend") {
                if (!backend::isProfile(v)) {
                    throw std::invalid_argument(
                        "--backend: unknown profile '" + v +
                        "' (known: " + knownProfiles() + ")");
                }
                cli.scenario.cost.backend = v;
            } else if (flag == "--ghz") {
                const double ghz = std::stod(v);
                if (ghz <= 0.0) {
                    throw std::invalid_argument("--ghz must be > 0");
                }
                cli.scenario.cost.nominalGhz = ghz;
            } else if (flag == "--server-cores") {
                const int cores = core::parseIntStrict(v, flag);
                if (cores < 1) {
                    throw std::invalid_argument(
                        "--server-cores must be >= 1");
                }
                cli.scenario.cost.serverCores = cores;
            } else if (flag == "--backends") {
                cli.fleetBackends = splitList(v);
                if (cli.fleetBackends.empty()) {
                    throw std::invalid_argument(
                        "--backends needs at least one profile");
                }
                for (const std::string &name : cli.fleetBackends) {
                    if (!backend::isProfile(name)) {
                        throw std::invalid_argument(
                            "--backends: unknown profile '" + name +
                            "' (known: " + knownProfiles() + ")");
                    }
                }
            } else if (flag == "--jobs") {
                cli.jobs = core::parseIntStrict(v, flag);
            } else if (flag == "--store") {
                cli.storeDir = v;
            } else if (flag == "--json") {
                cli.jsonPath = v;
            } else if (flag == "--markdown") {
                cli.markdownPath = v;
            }
        }
    } catch (const std::exception &err) {
        cli.error = err.what();
        return cli;
    }

    if (!cli.fleetBackends.empty() && !cli.fleet) {
        cli.error = "--backends only makes sense with --fleet";
    }
    return cli;
}

} // namespace vepro::serve
