#include "serve/fleet.hpp"

#include <map>
#include <stdexcept>

#include "backend/profile.hpp"
#include "serve/costmodel.hpp"

namespace vepro::serve
{

namespace
{

/** The mixes under test: one homogeneous mix per backend, plus a
 *  round-robin blend when there is anything to blend. */
std::vector<FleetMix>
buildMixes(const std::vector<std::string> &backends, int servers_per_mix)
{
    std::vector<FleetMix> mixes;
    for (const std::string &name : backends) {
        FleetMix mix;
        mix.name = name;
        mix.groups.push_back({name, servers_per_mix});
        mixes.push_back(std::move(mix));
    }
    if (backends.size() >= 2) {
        // Deal the servers round-robin so the blend stays comparable:
        // same total server count as every homogeneous mix.
        std::map<std::string, int> counts;  // ordered: deterministic.
        for (int i = 0; i < servers_per_mix; ++i) {
            ++counts[backends[static_cast<size_t>(i) % backends.size()]];
        }
        FleetMix blend;
        blend.name = "blend";
        for (const std::string &name : backends) {
            blend.groups.push_back({name, counts[name]});
        }
        mixes.push_back(std::move(blend));
    }
    return mixes;
}

/** Provisioned dollars for @p groups held for @p horizon_sec. */
double
provisionedDollars(const std::vector<ServerGroup> &groups,
                   double horizon_sec)
{
    double dollars = 0.0;
    for (const ServerGroup &g : groups) {
        const backend::MachineProfile &prof =
            backend::resolveProfile(g.backend);
        dollars += static_cast<double>(g.servers) * prof.pricePerHour *
                   (horizon_sec / 3600.0);
    }
    return dollars;
}

/** Cheapest-at-SLA mix name for one regime; "(none)" if every mix
 *  busts the budget. Ties break toward the earlier row. */
std::string
cheapest(const std::vector<FleetRow> &rows, const std::string &regime)
{
    std::string best = "(none)";
    double best_cost = 0.0;
    for (const FleetRow &r : rows) {
        if (r.regime != regime || !r.meetsSla) {
            continue;
        }
        if (best == "(none)" || r.dollarsPer1k < best_cost) {
            best = r.mix;
            best_cost = r.dollarsPer1k;
        }
    }
    return best;
}

} // namespace

FleetSweepResult
fleetSweep(const std::vector<UploadJob> &arrivals, const FarmConfig &farm,
           const FleetCostOracle &cost, const FleetConfig &config)
{
    std::vector<std::string> backends = config.backends;
    if (backends.empty()) {
        backends = backend::profileNames();
    }
    if (config.serversPerMix < 1) {
        throw std::invalid_argument("serve: fleet needs >= 1 server/mix");
    }

    FleetSweepResult out;
    out.mixes = buildMixes(backends, config.serversPerMix);

    const std::vector<int> &ladder = cost.presetLadder();
    const struct {
        const char *name;
        int preset;
    } regimes[] = {{"slow-preset", ladder.front()},
                   {"fast-preset", ladder.back()}};

    for (const FleetMix &mix : out.mixes) {
        for (const auto &regime : regimes) {
            const StaticPolicy policy(regime.preset);
            const FarmResult r =
                simulateFarm(arrivals, farm, policy, cost, mix.groups);

            FleetRow row;
            row.mix = mix.name;
            row.regime = regime.name;
            row.preset = regime.preset;
            row.completed = r.sla.completed;
            row.rejected = r.sla.rejected;
            row.missRate = r.sla.deadlineMissRate;
            if (r.sla.completed > 0) {
                const double dollars =
                    provisionedDollars(mix.groups, r.horizonSec);
                row.dollarsPer1k =
                    dollars /
                    static_cast<double>(r.sla.completed) * 1000.0;
                row.joulesPerEncode =
                    r.energyJoules /
                    static_cast<double>(r.sla.completed);
            }
            row.meetsSla = row.missRate <= config.missBudget;
            out.rows.push_back(std::move(row));
        }
    }

    core::Table table({"mix", "regime", "preset", "completed", "rejected",
                       "miss rate", "$/1k-encodes", "J/encode",
                       "meets SLA"});
    for (const FleetRow &r : out.rows) {
        table.addRow({r.mix, r.regime, std::to_string(r.preset),
                      std::to_string(r.completed),
                      std::to_string(r.rejected), core::fmt(r.missRate, 4),
                      core::fmt(r.dollarsPer1k, 2),
                      core::fmt(r.joulesPerEncode, 1),
                      r.meetsSla ? "yes" : "no"});
    }
    out.table = std::move(table);

    out.cheapestSlow = cheapest(out.rows, "slow-preset");
    out.cheapestFast = cheapest(out.rows, "fast-preset");
    out.winnerChanged = out.cheapestSlow != out.cheapestFast;
    out.verdict = "cheapest at SLA (miss rate <= " +
                  core::fmt(config.missBudget, 4) +
                  "): slow-preset -> " + out.cheapestSlow +
                  ", fast-preset -> " + out.cheapestFast + " — winner " +
                  (out.winnerChanged ? "CHANGES" : "holds") +
                  " across regimes";
    return out;
}

FleetRun
runFleetScenario(const ServeScenario &scenario, lab::Orchestrator &orch,
                 int jobs, FleetConfig config)
{
    if (config.backends.empty()) {
        config.backends = backend::profileNames();
    }

    lab::ServiceOptions sopts;
    sopts.shards = scenario.farm.shards;
    sopts.workers = jobs >= 1 ? jobs : 1;
    orch.startService(sopts);
    CostModel cost(orch, scenario.cost);
    cost.resolveOn(config.backends, rungClipIds(scenario.traffic),
                   scenario.traffic.crfs);
    orch.stopService();

    FleetRun run;
    run.arrivals = generateTraffic(scenario.traffic);
    config.serversPerMix = scenario.farm.servers;
    run.sweep = fleetSweep(run.arrivals, scenario.farm, cost, config);
    return run;
}

} // namespace vepro::serve
