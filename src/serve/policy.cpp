#include "serve/policy.hpp"

#include <stdexcept>

namespace vepro::serve
{

StaticPolicy::StaticPolicy(int preset) : preset_(preset) {}

std::string
StaticPolicy::name() const
{
    return "static-p" + std::to_string(preset_);
}

int
StaticPolicy::choosePreset(const UploadJob &, double, double,
                           const CostOracle &) const
{
    return preset_;
}

std::string
AdaptivePolicy::name() const
{
    return "adaptive";
}

int
AdaptivePolicy::choosePreset(const UploadJob &job, double now,
                             double deadline, const CostOracle &cost) const
{
    const std::vector<int> &ladder = cost.presetLadder();
    if (ladder.empty()) {
        throw std::logic_error("serve: empty preset ladder");
    }
    const double slack = deadline - now;
    // Slowest (best-quality) rung whose predicted completion still
    // makes the deadline; when even the fastest rung cannot, take the
    // fastest anyway — it minimises how late the job lands.
    for (int preset : ladder) {
        if (cost.serviceSeconds(job.clip, job.crf, preset) <= slack) {
            return preset;
        }
    }
    return ladder.back();
}

} // namespace vepro::serve
