/**
 * @file
 * vepro-serve: the encode-farm simulator front-end.
 *
 * Resolves model-derived encode costs cache-first through the lab
 * ResultStore (so a second run against the same --store is warm and
 * byte-identical), replays seeded upload traffic through the farm
 * under every scheduling policy, prints the per-policy SLA table, and
 * optionally writes it as a JSON artifact for diffing in CI.
 *
 * With --fleet it instead sweeps machine-profile mixes (backend
 * registry, src/backend) over the same traffic and reports
 * $/1k-encodes, J/encode, and deadline-miss rate per mix — the
 * cheapest-backend-at-SLA question.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "serve/cli.hpp"
#include "serve/fleet.hpp"
#include "serve/scenario.hpp"

namespace
{

bool
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::cerr << "vepro-serve: cannot write " << path << "\n";
        return false;
    }
    out << bytes;
    std::cout << "wrote " << path << "\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vepro;

    const serve::ServeCli cli =
        serve::parseServeCli({argv + 1, argv + argc});
    if (cli.showHelp) {
        std::cout << serve::serveUsage();
        return 0;
    }
    if (!cli.error.empty()) {
        std::cerr << "vepro-serve: " << cli.error << "\n";
        std::cerr << serve::serveUsage();
        return 2;
    }
    const serve::ServeScenario &scenario = cli.scenario;

    lab::OrchestratorOptions opts;
    opts.jobs = cli.jobs;
    opts.storeDir = cli.storeDir;
    opts.verbose = false;
    lab::Orchestrator orch(opts);

    std::cout << "vepro-serve: " << (cli.quick ? "quick " : "")
              << (cli.fleet ? "fleet sweep" : "scenario") << " — "
              << scenario.traffic.users << " users, "
              << scenario.farm.servers
              << (cli.fleet ? " servers/mix" : " servers")
              << ", latency target " << scenario.farm.latencyTargetSec
              << " s\n";

    try {
        if (cli.fleet) {
            serve::FleetConfig config;
            config.backends = cli.fleetBackends;
            const serve::FleetRun run =
                serve::runFleetScenario(scenario, orch, cli.jobs, config);
            std::cout << "traffic: " << run.arrivals.size()
                      << " uploads over " << scenario.traffic.durationSec
                      << " s\n";
            run.sweep.table.print(
                "Fleet economics per backend mix and preset regime");
            std::cout << run.sweep.verdict << "\n";
            std::cout << "orchestrator: " << orch.summaryLine() << "\n";
            if (!cli.jsonPath.empty() &&
                !writeFile(cli.jsonPath, run.sweep.table.toJson())) {
                return 1;
            }
            if (!cli.markdownPath.empty()) {
                const std::string md =
                    "# Fleet economics (vepro-serve --fleet)\n\n" +
                    run.sweep.table.toMarkdown() + "\n" +
                    run.sweep.verdict + "\n";
                if (!writeFile(cli.markdownPath, md)) {
                    return 1;
                }
            }
            return 0;
        }

        const serve::ScenarioRun run =
            serve::runScenario(scenario, orch, cli.jobs);
        std::cout << "traffic: " << run.arrivals.size() << " uploads over "
                  << scenario.traffic.durationSec << " s\n";
        run.table.print("SLA outcomes per scheduling policy");
        std::cout << "orchestrator: " << orch.summaryLine() << "\n";
        if (!cli.jsonPath.empty() &&
            !writeFile(cli.jsonPath, run.table.toJson())) {
            return 1;
        }
    } catch (const std::exception &err) {
        std::cerr << "vepro-serve: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
