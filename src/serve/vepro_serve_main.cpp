/**
 * @file
 * vepro-serve: the encode-farm simulator front-end.
 *
 * Resolves model-derived encode costs cache-first through the lab
 * ResultStore (so a second run against the same --store is warm and
 * byte-identical), replays seeded upload traffic through the farm
 * under every scheduling policy, prints the per-policy SLA table, and
 * optionally writes it as a JSON artifact for diffing in CI.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "serve/scenario.hpp"

namespace
{

void
usage()
{
    std::cout
        << "usage: vepro-serve [options]\n"
           "\n"
           "Encode-farm simulator: seeded upload traffic, EDF queue,\n"
           "static vs speed-adaptive preset policies, SLA table.\n"
           "\n"
           "  --quick                CI-sized reference overload scenario\n"
           "  --seed N               traffic RNG seed\n"
           "  --users N              active uploaders\n"
           "  --uploads-per-hour X   mean uploads per user per hour\n"
           "  --duration SEC        simulated window length\n"
           "  --servers N            farm servers\n"
           "  --shards N             EDF queue shards\n"
           "  --admission N          admission limit (queued jobs; 0 = off)\n"
           "  --latency-target SEC   SLA deadline per job\n"
           "  --jobs N               cost-resolution workers (default 1)\n"
           "  --store DIR            result store directory (.vepro-lab)\n"
           "  --json PATH            write the SLA table as JSON\n"
           "  --help                 this text\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vepro;

    bool quick = false;
    int jobs = 1;
    std::string store_dir = ".vepro-lab";
    std::string json_path;
    serve::ServeScenario scenario = serve::referenceScenario(false);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "vepro-serve: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--quick") {
            quick = true;
            scenario = serve::referenceScenario(true);
        } else if (arg == "--seed") {
            scenario.traffic.seed = std::stoull(value());
        } else if (arg == "--users") {
            scenario.traffic.users = std::stoi(value());
        } else if (arg == "--uploads-per-hour") {
            scenario.traffic.uploadsPerUserPerHour = std::stod(value());
        } else if (arg == "--duration") {
            scenario.traffic.durationSec = std::stod(value());
        } else if (arg == "--servers") {
            scenario.farm.servers = std::stoi(value());
        } else if (arg == "--shards") {
            scenario.farm.shards = std::stoi(value());
        } else if (arg == "--admission") {
            scenario.farm.admissionLimit =
                static_cast<size_t>(std::stoull(value()));
        } else if (arg == "--latency-target") {
            scenario.farm.latencyTargetSec = std::stod(value());
        } else if (arg == "--jobs") {
            jobs = std::stoi(value());
        } else if (arg == "--store") {
            store_dir = value();
        } else if (arg == "--json") {
            json_path = value();
        } else {
            std::cerr << "vepro-serve: unknown option " << arg << "\n";
            usage();
            return 2;
        }
    }

    lab::OrchestratorOptions opts;
    opts.jobs = jobs;
    opts.storeDir = store_dir;
    opts.verbose = false;
    lab::Orchestrator orch(opts);

    std::cout << "vepro-serve: " << (quick ? "quick " : "")
              << "scenario — " << scenario.traffic.users << " users, "
              << scenario.farm.servers << " servers, latency target "
              << scenario.farm.latencyTargetSec << " s\n";

    try {
        const serve::ScenarioRun run =
            serve::runScenario(scenario, orch, jobs);
        std::cout << "traffic: " << run.arrivals.size()
                  << " uploads over " << scenario.traffic.durationSec
                  << " s\n";
        run.table.print("SLA outcomes per scheduling policy");
        std::cout << "orchestrator: " << orch.summaryLine() << "\n";
        if (!json_path.empty()) {
            std::ofstream out(json_path);
            if (!out) {
                std::cerr << "vepro-serve: cannot write " << json_path
                          << "\n";
                return 1;
            }
            out << run.table.toJson();
            std::cout << "wrote " << json_path << "\n";
        }
    } catch (const std::exception &err) {
        std::cerr << "vepro-serve: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
