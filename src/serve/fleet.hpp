#ifndef VEPRO_SERVE_FLEET_HPP
#define VEPRO_SERVE_FLEET_HPP

/**
 * @file
 * Fleet optimization: which backend mix encodes cheapest at the SLA?
 *
 * The sweep enumerates server mixes over the named machine profiles —
 * one homogeneous mix per backend plus, when at least two profiles are
 * in play, a round-robin "blend" — and replays the identical arrival
 * sequence through each mix under two static regimes:
 *
 *  - slow-preset: every job at the ladder's slowest (best-quality)
 *    rung — the quality-first operating point;
 *  - fast-preset: every job at the fastest rung — the latency-first
 *    point.
 *
 * Per (mix, regime) row it reports $/1k-encodes (provisioned cost:
 * servers x hourly price x horizon, NOT per-job billing — idle servers
 * still cost money), J/encode, and the deadline-miss rate, then names
 * the cheapest mix meeting the miss budget in each regime. The
 * headline question — after "Where to Encode" (Mathá et al.) — is
 * whether that winner CHANGES between the regimes: fixed-function
 * hardware wins when cores drown at slow presets, while the cheapest
 * general-purpose cores win once fast presets fit the deadline.
 *
 * Everything downstream of cost resolution is pure, so the fleet table
 * is byte-identical across --jobs values and warm-store reruns (the CI
 * fleet-smoke contract).
 */

#include <string>
#include <vector>

#include "lab/orchestrator.hpp"
#include "serve/farm.hpp"
#include "serve/scenario.hpp"

namespace vepro::serve
{

/** Sweep shape. */
struct FleetConfig {
    /** Profiles to mix; empty = the full registry in registry order. */
    std::vector<std::string> backends;
    /** Servers in every mix (homogeneous and blend alike), so rows are
     *  cost-comparable. */
    int serversPerMix = 4;
    /** SLA: max deadline-miss rate a mix may have and still "meet". */
    double missBudget = 0.01;
};

/** One named server mix under test. */
struct FleetMix {
    std::string name;
    std::vector<ServerGroup> groups;
};

/** One (mix, regime) row of the fleet table. */
struct FleetRow {
    std::string mix;
    std::string regime;  ///< "slow-preset" or "fast-preset".
    int preset = 0;      ///< The regime's static rung.
    size_t completed = 0;
    size_t rejected = 0;
    double missRate = 0.0;
    double dollarsPer1k = 0.0;    ///< Provisioned $ per 1000 encodes.
    double joulesPerEncode = 0.0;
    bool meetsSla = false;        ///< missRate <= missBudget.
};

struct FleetSweepResult {
    std::vector<FleetMix> mixes;
    std::vector<FleetRow> rows;   ///< Mix-major, slow regime first.
    core::Table table{std::vector<std::string>{"mix"}};
    /** Cheapest mix meeting the budget per regime; "(none)" when every
     *  mix busts it. */
    std::string cheapestSlow;
    std::string cheapestFast;
    bool winnerChanged = false;
    std::string verdict;          ///< One-line headline for the CLI.
};

/**
 * Run the sweep over @p arrivals. @p cost must already be resolved
 * (resolveOn) for every backend in @p config and both ladder ends.
 * Pure and deterministic.
 */
FleetSweepResult fleetSweep(const std::vector<UploadJob> &arrivals,
                            const FarmConfig &farm,
                            const FleetCostOracle &cost,
                            const FleetConfig &config);

/** A fleet run's inputs + outputs, mirroring ScenarioRun. */
struct FleetRun {
    std::vector<UploadJob> arrivals;
    FleetSweepResult sweep;
};

/**
 * The vepro-serve --fleet driver: resolve costs for every backend
 * through the orchestrator's service (workers = @p jobs), then sweep.
 * Like runScenario, the table is byte-identical for any @p jobs.
 */
FleetRun runFleetScenario(const ServeScenario &scenario,
                          lab::Orchestrator &orch, int jobs,
                          FleetConfig config);

} // namespace vepro::serve

#endif // VEPRO_SERVE_FLEET_HPP
