#ifndef VEPRO_SERVE_TRAFFIC_HPP
#define VEPRO_SERVE_TRAFFIC_HPP

/**
 * @file
 * Synthetic upload traffic for the encode-farm simulator: a seeded,
 * deterministic nonhomogeneous Poisson arrival process with a diurnal
 * rate shape, parameterised by user count and a clip/CRF mix.
 *
 * The generator uses Lewis-Shedler thinning over core::SplitMix64, so
 * the arrival sequence is a pure function of the TrafficConfig — the
 * same seed and parameters reproduce the same uploads byte-for-byte on
 * every platform, which is what makes per-policy SLA tables comparable
 * and the serve smoke test able to diff JSON artifacts across runs.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vepro::serve
{

/** Parameters of the upload arrival process. */
struct TrafficConfig {
    uint64_t seed = 1;  ///< RNG seed; same seed ⇒ same arrivals.

    /** Active uploaders behind the farm. */
    int users = 1000;
    /** Mean uploads per user per hour (Poisson intensity scale). */
    double uploadsPerUserPerHour = 0.1;

    /** Simulated window length in seconds. */
    double durationSec = 1800.0;

    // Diurnal shape: rate(t) = base * (1 + amplitude * sin(2*pi *
    // (t + phaseSec) / periodSec)), clamped at 0. amplitude = 0 is a
    // flat (homogeneous) process. Quick scenarios compress periodSec so
    // a short window still sweeps trough -> peak.
    double diurnalAmplitude = 0.5;
    double diurnalPeriodSec = 86400.0;
    double diurnalPhaseSec = 0.0;

    /** Clip mix (suite names), drawn uniformly per upload. */
    std::vector<std::string> clips = {"desktop", "game1", "house"};
    /** CRF mix, drawn uniformly per upload. */
    std::vector<int> crfs = {32};

    /** Traffic share of one ABR rung scale (weights are relative). */
    struct RungShare {
        int scale = 1;    ///< 1 = full resolution (lab::JobSpec::scale).
        double weight = 1.0;
    };
    /**
     * ABR rung mix: per-upload resolution rung, drawn by weight after
     * the clip/CRF draws. Rung-carrying jobs get clip ids of the form
     * "name@scale" (rungClipId), which the serve cost model parses back
     * into JobSpec::scale. Byte-determinism contract: when every entry
     * has scale == 1 (the default), NO rung draw is consumed from the
     * RNG, so every pre-ladder traffic sequence replays byte-for-byte.
     */
    std::vector<RungShare> rungMix = {{1, 1.0}};
};

/** One upload: what arrived and when. The encoder/preset are NOT part
 *  of the job — the farm's scheduling policy chooses them at dispatch
 *  (per-job encoder+preset selection). */
struct UploadJob {
    size_t id = 0;          ///< Arrival index (0-based, arrival order).
    double arrivalSec = 0;  ///< Arrival time within the window.
    std::string clip;       ///< Suite clip name.
    int crf = 32;
};

/** "name@scale" for scale > 1, plain "name" for full resolution. */
std::string rungClipId(const std::string &clip, int scale);

/** Split a (possibly rung-carrying) clip id back into {name, scale}.
 *  Plain suite names come back with scale = 1; throws
 *  std::invalid_argument on a malformed "@" suffix. */
struct RungId {
    std::string clip;
    int scale = 1;
};
RungId parseRungId(const std::string &id);

/** True when @p mix requests any rung other than full resolution —
 *  the condition under which generateTraffic consumes a rung draw. */
bool rungMixActive(const std::vector<TrafficConfig::RungShare> &mix);

/** Every clip id generateTraffic can emit for @p config: the clip list
 *  crossed with the distinct mix scales (plain names when the mix is
 *  the full-resolution default). This is what cost resolution must
 *  cover before the farm dispatches. */
std::vector<std::string> rungClipIds(const TrafficConfig &config);

/** Instantaneous arrival rate (uploads/sec) at time @p t. */
double arrivalRatePerSec(const TrafficConfig &config, double t);

/**
 * Generate the full arrival sequence for the window, sorted by arrival
 * time. Deterministic: a pure function of @p config.
 */
std::vector<UploadJob> generateTraffic(const TrafficConfig &config);

} // namespace vepro::serve

#endif // VEPRO_SERVE_TRAFFIC_HPP
