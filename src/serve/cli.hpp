#ifndef VEPRO_SERVE_CLI_HPP
#define VEPRO_SERVE_CLI_HPP

/**
 * @file
 * vepro-serve argument parsing, split from main() so tests can drive
 * it. Integer flags go through core::parseIntStrict — "--users 4abc"
 * is a parse error, not a silent 4 (std::stoi would accept it) — and
 * --backend names are validated against the profile registry before
 * any traffic is generated.
 */

#include <string>
#include <vector>

#include "serve/scenario.hpp"

namespace vepro::serve
{

/** Everything main() needs from argv. */
struct ServeCli {
    bool showHelp = false;
    bool quick = false;
    bool fleet = false;           ///< Run the fleet sweep, not the SLA sweep.
    int jobs = 1;
    std::string storeDir = ".vepro-lab";
    std::string jsonPath;         ///< SLA (or fleet) table as JSON.
    std::string markdownPath;     ///< Fleet table + verdict as markdown.
    /** --backends list for --fleet; empty = full registry. */
    std::vector<std::string> fleetBackends;
    ServeScenario scenario;

    /** Non-empty = parse failed; main prints it + usage and exits 2. */
    std::string error;
};

/** The --help text. */
std::string serveUsage();

/** Parse @p args (argv[1..]); never throws — failures land in
 *  ServeCli::error. */
ServeCli parseServeCli(const std::vector<std::string> &args);

} // namespace vepro::serve

#endif // VEPRO_SERVE_CLI_HPP
