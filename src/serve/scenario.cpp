#include "serve/scenario.hpp"

#include <memory>

namespace vepro::serve
{

ServeScenario
referenceScenario(bool quick)
{
    ServeScenario s;

    // Calibrated against the SVT-AV1 model costs on 4x8-core servers
    // (~116 s at preset 2 down to ~13 s at preset 8 per full clip):
    // mean arrival rate ~0.1 uploads/s is ~2.9x the farm's capacity at
    // the slowest preset but only ~0.33x at the fastest, so the static
    // slow baseline drowns while adaptive switching keeps up.
    s.traffic.seed = 7;
    s.traffic.users = 1000;
    s.traffic.uploadsPerUserPerHour = 0.26;
    s.traffic.diurnalAmplitude = 0.6;
    s.traffic.clips = {"desktop", "game1", "house"};
    s.traffic.crfs = {32, 45};
    if (quick) {
        // CI-sized window; the diurnal period is compressed so the
        // short window still sweeps base -> peak -> base.
        s.traffic.durationSec = 1800.0;
        s.traffic.diurnalPeriodSec = 3600.0;
    } else {
        s.traffic.durationSec = 7200.0;
        s.traffic.diurnalPeriodSec = 86400.0;
        s.traffic.diurnalPhaseSec = 0.0;
    }

    s.farm.servers = 4;
    s.farm.shards = 4;
    s.farm.admissionLimit = 0;
    // Generous enough that the slowest preset meets it on an idle farm
    // (adaptive only sheds quality when the queue demands it).
    s.farm.latencyTargetSec = 180.0;

    // Defaults: SVT-AV1 ladder {2,4,6,8}, divisor 16 / 2 frames specs.
    s.cost = CostModelConfig{};
    return s;
}

ScenarioRun
runScenario(const ServeScenario &scenario, lab::Orchestrator &orch,
            int jobs)
{
    lab::ServiceOptions sopts;
    sopts.shards = scenario.farm.shards;
    sopts.workers = jobs >= 1 ? jobs : 1;
    orch.startService(sopts);
    CostModel cost(orch, scenario.cost);
    cost.resolve(rungClipIds(scenario.traffic), scenario.traffic.crfs);
    orch.stopService();

    ScenarioRun run;
    run.arrivals = generateTraffic(scenario.traffic);

    std::vector<std::unique_ptr<Policy>> policies;
    for (int preset : scenario.cost.presets) {
        policies.push_back(std::make_unique<StaticPolicy>(preset));
    }
    policies.push_back(std::make_unique<AdaptivePolicy>());
    for (const auto &policy : policies) {
        run.reports.push_back(
            simulateFarm(run.arrivals, scenario.farm, *policy, cost).sla);
    }
    run.table = slaTable(run.reports);
    return run;
}

} // namespace vepro::serve
