#ifndef VEPRO_SERVE_COSTMODEL_HPP
#define VEPRO_SERVE_COSTMODEL_HPP

/**
 * @file
 * Model-derived encode costs for the farm simulator, cache-first
 * through the lab ResultStore — now per machine profile (backend
 * registry, src/backend).
 *
 * Every (backend, clip, crf, preset) combo in a scenario resolves to
 * one lab::JobSpec executed by the Orchestrator's persistent service
 * (async submit + await): the instrumented encoder model produces the
 * dynamic instruction count and the core model — built from the
 * backend's CoreConfig — the achieved IPC, both persisted in the
 * store. A warm store makes policy and fleet sweeps replay without
 * re-encoding anything; specs on the default profile keep the exact
 * pre-backend store key, so old entries stay cache hits.
 *
 * Underneath the result store sits the orchestrator's trace cache
 * (lab::TraceCache), keyed by the encode-side spec fields only — the
 * backend is deliberately excluded. A fleet resolveOn() over N
 * backends therefore runs the instrumented encoder exactly once per
 * (clip, crf, preset): the first backend's spec captures the trace,
 * and the other N-1 replay the same file through their own core
 * configs at simulation speed (tests/test_serve.cpp pins the counts).
 *
 * Single-core service seconds on a core-model backend are
 *
 *     instructions * divisor^2 * (referenceFrames / frames)
 *     -----------------------------------------------------
 *                      ipc * ghz * 1e9
 *
 * i.e. the measured downscaled, frame-limited encode scaled back to
 * the full-size clip, retired at the simulated core's IPC — the
 * paper's framing that encode-time differences are instruction-count
 * differences, not IPC differences. Farm servers are multi-core, so
 * the single-core time is divided by a per-preset parallel speedup
 * obtained from the encoder's own task graph run through the
 * sched::schedule list scheduler at the backend's core count.
 *
 * Fixed-function backends (profile Kind::Fixed, e.g. "hw-enc") bypass
 * the core model entirely: service time is priced analytically from
 * the clip's full-scale 16x16 block count over referenceFrames
 * (setup + blocks * secondsPerBlock), independent of preset and CRF.
 *
 * Energy per encode (energyJoulesOn), evaluated in exactly this
 * order so a warm rerun reproduces the same bytes:
 *
 *     dynamic = (instructions*instructionNj
 *                + (l1dMisses + l1iMisses)*l1MissNj
 *                + l2Misses*l2MissNj + llcMisses*llcMissNj
 *                + mispredicts*mispredictNj) * scale * 1e-9
 *     joules  = dynamic + staticWatts * serviceSeconds
 *
 * with scale the same full-clip scale-up as above and serviceSeconds
 * the (parallel) wall time the server actually burns static power
 * for. Fixed-function backends use backend::fixedEnergyJoules.
 */

#include <string>
#include <unordered_map>
#include <vector>

#include "lab/orchestrator.hpp"
#include "serve/policy.hpp"

namespace vepro::serve
{

/** How specs are formed and costs scaled. */
struct CostModelConfig {
    std::string encoder = "SVT-AV1";
    /** Preset ladder, slowest (best quality) first. */
    std::vector<int> presets = {2, 4, 6, 8};

    // Run-scale of the measured specs (small: costs resolve fast).
    int divisor = 16;
    int frames = 2;
    uint64_t maxTraceOps = 150'000;

    /** Full-length clip frames the measurement is scaled up to
     *  (the suite's 5 s @ 30 fps). */
    int referenceFrames = 150;

    /** Primary machine profile ("" = backend::kDefaultProfile). */
    std::string backend;
    /** Explicit clock override (--ghz). 0 = each backend's own
     *  clockGhz; the default profile's 3.0 GHz is the historical
     *  hard-coded farm clock, so defaults reproduce old numbers. */
    double nominalGhz = 0.0;
    /** Explicit per-server core-count override (--server-cores).
     *  0 = each backend's own cores (default profile: 8). */
    int serverCores = 0;
};

/**
 * FleetCostOracle backed by the encoder models (see file docs).
 * resolve()/resolveOn() must run before the query methods; unresolved
 * combos throw.
 */
class CostModel final : public FleetCostOracle
{
  public:
    /** @param orch Orchestrator whose service mode is ALREADY started
     *  (resolve() submits into it). Not owned. */
    CostModel(lab::Orchestrator &orch, CostModelConfig config);

    /**
     * Resolve every (clip, crf, ladder-preset) combo on the primary
     * backend: submit the specs asynchronously, await them, memoise
     * service seconds and energy. Also runs the per-preset task-graph
     * speedup probes. Idempotent per combo.
     */
    void resolve(const std::vector<std::string> &clips,
                 const std::vector<int> &crfs);

    /** resolve() across several named profiles (fleet sweeps).
     *  Fixed-function backends are priced analytically, no submits. */
    void resolveOn(const std::vector<std::string> &backends,
                   const std::vector<std::string> &clips,
                   const std::vector<int> &crfs);

    double serviceSeconds(const std::string &clip, int crf,
                          int preset) const override;
    const std::vector<int> &presetLadder() const override;

    double serviceSecondsOn(const std::string &backend,
                            const std::string &clip, int crf,
                            int preset) const override;
    double energyJoulesOn(const std::string &backend,
                          const std::string &clip, int crf,
                          int preset) const override;

    /** energyJoulesOn for the primary backend. */
    double energyJoules(const std::string &clip, int crf,
                        int preset) const;

    /** Parallel speedup used for @p preset on the primary backend
     *  (post-resolve; for tests and the verbose scenario print). */
    double speedup(int preset) const;

    /** The JobSpec a combo maps to on the primary backend (exposed
     *  for tests). */
    lab::JobSpec specFor(const std::string &clip, int crf,
                         int preset) const;

    /** The resolved primary profile name (never empty). */
    const std::string &primaryBackend() const { return primary_; }

  private:
    struct Cost {
        double seconds = 0.0;
        double joules = 0.0;
    };

    static std::string comboKey(const std::string &backend,
                                const std::string &clip, int crf,
                                int preset);

    /** Effective clock for a profile: explicit override wins. */
    double effectiveGhz(const std::string &backend) const;
    /** Effective cores for a profile: explicit override wins. */
    int effectiveCores(const std::string &backend) const;

    const Cost &costFor(const std::string &backend,
                        const std::string &clip, int crf,
                        int preset) const;

    lab::Orchestrator &orch_;
    CostModelConfig config_;
    std::string primary_;
    std::unordered_map<std::string, Cost> costs_;
    /** Keyed "preset|cores": the task graph depends on the preset and
     *  the schedule on the core count, never on the core geometry. */
    std::unordered_map<std::string, double> speedups_;
};

} // namespace vepro::serve

#endif // VEPRO_SERVE_COSTMODEL_HPP
