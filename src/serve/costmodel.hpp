#ifndef VEPRO_SERVE_COSTMODEL_HPP
#define VEPRO_SERVE_COSTMODEL_HPP

/**
 * @file
 * Model-derived encode costs for the farm simulator, cache-first
 * through the lab ResultStore.
 *
 * Every (clip, crf, preset) combo in a scenario resolves to one
 * lab::JobSpec executed by the Orchestrator's persistent service
 * (async submit + await): the instrumented encoder model produces the
 * dynamic instruction count and the core model the achieved IPC, both
 * persisted in the store — a warm store makes policy sweeps replay
 * without re-encoding anything.
 *
 * Single-core service seconds are then
 *
 *     instructions * divisor^2 * (referenceFrames / frames)
 *     -----------------------------------------------------
 *                    ipc * nominalGhz * 1e9
 *
 * i.e. the measured downscaled, frame-limited encode scaled back to
 * the full-size clip, retired at the simulated core's IPC — the
 * paper's framing that encode-time differences are instruction-count
 * differences, not IPC differences. Farm servers are multi-core, so
 * the single-core time is divided by a per-preset parallel speedup
 * obtained from the encoder's own task graph run through the
 * sched::schedule list scheduler at serverCores — slower presets have
 * deeper, better-balanced graphs, so speedups differ per rung.
 */

#include <string>
#include <unordered_map>
#include <vector>

#include "lab/orchestrator.hpp"
#include "serve/policy.hpp"

namespace vepro::serve
{

/** How specs are formed and costs scaled. */
struct CostModelConfig {
    std::string encoder = "SVT-AV1";
    /** Preset ladder, slowest (best quality) first. */
    std::vector<int> presets = {2, 4, 6, 8};

    // Run-scale of the measured specs (small: costs resolve fast).
    int divisor = 16;
    int frames = 2;
    uint64_t maxTraceOps = 150'000;

    /** Full-length clip frames the measurement is scaled up to
     *  (the suite's 5 s @ 30 fps). */
    int referenceFrames = 150;
    double nominalGhz = 3.0;  ///< Farm server clock.
    int serverCores = 8;      ///< Cores per farm server.
};

/**
 * CostOracle backed by the encoder models (see file docs). resolve()
 * must run before serviceSeconds(); unresolved combos throw.
 */
class CostModel final : public CostOracle
{
  public:
    /** @param orch Orchestrator whose service mode is ALREADY started
     *  (resolve() submits into it). Not owned. */
    CostModel(lab::Orchestrator &orch, CostModelConfig config);

    /**
     * Resolve every (clip, crf, ladder-preset) combo: submit the specs
     * asynchronously, await them, memoise service seconds. Also runs
     * the per-preset task-graph speedup probes. Idempotent per combo.
     */
    void resolve(const std::vector<std::string> &clips,
                 const std::vector<int> &crfs);

    double serviceSeconds(const std::string &clip, int crf,
                          int preset) const override;
    const std::vector<int> &presetLadder() const override;

    /** Parallel speedup used for @p preset (post-resolve; for tests
     *  and the verbose scenario print). */
    double speedup(int preset) const;

    /** The JobSpec a combo maps to (exposed for tests). */
    lab::JobSpec specFor(const std::string &clip, int crf,
                         int preset) const;

  private:
    static std::string comboKey(const std::string &clip, int crf,
                                int preset);

    lab::Orchestrator &orch_;
    CostModelConfig config_;
    std::unordered_map<std::string, double> seconds_;
    std::unordered_map<int, double> speedups_;
};

} // namespace vepro::serve

#endif // VEPRO_SERVE_COSTMODEL_HPP
