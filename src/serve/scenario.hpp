#ifndef VEPRO_SERVE_SCENARIO_HPP
#define VEPRO_SERVE_SCENARIO_HPP

/**
 * @file
 * Ready-made serve scenarios and the policy-sweep driver behind the
 * vepro-serve binary: resolve costs once (cache-first), replay the
 * same seeded traffic under every policy, and render the per-policy
 * SLA table.
 *
 * The committed reference scenario (referenceScenario(quick=true),
 * vepro-serve --quick) is a deliberate overload: peak arrival rate
 * exceeds the farm's capacity at the slowest preset but not at the
 * fastest, so the static slow-preset baseline drowns in deadline
 * misses while speed-adaptive switching sheds quality to stay inside
 * the latency target — the acceptance pin of ISSUE 7 and the CI
 * serve-smoke leg.
 */

#include <string>
#include <vector>

#include "lab/orchestrator.hpp"
#include "serve/costmodel.hpp"
#include "serve/farm.hpp"
#include "serve/traffic.hpp"

namespace vepro::serve
{

/** Everything one vepro-serve run needs. */
struct ServeScenario {
    TrafficConfig traffic;
    FarmConfig farm;
    CostModelConfig cost;
};

/** The committed reference overload scenario; @p quick shrinks the
 *  window for CI while keeping the overload shape. */
ServeScenario referenceScenario(bool quick);

/** Outcome of sweeping every policy over one scenario. */
struct ScenarioRun {
    std::vector<SlaReport> reports;  ///< Static ladder order, then adaptive.
    std::vector<UploadJob> arrivals;
    /** slaTable(reports); placeholder header until assigned. */
    core::Table table{std::vector<std::string>{"policy"}};
};

/**
 * Run @p scenario: start the orchestrator's service (workers = @p
 * jobs, shards/admission from the farm config), resolve the cost
 * combos through it, stop the service, then simulate one StaticPolicy
 * per ladder rung plus AdaptivePolicy over the identical arrival
 * sequence. The policy loop is pure, so the resulting table is
 * byte-identical for any @p jobs.
 */
ScenarioRun runScenario(const ServeScenario &scenario,
                        lab::Orchestrator &orch, int jobs);

} // namespace vepro::serve

#endif // VEPRO_SERVE_SCENARIO_HPP
