#include "serve/farm.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace vepro::serve
{

namespace
{

/** One waiting job: EDF order is (deadline, arrival seq). */
struct Waiting {
    double deadline = 0.0;
    size_t seq = 0;     ///< Arrival index: deterministic tie-break.
    size_t job = 0;     ///< Index into the arrivals vector.
};

struct WaitingLater {
    bool
    operator()(const Waiting &a, const Waiting &b) const
    {
        if (a.deadline != b.deadline) {
            return a.deadline > b.deadline;
        }
        return a.seq > b.seq;
    }
};

using ShardQueue =
    std::priority_queue<Waiting, std::vector<Waiting>, WaitingLater>;

/** Earliest-deadline job across every shard (nullopt-free: caller
 *  checks emptiness via the queued counter). */
size_t
popEarliest(std::vector<ShardQueue> &shards)
{
    int best = -1;
    for (size_t i = 0; i < shards.size(); ++i) {
        if (shards[i].empty()) {
            continue;
        }
        if (best < 0 ||
            WaitingLater{}(shards[static_cast<size_t>(best)].top(),
                           shards[i].top())) {
            best = static_cast<int>(i);
        }
    }
    const size_t job = shards[static_cast<size_t>(best)].top().job;
    shards[static_cast<size_t>(best)].pop();
    return job;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty()) {
        return 0.0;
    }
    const double pos = q * static_cast<double>(sorted.size());
    size_t idx = static_cast<size_t>(std::ceil(pos));
    idx = idx > 0 ? idx - 1 : 0;
    idx = std::min(idx, sorted.size() - 1);
    return sorted[idx];
}

} // namespace

FarmResult
simulateFarm(const std::vector<UploadJob> &arrivals,
             const FarmConfig &config, const Policy &policy,
             const CostOracle &cost)
{
    if (config.servers < 1 || config.shards < 1) {
        throw std::invalid_argument("serve: farm needs >= 1 server/shard");
    }
    FarmResult out;
    out.sla.policy = policy.name();
    out.sla.offered = arrivals.size();
    out.outcomes.reserve(arrivals.size());

    // Server pool: min-heap of free times.
    std::priority_queue<double, std::vector<double>, std::greater<double>>
        servers;
    for (int i = 0; i < config.servers; ++i) {
        servers.push(0.0);
    }
    std::vector<ShardQueue> shards(static_cast<size_t>(config.shards));
    size_t queued = 0;

    std::vector<double> queue_waits;
    double service_sum = 0.0;
    double horizon = 0.0;
    int prev_preset = -1;
    size_t next_arrival = 0;

    const auto admit = [&](size_t job_index) {
        const UploadJob &job = arrivals[job_index];
        if (config.admissionLimit != 0 && queued >= config.admissionLimit) {
            JobOutcome reject;
            reject.id = job.id;
            reject.arrivalSec = job.arrivalSec;
            reject.rejected = true;
            out.outcomes.push_back(reject);
            ++out.sla.rejected;
            return;
        }
        Waiting w;
        w.deadline = job.arrivalSec + config.latencyTargetSec;
        w.seq = job_index;
        w.job = job_index;
        shards[job_index % shards.size()].push(w);
        ++queued;
    };

    while (next_arrival < arrivals.size() || queued > 0) {
        if (queued == 0) {
            admit(next_arrival++);
            continue;
        }
        // The next dispatch happens when the earliest server frees (or
        // immediately, for jobs that arrived while it was idle). Admit
        // everything that arrives up to that instant first, so EDF and
        // admission control see the true queue contents.
        const double t_free = servers.top();
        if (next_arrival < arrivals.size() &&
            arrivals[next_arrival].arrivalSec <= t_free) {
            admit(next_arrival++);
            continue;
        }

        const size_t job_index = popEarliest(shards);
        --queued;
        const UploadJob &job = arrivals[job_index];
        const double start = std::max(t_free, job.arrivalSec);
        const double deadline = job.arrivalSec + config.latencyTargetSec;
        const int preset = policy.choosePreset(job, start, deadline, cost);
        const double service =
            cost.serviceSeconds(job.clip, job.crf, preset);
        const double end = start + service;
        servers.pop();
        servers.push(end);

        JobOutcome done;
        done.id = job.id;
        done.arrivalSec = job.arrivalSec;
        done.preset = preset;
        done.startSec = start;
        done.endSec = end;
        done.missedDeadline = end > deadline;
        out.outcomes.push_back(done);

        ++out.sla.completed;
        if (done.missedDeadline) {
            ++out.sla.deadlineMisses;
        }
        if (prev_preset >= 0 && preset != prev_preset) {
            ++out.sla.presetSwitches;
        }
        prev_preset = preset;
        queue_waits.push_back(start - job.arrivalSec);
        service_sum += service;
        horizon = std::max(horizon, end);
    }

    std::sort(queue_waits.begin(), queue_waits.end());
    out.sla.p50QueueSec = percentile(queue_waits, 0.50);
    out.sla.p99QueueSec = percentile(queue_waits, 0.99);
    if (out.sla.completed > 0) {
        out.sla.deadlineMissRate =
            static_cast<double>(out.sla.deadlineMisses) /
            static_cast<double>(out.sla.completed);
        out.sla.meanServiceSec =
            service_sum / static_cast<double>(out.sla.completed);
    }
    if (!arrivals.empty()) {
        horizon = std::max(horizon, arrivals.back().arrivalSec);
    }
    if (horizon > 0.0) {
        out.sla.throughputPerMin =
            static_cast<double>(out.sla.completed) / (horizon / 60.0);
    }
    out.horizonSec = horizon;
    return out;
}

namespace
{

/** The per-backend lens a heterogeneous dispatch consults the policy
 *  through: base-class queries answer for ONE profile. */
class BackendView final : public CostOracle
{
  public:
    BackendView(const FleetCostOracle &fleet, const std::string &backend)
        : fleet_(fleet), backend_(backend)
    {
    }

    double
    serviceSeconds(const std::string &clip, int crf,
                   int preset) const override
    {
        return fleet_.serviceSecondsOn(backend_, clip, crf, preset);
    }

    const std::vector<int> &
    presetLadder() const override
    {
        return fleet_.presetLadder();
    }

  private:
    const FleetCostOracle &fleet_;
    const std::string &backend_;
};

} // namespace

FarmResult
simulateFarm(const std::vector<UploadJob> &arrivals,
             const FarmConfig &config, const Policy &policy,
             const FleetCostOracle &cost,
             const std::vector<ServerGroup> &pool)
{
    // Flatten the groups into one backend string per server; group
    // order fixes server indices, and indices break free-time ties.
    std::vector<std::string> server_backend;
    for (const ServerGroup &group : pool) {
        for (int i = 0; i < group.servers; ++i) {
            server_backend.push_back(group.backend);
        }
    }
    if (server_backend.empty() || config.shards < 1) {
        throw std::invalid_argument("serve: farm needs >= 1 server/shard");
    }
    std::vector<BackendView> views;
    views.reserve(server_backend.size());
    for (const std::string &name : server_backend) {
        views.emplace_back(cost, name);
    }

    FarmResult out;
    out.sla.policy = policy.name();
    out.sla.offered = arrivals.size();
    out.outcomes.reserve(arrivals.size());

    // Server pool: min-heap of (free time, server index).
    using Slot = std::pair<double, size_t>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>>
        servers;
    for (size_t i = 0; i < server_backend.size(); ++i) {
        servers.emplace(0.0, i);
    }
    std::vector<ShardQueue> shards(static_cast<size_t>(config.shards));
    size_t queued = 0;

    std::vector<double> queue_waits;
    double service_sum = 0.0;
    double horizon = 0.0;
    int prev_preset = -1;
    size_t next_arrival = 0;

    const auto admit = [&](size_t job_index) {
        const UploadJob &job = arrivals[job_index];
        if (config.admissionLimit != 0 && queued >= config.admissionLimit) {
            JobOutcome reject;
            reject.id = job.id;
            reject.arrivalSec = job.arrivalSec;
            reject.rejected = true;
            out.outcomes.push_back(reject);
            ++out.sla.rejected;
            return;
        }
        Waiting w;
        w.deadline = job.arrivalSec + config.latencyTargetSec;
        w.seq = job_index;
        w.job = job_index;
        shards[job_index % shards.size()].push(w);
        ++queued;
    };

    while (next_arrival < arrivals.size() || queued > 0) {
        if (queued == 0) {
            admit(next_arrival++);
            continue;
        }
        const auto [t_free, server] = servers.top();
        if (next_arrival < arrivals.size() &&
            arrivals[next_arrival].arrivalSec <= t_free) {
            admit(next_arrival++);
            continue;
        }

        const size_t job_index = popEarliest(shards);
        --queued;
        const UploadJob &job = arrivals[job_index];
        const std::string &backend = server_backend[server];
        const double start = std::max(t_free, job.arrivalSec);
        const double deadline = job.arrivalSec + config.latencyTargetSec;
        const int preset =
            policy.choosePreset(job, start, deadline, views[server]);
        const double service =
            cost.serviceSecondsOn(backend, job.clip, job.crf, preset);
        const double end = start + service;
        servers.pop();
        servers.emplace(end, server);

        JobOutcome done;
        done.id = job.id;
        done.arrivalSec = job.arrivalSec;
        done.preset = preset;
        done.startSec = start;
        done.endSec = end;
        done.missedDeadline = end > deadline;
        done.backend = backend;
        out.outcomes.push_back(done);

        ++out.sla.completed;
        if (done.missedDeadline) {
            ++out.sla.deadlineMisses;
        }
        if (prev_preset >= 0 && preset != prev_preset) {
            ++out.sla.presetSwitches;
        }
        prev_preset = preset;
        queue_waits.push_back(start - job.arrivalSec);
        service_sum += service;
        out.energyJoules +=
            cost.energyJoulesOn(backend, job.clip, job.crf, preset);
        horizon = std::max(horizon, end);
    }

    std::sort(queue_waits.begin(), queue_waits.end());
    out.sla.p50QueueSec = percentile(queue_waits, 0.50);
    out.sla.p99QueueSec = percentile(queue_waits, 0.99);
    if (out.sla.completed > 0) {
        out.sla.deadlineMissRate =
            static_cast<double>(out.sla.deadlineMisses) /
            static_cast<double>(out.sla.completed);
        out.sla.meanServiceSec =
            service_sum / static_cast<double>(out.sla.completed);
    }
    if (!arrivals.empty()) {
        horizon = std::max(horizon, arrivals.back().arrivalSec);
    }
    if (horizon > 0.0) {
        out.sla.throughputPerMin =
            static_cast<double>(out.sla.completed) / (horizon / 60.0);
    }
    out.horizonSec = horizon;
    return out;
}

core::Table
slaTable(const std::vector<SlaReport> &reports)
{
    core::Table table({"policy", "offered", "completed", "rejected",
                       "p50 queue (s)", "p99 queue (s)", "throughput/min",
                       "miss rate", "preset switches", "mean service (s)"});
    for (const SlaReport &r : reports) {
        table.addRow({r.policy, std::to_string(r.offered),
                      std::to_string(r.completed),
                      std::to_string(r.rejected), core::fmt(r.p50QueueSec),
                      core::fmt(r.p99QueueSec),
                      core::fmt(r.throughputPerMin),
                      core::fmt(r.deadlineMissRate, 4),
                      std::to_string(r.presetSwitches),
                      core::fmt(r.meanServiceSec)});
    }
    return table;
}

} // namespace vepro::serve
