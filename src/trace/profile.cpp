#include "trace/profile.hpp"

#include <algorithm>
#include <cstdio>

namespace vepro::trace
{

std::vector<SiteProfile>
profileReport(const std::unordered_map<uint64_t, uint64_t> &site_ops,
              double min_share)
{
    uint64_t total = 0;
    for (const auto &[pc, ops] : site_ops) {
        total += ops;
    }
    std::vector<SiteProfile> rows;
    if (total == 0) {
        return rows;
    }
    for (const auto &[pc, ops] : site_ops) {
        double share = 100.0 * static_cast<double>(ops) /
                       static_cast<double>(total);
        if (share < min_share) {
            continue;
        }
        rows.push_back({siteName(pc), ops, share});
    }
    std::sort(rows.begin(), rows.end(),
              [](const SiteProfile &a, const SiteProfile &b) {
                  return a.ops != b.ops ? a.ops > b.ops : a.name < b.name;
              });
    return rows;
}

std::vector<SiteProfile>
profileReport(const Probe &probe, double min_share)
{
    return profileReport(probe.siteOps(), min_share);
}

std::vector<SiteProfile>
profileReport(const SiteProfileSink &sink, double min_share)
{
    return profileReport(sink.siteOps(), min_share);
}

std::string
formatProfile(const std::vector<SiteProfile> &profile)
{
    std::string out =
        "  %   cumulative      self\n time   instructions  instructions  "
        "name\n";
    double cumulative = 0.0;
    for (const SiteProfile &row : profile) {
        cumulative += row.percent;
        char buf[160];
        std::snprintf(buf, sizeof buf, "%5.1f  %6.1f%%       %12llu  %s\n",
                      row.percent, cumulative,
                      static_cast<unsigned long long>(row.ops),
                      row.name.c_str());
        out += buf;
    }
    return out;
}

} // namespace vepro::trace
