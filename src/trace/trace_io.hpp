#ifndef VEPRO_TRACE_TRACE_IO_HPP
#define VEPRO_TRACE_TRACE_IO_HPP

/**
 * @file
 * TraceFile: the streaming, block-structured on-disk trace format, so an
 * expensive instrumented encoder run can be captured once and replayed
 * through many predictor/core configurations (the CBP capture-once/
 * replay-many workflow) at O(1) memory on both sides.
 *
 * Layout (all integers little-endian):
 *
 *     "VETF"  magic                                   4 bytes
 *     u32     version (= kTraceFileVersion)           4 bytes
 *     repeat  per block:
 *       u32   payloadBytes  (> 0)
 *       []    payload       (see below)
 *     u32     0             end-of-blocks marker
 *     u32     metaBytes
 *     []      metadata      (opaque to this layer; the lab stores its
 *                            encode-summary JSON here)
 *     u64     opCount       footer
 *     u64     branchCount
 *     u64     blockCount
 *     u32     metaBytes     (again, so inspect() can seek from the tail)
 *     u64     checksum      FNV-1a 64 over every block payload byte,
 *                           then the metadata bytes
 *
 * Block payload — one TraceBlock, varint + delta + dictionary encoded.
 * All dictionaries and delta chains reset at each block boundary so
 * blocks decode independently:
 *
 *     varint  opCount, varint eventCount
 *     per op:
 *       varint  descCode:
 *         0  -> literal descriptor follows, appended to the block's
 *               descriptor table:
 *                 u8      flags: bits 0-3 OpClass, bit 4 taken,
 *                         bit 5 foreign, bit 6 hasAddr (addr != 0),
 *                         bit 7 hasDeps
 *                 [u8 u8] dep1, dep2  when hasDeps
 *         k  -> reuse descriptor table[k-1] (op streams cycle through
 *               a handful of shapes per block, so this is 1 byte)
 *       svarint pc - prevPc            (zigzag; block-wide chain)
 *       svarint addr - prevAddr[cls]   when hasAddr (zigzag; one chain
 *                                       PER OP CLASS, so interleaved
 *                                       load/store streams keep their
 *                                       per-stream stride locality)
 *     per event (program-order, positions nondecreasing):
 *       varint  pos - prevPos
 *       u8      bit 0 kind (0 branch, 1 kernel), bit 1 taken
 *       varint  valCode:
 *         0  -> literal varint value follows, appended to the block's
 *               value table
 *         k  -> reuse value table[k-1]  (branch PCs and kernel sites
 *               are drawn from a small recurring set but look like
 *               random u64s — delta coding is useless for them)
 *
 * Synthetic PCs walk small per-site windows and data addresses stride
 * through per-class buffers, so a dense encode trace lands around
 * 4-5 bytes/op versus 21 for the old fixed-width records.
 *
 * Every ingestion failure throws std::runtime_error with a "trace:"
 * prefix naming the path and byte offset. Files written by the retired
 * fixed-width writers ("VEPB" branch / "VEPO" op traces) are rejected
 * with a versioned message telling the caller to recapture.
 */

#include <cstdint>
#include <cstdio>
#include <string>

#include "trace/sink.hpp"

namespace vepro::trace
{

/** On-disk format version this build reads and writes. */
inline constexpr uint32_t kTraceFileVersion = 1;

/** Footer-level summary of an on-disk trace. */
struct TraceFileInfo {
    uint64_t opCount = 0;      ///< Dynamic ops across all blocks.
    uint64_t branchCount = 0;  ///< Branch events across all blocks.
    uint64_t blockCount = 0;
    uint64_t fileBytes = 0;    ///< Total file size on disk.
    std::string metadata;      ///< Opaque caller bytes (lab: JSON).

    /** Compression figure of merit; 0 when the trace has no ops. */
    double
    bytesPerOp() const
    {
        return opCount > 0 ? static_cast<double>(fileBytes) /
                                 static_cast<double>(opCount)
                           : 0.0;
    }
};

/**
 * TraceSink that captures a live stream into a TraceFile.
 *
 * Whole-block deliveries (onBlock) are encoded with their boundaries
 * preserved; record-at-a-time deliveries are staged into standard
 * 4096-op blocks (or 4096 events, for branch-only streams) so staging
 * stays O(1) regardless of trace length. flush() seals the file —
 * end marker, metadata, footer — and is idempotent; a sink destroyed
 * unsealed leaves a torn file behind (no footer), which readers reject,
 * so cache writers should capture to a temp path and rename on success.
 */
class FileSink final : public TraceSink
{
  public:
    /** Opens (truncates) @p path and writes the header.
     *  @throws std::runtime_error when the file cannot be opened. */
    explicit FileSink(std::string path);
    ~FileSink() override;

    FileSink(const FileSink &) = delete;
    FileSink &operator=(const FileSink &) = delete;

    void onOp(const TraceOp &op) override;
    void onOps(const TraceOp *ops, size_t n) override;
    void onBranch(const BranchRecord &branch) override;
    void onKernel(uint64_t site) override;
    void onBlock(TraceBlock &&block) override;

    /** Seals the file (equivalent to seal()) — unless deferSeal(true),
     *  in which case only the staged block is written out. */
    void flush() override;

    /**
     * Write the end marker, metadata, and footer, and close the file.
     * Idempotent. Split from flush() because producers that flush the
     * sink themselves (EncoderModel::encode) finish before the caller
     * knows the metadata; with deferSeal(true) those flushes just drain
     * the stage and the owner seals explicitly afterwards.
     */
    void seal();
    /** When on, flush() stops sealing; call seal() yourself. */
    void deferSeal(bool on) { defer_seal_ = on; }

    /** Bytes stored after the blocks (lab: encode-summary JSON). Must
     *  be called before seal(). */
    void setMetadata(std::string bytes);

    const std::string &path() const { return path_; }
    uint64_t opCount() const { return op_count_; }
    uint64_t branchCount() const { return branch_count_; }
    /** Total bytes written so far (the final file size after flush). */
    uint64_t bytesWritten() const { return bytes_written_; }

  private:
    void writeBlock(const TraceBlock &block);
    void flushStage();
    void write(const void *p, size_t n);

    std::string path_;
    std::FILE *file_ = nullptr;
    TraceBlock stage_;
    std::string payload_;   ///< Encode buffer, reused per block.
    std::string metadata_;
    uint64_t op_count_ = 0;
    uint64_t branch_count_ = 0;
    uint64_t block_count_ = 0;
    uint64_t bytes_written_ = 0;
    uint64_t checksum_ = 0;
    bool sealed_ = false;
    bool defer_seal_ = false;
};

/**
 * Replays a TraceFile into any TraceSink at O(1) memory: blocks are
 * decoded one at a time and delivered through TraceSink::onBlock, so a
 * record-at-a-time sink sees exactly the stream the capturing probe
 * emitted, and a block-granular consumer (PipelineMux) can take
 * ownership of each span without copying.
 */
class FileSource
{
  public:
    explicit FileSource(std::string path) : path_(std::move(path)) {}

    /**
     * Stream every block into @p sink in program order. Does NOT call
     * sink.flush() — the caller owns end-of-stream. Footer counts and
     * the payload checksum are verified; any mismatch, truncation, or
     * malformed block throws a "trace:"-prefixed std::runtime_error
     * naming the path and byte offset.
     */
    TraceFileInfo replay(TraceSink &sink) const;

    /**
     * Header + footer + metadata only (no block decode, no checksum
     * verification — that requires the full pass replay() does).
     */
    static TraceFileInfo inspect(const std::string &path);

    const std::string &path() const { return path_; }

    /**
     * Harness-only (vepro-check --inject=tracefile-delta): decode every
     * op's pc delta off by one, modelling a codec regression. Replayed
     * PCs drift from the captured ones, which the capture-vs-live
     * differential must catch.
     */
    void injectDeltaFault(bool on) { delta_fault_ = on; }

  private:
    std::string path_;
    bool delta_fault_ = false;
};

} // namespace vepro::trace

#endif // VEPRO_TRACE_TRACE_IO_HPP
