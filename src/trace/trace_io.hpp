#ifndef VEPRO_TRACE_TRACE_IO_HPP
#define VEPRO_TRACE_TRACE_IO_HPP

/**
 * @file
 * Binary (de)serialisation for branch traces and op traces, so expensive
 * instrumented encoder runs can be captured once and replayed through many
 * predictor/core configurations (the CBP workflow).
 */

#include <string>
#include <vector>

#include "trace/probe.hpp"

namespace vepro::trace
{

/**
 * Write a branch trace to @p path.
 * Format: "VEPB" magic, u32 version, u64 count, then (u64 pc, u8 taken)
 * records. @throws std::runtime_error on I/O failure.
 */
void writeBranchTrace(const std::string &path,
                      const std::vector<BranchRecord> &trace);

/** Read a branch trace written by writeBranchTrace(). */
std::vector<BranchRecord> readBranchTrace(const std::string &path);

/**
 * Write a full-op trace to @p path.
 * Format: "VEPO" magic, u32 version, u64 count, then packed TraceOp
 * records. @throws std::runtime_error on I/O failure.
 */
void writeOpTrace(const std::string &path, const std::vector<TraceOp> &trace);

/** Read an op trace written by writeOpTrace(). */
std::vector<TraceOp> readOpTrace(const std::string &path);

} // namespace vepro::trace

#endif // VEPRO_TRACE_TRACE_IO_HPP
