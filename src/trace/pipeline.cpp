#include "trace/pipeline.hpp"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace vepro::trace
{

int
resolveJobs(int jobs)
{
    if (jobs >= 1) {
        return jobs;
    }
    unsigned detected = std::thread::hardware_concurrency();
    return detected > 0 ? static_cast<int>(detected) : 1;
}

namespace
{

/** A pooled block plus the fan-out refcount: the last sink to finish
 *  consuming the block returns it to the free list. */
struct BlockNode {
    TraceBlock block;
    std::atomic<uint32_t> remaining{0};
};

/**
 * Bounded single-producer/single-consumer ring of BlockNode pointers.
 * The producer thread is the trace emitter, the consumer one sink
 * worker; nullptr is the end-of-stream sentinel. Capacity is a power
 * of two; a full queue is the backpressure point (callers spin).
 */
class SpscQueue
{
  public:
    explicit SpscQueue(size_t capacity)
    {
        size_t cap = 2;
        while (cap < capacity) {
            cap *= 2;
        }
        slots_.assign(cap, nullptr);
        mask_ = cap - 1;
    }

    bool
    tryPush(BlockNode *node)
    {
        const size_t t = tail_.load(std::memory_order_relaxed);
        if (t - head_.load(std::memory_order_acquire) > mask_) {
            return false;
        }
        slots_[t & mask_] = node;
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    bool
    tryPop(BlockNode *&node)
    {
        const size_t h = head_.load(std::memory_order_relaxed);
        if (h == tail_.load(std::memory_order_acquire)) {
            return false;
        }
        node = slots_[h & mask_];
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

  private:
    std::vector<BlockNode *> slots_;
    size_t mask_ = 0;
    alignas(64) std::atomic<size_t> head_{0};  ///< Consumer cursor.
    alignas(64) std::atomic<size_t> tail_{0};  ///< Producer cursor.
};

} // namespace

struct PipelineMux::Impl {
    std::vector<TraceSink *> sinks;
    bool parallel = false;
    bool flushed = false;

    // Staging for record-at-a-time deliveries.
    TraceBlock stage;

    uint64_t blocks_published = 0;
    uint64_t backpressure_waits = 0;

    // Parallel-mode state. The node pool is producer-owned; recycling
    // back from workers goes through free_mutex (contended once per
    // block, not per record).
    std::vector<std::unique_ptr<BlockNode>> pool;
    std::vector<BlockNode *> free_nodes;
    std::mutex free_mutex;
    std::vector<std::unique_ptr<SpscQueue>> queues;
    std::vector<std::thread> workers;
    std::vector<std::exception_ptr> worker_errors;
    /**
     * One flag per worker, set (release) the moment its sink throws.
     * The producer's backpressure loops acquire-load it so a dead
     * consumer can never stall publishing: once a worker has failed,
     * its queue is skipped and the block's fan-out refcount dropped
     * immediately. Exceptions still surface at flush(), but the
     * producer no longer has to outrun them.
     */
    std::vector<std::unique_ptr<std::atomic<bool>>> worker_failed;

    explicit Impl(std::vector<TraceSink *> s, const Options &options)
        : sinks(std::move(s))
    {
        stage.reserveStandard();
        const int jobs = resolveJobs(options.jobs);
        parallel = jobs > 1 && sinks.size() > 0;
        if (!parallel) {
            return;
        }
        const size_t depth =
            options.queueDepth > 1
                ? static_cast<size_t>(options.queueDepth)
                : 2;
        // Every sink queue can be full simultaneously with distinct
        // blocks, plus one in each worker's hands and one staging.
        const size_t pool_size = depth + sinks.size() + 2;
        pool.reserve(pool_size);
        for (size_t i = 0; i < pool_size; ++i) {
            pool.push_back(std::make_unique<BlockNode>());
            pool.back()->block.reserveStandard();
            free_nodes.push_back(pool.back().get());
        }
        worker_errors.assign(sinks.size(), nullptr);
        queues.reserve(sinks.size());
        workers.reserve(sinks.size());
        for (size_t i = 0; i < sinks.size(); ++i) {
            queues.push_back(std::make_unique<SpscQueue>(depth));
            worker_failed.push_back(
                std::make_unique<std::atomic<bool>>(false));
        }
        for (size_t i = 0; i < sinks.size(); ++i) {
            workers.emplace_back([this, i] { workerLoop(i); });
        }
    }

    void
    recycle(BlockNode *node)
    {
        if (node->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            node->block.clear();
            std::lock_guard<std::mutex> lock(free_mutex);
            free_nodes.push_back(node);
        }
    }

    void
    workerLoop(size_t i)
    {
        TraceSink *sink = sinks[i];
        SpscQueue &q = *queues[i];
        bool saw_sentinel = false;
        BlockNode *in_flight = nullptr;
        try {
            for (;;) {
                BlockNode *node = nullptr;
                while (!q.tryPop(node)) {
                    std::this_thread::yield();
                }
                if (node == nullptr) {
                    // The sentinel is consumed BEFORE flushing: if the
                    // sink throws in flush() there is no second
                    // sentinel coming, so the drain below must not
                    // wait for one.
                    saw_sentinel = true;
                    sink->flush();
                    return;
                }
                in_flight = node;
                replayBlock(node->block, *sink);
                in_flight = nullptr;
                recycle(node);
            }
        } catch (...) {
            worker_errors[i] = std::current_exception();
            // Publish the failure FIRST: the producer's backpressure
            // loops observe it and stop feeding this queue, so a dead
            // consumer can never stall the pipeline (the exception
            // itself still surfaces when flush() rethrows).
            worker_failed[i]->store(true, std::memory_order_release);
            if (in_flight != nullptr) {
                recycle(in_flight);  // The throwing block still fans in.
            }
            if (saw_sentinel) {
                return;  // Failed in flush(): the stream already ended.
            }
            // Drain whatever the producer managed to push before it saw
            // the failure flag, through to the shutdown sentinel, so
            // every block's refcount resolves and pooled nodes recycle.
            for (;;) {
                BlockNode *node = nullptr;
                while (!q.tryPop(node)) {
                    std::this_thread::yield();
                }
                if (node == nullptr) {
                    return;
                }
                recycle(node);
            }
        }
    }

    BlockNode *
    acquireNode()
    {
        for (;;) {
            {
                std::lock_guard<std::mutex> lock(free_mutex);
                if (!free_nodes.empty()) {
                    BlockNode *node = free_nodes.back();
                    free_nodes.pop_back();
                    return node;
                }
            }
            ++backpressure_waits;
            std::this_thread::yield();
        }
    }

    void
    publish(TraceBlock &&block)
    {
        ++blocks_published;
        if (!parallel) {
            for (TraceSink *sink : sinks) {
                replayBlock(block, *sink);
            }
            return;
        }
        BlockNode *node = acquireNode();
        node->block = std::move(block);
        node->remaining.store(static_cast<uint32_t>(sinks.size()),
                              std::memory_order_relaxed);
        for (size_t i = 0; i < queues.size(); ++i) {
            // A failed consumer no longer pops: skipping it (and
            // dropping its share of the fan-out refcount) is the only
            // way the producer can make progress once that queue
            // fills. The worker observed/observes every block pushed
            // before the flag flipped, so nothing leaks either way.
            if (worker_failed[i]->load(std::memory_order_acquire)) {
                recycle(node);
                continue;
            }
            if (!queues[i]->tryPush(node)) {
                ++backpressure_waits;
                for (;;) {
                    if (worker_failed[i]->load(std::memory_order_acquire)) {
                        recycle(node);
                        break;
                    }
                    if (queues[i]->tryPush(node)) {
                        break;
                    }
                    std::this_thread::yield();
                }
            }
        }
    }

    void
    publishStage()
    {
        if (stage.empty()) {
            return;
        }
        publish(std::move(stage));
        stage.clear();
        stage.reserveStandard();
    }

    void
    finish()
    {
        if (flushed) {
            return;
        }
        flushed = true;
        publishStage();
        if (!parallel) {
            for (TraceSink *sink : sinks) {
                sink->flush();
            }
            return;
        }
        for (auto &q : queues) {
            while (!q->tryPush(nullptr)) {
                std::this_thread::yield();
            }
        }
        for (std::thread &t : workers) {
            t.join();
        }
        workers.clear();
        for (std::exception_ptr &err : worker_errors) {
            if (err) {
                std::rethrow_exception(err);
            }
        }
    }

    ~Impl()
    {
        // Unflushed teardown: still join the workers (without flushing
        // semantics guarantees) so threads never outlive the sinks.
        if (!workers.empty()) {
            for (auto &q : queues) {
                while (!q->tryPush(nullptr)) {
                    std::this_thread::yield();
                }
            }
            for (std::thread &t : workers) {
                t.join();
            }
        }
    }
};

PipelineMux::PipelineMux(std::vector<TraceSink *> sinks)
    : PipelineMux(std::move(sinks), Options{})
{
}

PipelineMux::PipelineMux(std::vector<TraceSink *> sinks,
                         const Options &options)
    : impl_(std::make_unique<Impl>(std::move(sinks), options))
{
}

PipelineMux::~PipelineMux() = default;

void
PipelineMux::onOp(const TraceOp &op)
{
    impl_->stage.ops.push_back(op);
    if (impl_->stage.ops.size() >= TraceBlock::kOps) {
        impl_->publishStage();
    }
}

void
PipelineMux::onOps(const TraceOp *ops, size_t n)
{
    TraceBlock &stage = impl_->stage;
    while (n > 0) {
        const size_t take =
            std::min(n, TraceBlock::kOps - stage.ops.size());
        stage.ops.insert(stage.ops.end(), ops, ops + take);
        ops += take;
        n -= take;
        if (stage.ops.size() >= TraceBlock::kOps) {
            impl_->publishStage();
        }
    }
}

void
PipelineMux::onBranch(const BranchRecord &branch)
{
    TraceBlock::Event ev;
    ev.pos = static_cast<uint32_t>(impl_->stage.ops.size());
    ev.kind = TraceBlock::Event::Branch;
    ev.taken = branch.taken;
    ev.value = branch.pc;
    impl_->stage.events.push_back(ev);
}

void
PipelineMux::onKernel(uint64_t site)
{
    TraceBlock::Event ev;
    ev.pos = static_cast<uint32_t>(impl_->stage.ops.size());
    ev.kind = TraceBlock::Event::Kernel;
    ev.value = site;
    impl_->stage.events.push_back(ev);
}

void
PipelineMux::onBlock(TraceBlock &&block)
{
    // Preserve order with any staged record-at-a-time deliveries.
    impl_->publishStage();
    impl_->publish(std::move(block));
}

void
PipelineMux::flush()
{
    impl_->finish();
}

bool
PipelineMux::parallel() const
{
    return impl_->parallel;
}

uint64_t
PipelineMux::blocksPublished() const
{
    return impl_->blocks_published;
}

uint64_t
PipelineMux::backpressureWaits() const
{
    return impl_->backpressure_waits;
}

} // namespace vepro::trace
