#include "trace/synth.hpp"

#include <algorithm>

#include "core/rng.hpp"
#include "trace/probe.hpp"

namespace vepro::trace
{

namespace
{

/** xorshift64: deterministic, seed-stable across platforms. Wraps the
 *  shared core::XorShift64 in the historical in-place-state idiom so the
 *  golden-pinned streams below stay byte-identical. */
inline uint64_t
next(uint64_t &s)
{
    core::XorShift64 x(s);
    s = x.next();
    return s;
}

} // namespace

std::vector<TraceOp>
synthTrace(const SynthConfig &config)
{
    std::vector<TraceOp> t;
    t.reserve(config.ops + 128);
    uint64_t rng = config.seed | 1;

    // Synthetic address space, mirroring the regions an encode touches:
    // a 32 MiB frame walked with spatial locality, a 4 MiB metadata
    // region hit at random block granularity, and a hot 2 KiB cost LUT.
    constexpr uint64_t kFrame = 0x10000000ull;
    constexpr uint64_t kMeta = 0x30000000ull;
    constexpr uint64_t kLut = 0x50000000ull;

    // Eight kernel code windows spread over ~256 KiB: enough I-footprint
    // to exercise the L1I without thrashing it.
    constexpr uint64_t kSite[8] = {
        0x400000, 0x408000, 0x410000, 0x418000,
        0x420000, 0x428000, 0x430000, 0x438000,
    };

    uint64_t fpos = 0;
    unsigned site = 0;
    while (t.size() < config.ops) {
        const uint64_t base = kSite[site];
        site = (site + 1) & 7;
        unsigned pci = 0;
        auto pc = [&]() { return base + 4ull * (pci++ & 63); };

        // Call edge into the kernel.
        t.push_back({base, 0, OpClass::BranchUncond, true, 0, 0, false});

        // Eight SIMD "rows": two streamed vector loads (current block +
        // reference at a vertical offset), dependent vector arithmetic,
        // a hot LUT load feeding scalar cost accumulation, a metadata
        // store, and a strongly biased row-loop branch.
        for (int row = 0; row < 8; ++row) {
            next(rng);
            t.push_back({pc(), kFrame + (fpos & 0x1ffffff),
                         OpClass::SimdLoad, false, 0, 0, false});
            t.push_back({pc(), kFrame + ((fpos + 32768) & 0x1ffffff),
                         OpClass::SimdLoad, false, 0, 0, false});
            fpos += 64;
            t.push_back({pc(), 0, OpClass::SimdAlu, false, 1, 2, false});
            t.push_back({pc(), 0, OpClass::SimdAlu, false, 1, 0, false});
            if ((rng & 7) == 0) {
                t.push_back({pc(), 0, OpClass::SimdMul, false, 1, 0, false});
            }
            t.push_back({pc(), kLut + (rng % 256) * 8, OpClass::Load, false,
                         0, 0, false});
            t.push_back({pc(), 0, OpClass::Alu, false, 1, 3, false});
            t.push_back({pc(), kMeta + (rng % 65536) * 64, OpClass::Store,
                         false, 1, 0, false});
            t.push_back({base + 0x1f0, 0, OpClass::BranchCond, row < 7, 1, 0,
                         false});
        }

        // Noisy RDO decision, occasional divide (rate-cost normalisation)
        // and coherence traffic from a neighbouring worker.
        next(rng);
        t.push_back({base + 0x200, 0, OpClass::BranchCond, (rng & 1) != 0, 1,
                     0, false});
        if (rng % 31 == 0) {
            t.push_back({base + 0x210, 0, OpClass::Div, false, 1, 0, false});
        }
        if (config.foreign && rng % 23 == 0) {
            t.push_back({0, kMeta + ((rng >> 8) % 65536) * 64, OpClass::Store,
                         false, 0, 0, true});
        }
        // Return.
        t.push_back({base + 0x220, 0, OpClass::BranchUncond, true, 0, 0,
                     false});
    }
    t.resize(config.ops);
    return t;
}

std::vector<BranchRecord>
synthBranches(uint64_t n, uint64_t seed)
{
    std::vector<BranchRecord> b;
    b.reserve(n);
    uint64_t rng = seed | 1;
    for (uint64_t i = 0; i < n; ++i) {
        next(rng);
        const uint64_t slot = rng % 64;
        const uint64_t pc = 0x400000ull + slot * 0x40;
        bool taken;
        if (slot < 32) {
            taken = true;  // strongly biased (loop back-edges)
        } else if (slot < 48) {
            taken = (i % 7) != 6;  // periodic pattern TAGE can learn
        } else if (slot < 56) {
            taken = rng % 16 != 0;  // biased with noise
        } else {
            taken = (rng >> 32 & 1) != 0;  // data-dependent noise
        }
        b.push_back({pc, taken});
    }
    return b;
}

namespace
{

/** Hostile segment emitters for synthFuzzTrace. Each appends ops to
 *  @p t; PCs come from a small window per segment so the L1I stays
 *  plausible while the segment shapes stress the back end. */
struct FuzzEmit {
    std::vector<TraceOp> &t;
    core::SplitMix64 &rng;

    uint64_t
    pcBase()
    {
        // Mostly reuse a few code windows; occasionally a fresh one so
        // the I-side and TAGE tag space see both locality and churn.
        static constexpr uint64_t kWin[4] = {0x400000, 0x440000, 0x480000,
                                             0x4c0000};
        return rng.chance(1, 8) ? 0x400000 + rng.below(1 << 20) * 4
                                : kWin[rng.below(4)];
    }

    /** Long same-register chain: every op depends on its predecessor, so
     *  the RS fills with unready entries and allocation hits rs_full. */
    void
    depChain(uint64_t len)
    {
        const uint64_t pc = pcBase();
        if (rng.chance(1, 2)) {
            // Long-latency head makes the whole chain wait on it.
            t.push_back({pc, 0, OpClass::Div, false, 0, 0, false});
        }
        for (uint64_t i = 0; i < len; ++i) {
            const OpClass cls =
                rng.chance(1, 3) ? OpClass::SimdAlu : OpClass::Alu;
            const uint8_t dep2 =
                rng.chance(1, 4) ? static_cast<uint8_t>(rng.range(2, 8)) : 0;
            t.push_back({pc + (i & 63) * 4, 0, cls, false, 1, dep2, false});
        }
    }

    /** Store burst: fills the store buffer and the post-retire drain
     *  queue; address modes cover same-line, same-set, and scattered. */
    void
    storeBurst(uint64_t len)
    {
        const uint64_t pc = pcBase();
        const uint64_t base = 0x30000000ull + rng.below(1 << 22);
        const int mode = static_cast<int>(rng.below(3));
        for (uint64_t i = 0; i < len; ++i) {
            uint64_t addr;
            if (mode == 0) {
                addr = base + (i & 7);  // one hot line
            } else if (mode == 1) {
                addr = base + i * 4096;  // L1D set conflict stride
            } else {
                addr = base + rng.below(1 << 24);
            }
            const OpClass cls =
                rng.chance(1, 3) ? OpClass::SimdStore : OpClass::Store;
            t.push_back({pc + (i & 31) * 4, addr, cls,
                         false, static_cast<uint8_t>(rng.below(4)), 0,
                         false});
        }
    }

    /** Branch-dense region: conditional every one or two ops, mixing
     *  biased, periodic, and noisy directions plus unconditional jumps
     *  (taken-bubble and fetch-redirect pressure). */
    void
    branchDense(uint64_t len)
    {
        const uint64_t pc = pcBase();
        const uint64_t period = rng.range(2, 9);
        const int mode = static_cast<int>(rng.below(4));
        for (uint64_t i = 0; i < len; ++i) {
            if (rng.chance(1, 10)) {
                t.push_back({pc + (i & 63) * 4, 0, OpClass::BranchUncond,
                             true, 0, 0, false});
                continue;
            }
            bool taken;
            switch (mode) {
              case 0: taken = true; break;
              case 1: taken = i % period != 0; break;
              case 2: taken = rng.chance(15, 16); break;
              default: taken = rng.chance(1, 2); break;
            }
            t.push_back({pc + (i % 29) * 4, 0, OpClass::BranchCond, taken,
                         1, 0, false});
            if (rng.chance(1, 2)) {
                t.push_back({pc + 0x100 + (i & 15) * 4, 0, OpClass::Alu,
                             false, 1, 0, false});
            }
        }
    }

    /** Pathological load streams: strides picked to thrash one cache
     *  set, walk page-sized steps, or scatter across the LLC. */
    void
    stridedLoads(uint64_t len)
    {
        const uint64_t pc = pcBase();
        static constexpr uint64_t kStride[5] = {64, 4096, 4160, 32768,
                                                64 * 509};
        const uint64_t stride = kStride[rng.below(5)];
        uint64_t addr = 0x10000000ull + rng.below(1 << 20);
        const bool chain = rng.chance(1, 2);
        for (uint64_t i = 0; i < len; ++i) {
            const OpClass cls =
                rng.chance(1, 3) ? OpClass::SimdLoad : OpClass::Load;
            t.push_back({pc + (i & 63) * 4, addr, cls, false,
                         static_cast<uint8_t>(chain ? 1 : 0), 0, false});
            addr += stride;
        }
    }

    /** Divide blockade: the single mul/div port serialises these, the
     *  ROB backs up behind them, and dependants file far in the future
     *  (with long memory latencies this wraps the calendar ring). */
    void
    divStorm(uint64_t len)
    {
        const uint64_t pc = pcBase();
        for (uint64_t i = 0; i < len; ++i) {
            t.push_back({pc + (i & 31) * 4, 0, OpClass::Div, false,
                         static_cast<uint8_t>(rng.chance(1, 2) ? 1 : 0), 0,
                         false});
            t.push_back({pc + 0x80 + (i & 31) * 4, 0, OpClass::Alu, false,
                         1, 2, false});
        }
    }

    /** Far loads (forced LLC/memory misses) with dependent consumers:
     *  ready times land a full memory latency out. */
    void
    farLoads(uint64_t len)
    {
        const uint64_t pc = pcBase();
        for (uint64_t i = 0; i < len; ++i) {
            t.push_back({pc + (i & 63) * 4,
                         rng.next() & 0x7fff'ffff'ffc0ull, OpClass::Load,
                         false, 0, 0, false});
            t.push_back({pc + 0x100 + (i & 63) * 4, 0, OpClass::Alu, false,
                         1, static_cast<uint8_t>(rng.below(16)), false});
        }
    }

    /** Remote-core coherence stores (no pipeline slots). */
    void
    foreignRun(uint64_t len)
    {
        for (uint64_t i = 0; i < len; ++i) {
            t.push_back({0, 0x30000000ull + rng.below(1 << 22) * 64,
                         OpClass::Store, false, 0, 0, true});
        }
    }

    /** Fully random ops: any class, full-range dep distances (including
     *  ones reaching past the window start), arbitrary addresses. */
    void
    chaos(uint64_t len)
    {
        static constexpr OpClass kCls[11] = {
            OpClass::Alu,       OpClass::Mul,       OpClass::Div,
            OpClass::Load,      OpClass::Store,     OpClass::BranchCond,
            OpClass::BranchUncond, OpClass::SimdAlu, OpClass::SimdMul,
            OpClass::SimdLoad,  OpClass::SimdStore,
        };
        for (uint64_t i = 0; i < len; ++i) {
            const OpClass cls = kCls[rng.below(11)];
            t.push_back({pcBase() + rng.below(256) * 4,
                         isMemory(cls) ? rng.next() >> 24 : 0, cls,
                         rng.chance(1, 2),
                         static_cast<uint8_t>(rng.below(256)),
                         static_cast<uint8_t>(rng.below(256)),
                         false});
        }
    }
};

} // namespace

std::vector<TraceOp>
synthFuzzTrace(uint64_t seed, uint64_t max_ops)
{
    core::SplitMix64 rng(seed);

    // Target length: usually random, but often snapped to the 4096-op
    // block-delivery boundary (the Probe/onOps batching size) so the
    // exact-boundary paths are a first-class shape, not a lottery win.
    uint64_t target = rng.range(16, max_ops > 16 ? max_ops : 17);
    if (rng.chance(1, 4)) {
        const uint64_t blocks = rng.range(1, 3);
        target = blocks * 4096 + rng.below(3) - 1;  // k*4096 - 1/0/+1
    }
    target = std::max<uint64_t>(16, std::min(target, max_ops));

    std::vector<TraceOp> t;
    t.reserve(target + 512);
    FuzzEmit emit{t, rng};

    if (rng.chance(1, 8)) {
        emit.foreignRun(rng.range(1, 24));  // foreign ops lead the trace
    }
    while (t.size() < target) {
        const uint64_t len = rng.range(8, 400);
        switch (rng.below(8)) {
          case 0: emit.depChain(len); break;
          case 1: emit.storeBurst(len); break;
          case 2: emit.branchDense(len); break;
          case 3: emit.stridedLoads(len); break;
          case 4: emit.divStorm(len / 8 + 1); break;
          case 5: emit.farLoads(len / 2 + 1); break;
          case 6: emit.foreignRun(len / 8 + 1); break;
          default: emit.chaos(len); break;
        }
    }
    t.resize(target);
    if (rng.chance(1, 8)) {
        // Trailing foreign ops: the end-of-trace drain must consume them
        // with an empty pipeline.
        const uint64_t tail = std::min<uint64_t>(rng.range(1, 16), target);
        for (uint64_t i = target - tail; i < target; ++i) {
            t[i] = {0, 0x30000000ull + rng.below(1 << 20) * 64,
                    OpClass::Store, false, 0, 0, true};
        }
    }
    return t;
}

std::vector<BranchRecord>
synthFuzzBranches(uint64_t seed, uint64_t max_branches)
{
    core::SplitMix64 rng(seed);
    const uint64_t n = rng.range(64, max_branches > 64 ? max_branches : 65);

    // Site pool: few sites (heavy per-site history), many sites (tag and
    // allocation churn), or an aliasing ladder (PCs differing only above
    // the index bits, so tables must disambiguate by tag).
    const int pool_mode = static_cast<int>(rng.below(3));
    const uint64_t pool =
        pool_mode == 0 ? rng.range(2, 8) : rng.range(64, 4096);
    const uint64_t pc_base = 0x400000ull + rng.below(1 << 16) * 4;

    std::vector<uint8_t> mode(static_cast<size_t>(pool));
    std::vector<uint64_t> period(static_cast<size_t>(pool));
    for (uint64_t s = 0; s < pool; ++s) {
        mode[s] = static_cast<uint8_t>(rng.below(4));
        period[s] = rng.range(2, 12);
    }

    std::vector<BranchRecord> b;
    b.reserve(n);
    uint64_t history = 0;
    for (uint64_t i = 0; i < n; ++i) {
        const uint64_t s = rng.below(pool);
        const uint64_t pc =
            pool_mode == 2 ? pc_base + (s << 14)  // aliasing ladder
                           : pc_base + s * 0x40;
        bool taken;
        switch (mode[s]) {
          case 0: taken = rng.chance(31, 32); break;        // strong bias
          case 1: taken = i % period[s] != 0; break;        // loop pattern
          case 2: taken = (__builtin_popcountll(history & 0xff) & 1) != 0;
                  break;                                    // correlated
          default: taken = rng.chance(1, 2); break;         // noise
        }
        history = (history << 1) | (taken ? 1 : 0);
        b.push_back({pc, taken});
    }
    return b;
}

void
synthProbeWorkload(Probe &probe, uint64_t target_ops)
{
    static const uint64_t kSad = sitePc("synth.sad");
    static const uint64_t kSatd = sitePc("synth.satd");
    static const uint64_t kQuant = sitePc("synth.quant");
    static const uint64_t kRdo = sitePc("synth.rdo.decide");

    const uint64_t cur = probe.allocRegion(1 << 20);
    const uint64_t ref = probe.allocRegion(1 << 20);
    const uint64_t coeff = probe.allocRegion(1 << 16);
    const uint64_t lut = probe.allocRegion(1 << 11);

    uint64_t rng = 0x2545f4914f6cdd1dull;
    uint64_t block = 0;
    while (probe.totalOps() < target_ops) {
        next(rng);
        const uint64_t off = (block % 4096) * 256;
        ++block;

        probe.enterKernel(kSad, 24);
        probe.memRun(OpClass::SimdLoad, cur + off, 8, 32);
        probe.memRun(OpClass::SimdLoad, ref + off, 8, 32);
        probe.ops(OpClass::SimdAlu, 16, 1, 2);
        probe.ops(OpClass::Alu, 4, 1, 0);
        probe.loopBranches(8);

        probe.enterKernel(kSatd, 40);
        probe.memRun(OpClass::SimdLoad, cur + off, 4, 64);
        probe.ops(OpClass::SimdAlu, 24, 1, 2);
        probe.ops(OpClass::SimdMul, 4, 1, 0);
        probe.loopBranches(4);

        probe.enterKernel(kQuant, 28);
        probe.memRun(OpClass::SimdLoad, coeff + (off & 0xffff), 4, 32);
        probe.mem(OpClass::Load, lut + rng % 2048);
        probe.ops(OpClass::SimdMul, 8, 1, 0);
        probe.memRun(OpClass::SimdStore, coeff + (off & 0xffff), 4, 32, 1);
        probe.loopBranches(4);

        probe.decision(kRdo, rng % 16 != 0);
        probe.decision(kRdo + 0x40, (rng >> 17 & 1) != 0);
    }
}

} // namespace vepro::trace
