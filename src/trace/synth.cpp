#include "trace/synth.hpp"

#include "trace/probe.hpp"

namespace vepro::trace
{

namespace
{

/** xorshift64: deterministic, seed-stable across platforms. */
inline uint64_t
next(uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

} // namespace

std::vector<TraceOp>
synthTrace(const SynthConfig &config)
{
    std::vector<TraceOp> t;
    t.reserve(config.ops + 128);
    uint64_t rng = config.seed | 1;

    // Synthetic address space, mirroring the regions an encode touches:
    // a 32 MiB frame walked with spatial locality, a 4 MiB metadata
    // region hit at random block granularity, and a hot 2 KiB cost LUT.
    constexpr uint64_t kFrame = 0x10000000ull;
    constexpr uint64_t kMeta = 0x30000000ull;
    constexpr uint64_t kLut = 0x50000000ull;

    // Eight kernel code windows spread over ~256 KiB: enough I-footprint
    // to exercise the L1I without thrashing it.
    constexpr uint64_t kSite[8] = {
        0x400000, 0x408000, 0x410000, 0x418000,
        0x420000, 0x428000, 0x430000, 0x438000,
    };

    uint64_t fpos = 0;
    unsigned site = 0;
    while (t.size() < config.ops) {
        const uint64_t base = kSite[site];
        site = (site + 1) & 7;
        unsigned pci = 0;
        auto pc = [&]() { return base + 4ull * (pci++ & 63); };

        // Call edge into the kernel.
        t.push_back({base, 0, OpClass::BranchUncond, true, 0, 0, false});

        // Eight SIMD "rows": two streamed vector loads (current block +
        // reference at a vertical offset), dependent vector arithmetic,
        // a hot LUT load feeding scalar cost accumulation, a metadata
        // store, and a strongly biased row-loop branch.
        for (int row = 0; row < 8; ++row) {
            next(rng);
            t.push_back({pc(), kFrame + (fpos & 0x1ffffff),
                         OpClass::SimdLoad, false, 0, 0, false});
            t.push_back({pc(), kFrame + ((fpos + 32768) & 0x1ffffff),
                         OpClass::SimdLoad, false, 0, 0, false});
            fpos += 64;
            t.push_back({pc(), 0, OpClass::SimdAlu, false, 1, 2, false});
            t.push_back({pc(), 0, OpClass::SimdAlu, false, 1, 0, false});
            if ((rng & 7) == 0) {
                t.push_back({pc(), 0, OpClass::SimdMul, false, 1, 0, false});
            }
            t.push_back({pc(), kLut + (rng % 256) * 8, OpClass::Load, false,
                         0, 0, false});
            t.push_back({pc(), 0, OpClass::Alu, false, 1, 3, false});
            t.push_back({pc(), kMeta + (rng % 65536) * 64, OpClass::Store,
                         false, 1, 0, false});
            t.push_back({base + 0x1f0, 0, OpClass::BranchCond, row < 7, 1, 0,
                         false});
        }

        // Noisy RDO decision, occasional divide (rate-cost normalisation)
        // and coherence traffic from a neighbouring worker.
        next(rng);
        t.push_back({base + 0x200, 0, OpClass::BranchCond, (rng & 1) != 0, 1,
                     0, false});
        if (rng % 31 == 0) {
            t.push_back({base + 0x210, 0, OpClass::Div, false, 1, 0, false});
        }
        if (config.foreign && rng % 23 == 0) {
            t.push_back({0, kMeta + ((rng >> 8) % 65536) * 64, OpClass::Store,
                         false, 0, 0, true});
        }
        // Return.
        t.push_back({base + 0x220, 0, OpClass::BranchUncond, true, 0, 0,
                     false});
    }
    t.resize(config.ops);
    return t;
}

std::vector<BranchRecord>
synthBranches(uint64_t n, uint64_t seed)
{
    std::vector<BranchRecord> b;
    b.reserve(n);
    uint64_t rng = seed | 1;
    for (uint64_t i = 0; i < n; ++i) {
        next(rng);
        const uint64_t slot = rng % 64;
        const uint64_t pc = 0x400000ull + slot * 0x40;
        bool taken;
        if (slot < 32) {
            taken = true;  // strongly biased (loop back-edges)
        } else if (slot < 48) {
            taken = (i % 7) != 6;  // periodic pattern TAGE can learn
        } else if (slot < 56) {
            taken = rng % 16 != 0;  // biased with noise
        } else {
            taken = (rng >> 32 & 1) != 0;  // data-dependent noise
        }
        b.push_back({pc, taken});
    }
    return b;
}

void
synthProbeWorkload(Probe &probe, uint64_t target_ops)
{
    static const uint64_t kSad = sitePc("synth.sad");
    static const uint64_t kSatd = sitePc("synth.satd");
    static const uint64_t kQuant = sitePc("synth.quant");
    static const uint64_t kRdo = sitePc("synth.rdo.decide");

    const uint64_t cur = probe.allocRegion(1 << 20);
    const uint64_t ref = probe.allocRegion(1 << 20);
    const uint64_t coeff = probe.allocRegion(1 << 16);
    const uint64_t lut = probe.allocRegion(1 << 11);

    uint64_t rng = 0x2545f4914f6cdd1dull;
    uint64_t block = 0;
    while (probe.totalOps() < target_ops) {
        next(rng);
        const uint64_t off = (block % 4096) * 256;
        ++block;

        probe.enterKernel(kSad, 24);
        probe.memRun(OpClass::SimdLoad, cur + off, 8, 32);
        probe.memRun(OpClass::SimdLoad, ref + off, 8, 32);
        probe.ops(OpClass::SimdAlu, 16, 1, 2);
        probe.ops(OpClass::Alu, 4, 1, 0);
        probe.loopBranches(8);

        probe.enterKernel(kSatd, 40);
        probe.memRun(OpClass::SimdLoad, cur + off, 4, 64);
        probe.ops(OpClass::SimdAlu, 24, 1, 2);
        probe.ops(OpClass::SimdMul, 4, 1, 0);
        probe.loopBranches(4);

        probe.enterKernel(kQuant, 28);
        probe.memRun(OpClass::SimdLoad, coeff + (off & 0xffff), 4, 32);
        probe.mem(OpClass::Load, lut + rng % 2048);
        probe.ops(OpClass::SimdMul, 8, 1, 0);
        probe.memRun(OpClass::SimdStore, coeff + (off & 0xffff), 4, 32, 1);
        probe.loopBranches(4);

        probe.decision(kRdo, rng % 16 != 0);
        probe.decision(kRdo + 0x40, (rng >> 17 & 1) != 0);
    }
}

} // namespace vepro::trace
