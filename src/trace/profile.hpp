#ifndef VEPRO_TRACE_PROFILE_HPP
#define VEPRO_TRACE_PROFILE_HPP

/**
 * @file
 * Function-level profiling report — the repository's GNU gprof
 * substitute (the paper's tool #4: "find hot functions, which is used
 * for instruction tracing").
 *
 * When a probe runs with ProbeConfig::profileSites, every instrumented
 * kernel/call-site accumulates its dynamic instruction count; this
 * module turns those counters into the flat profile gprof would print.
 */

#include <string>
#include <vector>

#include "trace/probe.hpp"

namespace vepro::trace
{

/** One row of the flat profile. */
struct SiteProfile {
    std::string name;     ///< Instrumentation-site name (kernel).
    uint64_t ops = 0;     ///< Dynamic instructions attributed to it.
    double percent = 0.0; ///< Share of all attributed instructions.
};

/**
 * Flat profile of a per-site counter map (keys are site PCs from
 * sitePc()), hottest first.
 *
 * @param min_share Drop sites below this share (percent) of the total.
 */
std::vector<SiteProfile>
profileReport(const std::unordered_map<uint64_t, uint64_t> &site_ops,
              double min_share = 0.1);

/**
 * Flat profile of a probe's per-site counters, hottest first.
 *
 * @param probe     A probe run with profileSites enabled.
 * @param min_share Drop sites below this share (percent) of the total.
 */
std::vector<SiteProfile> profileReport(const Probe &probe,
                                       double min_share = 0.1);

/** Flat profile of a streaming SiteProfileSink's counters. */
std::vector<SiteProfile> profileReport(const SiteProfileSink &sink,
                                       double min_share = 0.1);

/** Render the profile as a gprof-style text table. */
std::string formatProfile(const std::vector<SiteProfile> &profile);

} // namespace vepro::trace

#endif // VEPRO_TRACE_PROFILE_HPP
