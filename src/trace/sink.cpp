#include "trace/sink.hpp"

#include <algorithm>

namespace vepro::trace
{

void
replayBlock(const TraceBlock &block, TraceSink &sink)
{
    size_t delivered = 0;
    for (const TraceBlock::Event &ev : block.events) {
        if (ev.pos > delivered) {
            sink.onOps(block.ops.data() + delivered, ev.pos - delivered);
            delivered = ev.pos;
        }
        if (ev.kind == TraceBlock::Event::Branch) {
            sink.onBranch({ev.value, ev.taken});
        } else {
            sink.onKernel(ev.value);
        }
    }
    if (block.ops.size() > delivered) {
        sink.onOps(block.ops.data() + delivered,
                   block.ops.size() - delivered);
    }
}

void
VectorSink::onOp(const TraceOp &op)
{
    if (max_ops_ == 0 || ops_.size() < max_ops_) {
        ops_.push_back(op);
        return;
    }
    ++dropped_ops_;
    if (mode_ == Overflow::KeepLast) {
        ops_[op_head_] = op;
        op_head_ = (op_head_ + 1) % max_ops_;
    }
}

void
VectorSink::onOps(const TraceOp *ops, size_t n)
{
    if (max_ops_ == 0) {
        ops_.insert(ops_.end(), ops, ops + n);
        return;
    }
    // Bulk-append the prefix that fits under the cap.
    size_t room = max_ops_ > ops_.size() ? max_ops_ - ops_.size() : 0;
    size_t head = std::min(n, room);
    ops_.insert(ops_.end(), ops, ops + head);
    size_t rest = n - head;
    if (rest == 0) {
        return;
    }
    dropped_ops_ += rest;
    if (mode_ != Overflow::KeepLast) {
        return;
    }
    const TraceOp *src = ops + head;
    if (rest >= max_ops_) {
        // Only the newest max_ops_ records survive; lay them out
        // chronologically with the write head back at zero.
        std::copy(src + (rest - max_ops_), src + rest, ops_.begin());
        op_head_ = 0;
    } else {
        // Write into the ring in at most two contiguous spans.
        size_t first = std::min(rest, max_ops_ - op_head_);
        std::copy(src, src + first,
                  ops_.begin() + static_cast<ptrdiff_t>(op_head_));
        std::copy(src + first, src + rest, ops_.begin());
        op_head_ = (op_head_ + rest) % max_ops_;
    }
}

void
VectorSink::onBranch(const BranchRecord &branch)
{
    if (max_branches_ == 0 || branches_.size() < max_branches_) {
        branches_.push_back(branch);
        return;
    }
    ++dropped_branches_;
    if (mode_ == Overflow::KeepLast) {
        branches_[br_head_] = branch;
        br_head_ = (br_head_ + 1) % max_branches_;
    }
}

void
VectorSink::flush()
{
    // Ring mode: the oldest retained record sits at the write head;
    // rotate so ops()/branches() read in chronological order.
    if (mode_ == Overflow::KeepLast) {
        if (op_head_ != 0) {
            std::rotate(ops_.begin(),
                        ops_.begin() + static_cast<ptrdiff_t>(op_head_),
                        ops_.end());
            op_head_ = 0;
        }
        if (br_head_ != 0) {
            std::rotate(branches_.begin(),
                        branches_.begin() + static_cast<ptrdiff_t>(br_head_),
                        branches_.end());
            br_head_ = 0;
        }
    }
}

std::vector<TraceOp>
VectorSink::takeOps()
{
    flush();
    std::vector<TraceOp> out = std::move(ops_);
    ops_.clear();
    return out;
}

std::vector<BranchRecord>
VectorSink::takeBranches()
{
    flush();
    std::vector<BranchRecord> out = std::move(branches_);
    branches_.clear();
    return out;
}

void
VectorSink::clear()
{
    ops_.clear();
    branches_.clear();
    op_head_ = 0;
    br_head_ = 0;
    dropped_ops_ = 0;
    dropped_branches_ = 0;
}

} // namespace vepro::trace
