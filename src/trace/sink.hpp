#ifndef VEPRO_TRACE_SINK_HPP
#define VEPRO_TRACE_SINK_HPP

/**
 * @file
 * Streaming trace records and the TraceSink consumer interface.
 *
 * The instrumentation probe (probe.hpp) produces two record streams: the
 * full dynamic-op trace consumed by the core model and a branch trace
 * consumed by the CBP predictor framework. Historically both were
 * materialised into vectors and replayed afterwards, which caps fidelity
 * (traces are truncated at a few million records) and makes peak memory
 * proportional to trace length.
 *
 * TraceSink inverts that: consumers subscribe to the probe and receive
 * records as the encode emits them, so encode and simulation run fused
 * in one pass with O(1) trace memory. The out-of-order core model
 * (uarch::StreamCore), the cache hierarchy (uarch::CacheSink), the CBP
 * runner (bpred::StreamRunner), and the site profiler (SiteProfileSink)
 * all implement this interface; MuxSink fans one probe out to several of
 * them, and VectorSink preserves the old materialise-then-replay batch
 * API for tests and trace serialisation.
 */

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/opclass.hpp"

namespace vepro::trace
{

/** One record of the branch trace consumed by the CBP framework. */
struct BranchRecord {
    uint64_t pc;   ///< Synthetic PC of the branch instruction.
    bool taken;    ///< Resolved direction.
};

/** One record of the full-op trace consumed by the core model. */
struct TraceOp {
    uint64_t pc = 0;     ///< Synthetic PC.
    uint64_t addr = 0;   ///< Data address for memory ops, else 0.
    OpClass cls = OpClass::Alu;
    bool taken = false;  ///< Direction, for conditional branches.
    /**
     * Distance (in dynamic ops) back to the producers of this op's
     * sources; 0 means no in-window register dependence. Kernels choose
     * values that match their dataflow (e.g. 1 for an accumulator chain).
     */
    uint8_t dep1 = 0;
    uint8_t dep2 = 0;
    /**
     * True for a store performed by *another* core (thread-study traces
     * only): the core model treats it as a coherence invalidation rather
     * than an executed instruction. Deliberately last so the common
     * aggregate initialisers can omit it.
     */
    bool foreign = false;
};

/**
 * One probe staging block: up to kOps dynamic ops plus the branch and
 * kernel-entry records that occurred among them, carried in program
 * order. The probe emits the trace as a sequence of these blocks, and
 * ownership of a whole block can be transferred to a sink (see
 * TraceSink::onBlock) so the span can cross a thread boundary without
 * copying — the handoff unit of the pipeline-parallel simulation path
 * (PipelineMux, uarch::SegmentSim).
 *
 * Events interleave with ops by position: an event at pos P happened
 * after ops[0..P) and before ops[P..). replayBlock() reconstructs the
 * exact op/branch/kernel program order a record-at-a-time consumer
 * would have seen.
 */
struct TraceBlock {
    /** Ops per full block; the probe flushes at this fill level. */
    static constexpr size_t kOps = 4096;

    struct Event {
        enum Kind : uint8_t { Branch, Kernel };
        uint32_t pos = 0;    ///< Index into ops where the event fires.
        Kind kind = Branch;
        bool taken = false;  ///< Branch direction (Branch events).
        uint64_t value = 0;  ///< Branch PC, or kernel site PC.
    };

    std::vector<TraceOp> ops;
    std::vector<Event> events;

    bool empty() const { return ops.empty() && events.empty(); }

    /** Drop contents, keeping both buffers' capacity for reuse. */
    void
    clear()
    {
        ops.clear();
        events.clear();
    }

    /** Reserve the standard block capacity up front. */
    void
    reserveStandard()
    {
        ops.reserve(kOps);
    }
};

class TraceSink;

/**
 * Deliver @p block to @p sink record-at-a-time-equivalent: ops between
 * consecutive events go out as onOps spans, events as
 * onBranch/onKernel, in exact program order. This is the bridge from
 * the block-granular handoff path back to the classic streaming
 * interface, and the default TraceSink::onBlock.
 */
void replayBlock(const TraceBlock &block, TraceSink &sink);

/**
 * Consumer of a live trace stream.
 *
 * The probe delivers records in program order. onOps is the batched
 * variant used for runs of ops emitted by one instrumentation call;
 * sinks that only need counts can override it to avoid per-op virtual
 * dispatch. flush() marks end-of-stream: sinks that simulate ahead of a
 * window (the core model) complete their pending work there, and
 * results read before flush() are undefined.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One dynamic op, in program order. */
    virtual void onOp(const TraceOp &op) = 0;

    /** A batch of @p n consecutive ops (default: onOp per record). */
    virtual void
    onOps(const TraceOp *ops, size_t n)
    {
        for (size_t i = 0; i < n; ++i) {
            onOp(ops[i]);
        }
    }

    /** One conditional branch of the CBP branch trace. */
    virtual void onBranch(const BranchRecord &branch) { (void)branch; }

    /**
     * The probe entered the instrumented kernel registered at @p site
     * (see sitePc()); subsequent ops belong to it. Lets profiling sinks
     * attribute ops without reverse-mapping PCs.
     */
    virtual void onKernel(uint64_t site) { (void)site; }

    /**
     * One whole staging block, with the ownership-transfer option: a
     * sink that moves from @p block takes the span (and its branch and
     * kernel events) without copying — e.g. across a thread boundary.
     * A sink that does NOT move leaves the block with the caller, who
     * reuses its capacity for the next block. The default replays the
     * block through onOps/onBranch/onKernel, so record-at-a-time sinks
     * see exactly the stream they always did.
     */
    virtual void onBlock(TraceBlock &&block) { replayBlock(block, *this); }

    /** End of stream: complete pending work, finalise results. */
    virtual void flush() {}
};

/** Fans one trace stream out to several sinks, in registration order. */
class MuxSink final : public TraceSink
{
  public:
    MuxSink() = default;
    MuxSink(std::initializer_list<TraceSink *> sinks) : sinks_(sinks) {}

    /** Register @p sink (not owned; must outlive the stream). */
    void
    add(TraceSink *sink)
    {
        if (sink != nullptr) {
            sinks_.push_back(sink);
        }
    }

    void
    onOp(const TraceOp &op) override
    {
        for (TraceSink *s : sinks_) {
            s->onOp(op);
        }
    }

    void
    onOps(const TraceOp *ops, size_t n) override
    {
        for (TraceSink *s : sinks_) {
            s->onOps(ops, n);
        }
    }

    void
    onBranch(const BranchRecord &branch) override
    {
        for (TraceSink *s : sinks_) {
            s->onBranch(branch);
        }
    }

    void
    onKernel(uint64_t site) override
    {
        for (TraceSink *s : sinks_) {
            s->onKernel(site);
        }
    }

    void
    flush() override
    {
        for (TraceSink *s : sinks_) {
            s->flush();
        }
    }

  private:
    std::vector<TraceSink *> sinks_;
};

/**
 * Materialising sink: collects the streams into vectors, preserving the
 * old batch API (Core::run, bpred::runTrace, trace_io) for tests and
 * offline replay.
 *
 * Optionally bounded: with a cap, KeepFirst drops records past the cap
 * (the legacy truncation behaviour) while KeepLast keeps the most recent
 * records in a ring buffer. Dropped records are counted either way, so
 * callers can warn instead of silently reporting truncated denominators.
 * In KeepLast mode, call flush() before reading: it rotates the ring
 * into chronological order.
 */
class VectorSink final : public TraceSink
{
  public:
    enum class Overflow { KeepFirst, KeepLast };

    VectorSink() = default;
    /** @param max_ops / @param max_branches 0 = unbounded. */
    VectorSink(size_t max_ops, size_t max_branches,
               Overflow mode = Overflow::KeepFirst)
        : max_ops_(max_ops), max_branches_(max_branches), mode_(mode)
    {
    }

    void onOp(const TraceOp &op) override;
    void onOps(const TraceOp *ops, size_t n) override;
    void onBranch(const BranchRecord &branch) override;
    void flush() override;

    const std::vector<TraceOp> &ops() const { return ops_; }
    const std::vector<BranchRecord> &branches() const { return branches_; }

    /** Move the ops out (ring rotated first; leaves the sink empty). */
    std::vector<TraceOp> takeOps();
    /** Move the branches out. */
    std::vector<BranchRecord> takeBranches();

    uint64_t droppedOps() const { return dropped_ops_; }
    uint64_t droppedBranches() const { return dropped_branches_; }

    void clear();

  private:
    size_t max_ops_ = 0;
    size_t max_branches_ = 0;
    Overflow mode_ = Overflow::KeepFirst;
    size_t op_head_ = 0;  ///< Ring write position (KeepLast only).
    size_t br_head_ = 0;
    uint64_t dropped_ops_ = 0;
    uint64_t dropped_branches_ = 0;
    std::vector<TraceOp> ops_;
    std::vector<BranchRecord> branches_;
};

/**
 * Streaming flat profiler: attributes every op to the most recently
 * entered instrumentation site (the gprof substitute, as a sink). Pair
 * with a full-fidelity stream (ProbeConfig::streaming()) for exact
 * counts; under sampling it profiles the sampled stream.
 */
class SiteProfileSink final : public TraceSink
{
  public:
    void
    onKernel(uint64_t site) override
    {
        slot_ = &counts_[site];
    }

    void
    onOp(const TraceOp &op) override
    {
        (void)op;
        if (slot_ != nullptr) {
            ++*slot_;
        }
    }

    void
    onOps(const TraceOp *ops, size_t n) override
    {
        (void)ops;
        if (slot_ != nullptr) {
            *slot_ += n;
        }
    }

    /** Per-site op counts, keyed by site PC (see profileReport()). */
    const std::unordered_map<uint64_t, uint64_t> &
    siteOps() const
    {
        return counts_;
    }

    void
    clear()
    {
        counts_.clear();
        slot_ = nullptr;
    }

  private:
    std::unordered_map<uint64_t, uint64_t> counts_;
    uint64_t *slot_ = nullptr;
};

} // namespace vepro::trace

#endif // VEPRO_TRACE_SINK_HPP
