#ifndef VEPRO_TRACE_OPCLASS_HPP
#define VEPRO_TRACE_OPCLASS_HPP

/**
 * @file
 * Dynamic-instruction classification shared by the instrumentation probes
 * (Pin substitute), the instruction-mix reports (Table 2 / Fig. 3), and
 * the out-of-order core model.
 */

#include <cstdint>
#include <string_view>

namespace vepro::trace
{

/** Micro-architectural class of one dynamic instruction. */
enum class OpClass : uint8_t {
    Alu,           ///< Scalar integer ALU op.
    Mul,           ///< Scalar multiply.
    Div,           ///< Scalar divide (long latency).
    Load,          ///< Scalar load.
    Store,         ///< Scalar store.
    BranchCond,    ///< Conditional branch.
    BranchUncond,  ///< Unconditional branch / call / return.
    SimdAlu,       ///< 256-bit (AVX-class) vector ALU op.
    SimdMul,       ///< 256-bit vector multiply / multiply-add.
    SimdLoad,      ///< 256-bit vector load.
    SimdStore,     ///< 256-bit vector store.
    SseAlu,        ///< 128-bit (SSE-class) vector op.
    Other,         ///< Everything else (moves, lea, system, ...).
    Count,         ///< Number of classes (not a real class).
};

inline constexpr int kNumOpClasses = static_cast<int>(OpClass::Count);

/**
 * Reporting category used by the paper's instruction-mix table (Table 2):
 * Branch / Load / Store / AVX / SSE / Other. Categories are disjoint;
 * vector memory ops count as AVX, matching how Pin attributes
 * register-class usage.
 */
enum class MixCategory : uint8_t {
    Branch,
    Load,
    Store,
    Avx,
    Sse,
    Other,
    Count,
};

inline constexpr int kNumMixCategories = static_cast<int>(MixCategory::Count);

/** Reporting category for an op class. */
MixCategory categoryOf(OpClass cls);

/** Short printable name ("alu", "simd_load", ...). */
std::string_view opClassName(OpClass cls);

/** Printable name of a mix category ("Branch", "AVX", ...). */
std::string_view mixCategoryName(MixCategory cat);

/** True for both conditional and unconditional branches. */
inline constexpr bool
isBranch(OpClass cls)
{
    return cls == OpClass::BranchCond || cls == OpClass::BranchUncond;
}

/** True for any op that accesses data memory. */
inline constexpr bool
isMemory(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store ||
           cls == OpClass::SimdLoad || cls == OpClass::SimdStore;
}

/** True for loads (scalar or vector). */
inline constexpr bool
isLoad(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::SimdLoad;
}

/** True for stores (scalar or vector). */
inline constexpr bool
isStore(OpClass cls)
{
    return cls == OpClass::Store || cls == OpClass::SimdStore;
}

} // namespace vepro::trace

#endif // VEPRO_TRACE_OPCLASS_HPP
