#ifndef VEPRO_TRACE_SYNTH_HPP
#define VEPRO_TRACE_SYNTH_HPP

/**
 * @file
 * Deterministic synthetic workload traces for simulator benchmarking and
 * golden-stats regression tests.
 *
 * The generators below are pure functions of their parameters: same
 * config, same stream, on every platform and in every build mode. They
 * model an encoder-shaped workload (SIMD row kernels over a strided
 * frame walk, hot cost-LUT lookups, scattered per-block metadata
 * stores, biased loop branches plus noisy RDO decisions, occasional
 * divides and coherence traffic) without running an encode, so the
 * simulator hot path can be measured and regression-pinned in
 * isolation.
 *
 * CONTRACT: tests/test_core.cpp pins exact CoreStats / cache / predictor
 * counters produced from these streams. Any change to the emitted
 * sequences invalidates those golden numbers — regenerate them with
 * `bench_simspeed --golden` and say so in the commit.
 */

#include <cstdint>
#include <vector>

#include "trace/sink.hpp"

namespace vepro::trace
{

class Probe;

/** Parameters of the synthetic op-trace generator. */
struct SynthConfig {
    uint64_t ops = 4'000'000;  ///< Exact length of the returned trace.
    uint64_t seed = 0x9e3779b97f4a7c15ull;
    bool foreign = true;  ///< Include remote-core coherence stores.
};

/** Generate the synthetic op trace described in the file comment. */
std::vector<TraceOp> synthTrace(const SynthConfig &config);

/**
 * Generate @p n branch records: a mix of strongly biased, loop-pattern,
 * and data-dependent (noisy) branch sites, CBP-trace shaped.
 */
std::vector<BranchRecord> synthBranches(uint64_t n, uint64_t seed = 0xace1);

/**
 * Drive @p probe through the kernel-facing emission API
 * (enterKernel / ops / mem / memRun / decision / loopBranches) until at
 * least @p target_ops dynamic ops have been emitted. Measures the
 * delivery layer itself: PC synthesis, sampling-window accounting, and
 * block flushing into the probe's sink.
 */
void synthProbeWorkload(Probe &probe, uint64_t target_ops);

/**
 * Adversarial randomized trace for the differential fuzz harness
 * (check::Fuzzer). Unlike synthTrace — a fixed encoder-shaped workload —
 * this composes randomly chosen hostile segments: dependency chains that
 * saturate the reservation station, store bursts against the store
 * buffer, branch-dense regions, divide blockades that back up the ROB,
 * strided and set-conflicting address streams, far loads whose
 * dependants wait out the full memory latency, foreign-op runs (also at
 * the very start and end of the trace), and op counts landing exactly on
 * the 4096-op block-delivery boundary (4095/4096/4097 and multiples).
 * Dependency distances use the full uint8 range, including distances
 * that reach past the window start.
 *
 * Deterministic: a pure function of (seed, max_ops); not covered by the
 * golden-stats pins, so its shapes may evolve freely — corpus entries
 * record the generator seed, not the expanded trace.
 */
std::vector<TraceOp> synthFuzzTrace(uint64_t seed, uint64_t max_ops);

/**
 * Adversarial randomized branch stream for the predictor differential:
 * random site-pool sizes (2 .. 4096 PCs, plus deliberately aliasing PC
 * ladders), per-site behaviours mixing strong bias, short periodic
 * patterns, history-correlated directions, and pure noise. Deterministic
 * in (seed, max_branches); see synthFuzzTrace for the contract.
 */
std::vector<BranchRecord> synthFuzzBranches(uint64_t seed,
                                            uint64_t max_branches);

} // namespace vepro::trace

#endif // VEPRO_TRACE_SYNTH_HPP
