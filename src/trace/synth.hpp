#ifndef VEPRO_TRACE_SYNTH_HPP
#define VEPRO_TRACE_SYNTH_HPP

/**
 * @file
 * Deterministic synthetic workload traces for simulator benchmarking and
 * golden-stats regression tests.
 *
 * The generators below are pure functions of their parameters: same
 * config, same stream, on every platform and in every build mode. They
 * model an encoder-shaped workload (SIMD row kernels over a strided
 * frame walk, hot cost-LUT lookups, scattered per-block metadata
 * stores, biased loop branches plus noisy RDO decisions, occasional
 * divides and coherence traffic) without running an encode, so the
 * simulator hot path can be measured and regression-pinned in
 * isolation.
 *
 * CONTRACT: tests/test_core.cpp pins exact CoreStats / cache / predictor
 * counters produced from these streams. Any change to the emitted
 * sequences invalidates those golden numbers — regenerate them with
 * `bench_simspeed --golden` and say so in the commit.
 */

#include <cstdint>
#include <vector>

#include "trace/sink.hpp"

namespace vepro::trace
{

class Probe;

/** Parameters of the synthetic op-trace generator. */
struct SynthConfig {
    uint64_t ops = 4'000'000;  ///< Exact length of the returned trace.
    uint64_t seed = 0x9e3779b97f4a7c15ull;
    bool foreign = true;  ///< Include remote-core coherence stores.
};

/** Generate the synthetic op trace described in the file comment. */
std::vector<TraceOp> synthTrace(const SynthConfig &config);

/**
 * Generate @p n branch records: a mix of strongly biased, loop-pattern,
 * and data-dependent (noisy) branch sites, CBP-trace shaped.
 */
std::vector<BranchRecord> synthBranches(uint64_t n, uint64_t seed = 0xace1);

/**
 * Drive @p probe through the kernel-facing emission API
 * (enterKernel / ops / mem / memRun / decision / loopBranches) until at
 * least @p target_ops dynamic ops have been emitted. Measures the
 * delivery layer itself: PC synthesis, sampling-window accounting, and
 * block flushing into the probe's sink.
 */
void synthProbeWorkload(Probe &probe, uint64_t target_ops);

} // namespace vepro::trace

#endif // VEPRO_TRACE_SYNTH_HPP
