#ifndef VEPRO_TRACE_PROBE_HPP
#define VEPRO_TRACE_PROBE_HPP

/**
 * @file
 * Instrumentation probe: the repository's substitute for Intel Pin.
 *
 * Encoder kernels call into a Probe to report the dynamic instructions
 * they would execute as compiled AVX2 code: op class, synthetic program
 * counter, data address, branch outcome, and dependency distances. The
 * probe accumulates three products:
 *
 *  - instruction-mix counters (always on, batched — Table 2 / Fig. 3),
 *  - a branch trace (pc, taken) for the CBP predictor study (Figs. 8-10),
 *  - a sampled full-op trace for the out-of-order core model
 *    (Figs. 4-7, 11, 16).
 *
 * Synthetic PCs come from a per-call-site registry: each instrumented
 * kernel or decision point owns a stable 1 KiB code window derived from a
 * hash of its name, and ops within the site cycle through a small loop
 * body, mirroring the I-footprint of real compiled kernels.
 */

#include <array>
#include <cstdint>
#include <unordered_map>
#include <string>
#include <string_view>
#include <vector>

#include "trace/opclass.hpp"

namespace vepro::trace
{

/**
 * Stable synthetic PC for a named instrumentation site.
 *
 * The value is a pure function of the name (FNV-1a, masked into a
 * canonical user-space range and 1 KiB aligned), so traces are
 * reproducible across runs and machines.
 */
uint64_t sitePc(std::string_view name);

/**
 * Reverse lookup for profiling: the name registered for a site PC (the
 * 1 KiB-window base, ignoring code-variant offsets), or "?" if the PC
 * was never registered through sitePc().
 */
std::string siteName(uint64_t pc);

/** One record of the branch trace consumed by the CBP framework. */
struct BranchRecord {
    uint64_t pc;   ///< Synthetic PC of the branch instruction.
    bool taken;    ///< Resolved direction.
};

/** One record of the full-op trace consumed by the core model. */
struct TraceOp {
    uint64_t pc = 0;     ///< Synthetic PC.
    uint64_t addr = 0;   ///< Data address for memory ops, else 0.
    OpClass cls = OpClass::Alu;
    bool taken = false;  ///< Direction, for conditional branches.
    /**
     * Distance (in dynamic ops) back to the producers of this op's
     * sources; 0 means no in-window register dependence. Kernels choose
     * values that match their dataflow (e.g. 1 for an accumulator chain).
     */
    uint8_t dep1 = 0;
    uint8_t dep2 = 0;
    /**
     * True for a store performed by *another* core (thread-study traces
     * only): the core model treats it as a coherence invalidation rather
     * than an executed instruction. Deliberately last so the common
     * aggregate initialisers can omit it.
     */
    bool foreign = false;
};

/** Instruction-mix totals, by op class and by reporting category. */
struct MixCounters {
    std::array<uint64_t, kNumOpClasses> byClass{};

    uint64_t total() const;
    uint64_t byCategory(MixCategory cat) const;
    /** Percentage share (0-100) of a category; 0 when empty. */
    double categoryPercent(MixCategory cat) const;

    MixCounters &operator+=(const MixCounters &other);
};

/** Probe configuration: what to collect and how much. */
struct ProbeConfig {
    /** Collect the full-op trace for the core model. */
    bool collectOps = false;
    /** Hard cap on retained ops. */
    size_t maxOps = 2'000'000;
    /**
     * Sampling: out of every @ref opInterval dynamic ops, the first
     * @ref opWindow are recorded. opWindow >= opInterval records
     * everything.
     */
    uint64_t opWindow = 200'000;
    uint64_t opInterval = 1'000'000;

    /** Accumulate per-site instruction counts (gprof substitute). */
    bool profileSites = false;
    /** Collect the branch trace for the CBP framework. */
    bool collectBranches = false;
    /** Hard cap on retained branch records. */
    size_t maxBranches = 4'000'000;
    /**
     * Skip this many dynamic ops before branch recording starts: the
     * paper traces an interval "roughly halfway through the encoding
     * run", i.e. past the warm-up of the first frames.
     */
    uint64_t branchWarmupOps = 0;
};

/**
 * Collector for one instrumented run.
 *
 * Not thread safe: each simulated encoder worker owns its own Probe and
 * results are merged afterwards (see Probe::mergeFrom).
 */
class Probe
{
  public:
    Probe() = default;
    explicit Probe(const ProbeConfig &config) : config_(config) {}

    const ProbeConfig &config() const { return config_; }

    // -- Kernel-facing emission API --------------------------------------

    /**
     * Enter an instrumented kernel. Sets the PC window for subsequent ops
     * and emits the call/return pair bookkeeping (2 unconditional
     * branches + small scalar preamble), approximating a real call.
     *
     * @param site      PC of the kernel (from sitePc()).
     * @param body_len  Modeled loop-body length in instructions; op PCs
     *                  cycle through this window.
     */
    void enterKernel(uint64_t site, int body_len = 32);

    /** Record @p n ops of class @p cls (no addresses, batched). */
    void ops(OpClass cls, uint64_t n, uint8_t dep1 = 0, uint8_t dep2 = 0);

    /** Record one memory op at @p addr. */
    void mem(OpClass cls, uint64_t addr, uint8_t dep1 = 0);

    /**
     * Record a run of @p n sequential vector memory ops starting at
     * @p addr with @p stride bytes between accesses.
     */
    void memRun(OpClass cls, uint64_t addr, int n, int stride,
                uint8_t dep1 = 0);

    /**
     * Record one data-dependent conditional branch (an RDO decision,
     * early-exit test, etc.).
     */
    void decision(uint64_t site, bool taken);

    /**
     * Record a counted loop's back-edge branches: @p iterations - 1 taken
     * plus one fall-through, all at the current kernel's loop-branch PC.
     */
    void loopBranches(uint64_t iterations);

    // -- Address-space management ----------------------------------------

    /**
     * Allocate @p size bytes of synthetic, deterministic address space
     * (4 KiB aligned). Encoders map each pixel/coefficient buffer once
     * and derive op addresses from the returned base.
     */
    uint64_t allocRegion(size_t size);

    // -- Results ----------------------------------------------------------

    const MixCounters &mix() const { return mix_; }
    uint64_t totalOps() const { return opSeq_; }

    const std::vector<TraceOp> &opTrace() const { return opTrace_; }
    const std::vector<BranchRecord> &branchTrace() const
    {
        return branchTrace_;
    }

    /** Move the collected op trace out (leaves the probe's trace empty). */
    std::vector<TraceOp> takeOpTrace() { return std::move(opTrace_); }
    /** Move the collected branch trace out. */
    std::vector<BranchRecord> takeBranchTrace()
    {
        return std::move(branchTrace_);
    }

    /** Dynamic conditional-branch count (for miss-rate denominators). */
    uint64_t condBranchCount() const
    {
        return mix_.byClass[static_cast<int>(OpClass::BranchCond)];
    }

    /**
     * Dynamic-instruction span covered by the collected branch trace
     * (first to last recorded branch) — the MPKI denominator for the
     * CBP study, mirroring the paper's fixed-length trace interval.
     */
    uint64_t branchTraceOpSpan() const
    {
        return branch_last_op_ > branch_first_op_
                   ? branch_last_op_ - branch_first_op_
                   : 0;
    }

    /**
     * Fold another probe's counters into this one (traces are appended up
     * to this probe's caps). Used to merge per-worker probes.
     */
    void mergeFrom(const Probe &other);

    /** Per-site dynamic instruction counts (see ProbeConfig::profileSites). */
    const std::unordered_map<uint64_t, uint64_t> &siteOps() const
    {
        return site_ops_;
    }

    /** Reset all counters and traces (configuration is kept). */
    void reset();

  private:
    /** Advance the op counter; returns how many of the @p n ops fall in
     *  the current sampling window (0 when op tracing is off). */
    uint64_t advance(uint64_t n);

    uint64_t nextPc();

    ProbeConfig config_{};
    MixCounters mix_{};
    uint64_t opSeq_ = 0;

    uint64_t siteBase_ = sitePc("vepro.default");
    int siteBodyLen_ = 32;
    uint32_t sitePos_ = 0;

    uint64_t nextRegion_ = 0x10000000ULL;

    uint64_t branch_first_op_ = 0;
    uint64_t branch_last_op_ = 0;
    std::unordered_map<uint64_t, uint64_t> site_ops_;
    uint64_t *site_slot_ = nullptr;  ///< Current site's counter (hot path).

    std::vector<TraceOp> opTrace_;
    std::vector<BranchRecord> branchTrace_;
};

/**
 * Scoped access to a thread-local "current probe".
 *
 * Codec kernels fetch the active probe via currentProbe() so that deep
 * call chains need not thread a Probe& through every signature. A null
 * current probe (the default) makes all emission free of side effects,
 * so un-instrumented library use pays only a pointer test.
 */
Probe *currentProbe();

/**
 * Emit the op stream of scalar control/bookkeeping code (mode decision
 * logic, cost tables, syntax-element management) — the code that
 * dominates real encoders' scalar instruction mix.
 *
 * Per unit this emits roughly: three scalar loads (a hot cost/LUT entry,
 * a spread per-block metadata entry, a stack slot), one or two scalar
 * stores, ALU/address arithmetic, and a loop branch every few units.
 *
 * @param probe        Destination (must not be null).
 * @param site         Call-site PC for the emitted ops.
 * @param units        Number of control units to emit.
 * @param hot_addr     Base of a small hot table (cycled over 2 KiB).
 * @param spread_addr  Base of a large per-block metadata region.
 * @param spread_step  Stride applied per unit within the spread region.
 */
void emitControl(Probe &probe, uint64_t site, int units, uint64_t hot_addr,
                 uint64_t spread_addr, uint64_t spread_step);

/** RAII installer for the thread-local current probe. */
class ProbeScope
{
  public:
    explicit ProbeScope(Probe *probe);
    ~ProbeScope();

    ProbeScope(const ProbeScope &) = delete;
    ProbeScope &operator=(const ProbeScope &) = delete;

  private:
    Probe *saved_;
};

} // namespace vepro::trace

#endif // VEPRO_TRACE_PROBE_HPP
