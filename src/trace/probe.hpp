#ifndef VEPRO_TRACE_PROBE_HPP
#define VEPRO_TRACE_PROBE_HPP

/**
 * @file
 * Instrumentation probe: the repository's substitute for Intel Pin.
 *
 * Encoder kernels call into a Probe to report the dynamic instructions
 * they would execute as compiled AVX2 code: op class, synthetic program
 * counter, data address, branch outcome, and dependency distances. The
 * probe accumulates three products:
 *
 *  - instruction-mix counters (always on, batched — Table 2 / Fig. 3),
 *  - a branch trace (pc, taken) for the CBP predictor study (Figs. 8-10),
 *  - a sampled full-op trace for the out-of-order core model
 *    (Figs. 4-7, 11, 16).
 *
 * Synthetic PCs come from a per-call-site registry: each instrumented
 * kernel or decision point owns a stable 1 KiB code window derived from a
 * hash of its name, and ops within the site cycle through a small loop
 * body, mirroring the I-footprint of real compiled kernels.
 */

#include <array>
#include <cstdint>
#include <unordered_map>
#include <string>
#include <string_view>
#include <vector>

#include "trace/opclass.hpp"
#include "trace/sink.hpp"

namespace vepro::trace
{

/**
 * Stable synthetic PC for a named instrumentation site.
 *
 * The value is a pure function of the name (FNV-1a, masked into a
 * canonical user-space range and 1 KiB aligned), so traces are
 * reproducible across runs and machines.
 */
uint64_t sitePc(std::string_view name);

/**
 * Reverse lookup for profiling: the name registered for a site PC (the
 * 1 KiB-window base, ignoring code-variant offsets), or "?" if the PC
 * was never registered through sitePc().
 */
std::string siteName(uint64_t pc);

/** Instruction-mix totals, by op class and by reporting category. */
struct MixCounters {
    std::array<uint64_t, kNumOpClasses> byClass{};

    uint64_t total() const;
    uint64_t byCategory(MixCategory cat) const;
    /** Percentage share (0-100) of a category; 0 when empty. */
    double categoryPercent(MixCategory cat) const;

    MixCounters &operator+=(const MixCounters &other);
};

/** Probe configuration: what to collect and how much. */
struct ProbeConfig {
    /** Collect the full-op trace for the core model. */
    bool collectOps = false;
    /** Hard cap on retained ops. */
    size_t maxOps = 2'000'000;
    /**
     * Sampling: out of every @ref opInterval dynamic ops, the first
     * @ref opWindow are recorded. opWindow >= opInterval records
     * everything.
     */
    uint64_t opWindow = 200'000;
    uint64_t opInterval = 1'000'000;

    /** Accumulate per-site instruction counts (gprof substitute). */
    bool profileSites = false;
    /** Collect the branch trace for the CBP framework. */
    bool collectBranches = false;
    /** Hard cap on retained branch records. */
    size_t maxBranches = 4'000'000;
    /**
     * Skip this many dynamic ops before branch recording starts: the
     * paper traces an interval "roughly halfway through the encoding
     * run", i.e. past the warm-up of the first frames.
     */
    uint64_t branchWarmupOps = 0;

    /**
     * Full-fidelity streaming configuration: every op (and optionally
     * every branch) is recorded, uncapped and unsampled. Only sensible
     * with an external sink (Probe::setSink) consuming the stream as it
     * is produced — materialising it would be O(trace length) again.
     */
    static ProbeConfig streaming(bool branches = false);
};

/**
 * Collector for one instrumented run.
 *
 * Not thread safe: each simulated encoder worker owns its own Probe and
 * results are merged afterwards (see Probe::mergeFrom).
 */
class Probe
{
  public:
    Probe() = default;
    explicit Probe(const ProbeConfig &config) : config_(config) {}

    const ProbeConfig &config() const { return config_; }

    /**
     * Stream recorded ops/branches to @p sink instead of the internal
     * capture vectors. The sampling window and caps of the ProbeConfig
     * still gate what is recorded, so a sink-fed consumer sees exactly
     * the stream a capturing probe would have materialised; configure
     * with ProbeConfig::streaming() for the uncapped full trace. The
     * sink is not owned and must outlive the probe's emission. Pass
     * nullptr to restore internal capture.
     */
    void setSink(TraceSink *sink) { sink_ = sink; }
    TraceSink *sink() const { return sink_; }

    /**
     * Deliver any records still staged in the probe's emission block to
     * the sink (or internal capture). Recorded ops, branches, and
     * kernel entries are staged in TraceBlock units (TraceBlock::kOps
     * ops plus the events among them) and delivered whole through
     * TraceSink::onBlock, so sink consumers must call this once
     * emission ends — before the sink's own flush() — to receive the
     * tail of the stream. The trace accessors (opTrace(),
     * takeCapture(), ...) flush implicitly.
     */
    void flushToSink() { flushBlock(); }

    // -- Kernel-facing emission API --------------------------------------

    /**
     * Enter an instrumented kernel. Sets the PC window for subsequent ops
     * and emits the call/return pair bookkeeping (2 unconditional
     * branches + small scalar preamble), approximating a real call.
     *
     * @param site      PC of the kernel (from sitePc()).
     * @param body_len  Modeled loop-body length in instructions; op PCs
     *                  cycle through this window.
     */
    void enterKernel(uint64_t site, int body_len = 32);

    /** Record @p n ops of class @p cls (no addresses, batched). */
    void ops(OpClass cls, uint64_t n, uint8_t dep1 = 0, uint8_t dep2 = 0);

    /** Record one memory op at @p addr. */
    void mem(OpClass cls, uint64_t addr, uint8_t dep1 = 0);

    /**
     * Record a run of @p n sequential vector memory ops starting at
     * @p addr with @p stride bytes between accesses.
     */
    void memRun(OpClass cls, uint64_t addr, int n, int stride,
                uint8_t dep1 = 0);

    /**
     * Record one data-dependent conditional branch (an RDO decision,
     * early-exit test, etc.).
     */
    void decision(uint64_t site, bool taken);

    /**
     * Record a counted loop's back-edge branches: @p iterations - 1 taken
     * plus one fall-through, all at the current kernel's loop-branch PC.
     */
    void loopBranches(uint64_t iterations);

    // -- Address-space management ----------------------------------------

    /**
     * Allocate @p size bytes of synthetic, deterministic address space
     * (4 KiB aligned). Encoders map each pixel/coefficient buffer once
     * and derive op addresses from the returned base.
     */
    uint64_t allocRegion(size_t size);

    // -- Results ----------------------------------------------------------

    const MixCounters &mix() const { return mix_; }
    uint64_t totalOps() const { return opSeq_; }

    /** Ops recorded so far (delivered to the sink or captured). */
    uint64_t recordedOps() const { return ops_recorded_; }
    /** Branches recorded so far. */
    uint64_t recordedBranches() const { return branches_recorded_; }
    /**
     * Ops that fell inside the sampling window but were cut by the
     * maxOps cap (including merge truncation). Non-zero means the op
     * trace under-represents the run; benches should warn rather than
     * report denominators computed from a silently clipped trace.
     */
    uint64_t droppedOps() const { return dropped_ops_; }
    /** Branches lost to the maxBranches cap (see droppedOps()). */
    uint64_t droppedBranches() const { return dropped_branches_; }

    const std::vector<TraceOp> &opTrace() const
    {
        flushBlock();
        return capture_.ops();
    }
    const std::vector<BranchRecord> &branchTrace() const
    {
        flushBlock();
        return capture_.branches();
    }

    /** Move the collected op trace out (leaves the probe's trace empty). */
    std::vector<TraceOp> takeOpTrace()
    {
        flushBlock();
        return capture_.takeOps();
    }
    /** Move the collected branch trace out. */
    std::vector<BranchRecord> takeBranchTrace()
    {
        flushBlock();
        return capture_.takeBranches();
    }
    /** Move the whole capture sink out (ops + branches together). */
    VectorSink takeCapture()
    {
        flushBlock();
        VectorSink out = std::move(capture_);
        capture_ = VectorSink{};
        return out;
    }

    /** Dynamic conditional-branch count (for miss-rate denominators). */
    uint64_t condBranchCount() const
    {
        return mix_.byClass[static_cast<int>(OpClass::BranchCond)];
    }

    /**
     * Dynamic-instruction span covered by the collected branch trace
     * (first to last recorded branch) — the MPKI denominator for the
     * CBP study, mirroring the paper's fixed-length trace interval.
     */
    uint64_t branchTraceOpSpan() const
    {
        return branch_last_op_ > branch_first_op_
                   ? branch_last_op_ - branch_first_op_
                   : 0;
    }

    /**
     * Fold another probe's counters into this one. Captured traces are
     * appended up to this probe's caps; records cut by a cap are counted
     * in droppedOps()/droppedBranches() (along with drops the other
     * probe had already accumulated) instead of vanishing silently.
     * Used to merge per-worker probes.
     */
    void mergeFrom(const Probe &other);

    /** Per-site dynamic instruction counts (see ProbeConfig::profileSites). */
    const std::unordered_map<uint64_t, uint64_t> &siteOps() const
    {
        return site_ops_;
    }

    /** Reset all counters and traces (configuration is kept). */
    void reset();

  private:
    /** Ops staged per block delivery; one block amortises the virtual
     *  dispatch across thousands of records and is the ownership unit
     *  of the parallel handoff path. */
    static constexpr size_t kBlockOps = TraceBlock::kOps;

    /** Advance the op counter; returns how many of the @p n ops fall in
     *  the current sampling window and under the cap (0 when op tracing
     *  is off). Cap-truncated in-window ops are counted as dropped. */
    uint64_t advance(uint64_t n);

    uint64_t nextPc();

    /** Destination of recorded records: external sink or capture. */
    TraceSink *dest() const { return sink_ != nullptr ? sink_ : &capture_; }

    /** Deliver the staged block through dest()->onBlock (mutable
     *  state: callable from const accessors, which must observe a
     *  fully delivered trace). A sink that moves from the block takes
     *  the buffers; either way the stage is left empty with standard
     *  capacity re-reserved. */
    void flushBlock() const;

    /** Record one op (updates the recorded counter). */
    void emitOp(const TraceOp &op);
    /** Record a batch of ops. */
    void emitOps(const TraceOp *ops, size_t n);
    /** Stage the deferred kernel-site event (see enterKernel) just
     *  before the first op recorded under that site. */
    void stagePendingKernel();
    /** Record one branch (caller already applied warmup/cap gating) as
     *  an in-block event at the current op position, preserving
     *  program order without cutting the block. */
    void emitBranch(uint64_t pc, bool taken);

    ProbeConfig config_{};
    MixCounters mix_{};
    uint64_t opSeq_ = 0;
    /** opSeq_ % config_.opInterval, maintained by wrap-on-compare so the
     *  emission hot path never divides. */
    uint64_t interval_pos_ = 0;

    uint64_t siteBase_ = sitePc("vepro.default");
    int siteBodyLen_ = 32;
    uint32_t sitePos_ = 0;  ///< Position in [0, siteBodyLen_), wrapped.

    uint64_t nextRegion_ = 0x10000000ULL;

    uint64_t branch_first_op_ = 0;
    uint64_t branch_last_op_ = 0;
    std::unordered_map<uint64_t, uint64_t> site_ops_;
    uint64_t *site_slot_ = nullptr;  ///< Current site's counter (hot path).

    TraceSink *sink_ = nullptr;  ///< External consumer, overrides capture.
    mutable VectorSink capture_; ///< Internal batch capture (legacy API).
    /** Kernel-site event deferred until an op is actually recorded:
     *  in sampled runs, kernel entries in the gaps between op windows
     *  vastly outnumber recorded ops and carry no information a
     *  stream consumer can use (attribution only needs the site in
     *  force when recording resumes). */
    uint64_t pending_site_ = 0;
    bool pending_site_valid_ = false;
    /** Emission staging block: recorded ops accumulate in stage_.ops
     *  and branch/kernel records as positioned events, delivered whole
     *  through dest()->onBlock when the op span reaches kBlockOps (or
     *  the event list does, for branch-only streams). */
    mutable TraceBlock stage_ = makeStage();

    static TraceBlock
    makeStage()
    {
        TraceBlock b;
        b.reserveStandard();
        return b;
    }
    uint64_t ops_recorded_ = 0;
    uint64_t branches_recorded_ = 0;
    uint64_t dropped_ops_ = 0;
    uint64_t dropped_branches_ = 0;
};

/**
 * Scoped access to a thread-local "current probe".
 *
 * Codec kernels fetch the active probe via currentProbe() so that deep
 * call chains need not thread a Probe& through every signature. A null
 * current probe (the default) makes all emission free of side effects,
 * so un-instrumented library use pays only a pointer test.
 */
Probe *currentProbe();

/**
 * Emit the op stream of scalar control/bookkeeping code (mode decision
 * logic, cost tables, syntax-element management) — the code that
 * dominates real encoders' scalar instruction mix.
 *
 * Per unit this emits roughly: three scalar loads (a hot cost/LUT entry,
 * a spread per-block metadata entry, a stack slot), one or two scalar
 * stores, ALU/address arithmetic, and a loop branch every few units.
 *
 * @param probe        Destination (must not be null).
 * @param site         Call-site PC for the emitted ops.
 * @param units        Number of control units to emit.
 * @param hot_addr     Base of a small hot table (cycled over 2 KiB).
 * @param spread_addr  Base of a large per-block metadata region.
 * @param spread_step  Stride applied per unit within the spread region.
 */
void emitControl(Probe &probe, uint64_t site, int units, uint64_t hot_addr,
                 uint64_t spread_addr, uint64_t spread_step);

/** RAII installer for the thread-local current probe. */
class ProbeScope
{
  public:
    explicit ProbeScope(Probe *probe);
    ~ProbeScope();

    ProbeScope(const ProbeScope &) = delete;
    ProbeScope &operator=(const ProbeScope &) = delete;

  private:
    Probe *saved_;
};

} // namespace vepro::trace

#endif // VEPRO_TRACE_PROBE_HPP
