#include "trace/trace_io.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

namespace vepro::trace
{

namespace
{

/// Refuse implausible lengths before allocating for them: a legitimate
/// block holds ~4096 ops (a few tens of KiB encoded), so these caps are
/// orders of magnitude above anything FileSink writes while keeping a
/// corrupt length field from turning into a multi-GiB allocation.
constexpr uint32_t kMaxBlockPayload = 1u << 26;
constexpr uint64_t kMaxBlockRecords = 1u << 20;
constexpr uint32_t kMaxMetadataBytes = 1u << 24;

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t
fnv1a64(uint64_t h, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

[[noreturn]] void
fail(const std::string &path, uint64_t offset, const std::string &what)
{
    throw std::runtime_error("trace: " + path + " @ offset " +
                             std::to_string(offset) + ": " + what);
}

void
putVarint(std::string &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(static_cast<uint8_t>(v) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(static_cast<uint8_t>(v)));
}

uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Bounds-checked cursor over one block payload. Errors are plain
/// std::runtime_error; the caller re-throws with path + block offset.
struct ByteReader {
    const uint8_t *p;
    const uint8_t *end;

    uint8_t
    u8(const char *what)
    {
        if (p == end) {
            throw std::runtime_error(std::string("truncated ") + what);
        }
        return *p++;
    }

    uint64_t
    varint(const char *what)
    {
        uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            const uint8_t byte = u8(what);
            v |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0) {
                return v;
            }
        }
        throw std::runtime_error(std::string("overlong varint in ") + what);
    }
};

/// One op-descriptor dictionary entry: the flags byte plus the dep
/// pair. Real op streams cycle through a handful of (class, taken,
/// foreign, deps) shapes per block, so most ops reference an entry with
/// a one-byte code instead of re-spelling 1-3 descriptor bytes.
struct OpDesc {
    uint8_t flags = 0;
    uint8_t dep1 = 0;
    uint8_t dep2 = 0;

    bool
    operator==(const OpDesc &o) const
    {
        return flags == o.flags && dep1 == o.dep1 && dep2 == o.dep2;
    }
};

/// Encode @p block into @p out (cleared first). All dictionaries and
/// delta chains reset per block so every block decodes independently of
/// its predecessors.
void
encodeBlock(const TraceBlock &block, std::string &out)
{
    out.clear();
    putVarint(out, block.ops.size());
    putVarint(out, block.events.size());
    std::vector<OpDesc> descs;
    uint64_t prev_pc = 0;
    uint64_t prev_addr[kNumOpClasses] = {};
    for (const TraceOp &op : block.ops) {
        uint8_t flags = static_cast<uint8_t>(op.cls) & 0x0f;
        const bool has_addr = op.addr != 0;
        const bool has_deps = (op.dep1 | op.dep2) != 0;
        if (op.taken) {
            flags |= 0x10;
        }
        if (op.foreign) {
            flags |= 0x20;
        }
        if (has_addr) {
            flags |= 0x40;
        }
        if (has_deps) {
            flags |= 0x80;
        }
        // Descriptor: a dictionary code when seen before in this block
        // (the overwhelmingly common case), else 0 + the literal bytes.
        const OpDesc desc{flags, has_deps ? op.dep1 : uint8_t{0},
                          has_deps ? op.dep2 : uint8_t{0}};
        size_t idx = descs.size();
        for (size_t i = 0; i < descs.size(); ++i) {
            if (descs[i] == desc) {
                idx = i;
                break;
            }
        }
        if (idx < descs.size()) {
            putVarint(out, idx + 1);
        } else {
            out.push_back(0);
            out.push_back(static_cast<char>(flags));
            if (has_deps) {
                out.push_back(static_cast<char>(op.dep1));
                out.push_back(static_cast<char>(op.dep2));
            }
            descs.push_back(desc);
        }
        putVarint(out, zigzag(static_cast<int64_t>(op.pc - prev_pc)));
        prev_pc = op.pc;
        if (has_addr) {
            // Per-class address chains: loads stride against the last
            // load, stores against the last store, so interleaved
            // streams keep their per-stream locality.
            uint64_t &prev = prev_addr[static_cast<int>(op.cls)];
            putVarint(out, zigzag(static_cast<int64_t>(op.addr - prev)));
            prev = op.addr;
        }
    }
    std::vector<uint64_t> values;
    uint64_t prev_pos = 0;
    for (const TraceBlock::Event &e : block.events) {
        putVarint(out, e.pos - prev_pos);
        prev_pos = e.pos;
        uint8_t packed = e.kind == TraceBlock::Event::Kernel ? 1 : 0;
        if (e.taken) {
            packed |= 2;
        }
        out.push_back(static_cast<char>(packed));
        // Event values (branch pcs, kernel sites) are drawn from a
        // small recurring set but look like random 64-bit integers, so
        // delta coding is useless: dictionary-code them instead.
        size_t idx = values.size();
        for (size_t i = 0; i < values.size(); ++i) {
            if (values[i] == e.value) {
                idx = i;
                break;
            }
        }
        if (idx < values.size()) {
            putVarint(out, idx + 1);
        } else {
            out.push_back(0);
            putVarint(out, e.value);
            values.push_back(e.value);
        }
    }
}

/// Decode one payload into @p block (cleared first). @p delta_fault is
/// the vepro-check tracefile-delta injection: every op pc delta decodes
/// off by one.
void
decodeBlock(const uint8_t *data, size_t n, TraceBlock &block,
            bool delta_fault)
{
    ByteReader r{data, data + n};
    const uint64_t op_count = r.varint("op count");
    const uint64_t event_count = r.varint("event count");
    if (op_count > kMaxBlockRecords || event_count > kMaxBlockRecords) {
        throw std::runtime_error("implausible record count");
    }
    block.clear();
    block.ops.reserve(op_count);
    block.events.reserve(event_count);
    std::vector<OpDesc> descs;
    uint64_t prev_pc = 0;
    uint64_t prev_addr[kNumOpClasses] = {};
    for (uint64_t i = 0; i < op_count; ++i) {
        const uint64_t code = r.varint("op descriptor code");
        OpDesc desc;
        if (code == 0) {
            desc.flags = r.u8("op flags");
            const uint8_t cls = desc.flags & 0x0f;
            if (cls >= kNumOpClasses) {
                throw std::runtime_error("bad op class " +
                                         std::to_string(cls));
            }
            if ((desc.flags & 0x80) != 0) {
                desc.dep1 = r.u8("op deps");
                desc.dep2 = r.u8("op deps");
            }
            descs.push_back(desc);
        } else {
            if (code > descs.size()) {
                throw std::runtime_error("op descriptor code " +
                                         std::to_string(code) +
                                         " past the block's " +
                                         std::to_string(descs.size()) +
                                         " descriptors");
            }
            desc = descs[code - 1];
        }
        TraceOp op;
        op.cls = static_cast<OpClass>(desc.flags & 0x0f);
        op.taken = (desc.flags & 0x10) != 0;
        op.foreign = (desc.flags & 0x20) != 0;
        op.dep1 = desc.dep1;
        op.dep2 = desc.dep2;
        int64_t pc_delta = unzigzag(r.varint("pc delta"));
        if (delta_fault) {
            ++pc_delta;
        }
        op.pc = prev_pc + static_cast<uint64_t>(pc_delta);
        prev_pc = op.pc;
        if ((desc.flags & 0x40) != 0) {
            uint64_t &prev = prev_addr[static_cast<int>(op.cls)];
            op.addr = prev + static_cast<uint64_t>(
                                 unzigzag(r.varint("addr delta")));
            prev = op.addr;
        }
        block.ops.push_back(op);
    }
    std::vector<uint64_t> values;
    uint64_t prev_pos = 0;
    for (uint64_t i = 0; i < event_count; ++i) {
        TraceBlock::Event e;
        const uint64_t pos = prev_pos + r.varint("event position");
        if (pos > block.ops.size()) {
            throw std::runtime_error("event position " + std::to_string(pos) +
                                     " past the block's " +
                                     std::to_string(block.ops.size()) +
                                     " ops");
        }
        prev_pos = pos;
        e.pos = static_cast<uint32_t>(pos);
        const uint8_t packed = r.u8("event kind");
        if ((packed & ~static_cast<uint8_t>(3)) != 0) {
            throw std::runtime_error("bad event kind byte");
        }
        e.kind = (packed & 1) != 0 ? TraceBlock::Event::Kernel
                                   : TraceBlock::Event::Branch;
        e.taken = (packed & 2) != 0;
        const uint64_t code = r.varint("event value code");
        if (code == 0) {
            e.value = r.varint("event value");
            values.push_back(e.value);
        } else {
            if (code > values.size()) {
                throw std::runtime_error("event value code " +
                                         std::to_string(code) +
                                         " past the block's " +
                                         std::to_string(values.size()) +
                                         " values");
            }
            e.value = values[code - 1];
        }
        block.events.push_back(e);
    }
    if (r.p != r.end) {
        throw std::runtime_error("trailing bytes in block payload");
    }
}

uint64_t
countBranchEvents(const TraceBlock &block)
{
    uint64_t n = 0;
    for (const TraceBlock::Event &e : block.events) {
        if (e.kind == TraceBlock::Event::Branch) {
            ++n;
        }
    }
    return n;
}

/// The retired fixed-width formats: recognise their magics so the error
/// says "old format" instead of "corrupt file".
bool
isLegacyMagic(const char magic[4])
{
    return std::memcmp(magic, "VEPB", 4) == 0 ||
           std::memcmp(magic, "VEPO", 4) == 0;
}

[[noreturn]] void
failLegacy(const std::string &path, const char magic[4])
{
    throw std::runtime_error(
        "trace: " + path + ": legacy '" + std::string(magic, 4) +
        "' fixed-width trace (pre-TraceFile v" +
        std::to_string(kTraceFileVersion) +
        "); this build reads 'VETF' TraceFiles only — recapture with "
        "trace::FileSink");
}

} // namespace

// ---------------------------------------------------------------------------
// FileSink

FileSink::FileSink(std::string path) : path_(std::move(path))
{
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) {
        throw std::runtime_error("trace: cannot open " + path_ +
                                 " for writing");
    }
    stage_.reserveStandard();
    checksum_ = kFnvOffset;
    write("VETF", 4);
    const uint32_t version = kTraceFileVersion;
    write(&version, sizeof version);
}

FileSink::~FileSink()
{
    if (file_ != nullptr) {
        std::fclose(file_);  // unsealed: a torn file readers reject
    }
}

void
FileSink::write(const void *p, size_t n)
{
    if (std::fwrite(p, 1, n, file_) != n) {
        throw std::runtime_error("trace: " + path_ + ": write failed");
    }
    bytes_written_ += n;
}

void
FileSink::writeBlock(const TraceBlock &block)
{
    if (block.empty()) {
        return;
    }
    encodeBlock(block, payload_);
    const uint32_t len = static_cast<uint32_t>(payload_.size());
    write(&len, sizeof len);
    write(payload_.data(), payload_.size());
    checksum_ = fnv1a64(checksum_, payload_.data(), payload_.size());
    op_count_ += block.ops.size();
    branch_count_ += countBranchEvents(block);
    ++block_count_;
}

void
FileSink::flushStage()
{
    if (!stage_.empty()) {
        writeBlock(stage_);
        stage_.clear();
    }
}

void
FileSink::onOp(const TraceOp &op)
{
    onOps(&op, 1);
}

void
FileSink::onOps(const TraceOp *ops, size_t n)
{
    if (sealed_) {
        throw std::logic_error("trace: record delivered after flush: " +
                               path_);
    }
    while (n > 0) {
        const size_t room = TraceBlock::kOps - stage_.ops.size();
        const size_t take = n < room ? n : room;
        stage_.ops.insert(stage_.ops.end(), ops, ops + take);
        ops += take;
        n -= take;
        if (stage_.ops.size() >= TraceBlock::kOps) {
            flushStage();
        }
    }
}

void
FileSink::onBranch(const BranchRecord &branch)
{
    if (sealed_) {
        throw std::logic_error("trace: record delivered after flush: " +
                               path_);
    }
    TraceBlock::Event e;
    e.pos = static_cast<uint32_t>(stage_.ops.size());
    e.kind = TraceBlock::Event::Branch;
    e.taken = branch.taken;
    e.value = branch.pc;
    stage_.events.push_back(e);
    // Branch-only streams never fill the op span; bound the event list
    // the same way so staging stays O(1).
    if (stage_.events.size() >= TraceBlock::kOps) {
        flushStage();
    }
}

void
FileSink::onKernel(uint64_t site)
{
    if (sealed_) {
        throw std::logic_error("trace: record delivered after flush: " +
                               path_);
    }
    TraceBlock::Event e;
    e.pos = static_cast<uint32_t>(stage_.ops.size());
    e.kind = TraceBlock::Event::Kernel;
    e.value = site;
    stage_.events.push_back(e);
    if (stage_.events.size() >= TraceBlock::kOps) {
        flushStage();
    }
}

void
FileSink::onBlock(TraceBlock &&block)
{
    if (sealed_) {
        throw std::logic_error("trace: record delivered after flush: " +
                               path_);
    }
    // Records staged before this block came first in program order.
    flushStage();
    writeBlock(block);
}

void
FileSink::setMetadata(std::string bytes)
{
    if (sealed_) {
        throw std::logic_error("trace: setMetadata after flush: " + path_);
    }
    metadata_ = std::move(bytes);
}

void
FileSink::flush()
{
    if (sealed_) {
        return;
    }
    if (defer_seal_) {
        flushStage();
        return;
    }
    seal();
}

void
FileSink::seal()
{
    if (sealed_) {
        return;
    }
    flushStage();
    const uint32_t end_marker = 0;
    write(&end_marker, sizeof end_marker);
    const uint32_t meta_bytes = static_cast<uint32_t>(metadata_.size());
    write(&meta_bytes, sizeof meta_bytes);
    write(metadata_.data(), metadata_.size());
    checksum_ = fnv1a64(checksum_, metadata_.data(), metadata_.size());
    write(&op_count_, sizeof op_count_);
    write(&branch_count_, sizeof branch_count_);
    write(&block_count_, sizeof block_count_);
    write(&meta_bytes, sizeof meta_bytes);
    write(&checksum_, sizeof checksum_);
    const int rc = std::fclose(file_);
    file_ = nullptr;
    sealed_ = true;
    if (rc != 0) {
        throw std::runtime_error("trace: " + path_ + ": close failed");
    }
}

// ---------------------------------------------------------------------------
// FileSource

namespace
{

struct FileCloser {
    std::FILE *f;
    ~FileCloser()
    {
        if (f != nullptr) {
            std::fclose(f);
        }
    }
};

/// Validate magic + version at the current read position (offset 0).
void
readHeader(std::FILE *f, const std::string &path)
{
    char magic[4];
    if (std::fread(magic, 1, 4, f) != 4) {
        fail(path, 0, "truncated header");
    }
    if (std::memcmp(magic, "VETF", 4) != 0) {
        if (isLegacyMagic(magic)) {
            failLegacy(path, magic);
        }
        fail(path, 0, "bad magic (not a vepro trace)");
    }
    uint32_t version = 0;
    if (std::fread(&version, 1, sizeof version, f) != sizeof version) {
        fail(path, 4, "truncated header");
    }
    if (version != kTraceFileVersion) {
        fail(path, 4,
             "unsupported version " + std::to_string(version) +
                 " (this build reads v" +
                 std::to_string(kTraceFileVersion) + ")");
    }
}

} // namespace

TraceFileInfo
FileSource::replay(TraceSink &sink) const
{
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr) {
        throw std::runtime_error("trace: cannot open " + path_);
    }
    FileCloser closer{f};
    readHeader(f, path_);
    uint64_t offset = 8;
    const auto need = [&](void *p, size_t n, const char *what) {
        if (std::fread(p, 1, n, f) != n) {
            fail(path_, offset, std::string("truncated ") + what);
        }
        offset += n;
    };

    TraceFileInfo info;
    uint64_t checksum = kFnvOffset;
    std::string payload;
    TraceBlock block;
    block.reserveStandard();
    for (;;) {
        const uint64_t block_offset = offset;
        uint32_t len = 0;
        need(&len, sizeof len, "block length");
        if (len == 0) {
            break;  // end-of-blocks marker
        }
        if (len > kMaxBlockPayload) {
            fail(path_, block_offset,
                 "implausible block size " + std::to_string(len));
        }
        payload.resize(len);
        need(payload.data(), len, "block payload");
        checksum = fnv1a64(checksum, payload.data(), payload.size());
        try {
            decodeBlock(reinterpret_cast<const uint8_t *>(payload.data()),
                        payload.size(), block, delta_fault_);
        } catch (const std::exception &e) {
            fail(path_, block_offset, e.what());
        }
        info.opCount += block.ops.size();
        info.branchCount += countBranchEvents(block);
        ++info.blockCount;
        sink.onBlock(std::move(block));
        block.clear();  // moved-from or not: reset for reuse
        block.reserveStandard();
    }

    uint32_t meta_bytes = 0;
    need(&meta_bytes, sizeof meta_bytes, "metadata length");
    if (meta_bytes > kMaxMetadataBytes) {
        fail(path_, offset - sizeof meta_bytes,
             "implausible metadata size " + std::to_string(meta_bytes));
    }
    info.metadata.resize(meta_bytes);
    need(info.metadata.data(), meta_bytes, "metadata");
    checksum = fnv1a64(checksum, info.metadata.data(), info.metadata.size());

    const uint64_t footer_offset = offset;
    uint64_t op_count = 0;
    uint64_t branch_count = 0;
    uint64_t block_count = 0;
    uint32_t meta_bytes_again = 0;
    uint64_t want = 0;
    need(&op_count, sizeof op_count, "footer");
    need(&branch_count, sizeof branch_count, "footer");
    need(&block_count, sizeof block_count, "footer");
    need(&meta_bytes_again, sizeof meta_bytes_again, "footer");
    need(&want, sizeof want, "footer");
    if (std::fgetc(f) != EOF) {
        fail(path_, offset, "trailing bytes after footer");
    }
    if (op_count != info.opCount || branch_count != info.branchCount ||
        block_count != info.blockCount || meta_bytes_again != meta_bytes) {
        fail(path_, footer_offset,
             "footer count mismatch (footer " + std::to_string(op_count) +
                 " ops / " + std::to_string(branch_count) + " branches / " +
                 std::to_string(block_count) + " blocks, decoded " +
                 std::to_string(info.opCount) + " / " +
                 std::to_string(info.branchCount) + " / " +
                 std::to_string(info.blockCount) + ")");
    }
    if (want != checksum) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "0x%016llx, computed 0x%016llx",
                      static_cast<unsigned long long>(want),
                      static_cast<unsigned long long>(checksum));
        fail(path_, footer_offset,
             std::string("checksum mismatch (footer ") + buf +
                 ") — corrupt capture");
    }
    info.fileBytes = offset;
    return info;
}

TraceFileInfo
FileSource::inspect(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        throw std::runtime_error("trace: cannot open " + path);
    }
    FileCloser closer{f};
    readHeader(f, path);
    if (std::fseek(f, 0, SEEK_END) != 0) {
        fail(path, 8, "cannot seek");
    }
    const long size = std::ftell(f);
    // Header (8) + end marker (4) + metadata length (4) + footer (36).
    constexpr long kFooterBytes = 8 + 8 + 8 + 4 + 8;
    constexpr long kMinFile = 8 + 4 + 4 + kFooterBytes;
    if (size < kMinFile) {
        fail(path, static_cast<uint64_t>(size > 0 ? size : 0),
             "truncated file (no footer)");
    }
    TraceFileInfo info;
    info.fileBytes = static_cast<uint64_t>(size);
    std::fseek(f, size - kFooterBytes, SEEK_SET);
    uint64_t offset = static_cast<uint64_t>(size - kFooterBytes);
    const auto need = [&](void *p, size_t n, const char *what) {
        if (std::fread(p, 1, n, f) != n) {
            fail(path, offset, std::string("truncated ") + what);
        }
        offset += n;
    };
    uint32_t meta_bytes = 0;
    need(&info.opCount, sizeof info.opCount, "footer");
    need(&info.branchCount, sizeof info.branchCount, "footer");
    need(&info.blockCount, sizeof info.blockCount, "footer");
    need(&meta_bytes, sizeof meta_bytes, "footer");
    uint64_t checksum = 0;
    need(&checksum, sizeof checksum, "footer");
    if (static_cast<long>(meta_bytes) > size - kMinFile) {
        fail(path, static_cast<uint64_t>(size - kFooterBytes + 24),
             "implausible metadata size " + std::to_string(meta_bytes));
    }
    std::fseek(f, size - kFooterBytes - static_cast<long>(meta_bytes),
               SEEK_SET);
    offset = static_cast<uint64_t>(size - kFooterBytes) - meta_bytes;
    info.metadata.resize(meta_bytes);
    need(info.metadata.data(), meta_bytes, "metadata");
    return info;
}

} // namespace vepro::trace
