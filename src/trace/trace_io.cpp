#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace vepro::trace
{

namespace
{

constexpr uint32_t kVersion = 1;

void
writeBytes(std::ofstream &out, const void *p, size_t n)
{
    out.write(static_cast<const char *>(p), static_cast<std::streamsize>(n));
    if (!out) {
        throw std::runtime_error("trace_io: write failed");
    }
}

void
readBytes(std::ifstream &in, void *p, size_t n)
{
    in.read(static_cast<char *>(p), static_cast<std::streamsize>(n));
    if (!in) {
        throw std::runtime_error("trace_io: truncated or unreadable trace");
    }
}

void
checkHeader(std::ifstream &in, const char expect[4])
{
    char magic[4];
    readBytes(in, magic, 4);
    if (std::memcmp(magic, expect, 4) != 0) {
        throw std::runtime_error("trace_io: bad magic");
    }
    uint32_t version = 0;
    readBytes(in, &version, sizeof version);
    if (version != kVersion) {
        throw std::runtime_error("trace_io: unsupported version");
    }
}

} // namespace

void
writeBranchTrace(const std::string &path,
                 const std::vector<BranchRecord> &trace)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw std::runtime_error("trace_io: cannot open " + path);
    }
    writeBytes(out, "VEPB", 4);
    writeBytes(out, &kVersion, sizeof kVersion);
    uint64_t count = trace.size();
    writeBytes(out, &count, sizeof count);
    for (const BranchRecord &r : trace) {
        writeBytes(out, &r.pc, sizeof r.pc);
        uint8_t taken = r.taken ? 1 : 0;
        writeBytes(out, &taken, 1);
    }
}

std::vector<BranchRecord>
readBranchTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("trace_io: cannot open " + path);
    }
    checkHeader(in, "VEPB");
    uint64_t count = 0;
    readBytes(in, &count, sizeof count);
    std::vector<BranchRecord> trace;
    trace.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        BranchRecord r{};
        readBytes(in, &r.pc, sizeof r.pc);
        uint8_t taken = 0;
        readBytes(in, &taken, 1);
        r.taken = taken != 0;
        trace.push_back(r);
    }
    return trace;
}

void
writeOpTrace(const std::string &path, const std::vector<TraceOp> &trace)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw std::runtime_error("trace_io: cannot open " + path);
    }
    writeBytes(out, "VEPO", 4);
    writeBytes(out, &kVersion, sizeof kVersion);
    uint64_t count = trace.size();
    writeBytes(out, &count, sizeof count);
    for (const TraceOp &op : trace) {
        writeBytes(out, &op.pc, sizeof op.pc);
        writeBytes(out, &op.addr, sizeof op.addr);
        uint8_t fields[5] = {static_cast<uint8_t>(op.cls),
                             static_cast<uint8_t>(op.taken ? 1 : 0), op.dep1,
                             op.dep2, static_cast<uint8_t>(op.foreign ? 1 : 0)};
        writeBytes(out, fields, sizeof fields);
    }
}

std::vector<TraceOp>
readOpTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("trace_io: cannot open " + path);
    }
    checkHeader(in, "VEPO");
    uint64_t count = 0;
    readBytes(in, &count, sizeof count);
    std::vector<TraceOp> trace;
    trace.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        TraceOp op{};
        readBytes(in, &op.pc, sizeof op.pc);
        readBytes(in, &op.addr, sizeof op.addr);
        uint8_t fields[5];
        readBytes(in, fields, sizeof fields);
        if (fields[0] >= kNumOpClasses) {
            throw std::runtime_error("trace_io: bad op class");
        }
        op.cls = static_cast<OpClass>(fields[0]);
        op.taken = fields[1] != 0;
        op.dep1 = fields[2];
        op.dep2 = fields[3];
        op.foreign = fields[4] != 0;
        trace.push_back(op);
    }
    return trace;
}

} // namespace vepro::trace
