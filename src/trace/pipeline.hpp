#ifndef VEPRO_TRACE_PIPELINE_HPP
#define VEPRO_TRACE_PIPELINE_HPP

/**
 * @file
 * Pipeline-parallel trace fan-out: run every sink of a simulation on
 * its own worker thread, fed whole TraceBlocks through bounded SPSC
 * ring queues.
 *
 * MuxSink runs all sinks inline on the producing thread, so one fused
 * sweep point costs the SUM of its sinks' per-op costs. PipelineMux
 * decouples them: the producer (the encode's Probe) publishes each
 * 4096-op staging block once, and each sink consumes the block stream
 * in program order on a dedicated thread — end-to-end cost drops to
 * the SLOWEST sink instead of the sum. Each sink still sees exactly
 * the record sequence MuxSink would have delivered, in order, on one
 * thread, so per-sink statistics are bit-identical by construction.
 *
 * Memory and flow control are bounded: blocks come from a fixed pool
 * and queues have fixed depth, so a fast producer backpressures (spins
 * on the full queue) instead of buffering the trace. With jobs <= 1 or
 * a single sink the mux degrades to the exact sequential MuxSink
 * behaviour — no threads, no queues.
 *
 * Failure safety: when a sink throws on its worker, the worker flags
 * itself failed before anything else, and every producer backpressure
 * loop observes that flag — publishing bails out of the dead queue
 * instead of yield-spinning on it forever, so a failing (possibly
 * slow) sink can never stall the trace producer. The first captured
 * exception still rethrows from flush().
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/sink.hpp"

namespace vepro::trace
{

/**
 * Resolve a --jobs / --sim-jobs style worker count: values >= 1 pass
 * through, 0 means auto-detect via std::thread::hardware_concurrency()
 * with a floor of 1 (the detection may report 0 on exotic platforms).
 * Shared by the sweep driver, vepro-lab, and the parallel-simulation
 * flags so every layer agrees on what "auto" means.
 */
int resolveJobs(int jobs);

/**
 * Fans one trace stream out to several sinks, each on its own worker
 * thread (see file docs). Use exactly like MuxSink:
 *
 *   PipelineMux mux({&core, &cache, &runner});
 *   probe.setSink(&mux);
 *   ... emit ...
 *   probe.flushToSink();
 *   mux.flush();          // joins the workers; sinks are flushed
 *
 * flush() delivers the tail, joins every worker, and flushes each sink
 * on its own worker thread; after it returns, reading the sinks'
 * results from the caller's thread is race-free (the joins establish
 * the happens-before edge). Worker exceptions are captured and the
 * first one rethrown from flush().
 *
 * Record-at-a-time deliveries (onOp/onOps/onBranch/onKernel) are
 * staged into an internal block, preserving order relative to onBlock
 * deliveries, so the mux is a drop-in TraceSink even for producers
 * that never hand over whole blocks.
 */
class PipelineMux final : public TraceSink
{
  public:
    struct Options {
        /** Queue depth per sink, in blocks (rounded up to a power of
         *  two). Depth x pool bound the in-flight trace span. */
        int queueDepth = 64;
        /**
         * Worker threads: one per sink when parallel. 0 = auto-detect
         * (resolveJobs); 1 = sequential fallback — behave exactly like
         * MuxSink on the calling thread. Values above the sink count
         * are clamped (each sink is inherently serial).
         */
        int jobs = 0;
    };

    explicit PipelineMux(std::vector<TraceSink *> sinks);
    PipelineMux(std::vector<TraceSink *> sinks, const Options &options);
    ~PipelineMux() override;

    PipelineMux(const PipelineMux &) = delete;
    PipelineMux &operator=(const PipelineMux &) = delete;

    void onOp(const TraceOp &op) override;
    void onOps(const TraceOp *ops, size_t n) override;
    void onBranch(const BranchRecord &branch) override;
    void onKernel(uint64_t site) override;
    void onBlock(TraceBlock &&block) override;

    /** Deliver the tail, join workers, flush sinks; rethrows the first
     *  worker exception. Idempotent. */
    void flush() override;

    /** True when running sinks on worker threads (not the fallback). */
    bool parallel() const;

    /** Blocks published to the workers (or replayed, when sequential). */
    uint64_t blocksPublished() const;
    /** Producer-side full-queue wait episodes: backpressure events. */
    uint64_t backpressureWaits() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace vepro::trace

#endif // VEPRO_TRACE_PIPELINE_HPP
