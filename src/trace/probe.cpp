#include "trace/probe.hpp"

#include <algorithm>
#include <limits>
#include <mutex>

namespace vepro::trace
{

namespace
{

thread_local Probe *tls_probe = nullptr;

std::mutex &
siteRegistryMutex()
{
    static std::mutex m;
    return m;
}

std::unordered_map<uint64_t, std::string> &
siteRegistry()
{
    static std::unordered_map<uint64_t, std::string> names;
    return names;
}

} // namespace

uint64_t
sitePc(std::string_view name)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
    }
    // Canonical user-space text range, 1 KiB aligned so each site owns a
    // private code window.
    uint64_t pc = 0x400000ULL + ((h << 10) & 0x0000'7fff'ffff'fc00ULL);
    {
        std::lock_guard<std::mutex> lock(siteRegistryMutex());
        siteRegistry().emplace(pc, std::string(name));
    }
    return pc;
}

std::string
siteName(uint64_t pc)
{
    std::lock_guard<std::mutex> lock(siteRegistryMutex());
    auto it = siteRegistry().find(pc);
    return it != siteRegistry().end() ? it->second : "?";
}

ProbeConfig
ProbeConfig::streaming(bool branches)
{
    ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = std::numeric_limits<size_t>::max();
    // opWindow >= opInterval disables sampling: every op is recorded.
    pc.opWindow = pc.opInterval;
    pc.collectBranches = branches;
    pc.maxBranches = std::numeric_limits<size_t>::max();
    return pc;
}

uint64_t
MixCounters::total() const
{
    uint64_t sum = 0;
    for (uint64_t v : byClass) {
        sum += v;
    }
    return sum;
}

uint64_t
MixCounters::byCategory(MixCategory cat) const
{
    uint64_t sum = 0;
    for (int i = 0; i < kNumOpClasses; ++i) {
        if (categoryOf(static_cast<OpClass>(i)) == cat) {
            sum += byClass[i];
        }
    }
    return sum;
}

double
MixCounters::categoryPercent(MixCategory cat) const
{
    uint64_t t = total();
    if (t == 0) {
        return 0.0;
    }
    return 100.0 * static_cast<double>(byCategory(cat)) /
           static_cast<double>(t);
}

MixCounters &
MixCounters::operator+=(const MixCounters &other)
{
    for (int i = 0; i < kNumOpClasses; ++i) {
        byClass[i] += other.byClass[i];
    }
    return *this;
}

uint64_t
Probe::advance(uint64_t n)
{
    if (site_slot_ != nullptr) {
        *site_slot_ += n;
    }
    // interval_pos_ mirrors opSeq_ % opInterval; the conditional modulo
    // only fires once per interval instead of dividing per emission call.
    uint64_t pos = interval_pos_;
    opSeq_ += n;
    interval_pos_ += n;
    if (interval_pos_ >= config_.opInterval) {
        interval_pos_ %= config_.opInterval;
    }
    if (!config_.collectOps) {
        return 0;
    }
    // opWindow >= opInterval means "record everything" (streaming mode);
    // otherwise only the window-prefix of each interval is recorded.
    uint64_t in_window =
        config_.opWindow >= config_.opInterval
            ? n
            : (pos < config_.opWindow ? std::min(n, config_.opWindow - pos)
                                      : 0);
    uint64_t room = config_.maxOps > ops_recorded_
                        ? config_.maxOps - ops_recorded_
                        : 0;
    uint64_t take = std::min(in_window, room);
    dropped_ops_ += in_window - take;
    return take;
}

void
Probe::flushBlock() const
{
    if (stage_.empty()) {
        return;
    }
    // A non-moving sink (the default) leaves the block with us; a
    // moving one (PipelineMux, SegmentSim) takes the buffers. Either
    // way the stage comes back empty with standard capacity.
    dest()->onBlock(std::move(stage_));
    stage_.clear();
    stage_.reserveStandard();
}

void
Probe::stagePendingKernel()
{
    pending_site_valid_ = false;
    TraceBlock::Event ev;
    ev.pos = static_cast<uint32_t>(stage_.ops.size());
    ev.kind = TraceBlock::Event::Kernel;
    ev.value = pending_site_;
    stage_.events.push_back(ev);
    if (stage_.events.size() >= kBlockOps) {
        flushBlock();
    }
}

void
Probe::emitOp(const TraceOp &op)
{
    if (pending_site_valid_) {
        stagePendingKernel();
    }
    ++ops_recorded_;
    if (stage_.ops.size() == kBlockOps) {
        flushBlock();
    }
    stage_.ops.push_back(op);
}

void
Probe::emitOps(const TraceOp *ops, size_t n)
{
    if (pending_site_valid_) {
        stagePendingKernel();
    }
    ops_recorded_ += n;
    while (n > 0) {
        if (stage_.ops.size() == kBlockOps) {
            flushBlock();
        }
        size_t take = std::min(n, kBlockOps - stage_.ops.size());
        stage_.ops.insert(stage_.ops.end(), ops, ops + take);
        ops += take;
        n -= take;
    }
}

void
Probe::emitBranch(uint64_t pc, bool taken)
{
    if (pending_site_valid_) {
        stagePendingKernel();
    }
    if (branches_recorded_ == 0) {
        branch_first_op_ = opSeq_;
    }
    branch_last_op_ = opSeq_;
    ++branches_recorded_;
    TraceBlock::Event ev;
    ev.pos = static_cast<uint32_t>(stage_.ops.size());
    ev.kind = TraceBlock::Event::Branch;
    ev.taken = taken;
    ev.value = pc;
    stage_.events.push_back(ev);
    // Branch-only streams (CBP runs with op tracing off) never fill the
    // op span, so the event list needs its own publish threshold.
    if (stage_.events.size() >= kBlockOps) {
        flushBlock();
    }
}

uint64_t
Probe::nextPc()
{
    uint64_t pc = siteBase_ + 4ULL * sitePos_;
    if (++sitePos_ == static_cast<uint32_t>(siteBodyLen_)) {
        sitePos_ = 0;
    }
    return pc;
}

void
Probe::enterKernel(uint64_t site, int body_len)
{
    if (config_.profileSites) {
        site_slot_ = &site_ops_[site];
    }
    if (sink_ != nullptr) {
        // Deferred: the event is only staged when a record actually
        // lands under this site (stagePendingKernel). Sampled captures
        // gate ops off for most of each interval, and staging an event
        // per kernel entry during those gaps used to swamp the trace —
        // more event bytes than op bytes. Replay attribution only needs
        // the site in force when recording resumes, which collapsing
        // the gap's entries to the last one preserves.
        pending_site_ = site;
        pending_site_valid_ = true;
    }
    // Real encoders specialise each kernel by block size / unroll factor;
    // spread invocations over eight code variants so the instruction
    // footprint matches a few hundred KB of hot code, not a toy loop.
    siteBase_ = site + ((opSeq_ >> 6) & 7) * 1024;
    siteBodyLen_ = std::max(1, body_len);
    sitePos_ = 0;

    // Call + return plus a tiny scalar preamble (spills / setup).
    mix_.byClass[static_cast<int>(OpClass::BranchUncond)] += 2;
    mix_.byClass[static_cast<int>(OpClass::Other)] += 2;
    if (advance(4) >= 2) {
        const TraceOp pair[2] = {
            {siteBase_, 0, OpClass::BranchUncond, true, 0, 0, false},
            {siteBase_ + 4, 0, OpClass::Other, false, 0, 0, false}};
        emitOps(pair, 2);
    }
}

void
Probe::ops(OpClass cls, uint64_t n, uint8_t dep1, uint8_t dep2)
{
    mix_.byClass[static_cast<int>(cls)] += n;
    uint64_t take = advance(n);
    ops_recorded_ += take;
    for (uint64_t i = 0; i < take; ++i) {
        if (stage_.ops.size() == kBlockOps) {
            flushBlock();
        }
        stage_.ops.push_back({nextPc(), 0, cls, false, dep1, dep2, false});
    }
}

void
Probe::mem(OpClass cls, uint64_t addr, uint8_t dep1)
{
    mix_.byClass[static_cast<int>(cls)] += 1;
    if (advance(1) > 0) {
        emitOp({nextPc(), addr, cls, false, dep1, 0, false});
    }
}

void
Probe::memRun(OpClass cls, uint64_t addr, int n, int stride, uint8_t dep1)
{
    mix_.byClass[static_cast<int>(cls)] += static_cast<uint64_t>(n);
    uint64_t take = advance(static_cast<uint64_t>(n));
    ops_recorded_ += take;
    for (uint64_t i = 0; i < take; ++i) {
        if (stage_.ops.size() == kBlockOps) {
            flushBlock();
        }
        stage_.ops.push_back({nextPc(),
                              addr + static_cast<uint64_t>(i) * stride,
                              cls, false, dep1, 0, false});
    }
}

void
Probe::decision(uint64_t site, bool taken)
{
    mix_.byClass[static_cast<int>(OpClass::BranchCond)] += 1;
    if (advance(1) > 0) {
        emitOp({site, 0, OpClass::BranchCond, taken, 1, 0, false});
    }
    if (config_.collectBranches && opSeq_ > config_.branchWarmupOps) {
        if (branches_recorded_ < config_.maxBranches) {
            emitBranch(site, taken);
        } else {
            ++dropped_branches_;
        }
    }
}

void
Probe::loopBranches(uint64_t iterations)
{
    if (iterations == 0) {
        return;
    }
    uint64_t loop_pc = siteBase_ + 4ULL * siteBodyLen_;
    mix_.byClass[static_cast<int>(OpClass::BranchCond)] += iterations;
    uint64_t take = advance(iterations);
    ops_recorded_ += take;
    for (uint64_t i = 0; i < take; ++i) {
        if (stage_.ops.size() == kBlockOps) {
            flushBlock();
        }
        stage_.ops.push_back({loop_pc, 0, OpClass::BranchCond,
                              i + 1 < iterations, 1, 0, false});
    }
    if (config_.collectBranches && opSeq_ > config_.branchWarmupOps) {
        uint64_t room = config_.maxBranches > branches_recorded_
                            ? config_.maxBranches - branches_recorded_
                            : 0;
        uint64_t recorded = std::min(iterations, room);
        dropped_branches_ += iterations - recorded;
        for (uint64_t i = 0; i < recorded; ++i) {
            emitBranch(loop_pc, i + 1 < iterations);
        }
    }
}

uint64_t
Probe::allocRegion(size_t size)
{
    uint64_t base = nextRegion_;
    uint64_t span = (static_cast<uint64_t>(size) + 4095ULL) & ~4095ULL;
    nextRegion_ += span + 4096ULL;  // guard page between regions
    return base;
}

void
Probe::mergeFrom(const Probe &other)
{
    mix_ += other.mix_;
    opSeq_ += other.opSeq_;
    interval_pos_ = opSeq_ % config_.opInterval;
    for (const TraceOp &op : other.opTrace()) {
        if (ops_recorded_ >= config_.maxOps) {
            ++dropped_ops_;
            continue;
        }
        emitOp(op);
    }
    flushBlock();  // appended ops precede the appended branches
    for (const BranchRecord &br : other.branchTrace()) {
        if (branches_recorded_ >= config_.maxBranches) {
            ++dropped_branches_;
            continue;
        }
        ++branches_recorded_;
        dest()->onBranch(br);
    }
    // Losses the other probe already took are losses of the merged trace.
    dropped_ops_ += other.dropped_ops_;
    dropped_branches_ += other.dropped_branches_;
}

void
Probe::reset()
{
    mix_ = MixCounters{};
    opSeq_ = 0;
    interval_pos_ = 0;
    sitePos_ = 0;
    branch_first_op_ = 0;
    branch_last_op_ = 0;
    capture_.clear();
    stage_.clear();
    ops_recorded_ = 0;
    branches_recorded_ = 0;
    dropped_ops_ = 0;
    dropped_branches_ = 0;
    site_ops_.clear();
    site_slot_ = nullptr;
    pending_site_valid_ = false;
    nextRegion_ = 0x10000000ULL;
}

void
emitControl(Probe &probe, uint64_t site, int units, uint64_t hot_addr,
            uint64_t spread_addr, uint64_t spread_step)
{
    probe.enterKernel(site, 20);
    for (int u = 0; u < units; ++u) {
        // Hot table lookups (cost LUTs), per-block metadata, stack slots.
        probe.mem(OpClass::Load, hot_addr + (static_cast<uint64_t>(u) * 72) % 2048);
        probe.mem(OpClass::Load, hot_addr + 2048 + (static_cast<uint64_t>(u) * 40) % 1024);
        probe.mem(OpClass::Load, spread_addr + static_cast<uint64_t>(u) * spread_step);
        probe.mem(OpClass::Load, site + 0x800 + (static_cast<uint64_t>(u) * 24) % 256);
        probe.ops(OpClass::Alu, 1, 1, 2);
        if ((u & 1) != 0) {
            probe.ops(OpClass::Other, 1, 1);
        }
        probe.mem(OpClass::Store, spread_addr + static_cast<uint64_t>(u) * spread_step + 8, 1);
        probe.mem(OpClass::Store, site + 0x800 + (static_cast<uint64_t>(u) * 24) % 256, 1);
    }
    probe.loopBranches(static_cast<uint64_t>((units + 3) / 4));
}

Probe *
currentProbe()
{
    return tls_probe;
}

ProbeScope::ProbeScope(Probe *probe) : saved_(tls_probe)
{
    tls_probe = probe;
}

ProbeScope::~ProbeScope()
{
    tls_probe = saved_;
}

} // namespace vepro::trace
