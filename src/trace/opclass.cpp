#include "trace/opclass.hpp"

namespace vepro::trace
{

MixCategory
categoryOf(OpClass cls)
{
    switch (cls) {
      case OpClass::BranchCond:
      case OpClass::BranchUncond:
        return MixCategory::Branch;
      case OpClass::Load:
        return MixCategory::Load;
      case OpClass::Store:
        return MixCategory::Store;
      case OpClass::SimdAlu:
      case OpClass::SimdMul:
      case OpClass::SimdLoad:
      case OpClass::SimdStore:
        return MixCategory::Avx;
      case OpClass::SseAlu:
        return MixCategory::Sse;
      default:
        return MixCategory::Other;
    }
}

std::string_view
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::Alu: return "alu";
      case OpClass::Mul: return "mul";
      case OpClass::Div: return "div";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::BranchCond: return "br_cond";
      case OpClass::BranchUncond: return "br_uncond";
      case OpClass::SimdAlu: return "simd_alu";
      case OpClass::SimdMul: return "simd_mul";
      case OpClass::SimdLoad: return "simd_load";
      case OpClass::SimdStore: return "simd_store";
      case OpClass::SseAlu: return "sse_alu";
      case OpClass::Other: return "other";
      default: return "?";
    }
}

std::string_view
mixCategoryName(MixCategory cat)
{
    switch (cat) {
      case MixCategory::Branch: return "Branch";
      case MixCategory::Load: return "Load";
      case MixCategory::Store: return "Store";
      case MixCategory::Avx: return "AVX";
      case MixCategory::Sse: return "SSE";
      case MixCategory::Other: return "Other";
      default: return "?";
    }
}

} // namespace vepro::trace
