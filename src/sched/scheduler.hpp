#ifndef VEPRO_SCHED_SCHEDULER_HPP
#define VEPRO_SCHED_SCHEDULER_HPP

/**
 * @file
 * Discrete-event list scheduler: executes a TaskGraph on N simulated
 * cores and reports the makespan, per-core assignment, and occupancy.
 */

#include <cstdint>
#include <vector>

#include "sched/taskgraph.hpp"

namespace vepro::sched
{

/** Placement of one task in the simulated execution. */
struct Placement {
    int task = -1;
    int core = -1;
    uint64_t start = 0;  ///< Start time in work units (instructions).
    uint64_t end = 0;    ///< Completion time.
};

/** Outcome of scheduling a graph onto N cores. */
struct ScheduleResult {
    uint64_t makespan = 0;            ///< Total simulated time.
    std::vector<Placement> placements;  ///< One per task, task-id order.
    double occupancy = 0.0;           ///< busy-core-time / (makespan * N).

    /** Speedup of this schedule relative to a single-core run. */
    double
    speedupVs(uint64_t single_core_makespan) const
    {
        return makespan == 0
                   ? 1.0
                   : static_cast<double>(single_core_makespan) /
                         static_cast<double>(makespan);
    }
};

/**
 * Greedy list scheduling: whenever a core is free, it takes the ready
 * task whose dependencies completed earliest (FIFO by readiness,
 * deterministic tie-break by task id). This matches the work-queue
 * behaviour of the thread pools in real encoders closely enough for
 * scalability shapes.
 *
 * @param graph Validated task graph (deps reference earlier ids).
 * @param cores Number of simulated cores, >= 1.
 */
ScheduleResult schedule(const TaskGraph &graph, int cores);

/**
 * Tasks running on other cores during each core-0 task, used to model
 * coherence traffic: for every core-0 placement, the ids of tasks whose
 * execution intervals overlap it on a different core.
 */
std::vector<std::vector<int>> concurrentWithCoreZero(
    const ScheduleResult &result);

} // namespace vepro::sched

#endif // VEPRO_SCHED_SCHEDULER_HPP
