#include "sched/taskgraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace vepro::sched
{

int
TaskGraph::addTask(Task task)
{
    task.id = static_cast<int>(tasks_.size());
    for (int dep : task.deps) {
        if (dep < 0 || dep >= task.id) {
            throw std::invalid_argument(
                "TaskGraph: dependency must reference an earlier task");
        }
    }
    tasks_.push_back(std::move(task));
    return tasks_.back().id;
}

uint64_t
TaskGraph::totalWeight() const
{
    uint64_t sum = 0;
    for (const Task &t : tasks_) {
        sum += t.weight;
    }
    return sum;
}

uint64_t
TaskGraph::criticalPath() const
{
    // Tasks are topologically ordered by construction (deps < id).
    std::vector<uint64_t> finish(tasks_.size(), 0);
    uint64_t best = 0;
    for (const Task &t : tasks_) {
        uint64_t start = 0;
        for (int dep : t.deps) {
            start = std::max(start, finish[static_cast<size_t>(dep)]);
        }
        finish[static_cast<size_t>(t.id)] = start + t.weight;
        best = std::max(best, finish[static_cast<size_t>(t.id)]);
    }
    return best;
}

void
TaskGraph::validate() const
{
    for (const Task &t : tasks_) {
        for (int dep : t.deps) {
            if (dep < 0 || dep >= t.id) {
                throw std::invalid_argument("TaskGraph: bad dependency");
            }
        }
    }
}

} // namespace vepro::sched
