#ifndef VEPRO_SCHED_TASKGRAPH_HPP
#define VEPRO_SCHED_TASKGRAPH_HPP

/**
 * @file
 * Task graphs describing an encoder's parallel structure.
 *
 * The paper measures thread scalability on a 12-core Xeon; this host has
 * one core, so scaling is *simulated*: each encoder model emits the task
 * graph its real counterpart would execute (tasks weighted by the
 * instructions the instrumented run actually spent in them, with the
 * real dependency edges), and a discrete-event scheduler computes the
 * makespan on N cores. The speedup shapes are then properties of the
 * dependency structure, exactly what the paper attributes them to.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vepro::sched
{

/** What a task does — used for reporting and trace reconstruction. */
enum class TaskKind : uint8_t {
    Superblock,  ///< Analysis + coding of one superblock (or tile chunk).
    Filter,      ///< Loop filtering / reconstruction post-processing.
    Lookahead,   ///< Pre-analysis (downscaled motion estimation).
    Serial,      ///< A serialised spine task (x265-style main thread).
};

/** One schedulable unit of encoder work. */
struct Task {
    int id = 0;
    TaskKind kind = TaskKind::Superblock;
    uint64_t weight = 1;        ///< Work in dynamic instructions.
    std::vector<int> deps;      ///< Task ids that must finish first.

    int frame = -1;             ///< Owning frame, -1 if cross-frame.
    int row = -1;               ///< Superblock row, -1 if n/a.
    int col = -1;               ///< Superblock column, -1 if n/a.

    /** Half-open range of this task's ops in the captured op trace. */
    size_t opBegin = 0;
    size_t opEnd = 0;
};

/** A whole encode expressed as a dependency graph of tasks. */
class TaskGraph
{
  public:
    /** Append a task; returns its id. Dependencies must already exist. */
    int addTask(Task task);

    const std::vector<Task> &tasks() const { return tasks_; }
    Task &task(int id) { return tasks_[static_cast<size_t>(id)]; }
    const Task &task(int id) const { return tasks_[static_cast<size_t>(id)]; }

    bool empty() const { return tasks_.empty(); }
    size_t size() const { return tasks_.size(); }

    /** Sum of all task weights (single-core makespan). */
    uint64_t totalWeight() const;

    /**
     * Longest weighted dependency chain — the lower bound on makespan
     * with unlimited cores.
     * @throws std::invalid_argument if the graph has a cycle.
     */
    uint64_t criticalPath() const;

    /** Validate: dep ids in range and strictly less than the task id. */
    void validate() const;

  private:
    std::vector<Task> tasks_;
};

} // namespace vepro::sched

#endif // VEPRO_SCHED_TASKGRAPH_HPP
