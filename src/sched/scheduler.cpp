#include "sched/scheduler.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace vepro::sched
{

ScheduleResult
schedule(const TaskGraph &graph, int cores)
{
    if (cores < 1) {
        throw std::invalid_argument("schedule: need at least one core");
    }
    graph.validate();

    const auto &tasks = graph.tasks();
    const size_t n = tasks.size();
    ScheduleResult result;
    result.placements.resize(n);
    if (n == 0) {
        result.occupancy = 0.0;
        return result;
    }

    // Remaining-dependency counts and reverse edges.
    std::vector<int> pending(n, 0);
    std::vector<std::vector<int>> consumers(n);
    for (const Task &t : tasks) {
        pending[static_cast<size_t>(t.id)] = static_cast<int>(t.deps.size());
        for (int dep : t.deps) {
            consumers[static_cast<size_t>(dep)].push_back(t.id);
        }
    }

    // Ready queue ordered by (ready time, task id).
    using ReadyEntry = std::pair<uint64_t, int>;
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                        std::greater<>> ready;
    std::vector<uint64_t> ready_time(n, 0);
    for (const Task &t : tasks) {
        if (t.deps.empty()) {
            ready.push({0, t.id});
        }
    }

    // Core free times, smallest first.
    std::priority_queue<std::pair<uint64_t, int>,
                        std::vector<std::pair<uint64_t, int>>,
                        std::greater<>> free_cores;
    for (int c = 0; c < cores; ++c) {
        free_cores.push({0, c});
    }

    // Event-driven, work-conserving loop: at each instant, pair every
    // idle core with the longest-ready task; otherwise advance time to
    // the next readiness or core-completion event.
    uint64_t busy = 0;
    size_t scheduled = 0;
    uint64_t now = 0;
    while (scheduled < n) {
        bool task_ready = !ready.empty() && ready.top().first <= now;
        bool core_idle = !free_cores.empty() && free_cores.top().first <= now;
        if (task_ready && core_idle) {
            auto [rt, id] = ready.top();
            ready.pop();
            auto [core_free, core] = free_cores.top();
            free_cores.pop();

            const Task &t = tasks[static_cast<size_t>(id)];
            uint64_t end = now + t.weight;
            result.placements[static_cast<size_t>(id)] = {id, core, now, end};
            busy += t.weight;
            ++scheduled;
            free_cores.push({end, core});

            for (int consumer : consumers[static_cast<size_t>(id)]) {
                auto ci = static_cast<size_t>(consumer);
                ready_time[ci] = std::max(ready_time[ci], end);
                if (--pending[ci] == 0) {
                    ready.push({ready_time[ci], consumer});
                }
            }
            result.makespan = std::max(result.makespan, end);
            continue;
        }
        // Advance to the next event.
        uint64_t next = UINT64_MAX;
        if (!ready.empty() && ready.top().first > now) {
            next = std::min(next, ready.top().first);
        }
        if (!free_cores.empty() && free_cores.top().first > now) {
            next = std::min(next, free_cores.top().first);
        }
        if (next == UINT64_MAX) {
            break;  // deadlock: unreachable tasks (reported below)
        }
        now = next;
    }

    if (scheduled != n) {
        throw std::invalid_argument("schedule: graph has unreachable tasks");
    }
    result.occupancy =
        result.makespan == 0
            ? 0.0
            : static_cast<double>(busy) /
                  (static_cast<double>(result.makespan) * cores);
    return result;
}

std::vector<std::vector<int>>
concurrentWithCoreZero(const ScheduleResult &result)
{
    std::vector<std::vector<int>> out;
    // Collect core-0 placements in time order.
    std::vector<const Placement *> core0;
    for (const Placement &p : result.placements) {
        if (p.core == 0) {
            core0.push_back(&p);
        }
    }
    std::sort(core0.begin(), core0.end(),
              [](const Placement *a, const Placement *b) {
                  return a->start < b->start;
              });
    out.reserve(core0.size());
    for (const Placement *p0 : core0) {
        std::vector<int> overlapping;
        for (const Placement &p : result.placements) {
            if (p.core != 0 && p.task >= 0 && p.start < p0->end &&
                p.end > p0->start) {
                overlapping.push_back(p.task);
            }
        }
        out.push_back(std::move(overlapping));
    }
    return out;
}

} // namespace vepro::sched
