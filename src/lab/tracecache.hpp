#ifndef VEPRO_LAB_TRACECACHE_HPP
#define VEPRO_LAB_TRACECACHE_HPP

/**
 * @file
 * Content-addressed on-disk trace cache: one trace::TraceFile per
 * unique *encode* under `<store>/traces/`, keyed by
 * JobSpec::traceHashHex() — the encode-side identity fields only.
 *
 * The point of the key choice: a captured op stream depends on the
 * encoder, clip, CRF, preset and probe cap, but NOT on the core config
 * it is later simulated on. Excluding the backend from the key means a
 * fleet sweep over K machine profiles captures each (clip, crf,
 * preset) trace exactly once and replays it K times.
 *
 * Concurrency: begin() takes an exclusive per-key lease (workers
 * racing on the same encode block until the holder commits or
 * aborts), so a trace is captured at most once per process even when
 * K backend jobs for the same encode run concurrently. Captures write
 * `<hash>.vetf.<tmp>` and publish by rename, matching the result
 * store's atomicity contract; a corrupt file found at replay time is
 * deleted under the same lease and recaptured (recapture()), matching
 * the store's warn-and-recompute policy.
 */

#include <condition_variable>
#include <mutex>
#include <set>
#include <string>

#include "lab/jobspec.hpp"
#include "lab/progress.hpp"

namespace vepro::lab
{

class TraceCache
{
  public:
    /**
     * One in-flight per-key lease. Obtained from begin(); MUST be
     * returned through exactly one of commit()/abort() (both are safe
     * on a hit lease). Leases are movable handles, not RAII — the
     * orchestrator owns the try/catch that decides their fate.
     */
    struct Lease {
        std::string key;      ///< traceHashHex of the spec.
        std::string path;     ///< Final trace path (hit or capture).
        std::string tmpPath;  ///< Capture target; "" on a hit.
        bool hit = false;     ///< true: path is a readable capture.
        bool active = false;  ///< Holds the in-flight lock.
    };

    /**
     * @param dir      Trace directory (e.g. "<store>/traces");
     *                 created on first capture.
     * @param progress Where corrupt-trace warnings go; nullptr
     *                 silences them.
     */
    explicit TraceCache(std::string dir,
                        Progress *progress = &Progress::standard());

    /**
     * Acquire the lease for @p spec's trace, blocking while another
     * thread holds it. Returns a hit lease when the trace file exists
     * (replay from lease.path) or a capture lease otherwise (capture
     * to lease.tmpPath, then commit()).
     */
    Lease begin(const JobSpec &spec);

    /**
     * Convert a hit lease whose file failed to replay into a capture
     * lease: warns (store-policy wording), deletes the corrupt file,
     * assigns a fresh tmpPath. The in-flight lock is kept throughout,
     * so no other thread can observe the half-state.
     */
    void recapture(Lease &lease, const std::string &error);

    /** Publish lease.tmpPath over lease.path (rename) and release the
     *  lease. On a hit lease: just releases. */
    void commit(Lease &lease);

    /** Discard lease.tmpPath (if any) and release the lease. Safe to
     *  call on an already-released lease (no-op). */
    void abort(Lease &lease);

    /** The trace path a spec maps to (exposed for tests/tooling). */
    std::string pathFor(const JobSpec &spec) const;

    const std::string &dir() const { return dir_; }

  private:
    void release(Lease &lease);

    std::string dir_;
    Progress *progress_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::set<std::string> inflight_;
};

} // namespace vepro::lab

#endif // VEPRO_LAB_TRACECACHE_HPP
