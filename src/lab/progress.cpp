#include "lab/progress.hpp"

#include <vector>

namespace vepro::lab
{

void
Progress::line(const std::string &text)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::fputs(text.c_str(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
}

void
Progress::linef(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list measure;
    va_copy(measure, args);
    int n = std::vsnprintf(nullptr, 0, fmt, measure);
    va_end(measure);
    std::string text;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
        text.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(args);
    line(text);
}

Progress &
Progress::standard()
{
    static Progress instance(stderr);
    return instance;
}

} // namespace vepro::lab
