#ifndef VEPRO_LAB_JSON_HPP
#define VEPRO_LAB_JSON_HPP

/**
 * @file
 * Minimal JSON tree used by the lab result store and artifact writers.
 *
 * Deliberately tiny: objects preserve insertion order (so serialisation
 * is deterministic and cache records are byte-stable), and numbers keep
 * their raw source token, so a u64 cycle count or a %.17g double
 * round-trips through save -> load -> save without drifting a bit. The
 * parser throws JsonError on any malformed input — the store treats
 * that as "corrupt entry, recompute", never as a crash.
 */

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace vepro::lab
{

/** Thrown on malformed JSON text or wrong-kind access. */
struct JsonError : std::runtime_error {
    explicit JsonError(const std::string &what) : std::runtime_error(what) {}
};

class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;  ///< Null.

    static JsonValue boolean(bool b);
    static JsonValue number(uint64_t v);
    static JsonValue number(int v);
    static JsonValue number(double v);  ///< %.17g — round-trip exact.
    /** Number from a raw already-validated token (parser internal). */
    static JsonValue numberToken(std::string token);
    static JsonValue str(std::string s);
    static JsonValue array();
    static JsonValue object();

    /** Parse a complete JSON document. @throws JsonError. */
    static JsonValue parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    // -- Object access -----------------------------------------------
    /** Insert or replace a member; keeps insertion order. */
    JsonValue &set(const std::string &key, JsonValue v);
    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;
    /** Member lookup. @throws JsonError when absent. */
    const JsonValue &at(const std::string &key) const;

    // -- Array access ------------------------------------------------
    JsonValue &push(JsonValue v);
    const std::vector<JsonValue> &items() const;

    // -- Scalar access (throws JsonError on kind/format mismatch) ----
    bool asBool() const;
    double asDouble() const;
    uint64_t asU64() const;  ///< Rejects fractions, exponents, signs.
    int asInt() const;
    const std::string &asString() const;

    /**
     * Serialise. indent == 0 emits the compact single-line form;
     * indent > 0 pretty-prints with that many spaces per level.
     * Deterministic: same tree -> same bytes.
     */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string scalar_;  ///< Raw number token, or string payload.
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Escape a string for embedding in JSON (no surrounding quotes). */
std::string jsonEscape(const std::string &s);

} // namespace vepro::lab

#endif // VEPRO_LAB_JSON_HPP
