/**
 * @file
 * `vepro-lab` — regenerate any subset of the paper's figures in one
 * invocation, backed by the persistent experiment store:
 *
 *   vepro-lab --figures=4,5,6,7,11 --jobs=4 [--quick|--full]
 *             [--no-cache] [--store=DIR] [--out=DIR] [--videos=a,b,c]
 *
 * Overlapping sweep points across the requested figures run once;
 * everything already in the store is a cache hit. Each figure's tables
 * print as markdown on stdout and land as a JSON artifact in --out
 * (default vepro-lab-out/), byte-identical across re-runs of the same
 * configuration.
 *
 * `vepro-lab --ladder` runs the per-title ABR ladder instead (see
 * src/ladder): every clip × {1/1, 1/2, 1/4} × CRF grid cache-first,
 * convex-hull ladder extraction, and the rung-mix uarch
 * characterization, with the same store and artifact contract
 * (ladder.json in --out).
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "lab/figures.hpp"
#include "lab/orchestrator.hpp"
#include "ladder/ladder.hpp"

namespace
{

using namespace vepro;

[[noreturn]] void
usage(const char *argv0, const std::string &error)
{
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::string known;
    for (int id : lab::supportedFigures()) {
        known += (known.empty() ? "" : ",") + std::to_string(id);
    }
    std::fprintf(stderr,
                 "usage: %s (--figures=%s | --ladder) [--jobs=N] "
                 "[--quick|--full] "
                 "[--uncapped] [--no-cache] [--store=DIR] [--out=DIR] "
                 "[--videos=a,b,c] [--sim-jobs=N] [--segments=N] "
                 "[--segment-warmup=K]\n"
                 "       --jobs/--sim-jobs/--segments accept 0 = "
                 "auto-detect hardware threads\n",
                 argv0, known.c_str());
    std::exit(2);
}

std::vector<int>
parseFigureList(const std::string &list)
{
    std::vector<int> ids;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
            comma = list.size();
        }
        ids.push_back(core::parseIntStrict(list.substr(pos, comma - pos),
                                           "--figures"));
        pos = comma + 1;
    }
    return ids;
}

/** Write @p json to <out_dir>/<name> atomically enough for CI's cmp. */
void
writeArtifact(const std::string &out_dir, const std::string &name,
              const std::string &json)
{
    std::filesystem::path path = std::filesystem::path(out_dir) / name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw std::runtime_error("cannot write " + path.string());
    }
    out << json;
    if (!out.flush()) {
        throw std::runtime_error("short write to " + path.string());
    }
    std::printf("wrote %s\n", path.string().c_str());
}

int
runLadder(const core::RunScale &scale, bool full, const std::string &out_dir)
{
    lab::Orchestrator orch(lab::OrchestratorOptions::fromRunScale(scale));
    ladder::LadderConfig config = ladder::ladderConfigFromScale(scale, full);
    ladder::LadderResult result = ladder::sweep(config, orch);

    result.ladder.print("Per-title ladder (convex hull of bitrate vs "
                        "source-resolution PSNR)");
    result.rd.print("All measured rungs");
    result.uarch.print("Rung workload characterization (CPI stack, MPKI)");
    std::printf("\n%s\n", result.mixLine.c_str());

    std::filesystem::create_directories(out_dir);
    std::string json = "{\n  \"ladder\": true,\n  \"tables\": {";
    json += "\n    \"ladder\": " + result.ladder.toJson();
    json += ",\n    \"rd\": " + result.rd.toJson();
    json += ",\n    \"uarch\": " + result.uarch.toJson();
    json += "\n  },\n  \"mix\": \"" + result.mixLine + "\"\n}\n";
    writeArtifact(out_dir, "ladder.json", json);

    std::printf("\nvepro-lab: %s\n", orch.summaryLine().c_str());
    std::printf("vepro-lab: %s\n", orch.traceLine().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<int> figure_ids;
    std::string out_dir = "vepro-lab-out";
    bool ladder_mode = false;
    bool full = false;

    // Split off the lab-only flags; everything else is RunScale's.
    std::vector<std::string> owned;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--figures=", 0) == 0) {
            try {
                figure_ids = parseFigureList(arg.substr(10));
            } catch (const std::exception &e) {
                usage(argv[0], e.what());
            }
        } else if (arg == "--ladder") {
            ladder_mode = true;
        } else if (arg.rfind("--out=", 0) == 0) {
            out_dir = arg.substr(6);
            if (out_dir.empty()) {
                usage(argv[0], "--out expects a directory");
            }
        } else {
            if (arg == "--full") {
                full = true;  // also RunScale's: stays in owned
            }
            owned.push_back(std::move(arg));
        }
    }
    std::vector<char *> scale_args;
    scale_args.push_back(argv[0]);
    for (std::string &arg : owned) {
        scale_args.push_back(arg.data());
    }

    if (ladder_mode && !figure_ids.empty()) {
        usage(argv[0], "--ladder and --figures are mutually exclusive");
    }
    if (!ladder_mode && figure_ids.empty()) {
        usage(argv[0], "--figures=... or --ladder is required");
    }

    core::RunScale scale;
    try {
        scale = core::RunScale::fromArgs(static_cast<int>(scale_args.size()),
                                         scale_args.data());
    } catch (const std::exception &e) {
        usage(argv[0], e.what());
    }

    try {
        if (ladder_mode) {
            return runLadder(scale, full, out_dir);
        }
        lab::Orchestrator orch(lab::OrchestratorOptions::fromRunScale(scale));
        std::vector<lab::FigureResult> figures =
            lab::runFigures(figure_ids, scale, orch);

        std::filesystem::create_directories(out_dir);
        for (const lab::FigureResult &fig : figures) {
            for (const lab::NamedTable &t : fig.tables) {
                t.table.print(t.caption);
            }
            std::printf("\n%s\n", fig.expectedShape.c_str());

            // One artifact per figure: every table, keyed by slug.
            std::string json = "{\n  \"figure\": " + std::to_string(fig.id) +
                               ",\n  \"tables\": {";
            for (size_t i = 0; i < fig.tables.size(); ++i) {
                json += (i ? ",\n    \"" : "\n    \"") +
                        fig.tables[i].slug + "\": " +
                        fig.tables[i].table.toJson();
            }
            json += "\n  }\n}\n";
            writeArtifact(out_dir, fig.slug + ".json", json);
        }
        std::printf("\nvepro-lab: %s\n", orch.summaryLine().c_str());
        // Always printed (even on a fully result-cached run) so CI can
        // assert that a trace-warm sweep does zero encoder work.
        std::printf("vepro-lab: %s\n", orch.traceLine().c_str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "vepro-lab: %s\n", e.what());
        return 1;
    }
    return 0;
}
