#ifndef VEPRO_LAB_FIGURES_HPP
#define VEPRO_LAB_FIGURES_HPP

/**
 * @file
 * Declarative registry of the paper figures the lab can regenerate:
 * each figure declares the JobSpecs it needs and renders its tables
 * from the orchestrator's results. Running several figures together
 * dedupes their overlapping sweep points (figs 4-7 share one CRF
 * sweep), and every point comes from — or lands in — the persistent
 * store, so re-rendering any figure is pure cache hits.
 */

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "lab/orchestrator.hpp"
#include "video/suite.hpp"

namespace vepro::lab
{

/** One rendered table of a figure. */
struct NamedTable {
    std::string slug;     ///< Artifact key ("mpki", "stalls", ...).
    std::string caption;  ///< The caption the bench prints.
    core::Table table;
};

/** A fully rendered figure. */
struct FigureResult {
    int id = 0;                 ///< Paper figure number.
    std::string slug;           ///< "fig04", "fig11", ...
    std::vector<NamedTable> tables;
    std::string expectedShape;  ///< The paper's qualitative claim.
};

/** The figure ids runFigures() understands (ascending). */
const std::vector<int> &supportedFigures();

/**
 * The clips a CRF sweep covers: explicit --videos= > full suite
 * (--full) > the 5-clip entropy-spanning quick subset.
 */
std::vector<video::SuiteEntry> sweepClips(const core::RunScale &scale);

/**
 * Regenerate figures: request every point of every listed figure on
 * @p orch (deduped across figures), resolve them in one run, and
 * render. Ids render in the order given; duplicates collapse.
 * @throws std::invalid_argument for an unsupported id.
 */
std::vector<FigureResult> runFigures(const std::vector<int> &ids,
                                     const core::RunScale &scale,
                                     Orchestrator &orch);

/** Convenience: orchestrator options derived from @p scale. */
std::vector<FigureResult> runFigures(const std::vector<int> &ids,
                                     const core::RunScale &scale);

} // namespace vepro::lab

#endif // VEPRO_LAB_FIGURES_HPP
