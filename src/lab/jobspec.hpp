#ifndef VEPRO_LAB_JOBSPEC_HPP
#define VEPRO_LAB_JOBSPEC_HPP

/**
 * @file
 * The canonical description of one experiment point and its stable
 * content hash — the key of the persistent result store.
 *
 * A JobSpec captures everything that determines a sweep point's
 * numbers: encoder, clip, CRF, preset, thread count, and the run-scale
 * knobs (suite geometry + trace cap) that change the synthesised input
 * or the sampled window. Anything that merely changes *how* a point is
 * executed — worker count, cache directory, progress verbosity — is
 * deliberately excluded, so the same point computed by any driver lands
 * on the same cache entry.
 */

#include <cstdint>
#include <string>

#include "core/experiment.hpp"

namespace vepro::lab
{

/**
 * Store schema version. Salted into every content hash: bumping it
 * (whenever the record layout or the meaning of any spec field changes)
 * orphans old entries instead of misreading them.
 */
constexpr int kSchemaVersion = 2;  // 2: lazy kernel events moved
                                   // sampled-capture block boundaries,
                                   // shifting segment-parallel numbers.

/** One experiment point. Field order never affects the hash. */
struct JobSpec {
    std::string encoder = "SVT-AV1";  ///< Registry name.
    std::string video;                ///< Suite clip name.
    int crf = 32;
    int preset = 4;
    int threads = 1;      ///< Simulated thread count (1 = single-core).

    // Run-scale knobs that alter the measured numbers.
    int divisor = 8;      ///< SuiteScale::divisor.
    int frames = 6;       ///< SuiteScale::frames.
    uint64_t maxTraceOps = 1'200'000;  ///< 0 = uncapped full fidelity.
    /**
     * Segment-parallel simulation (RunScale::segments): changes the
     * measured numbers (bounded warmup error), so it is identity — but
     * only when active. With segments == 1 (sequential, the default)
     * neither field enters the canonical key, keeping every
     * pre-existing store entry valid. Pipeline parallelism
     * (RunScale::simJobs) is bit-identical and deliberately excluded.
     */
    int segments = 1;
    int segmentWarmup = 8;  ///< Warmup blocks per segment.

    /**
     * Named machine profile the point simulates on (backend registry,
     * src/backend). Identity: a different core geometry measures
     * different numbers. Compatibility rule: the field enters the
     * canonical key ONLY when it names a non-default profile — both ""
     * and "xeon-bdw" (the default profile, whose geometry is exactly
     * the pre-backend default CoreConfig) keep the exact pre-backend
     * key, so every existing store entry still resolves as a cache hit.
     */
    std::string backend;

    /**
     * ABR ladder rung: extra integer downscale applied to the suite
     * clip AFTER SuiteScale geometry (scale=2 halves each dimension
     * again — a "half-resolution rung" of the experiment's nominal
     * resolution). Identity: a different input resolution measures a
     * different encode. Compatibility rule: enters the canonical key
     * (and the trace key — it changes the encode input, hence the op
     * stream) ONLY when != 1, so every pre-ladder store and trace entry
     * keeps its exact key and stays a cache hit.
     */
    int scale = 1;

    /**
     * Canonical key: every identity field, fixed order, 'k=v'
     * ';'-joined. Two specs are the same experiment iff their keys are
     * byte-equal.
     */
    std::string canonicalKey() const;

    /** FNV-1a 64 of the canonical key salted with @p schema_version. */
    uint64_t hashForSchema(int schema_version) const;

    /** The store key: hashForSchema(kSchemaVersion). */
    uint64_t hash() const { return hashForSchema(kSchemaVersion); }

    /** hash() as 16 lowercase hex digits (the store file stem). */
    std::string hashHex() const;

    /**
     * The trace-cache key: ONLY the encode-side identity fields
     * (encoder, video, crf, preset, threads, divisor, frames,
     * maxTraceOps). The machine profile (backend) and the
     * segment-parallel knobs are deliberately excluded — the captured
     * op stream is a property of the encode, not of the core it is
     * later simulated on, so one trace file serves every machine
     * profile of the same encode (capture once, replay per backend).
     */
    std::string traceKey() const;

    /** FNV-1a 64 of "vepro-trace/v1|" + traceKey(), as 16 lowercase
     *  hex digits (the trace file stem under <store>/traces/). */
    std::string traceHashHex() const;

    /** Short human label for progress lines. */
    std::string label() const;

    /** The RunScale a runner needs to execute this spec. */
    core::RunScale toRunScale() const;

    /** Copy the scale-identity fields out of a bench RunScale. */
    static JobSpec withScale(const core::RunScale &scale);

    bool operator==(const JobSpec &other) const
    {
        return canonicalKey() == other.canonicalKey();
    }
};

/** FNV-1a 64-bit hash of a byte string. */
uint64_t fnv1a64(const std::string &bytes);

} // namespace vepro::lab

#endif // VEPRO_LAB_JOBSPEC_HPP
