#ifndef VEPRO_LAB_PROGRESS_HPP
#define VEPRO_LAB_PROGRESS_HPP

/**
 * @file
 * Mutex-serialised progress reporter shared by the orchestrator and the
 * bench sweeps. Worker threads used to fprintf(stderr, ...) directly,
 * interleaving characters under --jobs>1; every line now goes through
 * one lock so output stays whole-line atomic.
 */

#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>

namespace vepro::lab
{

class Progress
{
  public:
    /** Report to @p out (tests pass a tmpfile; benches use stderr). */
    explicit Progress(std::FILE *out = stderr) : out_(out) {}

    Progress(const Progress &) = delete;
    Progress &operator=(const Progress &) = delete;

    /** Emit one whole line (a trailing newline is added). */
    void line(const std::string &text);

    /** printf-style convenience; the formatted text is one line. */
    void linef(const char *fmt, ...) __attribute__((format(printf, 2, 3)));

    /** The process-wide stderr reporter the benches share. */
    static Progress &standard();

  private:
    std::FILE *out_;
    std::mutex mutex_;
};

} // namespace vepro::lab

#endif // VEPRO_LAB_PROGRESS_HPP
