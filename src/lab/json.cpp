#include "lab/json.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vepro::lab
{

namespace
{

constexpr int kMaxDepth = 64;

struct Parser {
    const std::string &text;
    size_t pos = 0;

    [[noreturn]] void fail(const std::string &what) const
    {
        throw JsonError("json: " + what + " at offset " +
                        std::to_string(pos));
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                text[pos] == '\r')) {
            ++pos;
        }
    }

    char peek()
    {
        if (pos >= text.size()) {
            fail("unexpected end of input");
        }
        return text[pos];
    }

    void expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos;
    }

    bool consumeLiteral(const char *lit)
    {
        size_t n = std::char_traits<char>::length(lit);
        if (text.compare(pos, n, lit) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size()) {
                fail("unterminated string");
            }
            char c = text[pos++];
            if (c == '"') {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size()) {
                fail("unterminated escape");
            }
            char e = text[pos++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos + 4 > text.size()) {
                    fail("truncated \\u escape");
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        fail("bad \\u escape digit");
                    }
                }
                // The store only ever emits \u00XX for control chars;
                // encode the general case as UTF-8 anyway.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    JsonValue parseNumberToken()
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-') {
            ++pos;
        }
        auto digits = [&] {
            size_t before = pos;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
                ++pos;
            }
            return pos > before;
        };
        if (!digits()) {
            fail("bad number");
        }
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (!digits()) {
                fail("bad fraction");
            }
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-')) {
                ++pos;
            }
            if (!digits()) {
                fail("bad exponent");
            }
        }
        // Keep the raw token: integers stay exact through round-trips.
        return JsonValue::numberToken(text.substr(start, pos - start));
    }

    JsonValue parseValue(int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
        }
        skipWs();
        char c = peek();
        if (c == '{') {
            ++pos;
            JsonValue obj = JsonValue::object();
            skipWs();
            if (peek() == '}') {
                ++pos;
                return obj;
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                obj.set(key, parseValue(depth + 1));
                skipWs();
                char d = peek();
                if (d == ',') {
                    ++pos;
                    continue;
                }
                expect('}');
                return obj;
            }
        }
        if (c == '[') {
            ++pos;
            JsonValue arr = JsonValue::array();
            skipWs();
            if (peek() == ']') {
                ++pos;
                return arr;
            }
            while (true) {
                arr.push(parseValue(depth + 1));
                skipWs();
                char d = peek();
                if (d == ',') {
                    ++pos;
                    continue;
                }
                expect(']');
                return arr;
            }
        }
        if (c == '"') {
            return JsonValue::str(parseString());
        }
        if (consumeLiteral("true")) {
            return JsonValue::boolean(true);
        }
        if (consumeLiteral("false")) {
            return JsonValue::boolean(false);
        }
        if (consumeLiteral("null")) {
            return JsonValue();
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            return parseNumberToken();
        }
        fail("unexpected character");
    }
};

} // namespace

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::number(uint64_t value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.scalar_ = std::to_string(value);
    return v;
}

JsonValue
JsonValue::number(int value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.scalar_ = std::to_string(value);
    return v;
}

JsonValue
JsonValue::number(double value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    v.scalar_ = buf;
    // %.17g can produce "inf"/"nan", which JSON cannot carry; store
    // records never contain them, but never emit invalid JSON either.
    if (v.scalar_.find_first_not_of("0123456789+-.eE") !=
        std::string::npos) {
        throw JsonError("json: non-finite number");
    }
    return v;
}

JsonValue
JsonValue::numberToken(std::string token)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.scalar_ = std::move(token);
    return v;
}

JsonValue
JsonValue::str(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.scalar_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

JsonValue
JsonValue::parse(const std::string &text)
{
    Parser p{text};
    JsonValue v = p.parseValue(0);
    p.skipWs();
    if (p.pos != text.size()) {
        p.fail("trailing garbage");
    }
    return v;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ != Kind::Object) {
        throw JsonError("json: set() on non-object");
    }
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object) {
        return nullptr;
    }
    for (const auto &member : members_) {
        if (member.first == key) {
            return &member.second;
        }
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v) {
        throw JsonError("json: missing member '" + key + "'");
    }
    return *v;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (kind_ != Kind::Array) {
        throw JsonError("json: push() on non-array");
    }
    items_.push_back(std::move(v));
    return *this;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array) {
        throw JsonError("json: items() on non-array");
    }
    return items_;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool) {
        throw JsonError("json: not a bool");
    }
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (kind_ != Kind::Number) {
        throw JsonError("json: not a number");
    }
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(scalar_.c_str(), &end);
    if (end != scalar_.c_str() + scalar_.size()) {
        throw JsonError("json: bad double '" + scalar_ + "'");
    }
    // strtod sets ERANGE for overflow and for underflow alike. An
    // underflowed result is a correctly rounded denormal — an exact,
    // representable value that %.17g emitted in the first place — so
    // only overflow is malformed.
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
        throw JsonError("json: bad double '" + scalar_ + "'");
    }
    return v;
}

uint64_t
JsonValue::asU64() const
{
    if (kind_ != Kind::Number) {
        throw JsonError("json: not a number");
    }
    if (scalar_.find_first_not_of("0123456789") != std::string::npos) {
        throw JsonError("json: not an unsigned integer '" + scalar_ + "'");
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
    if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE) {
        throw JsonError("json: u64 out of range '" + scalar_ + "'");
    }
    return static_cast<uint64_t>(v);
}

int
JsonValue::asInt() const
{
    if (kind_ != Kind::Number) {
        throw JsonError("json: not a number");
    }
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(scalar_.c_str(), &end, 10);
    if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE ||
        v < INT_MIN || v > INT_MAX) {
        throw JsonError("json: bad int '" + scalar_ + "'");
    }
    return static_cast<int>(v);
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String) {
        throw JsonError("json: not a string");
    }
    return scalar_;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out.push_back('\n');
            out.append(static_cast<size_t>(indent * d), ' ');
        }
    };
    switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: out += scalar_; break;
    case Kind::String:
        out.push_back('"');
        out += jsonEscape(scalar_);
        out.push_back('"');
        break;
    case Kind::Array:
        out.push_back('[');
        for (size_t i = 0; i < items_.size(); ++i) {
            if (i) {
                out.push_back(',');
            }
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (!items_.empty()) {
            newline(depth);
        }
        out.push_back(']');
        break;
    case Kind::Object:
        out.push_back('{');
        for (size_t i = 0; i < members_.size(); ++i) {
            if (i) {
                out.push_back(',');
            }
            newline(depth + 1);
            out.push_back('"');
            out += jsonEscape(members_[i].first);
            out += indent > 0 ? "\": " : "\":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!members_.empty()) {
            newline(depth);
        }
        out.push_back('}');
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

} // namespace vepro::lab
