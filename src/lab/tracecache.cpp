#include "lab/tracecache.hpp"

#include <atomic>
#include <filesystem>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace vepro::lab
{

namespace fs = std::filesystem;

namespace
{

/** Unique-per-writer tmp suffix (same scheme as ResultStore::save). */
std::string
tmpSuffix()
{
    static std::atomic<uint64_t> counter{0};
#ifdef _WIN32
    const long pid = _getpid();
#else
    const long pid = static_cast<long>(::getpid());
#endif
    return "." + std::to_string(pid) + "-" +
           std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) +
           ".tmp";
}

} // namespace

TraceCache::TraceCache(std::string dir, Progress *progress)
    : dir_(std::move(dir)), progress_(progress)
{
}

std::string
TraceCache::pathFor(const JobSpec &spec) const
{
    return (fs::path(dir_) / (spec.traceHashHex() + ".vetf")).string();
}

TraceCache::Lease
TraceCache::begin(const JobSpec &spec)
{
    Lease lease;
    lease.key = spec.traceHashHex();
    lease.path = pathFor(spec);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return inflight_.count(lease.key) == 0; });
        inflight_.insert(lease.key);
    }
    lease.active = true;
    std::error_code ec;
    if (fs::exists(lease.path, ec)) {
        lease.hit = true;
    } else {
        fs::create_directories(dir_, ec);
        lease.tmpPath = lease.path + tmpSuffix();
    }
    return lease;
}

void
TraceCache::recapture(Lease &lease, const std::string &error)
{
    if (!lease.active || !lease.hit) {
        throw std::logic_error("lab: recapture() needs an active hit lease");
    }
    if (progress_) {
        progress_->linef(
            "  warning: corrupt or stale cache entry %s (%s) — recomputing",
            lease.path.c_str(), error.c_str());
    }
    std::error_code ec;
    fs::remove(lease.path, ec);  // Best effort; capture overwrites anyway.
    fs::create_directories(dir_, ec);
    lease.hit = false;
    lease.tmpPath = lease.path + tmpSuffix();
}

void
TraceCache::commit(Lease &lease)
{
    if (!lease.active) {
        return;
    }
    if (!lease.hit) {
        // Atomic publish, like the result store: a concurrent reader
        // (another process sharing the store) sees either no trace or
        // a complete sealed one, never a partial file.
        fs::rename(lease.tmpPath, lease.path);
    }
    release(lease);
}

void
TraceCache::abort(Lease &lease)
{
    if (!lease.active) {
        return;
    }
    if (!lease.hit && !lease.tmpPath.empty()) {
        std::error_code ec;
        fs::remove(lease.tmpPath, ec);  // Best effort cleanup.
    }
    release(lease);
}

void
TraceCache::release(Lease &lease)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inflight_.erase(lease.key);
    }
    cv_.notify_all();
    lease.active = false;
    lease.tmpPath.clear();
}

} // namespace vepro::lab
