#include "lab/orchestrator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>

#include "backend/profile.hpp"
#include "encoders/registry.hpp"
#include "lab/json.hpp"
#include "trace/trace_io.hpp"
#include "video/scale.hpp"
#include "video/suite.hpp"

namespace vepro::lab
{

namespace
{

/** The core geometry a spec simulates on (runPoint's resolution). */
uarch::CoreConfig
coreConfigFor(const JobSpec &spec)
{
    uarch::CoreConfig cfg;
    if (!spec.backend.empty()) {
        const backend::MachineProfile &profile =
            backend::resolveProfile(spec.backend);
        if (profile.kind != backend::Kind::Core) {
            throw std::invalid_argument(
                "lab: backend '" + spec.backend +
                "' is fixed-function and cannot run the core model");
        }
        cfg = profile.core;
    }
    return cfg;
}

/** Copy the encode-side numbers a figure consumes into a JobResult. */
void
fillEncodeSummary(JobResult &result, const encoders::EncodeResult &enc)
{
    result.encode.wallSeconds = enc.wallSeconds;
    result.encode.instructions = enc.instructions;
    result.encode.bitrateKbps = enc.bitrateKbps;
    result.encode.psnrDb = enc.psnrDb;
    result.encode.droppedOps = enc.droppedOps;
}

} // namespace

bool
Orchestrator::queueLess(const QueueItem &a, const QueueItem &b)
{
    // Higher priority first; submit order (seq) breaks ties, so a
    // priority class drains deterministically FIFO.
    if (a.priority != b.priority) {
        return a.priority < b.priority;
    }
    return a.seq > b.seq;
}

OrchestratorOptions
OrchestratorOptions::fromRunScale(const core::RunScale &scale)
{
    OrchestratorOptions opts;
    opts.jobs = scale.jobs;
    opts.useCache = !scale.noCache;
    opts.useTraceCache = !scale.noCache;
    opts.storeDir = scale.storeDir;
    return opts;
}

Orchestrator::Orchestrator(OrchestratorOptions opts)
    : opts_(std::move(opts)), store_(opts_.storeDir, opts_.progress),
      traceCache_(opts_.storeDir + "/traces", opts_.progress)
{
}

Orchestrator::~Orchestrator()
{
    stopService();
}

size_t
Orchestrator::request(const JobSpec &spec)
{
    if (spec.threads < 1) {
        throw std::invalid_argument("lab: threads must be >= 1");
    }
    if (service_) {
        throw std::logic_error(
            "lab: request() is the batch API — use submit() while the "
            "service is running");
    }
    std::string key = spec.canonicalKey();
    auto it = byKey_.find(key);
    if (it != byKey_.end()) {
        return it->second;
    }
    size_t handle = jobs_.size();
    jobs_.push_back(spec);
    results_.push_back(nullptr);
    byKey_.emplace(std::move(key), handle);
    return handle;
}

std::string
Orchestrator::clipKey(const JobSpec &spec)
{
    std::string key = spec.video + "/" + std::to_string(spec.divisor) +
                      "x" + std::to_string(spec.frames);
    // Ladder rungs load a further-downscaled copy: distinct slot, and
    // scale == 1 keeps the exact pre-ladder key.
    if (spec.scale != 1) {
        key += "/s" + std::to_string(spec.scale);
    }
    return key;
}

std::shared_ptr<const video::Video>
Orchestrator::acquireClip(const JobSpec &spec)
{
    ClipSlot *slot = nullptr;
    {
        std::lock_guard<std::mutex> map_lock(clips_mutex_);
        slot = clips_.at(clipKey(spec)).get();
    }
    std::lock_guard<std::mutex> lock(slot->mutex);
    if (!slot->clip) {
        core::RunScale scale = spec.toRunScale();
        video::Video clip = video::loadSuiteVideo(spec.video, scale.suite);
        if (spec.scale != 1) {
            clip = video::downscaleVideo(clip, spec.scale);
        }
        slot->clip =
            std::make_shared<const video::Video>(std::move(clip));
    }
    return slot->clip;
}

void
Orchestrator::releaseClip(const JobSpec &spec)
{
    ClipSlot *slot = nullptr;
    {
        std::lock_guard<std::mutex> map_lock(clips_mutex_);
        slot = clips_.at(clipKey(spec)).get();
    }
    std::lock_guard<std::mutex> lock(slot->mutex);
    if (slot->remaining > 0 && --slot->remaining == 0) {
        // Last pending point for this clip: free the frames now
        // instead of at end of sweep (outstanding shared_ptr copies
        // keep it alive until their jobs finish).
        slot->clip.reset();
    }
}

void
Orchestrator::prepareMiss(const JobSpec &spec)
{
    if (opts_.runner) {
        return;  // The test runner brings its own inputs.
    }
    if (!encoders_.count(spec.encoder)) {
        encoders_.emplace(spec.encoder,
                          encoders::encoderByName(spec.encoder));
    }
    std::lock_guard<std::mutex> map_lock(clips_mutex_);
    auto &slot = clips_[clipKey(spec)];
    if (!slot) {
        slot = std::make_unique<ClipSlot>();
    }
    ++slot->remaining;
}

JobResult
Orchestrator::execute(const JobSpec &spec)
{
    if (opts_.runner) {
        return opts_.runner(spec);
    }
    if (spec.threads != 1) {
        throw std::invalid_argument(
            "lab: multi-threaded points are not orchestrated yet "
            "(threads=" + std::to_string(spec.threads) + ")");
    }
    // Segment-mode stats depend on exact block boundaries, so only
    // sequential points go through the trace cache (their stats are
    // delivery-batching independent — replay is bit-identical).
    if (!opts_.useTraceCache || spec.segments != 1) {
        return executeDirect(spec);
    }

    TraceCache::Lease lease = traceCache_.begin(spec);
    if (lease.hit) {
        try {
            JobResult result = replayTrace(spec, lease.path);
            traceCache_.commit(lease);
            return result;
        } catch (const std::exception &e) {
            // Same policy as the result store: warn, drop the corrupt
            // entry, recompute. recapture() keeps the per-key lease so
            // no other worker can race the re-capture.
            traceCache_.recapture(lease, e.what());
        }
    }
    try {
        JobResult result = captureTrace(spec, lease);
        traceCache_.commit(lease);
        return result;
    } catch (...) {
        traceCache_.abort(lease);
        throw;
    }
}

JobResult
Orchestrator::executeDirect(const JobSpec &spec)
{
    std::shared_ptr<const encoders::EncoderModel> encoder;
    {
        // encoders_ grows under intake_mutex_ while workers read it.
        std::lock_guard<std::mutex> lock(intake_mutex_);
        encoder = encoders_.at(spec.encoder);
    }
    std::shared_ptr<const video::Video> clip = acquireClip(spec);
    encoderRuns_.fetch_add(1, std::memory_order_relaxed);
    core::SweepPoint point = core::runPoint(*encoder, *clip, spec.crf,
                                            spec.preset, spec.toRunScale());
    clip.reset();
    releaseClip(spec);

    JobResult result;
    fillEncodeSummary(result, point.encode);
    result.core = point.core;
    return result;
}

JobResult
Orchestrator::replayTrace(const JobSpec &spec, const std::string &path)
{
    uarch::StreamCore sim(coreConfigFor(spec));
    trace::FileSource source(path);
    trace::TraceFileInfo info = source.replay(sim);
    sim.flush();

    // The encode-side numbers ride in the trace metadata (written by
    // captureTrace). Any parse failure or key mismatch throws, which
    // the caller treats as a corrupt trace.
    JsonValue meta = JsonValue::parse(info.metadata);
    if (meta.at("traceKey").asString() != spec.traceKey()) {
        throw std::runtime_error(
            "trace metadata key mismatch (hash collision or renamed "
            "field without a version bump)");
    }
    JobResult result;
    result.encode.wallSeconds = meta.at("wallSeconds").asDouble();
    result.encode.instructions = meta.at("instructions").asU64();
    result.encode.bitrateKbps = meta.at("bitrateKbps").asDouble();
    result.encode.psnrDb = meta.at("psnrDb").asDouble();
    result.encode.droppedOps = meta.at("droppedOps").asU64();
    result.core = sim.stats();
    traceReplays_.fetch_add(1, std::memory_order_relaxed);
    // The replayed job never touched the clip, but prepareMiss pinned
    // it; release our reference so an all-replay sweep decodes nothing
    // and frees eagerly.
    releaseClip(spec);
    return result;
}

JobResult
Orchestrator::captureTrace(const JobSpec &spec,
                           const TraceCache::Lease &lease)
{
    std::shared_ptr<const encoders::EncoderModel> encoder;
    {
        std::lock_guard<std::mutex> lock(intake_mutex_);
        encoder = encoders_.at(spec.encoder);
    }
    encoders::EncodeParams params;
    params.crf = spec.crf;
    params.preset = spec.preset;
    core::RunScale scale = spec.toRunScale();

    // One encode feeds BOTH the live core model and the on-disk
    // capture: the FileSink sees byte-for-byte the stream the core
    // simulates, which is what makes later replays bit-identical.
    uarch::StreamCore sim(coreConfigFor(spec));
    trace::FileSink sink(lease.tmpPath);
    sink.deferSeal(true);  // metadata is only known after the encode
    trace::MuxSink mux{&sink, &sim};

    std::shared_ptr<const video::Video> clip = acquireClip(spec);
    encoderRuns_.fetch_add(1, std::memory_order_relaxed);
    encoders::EncodeResult enc = encoder->encode(
        *clip, params, core::tracingConfig(scale), false, &mux);
    clip.reset();
    releaseClip(spec);

    JsonValue meta = JsonValue::object();
    meta.set("traceKey", JsonValue::str(spec.traceKey()))
        .set("wallSeconds", JsonValue::number(enc.wallSeconds))
        .set("instructions", JsonValue::number(enc.instructions))
        .set("bitrateKbps", JsonValue::number(enc.bitrateKbps))
        .set("psnrDb", JsonValue::number(enc.psnrDb))
        .set("droppedOps", JsonValue::number(enc.droppedOps));
    sink.setMetadata(meta.dump());
    sink.seal();
    traceCaptures_.fetch_add(1, std::memory_order_relaxed);

    JobResult result;
    fillEncodeSummary(result, enc);
    result.core = sim.stats();
    return result;
}

JobResult
Orchestrator::executeWithRetry(const JobSpec &spec,
                               std::atomic<size_t> &retried)
{
    JobResult result;
    auto attempt = [&] {
        auto t0 = std::chrono::steady_clock::now();
        result = execute(spec);
        result.jobSeconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    };
    auto describe = [](std::exception_ptr err) -> std::string {
        try {
            std::rethrow_exception(err);
        } catch (const std::exception &e) {
            return e.what();
        } catch (...) {
            return "unknown error";
        }
    };
    try {
        attempt();
        return result;
    } catch (...) {
        retried.fetch_add(1, std::memory_order_relaxed);
        if (opts_.progress) {
            opts_.progress->linef(
                "  warning: %s failed (%s) — retrying once",
                spec.label().c_str(),
                describe(std::current_exception()).c_str());
        }
    }
    try {
        attempt();
        return result;
    } catch (...) {
        // Second failure: record it instead of aborting — a long sweep
        // (or a long-running service) must never lose completed work
        // to one bad spec.
        result = JobResult{};
        result.failed = true;
        result.error = describe(std::current_exception());
        if (opts_.progress) {
            opts_.progress->linef(
                "  warning: %s failed twice (%s) — recorded as failed",
                spec.label().c_str(), result.error.c_str());
        }
        return result;
    }
}

void
Orchestrator::run()
{
    if (service_) {
        throw std::logic_error("lab: run() while the service is active");
    }

    // Phase 1 — resolve from the store (serial: cheap file reads).
    std::vector<size_t> pending;
    std::vector<size_t> resolved;  ///< Everything this call settles.
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (results_[i]) {
            continue;
        }
        resolved.push_back(i);
        if (opts_.useCache) {
            if (std::optional<JobResult> hit = store_.load(jobs_[i])) {
                results_[i] = std::make_unique<JobResult>(*hit);
                ++cacheHits_;
                continue;
            }
        }
        pending.push_back(i);
    }

    // Phase 2 — prepare shared state for the misses: encoder models
    // and per-clip refcount slots (only misses pin a clip; a fully
    // cached run never decodes anything).
    for (size_t i : pending) {
        prepareMiss(jobs_[i]);
    }

    // Phase 3 — run the unique misses on the worker pool. A job that
    // throws twice is recorded as failed; the sweep keeps draining.
    std::atomic<size_t> done{0};
    std::atomic<size_t> retried{0};
    std::atomic<size_t> newly_failed{0};
    const size_t total = pending.size();
    core::parallelFor(total, opts_.jobs, [&](size_t p) {
        const JobSpec &spec = jobs_[pending[p]];
        JobResult result = executeWithRetry(spec, retried);
        if (result.failed) {
            newly_failed.fetch_add(1, std::memory_order_relaxed);
        } else {
            result.fromCache = false;
            store_.save(spec, result);
        }
        size_t k = done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opts_.verbose && opts_.progress && !result.failed) {
            opts_.progress->linef("  [%zu/%zu] %s — %.2fs", k, total,
                                  spec.label().c_str(), result.jobSeconds);
        }
        results_[pending[p]] = std::make_unique<JobResult>(std::move(result));
    });
    failures_ += newly_failed.load();
    computed_ += total - newly_failed.load();
    retries_ += retried.load();

    // Probe-cap warnings for everything resolved in this run, cached
    // or fresh — capped data under-represents the run either way.
    if (opts_.progress) {
        for (size_t i : resolved) {
            const JobResult &r = *results_[i];
            if (!r.failed && r.encode.droppedOps > 0) {
                opts_.progress->linef(
                    "  warning: %s hit the op cap (%llu ops dropped) — "
                    "pass --uncapped for full fidelity",
                    jobs_[i].label().c_str(),
                    static_cast<unsigned long long>(r.encode.droppedOps));
            }
        }
    }
}

// ---- Service mode ----------------------------------------------------

void
Orchestrator::startService(const ServiceOptions &options)
{
    std::lock_guard<std::mutex> lock(intake_mutex_);
    if (service_) {
        throw std::logic_error("lab: service already started");
    }
    auto service = std::make_unique<Service>();
    service->opts = options;
    service->opts.shards = std::max(1, options.shards);
    service->opts.workers = std::max(1, options.workers);
    for (int s = 0; s < service->opts.shards; ++s) {
        service->shards.push_back(std::make_unique<Shard>());
    }
    service_ = std::move(service);
    for (int w = 0; w < service_->opts.workers; ++w) {
        service_->workers.emplace_back(
            [this, w] { serviceWorker(static_cast<size_t>(w)); });
    }
}

std::optional<size_t>
Orchestrator::submit(const JobSpec &spec, int priority)
{
    if (spec.threads < 1) {
        throw std::invalid_argument("lab: threads must be >= 1");
    }
    std::lock_guard<std::mutex> lock(intake_mutex_);
    if (!service_) {
        throw std::logic_error("lab: submit() before startService()");
    }
    Service &svc = *service_;

    std::string key = spec.canonicalKey();
    auto it = byKey_.find(key);
    if (it != byKey_.end()) {
        return it->second;  // Dedupe: already resolved or in flight.
    }

    // Cache-first intake: a warm-store hit resolves synchronously and
    // never occupies queue capacity.
    std::optional<JobResult> hit;
    if (opts_.useCache) {
        hit = store_.load(spec);
    }

    if (!hit) {
        // Admission control: reject new work while the backlog is at
        // the limit (dedupe hits and cache hits above are always
        // admitted — they cost nothing to resolve).
        std::lock_guard<std::mutex> wait_lock(svc.wait_mutex);
        if (svc.opts.admissionLimit != 0 &&
            svc.queued >= svc.opts.admissionLimit) {
            ++rejected_;
            return std::nullopt;
        }
    }

    size_t handle;
    {
        std::lock_guard<std::mutex> done_lock(done_mutex_);
        handle = jobs_.size();
        jobs_.push_back(spec);
        results_.push_back(nullptr);
    }
    byKey_.emplace(std::move(key), handle);

    if (hit) {
        {
            std::lock_guard<std::mutex> done_lock(done_mutex_);
            results_[handle] = std::make_unique<JobResult>(*hit);
            ++cacheHits_;
        }
        done_cv_.notify_all();
        return handle;
    }

    prepareMiss(spec);

    QueueItem item;
    item.priority = priority;
    item.handle = handle;
    Shard &shard = *svc.shards[handle % svc.shards.size()];
    {
        std::lock_guard<std::mutex> wait_lock(svc.wait_mutex);
        item.seq = svc.next_seq++;
        {
            std::lock_guard<std::mutex> shard_lock(shard.mutex);
            shard.heap.push_back(item);
            std::push_heap(shard.heap.begin(), shard.heap.end(), queueLess);
        }
        ++svc.queued;
    }
    svc.work_cv.notify_one();
    return handle;
}

std::optional<size_t>
Orchestrator::popQueued(size_t worker_index)
{
    Service &svc = *service_;
    const size_t n = svc.shards.size();
    // Start at the worker's home shard, then steal round-robin: shards
    // keep intake mostly contention-free while idle workers still find
    // any backlog.
    for (size_t k = 0; k < n; ++k) {
        Shard &shard = *svc.shards[(worker_index + k) % n];
        std::lock_guard<std::mutex> shard_lock(shard.mutex);
        if (shard.heap.empty()) {
            continue;
        }
        std::pop_heap(shard.heap.begin(), shard.heap.end(), queueLess);
        size_t handle = shard.heap.back().handle;
        shard.heap.pop_back();
        return handle;
    }
    return std::nullopt;
}

void
Orchestrator::serviceWorker(size_t worker_index)
{
    Service &svc = *service_;
    for (;;) {
        std::optional<size_t> handle = popQueued(worker_index);
        if (!handle) {
            std::unique_lock<std::mutex> wait_lock(svc.wait_mutex);
            svc.work_cv.wait(wait_lock, [&] {
                return svc.queued > 0 || svc.stopping;
            });
            if (svc.queued == 0 && svc.stopping) {
                return;
            }
            continue;
        }
        {
            std::lock_guard<std::mutex> wait_lock(svc.wait_mutex);
            --svc.queued;
        }

        const JobSpec *spec = nullptr;
        {
            // Deque elements never move, so the reference outlives the
            // lock; only the container's structure needs the mutex.
            std::lock_guard<std::mutex> done_lock(done_mutex_);
            spec = &jobs_[*handle];
        }
        JobResult result = executeWithRetry(*spec, service_retries_);
        if (!result.failed) {
            result.fromCache = false;
            store_.save(*spec, result);
        }
        finishJob(*handle, std::move(result));
    }
}

void
Orchestrator::finishJob(size_t handle, JobResult &&result)
{
    {
        std::lock_guard<std::mutex> done_lock(done_mutex_);
        if (result.failed) {
            ++failures_;
        } else {
            ++computed_;
        }
        results_[handle] = std::make_unique<JobResult>(std::move(result));
    }
    done_cv_.notify_all();
}

void
Orchestrator::await(size_t handle)
{
    std::unique_lock<std::mutex> done_lock(done_mutex_);
    if (handle >= results_.size()) {
        throw std::out_of_range("lab: bad job handle");
    }
    done_cv_.wait(done_lock, [&] { return results_[handle] != nullptr; });
}

bool
Orchestrator::finished(size_t handle) const
{
    std::lock_guard<std::mutex> done_lock(done_mutex_);
    if (handle >= results_.size()) {
        throw std::out_of_range("lab: bad job handle");
    }
    return results_[handle] != nullptr;
}

void
Orchestrator::stopService()
{
    {
        std::lock_guard<std::mutex> lock(intake_mutex_);
        if (!service_) {
            return;
        }
        {
            std::lock_guard<std::mutex> wait_lock(service_->wait_mutex);
            service_->stopping = true;
        }
        service_->work_cv.notify_all();
    }
    // Join outside intake_mutex_ so in-flight workers can still read
    // the encoder map while finishing their last jobs.
    for (std::thread &t : service_->workers) {
        t.join();
    }
    std::lock_guard<std::mutex> lock(intake_mutex_);
    retries_ += service_retries_.exchange(0);
    service_.reset();
}

// ---- Results ---------------------------------------------------------

const JobResult &
Orchestrator::result(size_t handle) const
{
    const JobResult *result = nullptr;
    {
        std::lock_guard<std::mutex> done_lock(done_mutex_);
        if (handle >= results_.size()) {
            throw std::out_of_range("lab: bad job handle");
        }
        result = results_[handle].get();
    }
    if (result == nullptr) {
        throw std::logic_error("lab: result() before run()");
    }
    if (result->failed) {
        throw std::runtime_error("lab: job failed: " + result->error);
    }
    return *result;
}

bool
Orchestrator::failed(size_t handle) const
{
    const JobResult *result = nullptr;
    {
        std::lock_guard<std::mutex> done_lock(done_mutex_);
        if (handle >= results_.size()) {
            throw std::out_of_range("lab: bad job handle");
        }
        result = results_[handle].get();
    }
    if (result == nullptr) {
        throw std::logic_error("lab: failed() before run()");
    }
    return result->failed;
}

const std::string &
Orchestrator::error(size_t handle) const
{
    const JobResult *result = nullptr;
    {
        std::lock_guard<std::mutex> done_lock(done_mutex_);
        if (handle >= results_.size()) {
            throw std::out_of_range("lab: bad job handle");
        }
        result = results_[handle].get();
    }
    if (result == nullptr) {
        throw std::logic_error("lab: error() before run()");
    }
    return result->error;
}

std::string
Orchestrator::summaryLine() const
{
    const size_t n = jobs_.size();
    const double pct =
        n ? 100.0 * static_cast<double>(cacheHits_) / static_cast<double>(n)
          : 100.0;
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "%zu unique jobs, %zu cache hits, %zu computed "
                  "(cache hits: %.1f%%)",
                  n, cacheHits_, computed_, pct);
    std::string line = buf;
    if (failures_ > 0) {
        line += ", " + std::to_string(failures_) + " failed";
    }
    if (rejected_ > 0) {
        line += ", " + std::to_string(rejected_) + " rejected";
    }
    return line;
}

std::string
Orchestrator::traceLine() const
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "encoder invoked %zu times (%zu trace captures, "
                  "%zu trace replays)",
                  encoderRuns_.load(), traceCaptures_.load(),
                  traceReplays_.load());
    return buf;
}

} // namespace vepro::lab
