#include "lab/orchestrator.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "encoders/registry.hpp"
#include "video/suite.hpp"

namespace vepro::lab
{

OrchestratorOptions
OrchestratorOptions::fromRunScale(const core::RunScale &scale)
{
    OrchestratorOptions opts;
    opts.jobs = scale.jobs;
    opts.useCache = !scale.noCache;
    opts.storeDir = scale.storeDir;
    return opts;
}

Orchestrator::Orchestrator(OrchestratorOptions opts)
    : opts_(std::move(opts)), store_(opts_.storeDir, opts_.progress)
{
}

size_t
Orchestrator::request(const JobSpec &spec)
{
    if (spec.threads < 1) {
        throw std::invalid_argument("lab: threads must be >= 1");
    }
    std::string key = spec.canonicalKey();
    auto it = byKey_.find(key);
    if (it != byKey_.end()) {
        return it->second;
    }
    size_t handle = jobs_.size();
    jobs_.push_back(spec);
    results_.push_back(nullptr);
    byKey_.emplace(std::move(key), handle);
    return handle;
}

std::string
Orchestrator::clipKey(const JobSpec &spec)
{
    return spec.video + "/" + std::to_string(spec.divisor) + "x" +
           std::to_string(spec.frames);
}

std::shared_ptr<const video::Video>
Orchestrator::acquireClip(const JobSpec &spec)
{
    ClipSlot &slot = *clips_.at(clipKey(spec));
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.clip) {
        core::RunScale scale = spec.toRunScale();
        slot.clip = std::make_shared<const video::Video>(
            video::loadSuiteVideo(spec.video, scale.suite));
    }
    return slot.clip;
}

void
Orchestrator::releaseClip(const JobSpec &spec)
{
    ClipSlot &slot = *clips_.at(clipKey(spec));
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.remaining > 0 && --slot.remaining == 0) {
        // Last pending point for this clip: free the frames now
        // instead of at end of sweep (outstanding shared_ptr copies
        // keep it alive until their jobs finish).
        slot.clip.reset();
    }
}

JobResult
Orchestrator::execute(const JobSpec &spec)
{
    if (opts_.runner) {
        return opts_.runner(spec);
    }
    if (spec.threads != 1) {
        throw std::invalid_argument(
            "lab: multi-threaded points are not orchestrated yet "
            "(threads=" + std::to_string(spec.threads) + ")");
    }
    auto encoder = encoders_.at(spec.encoder);
    std::shared_ptr<const video::Video> clip = acquireClip(spec);
    core::SweepPoint point = core::runPoint(*encoder, *clip, spec.crf,
                                            spec.preset, spec.toRunScale());
    clip.reset();
    releaseClip(spec);

    JobResult result;
    result.encode.wallSeconds = point.encode.wallSeconds;
    result.encode.instructions = point.encode.instructions;
    result.encode.bitrateKbps = point.encode.bitrateKbps;
    result.encode.psnrDb = point.encode.psnrDb;
    result.encode.droppedOps = point.encode.droppedOps;
    result.core = point.core;
    return result;
}

void
Orchestrator::run()
{
    // Phase 1 — resolve from the store (serial: cheap file reads).
    std::vector<size_t> pending;
    std::vector<size_t> resolved;  ///< Everything this call settles.
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (results_[i]) {
            continue;
        }
        resolved.push_back(i);
        if (opts_.useCache) {
            if (std::optional<JobResult> hit = store_.load(jobs_[i])) {
                results_[i] = std::make_unique<JobResult>(*hit);
                ++cacheHits_;
                continue;
            }
        }
        pending.push_back(i);
    }

    // Phase 2 — prepare shared state for the misses: encoder models
    // and per-clip refcount slots (only misses pin a clip; a fully
    // cached run never decodes anything).
    if (!opts_.runner) {
        for (size_t i : pending) {
            const JobSpec &spec = jobs_[i];
            if (!encoders_.count(spec.encoder)) {
                encoders_.emplace(spec.encoder,
                                  encoders::encoderByName(spec.encoder));
            }
            auto &slot = clips_[clipKey(spec)];
            if (!slot) {
                slot = std::make_unique<ClipSlot>();
            }
            ++slot->remaining;
        }
    }

    // Phase 3 — run the unique misses on the worker pool.
    std::atomic<size_t> done{0};
    std::atomic<size_t> retried{0};
    const size_t total = pending.size();
    core::parallelFor(total, opts_.jobs, [&](size_t p) {
        const JobSpec &spec = jobs_[pending[p]];
        JobResult result;
        auto attempt = [&] {
            auto t0 = std::chrono::steady_clock::now();
            result = execute(spec);
            result.jobSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        };
        try {
            attempt();
        } catch (const std::exception &e) {
            retried.fetch_add(1, std::memory_order_relaxed);
            if (opts_.progress) {
                opts_.progress->linef(
                    "  warning: %s failed (%s) — retrying once",
                    spec.label().c_str(), e.what());
            }
            attempt();  // A second throw aborts the run via parallelFor.
        }
        result.fromCache = false;
        store_.save(spec, result);
        size_t k = done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opts_.verbose && opts_.progress) {
            opts_.progress->linef("  [%zu/%zu] %s — %.2fs", k, total,
                                  spec.label().c_str(), result.jobSeconds);
        }
        results_[pending[p]] = std::make_unique<JobResult>(result);
    });
    computed_ += total;
    retries_ += retried.load();

    // Probe-cap warnings for everything resolved in this run, cached
    // or fresh — capped data under-represents the run either way.
    if (opts_.progress) {
        for (size_t i : resolved) {
            const JobResult &r = *results_[i];
            if (r.encode.droppedOps > 0) {
                opts_.progress->linef(
                    "  warning: %s hit the op cap (%llu ops dropped) — "
                    "pass --uncapped for full fidelity",
                    jobs_[i].label().c_str(),
                    static_cast<unsigned long long>(r.encode.droppedOps));
            }
        }
    }
}

const JobResult &
Orchestrator::result(size_t handle) const
{
    if (handle >= results_.size()) {
        throw std::out_of_range("lab: bad job handle");
    }
    if (!results_[handle]) {
        throw std::logic_error("lab: result() before run()");
    }
    return *results_[handle];
}

std::string
Orchestrator::summaryLine() const
{
    const size_t n = jobs_.size();
    const double pct =
        n ? 100.0 * static_cast<double>(cacheHits_) / static_cast<double>(n)
          : 100.0;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%zu unique jobs, %zu cache hits, %zu computed "
                  "(cache hits: %.1f%%)",
                  n, cacheHits_, computed_, pct);
    return buf;
}

} // namespace vepro::lab
