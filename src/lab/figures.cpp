#include "lab/figures.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace vepro::lab
{

namespace
{

/** One requested (video, crf) point of a CRF sweep. */
struct SweepHandle {
    std::string video;
    int crf;
    size_t handle;
};

std::string
pctOfCycles(const uarch::CoreStats &c, uint64_t v)
{
    return core::fmt(c.cycles ? 100.0 * static_cast<double>(v) /
                                    static_cast<double>(c.cycles)
                              : 0.0,
                     2);
}

/** Shared request phase of figs 4-7: the preset-4 SVT-AV1 CRF sweep. */
std::vector<SweepHandle>
requestCrfSweep(Orchestrator &orch, const core::RunScale &scale)
{
    std::vector<SweepHandle> handles;
    for (const video::SuiteEntry &e : sweepClips(scale)) {
        for (int crf : core::crfSweepAv1()) {
            JobSpec spec = JobSpec::withScale(scale);
            spec.encoder = "SVT-AV1";
            spec.video = e.name;
            spec.crf = crf;
            spec.preset = 4;
            handles.push_back({e.name, crf, orch.request(spec)});
        }
    }
    return handles;
}

/** Base for the four figures that render the shared CRF sweep. */
class CrfSweepFigure
{
  public:
    virtual ~CrfSweepFigure() = default;

    void
    request(Orchestrator &orch, const core::RunScale &scale)
    {
        handles_ = requestCrfSweep(orch, scale);
    }

    virtual FigureResult render(const Orchestrator &orch) const = 0;

  protected:
    std::vector<SweepHandle> handles_;
};

class Fig4 final : public CrfSweepFigure
{
  public:
    FigureResult
    render(const Orchestrator &orch) const override
    {
        core::Table table(
            {"Video", "CRF", "Instructions", "Time (s)", "IPC"});
        for (const SweepHandle &h : handles_) {
            const JobResult &r = orch.result(h.handle);
            table.addRow({h.video, std::to_string(h.crf),
                          core::fmtCount(r.encode.instructions),
                          core::fmt(r.encode.wallSeconds, 3),
                          core::fmt(r.core.ipc(), 2)});
        }
        FigureResult out;
        out.id = 4;
        out.slug = "fig04";
        out.tables.push_back(
            {"crf_sweep",
             "Fig 4: CRF sweep — instruction count (4a), execution time "
             "(4b), IPC (4c); SVT-AV1 preset 4",
             std::move(table)});
        out.expectedShape =
            "Expected shape: instructions and time fall together as CRF "
            "rises; IPC stays near 2 and rises <= ~10%.";
        return out;
    }
};

class Fig5 final : public CrfSweepFigure
{
  public:
    FigureResult
    render(const Orchestrator &orch) const override
    {
        core::Table table({"Video", "CRF", "Retiring", "Bad-spec",
                           "Frontend", "Backend"});
        for (const SweepHandle &h : handles_) {
            const auto &s = orch.result(h.handle).core.slots;
            table.addRow({h.video, std::to_string(h.crf),
                          core::fmt(s.fraction(s.retiring), 3),
                          core::fmt(s.fraction(s.badSpec), 3),
                          core::fmt(s.fraction(s.frontend), 3),
                          core::fmt(s.fraction(s.backend), 3)});
        }
        FigureResult out;
        out.id = 5;
        out.slug = "fig05";
        out.tables.push_back(
            {"topdown",
             "Fig 5: top-down analysis per video; CRF rises within each "
             "cluster (SVT-AV1 preset 4)",
             std::move(table)});
        out.expectedShape =
            "Expected shape: bad-speculation falls with CRF; backend "
            "rises; retiring ~0.4-0.6 throughout.";
        return out;
    }
};

class Fig6 final : public CrfSweepFigure
{
  public:
    FigureResult
    render(const Orchestrator &orch) const override
    {
        core::Table mpki({"Video", "CRF", "Branch MPKI", "L1D MPKI",
                          "L2 MPKI", "LLC MPKI"});
        core::Table stalls({"Video", "CRF", "RS stall%", "ROB stall%",
                            "LB stall%", "SB stall%"});
        for (const SweepHandle &h : handles_) {
            const auto &c = orch.result(h.handle).core;
            mpki.addRow({h.video, std::to_string(h.crf),
                         core::fmt(c.branchMpki(), 2),
                         core::fmt(c.l1dMpki(), 2),
                         core::fmt(c.l2Mpki(), 2),
                         core::fmt(c.llcMpki(), 3)});
            stalls.addRow({h.video, std::to_string(h.crf),
                           pctOfCycles(c, c.stalls.rs),
                           pctOfCycles(c, c.stalls.rob),
                           pctOfCycles(c, c.stalls.loadBuf),
                           pctOfCycles(c, c.stalls.storeBuf)});
        }
        FigureResult out;
        out.id = 6;
        out.slug = "fig06";
        out.tables.push_back(
            {"mpki",
             "Fig 6a-d: branch / L1D / L2 / LLC misses per kilo-"
             "instruction vs CRF (SVT-AV1 preset 4)",
             std::move(mpki)});
        out.tables.push_back(
            {"stalls",
             "Fig 6e-h: allocation-stall cycles by blocking resource "
             "(percent of cycles) vs CRF",
             std::move(stalls)});
        out.expectedShape =
            "Expected shape: branch MPKI falls with CRF; L1D/L2 MPKI "
            "rise; LLC MPKI far below both; ROB stalls small.";
        return out;
    }
};

class Fig7 final : public CrfSweepFigure
{
  public:
    FigureResult
    render(const Orchestrator &orch) const override
    {
        core::Table table({"Video", "CRF", "Cond branches", "Mispredicts",
                           "Miss rate %"});
        for (const SweepHandle &h : handles_) {
            const auto &c = orch.result(h.handle).core;
            table.addRow({h.video, std::to_string(h.crf),
                          core::fmtCount(c.condBranches),
                          core::fmtCount(c.mispredicts),
                          core::fmt(c.branchMissRatePercent(), 2)});
        }
        FigureResult out;
        out.id = 7;
        out.slug = "fig07";
        out.tables.push_back(
            {"missrate",
             "Fig 7: branch miss rate vs CRF (SVT-AV1 preset 4)",
             std::move(table)});
        out.expectedShape =
            "Expected shape: the miss rate falls as CRF rises (looser RD "
            "thresholds make decision branches biased).";
        return out;
    }
};

/** Fig 11 — the preset sweep for game1 at fixed CRF 30. */
class Fig11 final
{
  public:
    void
    request(Orchestrator &orch, const core::RunScale &scale)
    {
        handles_.clear();
        for (int preset = 0; preset <= 8; ++preset) {
            JobSpec spec = JobSpec::withScale(scale);
            spec.encoder = "SVT-AV1";
            spec.video = "game1";
            spec.crf = 30;
            spec.preset = preset;
            handles_.push_back(orch.request(spec));
        }
    }

    FigureResult
    render(const Orchestrator &orch) const
    {
        core::Table ab({"Preset", "Time (s)", "Instructions",
                        "Bitrate (kbps)", "PSNR (dB)"});
        core::Table cde({"Preset", "Retiring", "Bad-spec", "Frontend",
                         "Backend", "Br MPKI", "L1D MPKI", "L2 MPKI",
                         "RS stall%", "SB stall%"});
        for (size_t preset = 0; preset < handles_.size(); ++preset) {
            const JobResult &r = orch.result(handles_[preset]);
            const auto &c = r.core;
            const auto &s = c.slots;
            ab.addRow({std::to_string(preset),
                       core::fmt(r.encode.wallSeconds, 3),
                       core::fmtCount(r.encode.instructions),
                       core::fmt(r.encode.bitrateKbps, 0),
                       core::fmt(r.encode.psnrDb, 2)});
            cde.addRow({std::to_string(preset),
                        core::fmt(s.fraction(s.retiring), 3),
                        core::fmt(s.fraction(s.badSpec), 3),
                        core::fmt(s.fraction(s.frontend), 3),
                        core::fmt(s.fraction(s.backend), 3),
                        core::fmt(c.branchMpki(), 2),
                        core::fmt(c.l1dMpki(), 2),
                        core::fmt(c.l2Mpki(), 2),
                        pctOfCycles(c, c.stalls.rs),
                        pctOfCycles(c, c.stalls.storeBuf)});
        }
        FigureResult out;
        out.id = 11;
        out.slug = "fig11";
        out.tables.push_back(
            {"time_rd",
             "Fig 11a-b: preset sweep — time, bitrate, PSNR (game1, "
             "CRF 30)",
             std::move(ab)});
        out.tables.push_back(
            {"uarch",
             "Fig 11c-e: preset sweep — top-down, MPKI, resource stalls",
             std::move(cde)});
        out.expectedShape =
            "Expected shape: time falls ~3 orders of magnitude from "
            "preset 0 to 8; bitrate rises, PSNR dips modestly; the "
            "microarchitectural rows show no clear preset trend.";
        return out;
    }

  private:
    std::vector<size_t> handles_;
};

} // namespace

const std::vector<int> &
supportedFigures()
{
    static const std::vector<int> ids = {4, 5, 6, 7, 11};
    return ids;
}

std::vector<video::SuiteEntry>
sweepClips(const core::RunScale &scale)
{
    if (!scale.videos.empty() || scale.suite.divisor <= 4) {
        return core::selectedVideos(scale);
    }
    // Quick default: span the entropy axis with five clips.
    std::vector<video::SuiteEntry> subset;
    for (const char *name : {"desktop", "funny", "game1", "cat", "hall"}) {
        subset.push_back(video::suiteEntry(name));
    }
    return subset;
}

std::vector<FigureResult>
runFigures(const std::vector<int> &ids, const core::RunScale &scale,
           Orchestrator &orch)
{
    std::vector<int> unique;
    for (int id : ids) {
        if (std::find(supportedFigures().begin(), supportedFigures().end(),
                      id) == supportedFigures().end()) {
            std::string known;
            for (int k : supportedFigures()) {
                known += (known.empty() ? "" : ",") + std::to_string(k);
            }
            throw std::invalid_argument("lab: unsupported figure " +
                                        std::to_string(id) +
                                        " (supported: " + known + ")");
        }
        if (std::find(unique.begin(), unique.end(), id) == unique.end()) {
            unique.push_back(id);
        }
    }

    // Request everything first so overlapping figures dedupe, then
    // resolve the union in one pool run, then render per figure.
    std::vector<std::unique_ptr<CrfSweepFigure>> crf_figs;
    std::vector<std::unique_ptr<Fig11>> preset_figs;
    std::vector<std::function<FigureResult()>> renderers;
    for (int id : unique) {
        if (id == 11) {
            preset_figs.push_back(std::make_unique<Fig11>());
            Fig11 *fig = preset_figs.back().get();
            fig->request(orch, scale);
            renderers.emplace_back([fig, &orch] { return fig->render(orch); });
            continue;
        }
        std::unique_ptr<CrfSweepFigure> fig;
        switch (id) {
        case 4: fig = std::make_unique<Fig4>(); break;
        case 5: fig = std::make_unique<Fig5>(); break;
        case 6: fig = std::make_unique<Fig6>(); break;
        default: fig = std::make_unique<Fig7>(); break;
        }
        fig->request(orch, scale);
        CrfSweepFigure *raw = fig.get();
        crf_figs.push_back(std::move(fig));
        renderers.emplace_back([raw, &orch] { return raw->render(orch); });
    }

    orch.run();

    std::vector<FigureResult> out;
    out.reserve(renderers.size());
    for (auto &render : renderers) {
        out.push_back(render());
    }
    return out;
}

std::vector<FigureResult>
runFigures(const std::vector<int> &ids, const core::RunScale &scale)
{
    Orchestrator orch(OrchestratorOptions::fromRunScale(scale));
    return runFigures(ids, scale, orch);
}

} // namespace vepro::lab
