#include "lab/jobspec.hpp"

#include <cstdio>

#include "backend/profile.hpp"

namespace vepro::lab
{

std::string
JobSpec::canonicalKey() const
{
    // Fixed field order; append-only. Changing the order, renaming a
    // field, or changing a default's meaning requires a kSchemaVersion
    // bump so old cache entries are orphaned, not misread.
    std::string key;
    key.reserve(128);
    key += "encoder=";
    key += encoder;
    key += ";video=";
    key += video;
    key += ";crf=";
    key += std::to_string(crf);
    key += ";preset=";
    key += std::to_string(preset);
    key += ";threads=";
    key += std::to_string(threads);
    key += ";divisor=";
    key += std::to_string(divisor);
    key += ";frames=";
    key += std::to_string(frames);
    key += ";maxTraceOps=";
    key += std::to_string(maxTraceOps);
    // Appended only when segment mode is active: sequential specs keep
    // the exact pre-segment key, so existing store entries stay valid.
    if (segments != 1) {
        key += ";segments=";
        key += std::to_string(segments);
        key += ";segmentWarmup=";
        key += std::to_string(segmentWarmup);
    }
    // Same append-only rule for the machine profile: "" and the default
    // profile name both mean the pre-backend default geometry and keep
    // the pre-backend key byte-identical (old store entries stay hits);
    // only a genuinely different machine re-keys the point.
    if (!backend.empty() && backend != backend::kDefaultProfile) {
        key += ";backend=";
        key += backend;
    }
    // Ladder rung: scale == 1 (full resolution, the default) keeps the
    // pre-ladder key byte-identical; only a real rung re-keys the point.
    if (scale != 1) {
        key += ";scale=";
        key += std::to_string(scale);
    }
    return key;
}

std::string
JobSpec::traceKey() const
{
    // Encode-side fields only, fixed order, append-only — same
    // evolution rules as canonicalKey(). Backend/segments are absent on
    // purpose: they change how the trace is SIMULATED, never the trace
    // itself (see the header comment).
    std::string key;
    key.reserve(128);
    key += "encoder=";
    key += encoder;
    key += ";video=";
    key += video;
    key += ";crf=";
    key += std::to_string(crf);
    key += ";preset=";
    key += std::to_string(preset);
    key += ";threads=";
    key += std::to_string(threads);
    key += ";divisor=";
    key += std::to_string(divisor);
    key += ";frames=";
    key += std::to_string(frames);
    key += ";maxTraceOps=";
    key += std::to_string(maxTraceOps);
    // Unlike backend/segments, the ladder rung DOES change the encode
    // input (and therefore the op stream), so it is trace identity —
    // but only when active, keeping every pre-ladder trace warm.
    if (scale != 1) {
        key += ";scale=";
        key += std::to_string(scale);
    }
    return key;
}

std::string
JobSpec::traceHashHex() const
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64("vepro-trace/v1|" + traceKey())));
    return buf;
}

uint64_t
fnv1a64(const std::string &bytes)
{
    uint64_t hash = 14695981039346656037ull;
    for (char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

uint64_t
JobSpec::hashForSchema(int schema_version) const
{
    return fnv1a64("vepro-lab/v" + std::to_string(schema_version) + "|" +
                   canonicalKey());
}

std::string
JobSpec::hashHex() const
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(hash()));
    return buf;
}

std::string
JobSpec::label() const
{
    std::string out = encoder + " " + video + " crf=" + std::to_string(crf) +
                      " preset=" + std::to_string(preset);
    if (threads != 1) {
        out += " threads=" + std::to_string(threads);
    }
    if (segments != 1) {
        out += " segments=" + std::to_string(segments);
    }
    if (!backend.empty() && backend != backend::kDefaultProfile) {
        out += " backend=" + backend;
    }
    if (scale != 1) {
        out += " scale=1/" + std::to_string(scale);
    }
    return out;
}

core::RunScale
JobSpec::toRunScale() const
{
    core::RunScale scale;
    scale.suite.divisor = divisor;
    scale.suite.frames = frames;
    scale.maxTraceOps = maxTraceOps;
    scale.jobs = 1;  // The orchestrator owns the worker pool.
    scale.segments = segments;
    scale.segmentWarmup = segmentWarmup;
    scale.backend = backend;
    return scale;
}

JobSpec
JobSpec::withScale(const core::RunScale &scale)
{
    JobSpec spec;
    spec.divisor = scale.suite.divisor;
    spec.frames = scale.suite.frames;
    spec.maxTraceOps = scale.maxTraceOps;
    spec.segments = scale.segments;
    spec.segmentWarmup = scale.segmentWarmup;
    spec.backend = scale.backend;
    return spec;
}

} // namespace vepro::lab
