#ifndef VEPRO_LAB_STORE_HPP
#define VEPRO_LAB_STORE_HPP

/**
 * @file
 * Content-addressed persistent result store: one JSON record per
 * JobSpec hash under a `.vepro-lab/` directory.
 *
 * Durability contract:
 *  - writes are atomic (tmp file + rename), so a reader never sees a
 *    partial record — a crashed writer leaves at worst a *.tmp file
 *    that is ignored;
 *  - loads never throw on bad entries: a truncated, corrupt, or
 *    stale-schema record is warned about and reported as a miss, which
 *    makes the orchestrator recompute and overwrite it.
 */

#include <cstdint>
#include <optional>
#include <string>

#include "lab/jobspec.hpp"
#include "lab/progress.hpp"
#include "uarch/core.hpp"

namespace vepro::lab
{

/** The encode-side numbers the figures consume. */
struct EncodeSummary {
    double wallSeconds = 0.0;   ///< Host wall time of the encode.
    uint64_t instructions = 0;  ///< Modeled dynamic instructions.
    double bitrateKbps = 0.0;
    double psnrDb = 0.0;
    /** Ops cut by the probe cap; benches warn when non-zero. */
    uint64_t droppedOps = 0;
};

/** Everything a figure needs from one executed job. */
struct JobResult {
    EncodeSummary encode;
    uarch::CoreStats core;

    // Provenance — not part of the record's figure payload.
    double jobSeconds = 0.0;  ///< Orchestrator-measured wall clock.
    bool fromCache = false;   ///< Set by the orchestrator on load.

    /**
     * Terminal failure: the job threw on its first attempt AND its
     * retry. The orchestrator records the error here instead of
     * aborting the sweep, keeps draining the remaining jobs, and never
     * persists a failed record to the store. Reading such a result
     * through Orchestrator::result() rethrows the recorded error.
     */
    bool failed = false;
    std::string error;  ///< what() of the second failure.
};

class ResultStore
{
  public:
    /**
     * @param dir      Store directory; created on first save.
     * @param progress Where corrupt-entry warnings go (never throws);
     *                 nullptr silences them.
     */
    explicit ResultStore(std::string dir,
                         Progress *progress = &Progress::standard());

    /**
     * Look up a record. Returns nullopt on a miss — including when the
     * entry exists but is truncated, unparseable, from another schema
     * version, or hash-collided onto a different canonical key; those
     * cases warn via the progress reporter and are recomputed by the
     * caller, never crashed on.
     */
    std::optional<JobResult> load(const JobSpec &spec) const;

    /**
     * Persist a record atomically: serialise to `<path>.tmp`, then
     * rename over the final path, so concurrent readers see either the
     * old complete record or the new one.
     */
    void save(const JobSpec &spec, const JobResult &result) const;

    /** The record path a spec maps to (exposed for tests/tooling). */
    std::string pathFor(const JobSpec &spec) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
    Progress *progress_;
};

} // namespace vepro::lab

#endif // VEPRO_LAB_STORE_HPP
