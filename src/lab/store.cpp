#include "lab/store.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "backend/profile.hpp"
#include "lab/json.hpp"

namespace vepro::lab
{

namespace fs = std::filesystem;

namespace
{

JsonValue
specToJson(const JobSpec &spec)
{
    JsonValue obj = JsonValue::object();
    obj.set("encoder", JsonValue::str(spec.encoder))
        .set("video", JsonValue::str(spec.video))
        .set("crf", JsonValue::number(spec.crf))
        .set("preset", JsonValue::number(spec.preset))
        .set("threads", JsonValue::number(spec.threads))
        .set("divisor", JsonValue::number(spec.divisor))
        .set("frames", JsonValue::number(spec.frames))
        .set("maxTraceOps", JsonValue::number(spec.maxTraceOps));
    // Echoed only when it is part of the identity (the canonical key
    // carries the same rule), so default-backend records keep the exact
    // pre-backend byte layout.
    if (!spec.backend.empty() && spec.backend != backend::kDefaultProfile) {
        obj.set("backend", JsonValue::str(spec.backend));
    }
    return obj;
}

JsonValue
coreToJson(const uarch::CoreStats &c)
{
    JsonValue obj = JsonValue::object();
    obj.set("cycles", JsonValue::number(c.cycles))
        .set("instructions", JsonValue::number(c.instructions))
        .set("retiring", JsonValue::number(c.slots.retiring))
        .set("badSpec", JsonValue::number(c.slots.badSpec))
        .set("frontend", JsonValue::number(c.slots.frontend))
        .set("backend", JsonValue::number(c.slots.backend))
        .set("backendMemory", JsonValue::number(c.slots.backendMemory))
        .set("backendCore", JsonValue::number(c.slots.backendCore))
        .set("rsStalls", JsonValue::number(c.stalls.rs))
        .set("robStalls", JsonValue::number(c.stalls.rob))
        .set("loadBufStalls", JsonValue::number(c.stalls.loadBuf))
        .set("storeBufStalls", JsonValue::number(c.stalls.storeBuf))
        .set("condBranches", JsonValue::number(c.condBranches))
        .set("mispredicts", JsonValue::number(c.mispredicts))
        .set("l1iMisses", JsonValue::number(c.l1iMisses))
        .set("l1dAccesses", JsonValue::number(c.l1dAccesses))
        .set("l1dMisses", JsonValue::number(c.l1dMisses))
        .set("l2Misses", JsonValue::number(c.l2Misses))
        .set("llcMisses", JsonValue::number(c.llcMisses))
        .set("invalidations", JsonValue::number(c.invalidations));
    return obj;
}

uarch::CoreStats
coreFromJson(const JsonValue &obj)
{
    uarch::CoreStats c;
    c.cycles = obj.at("cycles").asU64();
    c.instructions = obj.at("instructions").asU64();
    c.slots.retiring = obj.at("retiring").asU64();
    c.slots.badSpec = obj.at("badSpec").asU64();
    c.slots.frontend = obj.at("frontend").asU64();
    c.slots.backend = obj.at("backend").asU64();
    c.slots.backendMemory = obj.at("backendMemory").asU64();
    c.slots.backendCore = obj.at("backendCore").asU64();
    c.stalls.rs = obj.at("rsStalls").asU64();
    c.stalls.rob = obj.at("robStalls").asU64();
    c.stalls.loadBuf = obj.at("loadBufStalls").asU64();
    c.stalls.storeBuf = obj.at("storeBufStalls").asU64();
    c.condBranches = obj.at("condBranches").asU64();
    c.mispredicts = obj.at("mispredicts").asU64();
    c.l1iMisses = obj.at("l1iMisses").asU64();
    c.l1dAccesses = obj.at("l1dAccesses").asU64();
    c.l1dMisses = obj.at("l1dMisses").asU64();
    c.l2Misses = obj.at("l2Misses").asU64();
    c.llcMisses = obj.at("llcMisses").asU64();
    c.invalidations = obj.at("invalidations").asU64();
    return c;
}

} // namespace

ResultStore::ResultStore(std::string dir, Progress *progress)
    : dir_(std::move(dir)), progress_(progress)
{
}

std::string
ResultStore::pathFor(const JobSpec &spec) const
{
    return (fs::path(dir_) / (spec.hashHex() + ".json")).string();
}

std::optional<JobResult>
ResultStore::load(const JobSpec &spec) const
{
    const std::string path = pathFor(spec);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return std::nullopt;  // Plain miss: nothing cached yet.
    }
    std::ostringstream text;
    text << in.rdbuf();

    try {
        JsonValue root = JsonValue::parse(text.str());
        if (root.at("schema").asInt() != kSchemaVersion) {
            throw JsonError("schema version mismatch");
        }
        if (root.at("key").asString() != spec.canonicalKey()) {
            // 64-bit hash collision or a renamed field without a
            // schema bump — either way this record is someone else's.
            throw JsonError("canonical key mismatch");
        }
        const JsonValue &res = root.at("result");
        JobResult result;
        result.encode.wallSeconds = res.at("wallSeconds").asDouble();
        result.encode.instructions = res.at("instructions").asU64();
        result.encode.bitrateKbps = res.at("bitrateKbps").asDouble();
        result.encode.psnrDb = res.at("psnrDb").asDouble();
        result.encode.droppedOps = res.at("droppedOps").asU64();
        result.core = coreFromJson(res.at("core"));
        result.jobSeconds = res.at("jobSeconds").asDouble();
        result.fromCache = true;
        return result;
    } catch (const std::exception &e) {
        if (progress_) {
            progress_->linef(
                "  warning: corrupt or stale cache entry %s (%s) — "
                "recomputing",
                path.c_str(), e.what());
        }
        return std::nullopt;
    }
}

void
ResultStore::save(const JobSpec &spec, const JobResult &result) const
{
    fs::create_directories(dir_);

    JsonValue res = JsonValue::object();
    res.set("wallSeconds", JsonValue::number(result.encode.wallSeconds))
        .set("instructions", JsonValue::number(result.encode.instructions))
        .set("bitrateKbps", JsonValue::number(result.encode.bitrateKbps))
        .set("psnrDb", JsonValue::number(result.encode.psnrDb))
        .set("droppedOps", JsonValue::number(result.encode.droppedOps))
        .set("core", coreToJson(result.core))
        .set("jobSeconds", JsonValue::number(result.jobSeconds));

    JsonValue root = JsonValue::object();
    root.set("schema", JsonValue::number(kSchemaVersion))
        .set("key", JsonValue::str(spec.canonicalKey()))
        .set("spec", specToJson(spec))
        .set("result", std::move(res));

    // The tmp name must be unique per writer: two processes (e.g.
    // vepro-serve and vepro-lab sharing one store) or two worker
    // threads saving the same key concurrently would otherwise write
    // through ONE "<path>.tmp", interleaving truncations with renames —
    // a reader could then see a half-written record published, or a
    // writer could throw when its tmp was renamed away underneath it.
    // pid disambiguates processes, the counter disambiguates threads;
    // both renames then publish a complete record and last-rename-wins.
    static std::atomic<uint64_t> tmp_counter{0};
#ifdef _WIN32
    const long pid = _getpid();
#else
    const long pid = static_cast<long>(::getpid());
#endif
    const std::string path = pathFor(spec);
    const std::string tmp = path + "." + std::to_string(pid) + "-" +
                            std::to_string(tmp_counter.fetch_add(
                                1, std::memory_order_relaxed)) +
                            ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw std::runtime_error("lab: cannot write " + tmp);
        }
        out << root.dump(2) << "\n";
        out.flush();
        if (!out) {
            throw std::runtime_error("lab: short write to " + tmp);
        }
    }
    // Atomic publish: readers see the old record or the new one, never
    // a partial file.
    fs::rename(tmp, path);
}

} // namespace vepro::lab
