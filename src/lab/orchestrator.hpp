#ifndef VEPRO_LAB_ORCHESTRATOR_HPP
#define VEPRO_LAB_ORCHESTRATOR_HPP

/**
 * @file
 * Sweep orchestrator: figures declare the JobSpecs they need, the
 * orchestrator dedupes the union, satisfies what it can from the
 * persistent store, runs the rest on the core::parallelFor pool — with
 * per-job wall-clock timing, one retry on a thrown attempt, and
 * serialized progress lines — and fans results back out per figure.
 *
 * Decoded clips are reference-counted: a clip is loaded lazily when its
 * first cache-missing point starts and released as soon as its last
 * point completes, so a --full sweep never holds the whole suite
 * resident (and an all-cache-hit run decodes nothing at all).
 */

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/experiment.hpp"
#include "lab/jobspec.hpp"
#include "lab/progress.hpp"
#include "lab/store.hpp"
#include "video/frame.hpp"

namespace vepro::lab
{

struct OrchestratorOptions {
    int jobs = 1;                      ///< Worker threads.
    bool useCache = true;              ///< false = recompute everything.
    std::string storeDir = ".vepro-lab";
    Progress *progress = &Progress::standard();
    bool verbose = true;               ///< Per-job progress lines.
    /**
     * Test seam: replaces the default encode+simulate runner (and the
     * clip ref-counting that feeds it). Production code leaves this
     * empty.
     */
    std::function<JobResult(const JobSpec &)> runner;

    /** The options a bench derives from its parsed RunScale. */
    static OrchestratorOptions fromRunScale(const core::RunScale &scale);
};

class Orchestrator
{
  public:
    explicit Orchestrator(OrchestratorOptions opts = {});

    /**
     * Register one point and get its handle. Requests dedupe: the same
     * spec (by canonical key) from any number of figures returns the
     * same handle and runs at most once.
     */
    size_t request(const JobSpec &spec);

    /**
     * Resolve every outstanding request: cache lookups first, then the
     * unique misses on the worker pool. Each miss is retried once if
     * its first attempt throws; a job that fails twice aborts the run
     * with that exception (results computed before it are already
     * persisted). May be called again after further request()s.
     */
    void run();

    /** The result for a handle. @throws std::logic_error before run(). */
    const JobResult &result(size_t handle) const;

    size_t requested() const { return jobs_.size(); }  ///< Unique jobs.
    size_t cacheHits() const { return cacheHits_; }
    size_t computed() const { return computed_; }
    size_t retries() const { return retries_; }

    const ResultStore &store() const { return store_; }

    /** "N unique jobs, H cache hits, C computed (cache hits: P%)" */
    std::string summaryLine() const;

  private:
    struct ClipSlot {
        std::mutex mutex;
        std::shared_ptr<const video::Video> clip;
        size_t remaining = 0;  ///< Pending points still needing it.
    };

    JobResult execute(const JobSpec &spec);
    std::shared_ptr<const video::Video> acquireClip(const JobSpec &spec);
    void releaseClip(const JobSpec &spec);
    static std::string clipKey(const JobSpec &spec);

    OrchestratorOptions opts_;
    ResultStore store_;

    std::vector<JobSpec> jobs_;
    std::vector<std::unique_ptr<JobResult>> results_;
    std::unordered_map<std::string, size_t> byKey_;

    std::unordered_map<std::string,
                       std::shared_ptr<const encoders::EncoderModel>>
        encoders_;
    std::unordered_map<std::string, std::unique_ptr<ClipSlot>> clips_;

    size_t cacheHits_ = 0;
    size_t computed_ = 0;
    size_t retries_ = 0;
};

} // namespace vepro::lab

#endif // VEPRO_LAB_ORCHESTRATOR_HPP
