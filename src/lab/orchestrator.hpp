#ifndef VEPRO_LAB_ORCHESTRATOR_HPP
#define VEPRO_LAB_ORCHESTRATOR_HPP

/**
 * @file
 * Sweep orchestrator: figures declare the JobSpecs they need, the
 * orchestrator dedupes the union, satisfies what it can from the
 * persistent store, runs the rest on the core::parallelFor pool — with
 * per-job wall-clock timing, one retry on a thrown attempt (a second
 * failure is recorded, not fatal), and serialized progress lines — and
 * fans results back out per figure.
 *
 * Besides the batch API, the orchestrator can run as a persistent
 * service (startService/submit/await/stopService): worker threads
 * drain a sharded priority queue with asynchronous intake, admission
 * control, and the same dedupe/cache-first/retry semantics — the
 * execution engine of the vepro-serve encode farm.
 *
 * Decoded clips are reference-counted: a clip is loaded lazily when its
 * first cache-missing point starts and released as soon as its last
 * point completes, so a --full sweep never holds the whole suite
 * resident (and an all-cache-hit run decodes nothing at all).
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/experiment.hpp"
#include "lab/jobspec.hpp"
#include "lab/progress.hpp"
#include "lab/store.hpp"
#include "lab/tracecache.hpp"
#include "video/frame.hpp"

namespace vepro::lab
{

struct OrchestratorOptions {
    int jobs = 1;                      ///< Worker threads.
    bool useCache = true;              ///< false = recompute everything.
    /**
     * Capture each unique encode's op trace to `<store>/traces/` and
     * replay it instead of re-running the encoder when the same encode
     * is requested again (possibly on a different backend). Replays
     * are bit-identical to the live fused pipeline, so this changes
     * wall-clock only, never results. Disabled together with useCache
     * by --no-cache.
     */
    bool useTraceCache = true;
    std::string storeDir = ".vepro-lab";
    Progress *progress = &Progress::standard();
    bool verbose = true;               ///< Per-job progress lines.
    /**
     * Test seam: replaces the default encode+simulate runner (and the
     * clip ref-counting that feeds it). Production code leaves this
     * empty.
     */
    std::function<JobResult(const JobSpec &)> runner;

    /** The options a bench derives from its parsed RunScale. */
    static OrchestratorOptions fromRunScale(const core::RunScale &scale);
};

/**
 * Service-mode configuration (see Orchestrator::startService): the
 * persistent sharded priority queue behind vepro-serve's async job
 * intake.
 */
struct ServiceOptions {
    int shards = 4;    ///< Independent priority-queue shards (>= 1).
    int workers = 1;   ///< Persistent worker threads (>= 1).
    /**
     * Admission control: maximum jobs queued (submitted but not yet
     * started) before submit() rejects. 0 = unbounded.
     */
    size_t admissionLimit = 0;
};

class Orchestrator
{
  public:
    explicit Orchestrator(OrchestratorOptions opts = {});
    ~Orchestrator();

    /**
     * Register one point and get its handle. Requests dedupe: the same
     * spec (by canonical key) from any number of figures returns the
     * same handle and runs at most once.
     */
    size_t request(const JobSpec &spec);

    /**
     * Resolve every outstanding request: cache lookups first, then the
     * unique misses on the worker pool. Each miss is retried once if
     * its first attempt throws; a job that fails twice is recorded as
     * FAILED (failed(handle), with the error string) and the sweep
     * keeps draining — completed work is never lost to one bad spec.
     * May be called again after further request()s.
     */
    void run();

    // ---- Service mode: persistent queue with async intake -----------
    //
    // The batch API above resolves a closed set of requests in one
    // run() call. Service mode promotes the orchestrator into a
    // long-running farm back-end: persistent worker threads drain a
    // sharded priority queue while producers keep submitting jobs
    // asynchronously — the engine behind vepro-serve.

    /**
     * Spawn the service workers. Mutually exclusive with concurrent
     * run() calls. @throws std::logic_error if already started.
     */
    void startService(const ServiceOptions &options);

    /**
     * Asynchronously submit one job; thread-safe. Cache hits and
     * duplicates of an already-submitted spec resolve without queueing.
     * Higher @p priority runs earlier; ties run in submit order.
     *
     * @return the job handle, or nullopt when admission control
     *         rejected the job (queue at admissionLimit). A handle is
     *         interchangeable with batch handles: await() it, then read
     *         result().
     */
    std::optional<size_t> submit(const JobSpec &spec, int priority = 0);

    /** Block until @p handle is resolved (thread-safe). */
    void await(size_t handle);

    /** True once @p handle has a result (possibly a failure). */
    bool finished(size_t handle) const;

    /**
     * Drain every queued job, join the workers, and leave service
     * mode. Every handle submitted before stopService() is resolved
     * when it returns. Idempotent.
     */
    void stopService();

    /** The result for a handle. @throws std::logic_error before run();
     *  rethrows the recorded error for a failed job. */
    const JobResult &result(size_t handle) const;

    /** Whether the job resolved as a terminal failure. */
    bool failed(size_t handle) const;
    /** The recorded error of a failed job ("" when it succeeded). */
    const std::string &error(size_t handle) const;

    size_t requested() const { return jobs_.size(); }  ///< Unique jobs.
    size_t cacheHits() const { return cacheHits_; }
    size_t computed() const { return computed_; }
    size_t retries() const { return retries_ + service_retries_.load(); }
    size_t failures() const { return failures_; }
    /** Jobs admission control turned away (service mode). */
    size_t rejected() const { return rejected_; }

    // ---- Trace-cache observability (the "no encoder work" seam) -----
    /** Times the encoder model actually ran (live encodes). A fully
     *  trace-warm run reports 0. */
    size_t encoderRuns() const { return encoderRuns_.load(); }
    /** Unique encodes captured to the trace cache this process. */
    size_t traceCaptures() const { return traceCaptures_.load(); }
    /** Jobs satisfied by replaying an on-disk trace. */
    size_t traceReplays() const { return traceReplays_.load(); }

    const ResultStore &store() const { return store_; }
    const TraceCache &traceCache() const { return traceCache_; }

    /** "N unique jobs, H cache hits, C computed (cache hits: P%)" */
    std::string summaryLine() const;

    /** "encoder invoked N times (C trace captures, R trace replays)" */
    std::string traceLine() const;

  private:
    struct ClipSlot {
        std::mutex mutex;
        std::shared_ptr<const video::Video> clip;
        size_t remaining = 0;  ///< Pending points still needing it.
    };

    /** One queued service job, ordered by (priority desc, seq asc). */
    struct QueueItem {
        int priority = 0;
        uint64_t seq = 0;
        size_t handle = 0;
    };

    struct Shard {
        std::mutex mutex;
        std::vector<QueueItem> heap;  ///< std::push_heap max-heap.
    };

    /** Everything the persistent service owns; null in batch mode. */
    struct Service {
        ServiceOptions opts;
        std::vector<std::unique_ptr<Shard>> shards;
        std::vector<std::thread> workers;
        std::mutex wait_mutex;
        std::condition_variable work_cv;
        size_t queued = 0;       ///< Submitted, not yet started.
        uint64_t next_seq = 0;
        bool stopping = false;
    };

    /** Max-heap order: higher priority first, then submit order. */
    static bool queueLess(const QueueItem &a, const QueueItem &b);

    JobResult execute(const JobSpec &spec);
    /** The pre-trace-cache path: live encode fused with the core
     *  model (runPoint). Used for segment-mode specs and --no-cache. */
    JobResult executeDirect(const JobSpec &spec);
    /** Replay an on-disk trace through the spec's core config; the
     *  encode summary comes from the trace metadata. @throws on any
     *  corrupt trace (caller recaptures). */
    JobResult replayTrace(const JobSpec &spec, const std::string &path);
    /** Live encode that also captures the trace to lease.tmpPath. */
    JobResult captureTrace(const JobSpec &spec,
                           const TraceCache::Lease &lease);
    /** execute() with the one-retry policy; never throws — a second
     *  failure comes back as a failed JobResult. */
    JobResult executeWithRetry(const JobSpec &spec,
                               std::atomic<size_t> &retried);
    void prepareMiss(const JobSpec &spec);
    void finishJob(size_t handle, JobResult &&result);
    void serviceWorker(size_t worker_index);
    std::optional<size_t> popQueued(size_t worker_index);
    std::shared_ptr<const video::Video> acquireClip(const JobSpec &spec);
    void releaseClip(const JobSpec &spec);
    static std::string clipKey(const JobSpec &spec);

    OrchestratorOptions opts_;
    ResultStore store_;
    TraceCache traceCache_;

    // Deques for reference stability: service workers hold references
    // to their job's spec and result slot while submit() keeps growing
    // both containers (structural changes and slot writes are guarded
    // by done_mutex_; a deque never relocates existing elements).
    std::deque<JobSpec> jobs_;
    std::deque<std::unique_ptr<JobResult>> results_;
    std::unordered_map<std::string, size_t> byKey_;

    std::unordered_map<std::string,
                       std::shared_ptr<const encoders::EncoderModel>>
        encoders_;
    std::unordered_map<std::string, std::unique_ptr<ClipSlot>> clips_;
    std::mutex clips_mutex_;  ///< Guards the clips_ map (not the slots).

    /** Intake/dedupe state shared by submit() callers; also guards the
     *  counters below in service mode (batch mode is single-threaded
     *  outside parallelFor, which only touches disjoint results_). */
    mutable std::mutex intake_mutex_;
    /** Resolution signalling for await()/finished(). */
    mutable std::mutex done_mutex_;
    mutable std::condition_variable done_cv_;

    std::unique_ptr<Service> service_;
    std::atomic<size_t> service_retries_{0};

    // Relaxed atomics: incremented from parallelFor/service workers,
    // read from accessors after the work drains.
    std::atomic<size_t> encoderRuns_{0};
    std::atomic<size_t> traceCaptures_{0};
    std::atomic<size_t> traceReplays_{0};

    size_t cacheHits_ = 0;
    size_t computed_ = 0;
    size_t retries_ = 0;
    size_t failures_ = 0;
    size_t rejected_ = 0;
};

} // namespace vepro::lab

#endif // VEPRO_LAB_ORCHESTRATOR_HPP
