#ifndef VEPRO_CODEC_BITSTREAM_HPP
#define VEPRO_CODEC_BITSTREAM_HPP

/**
 * @file
 * Byte-oriented output buffer for the range coder, with a synthetic
 * address so stream writes appear in the instrumented memory traffic.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vepro::codec
{

/** Growable encoded-byte buffer. */
class Bitstream
{
  public:
    Bitstream() = default;
    explicit Bitstream(uint64_t vaddr) : vaddr_(vaddr) {}

    void
    putByte(uint8_t b)
    {
        bytes_.push_back(b);
    }

    size_t sizeBytes() const { return bytes_.size(); }
    uint64_t sizeBits() const { return static_cast<uint64_t>(bytes_.size()) * 8; }

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    uint64_t vaddr() const { return vaddr_; }

    /** Synthetic address of the next byte to be written. */
    uint64_t nextVaddr() const { return vaddr_ + bytes_.size(); }

    void clear() { bytes_.clear(); }

  private:
    std::vector<uint8_t> bytes_;
    uint64_t vaddr_ = 0;
};

} // namespace vepro::codec

#endif // VEPRO_CODEC_BITSTREAM_HPP
