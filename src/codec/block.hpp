#ifndef VEPRO_CODEC_BLOCK_HPP
#define VEPRO_CODEC_BLOCK_HPP

/**
 * @file
 * Lightweight pixel-block views used by all codec kernels.
 *
 * A view couples the host pointer/stride with the *synthetic* address of
 * the same pixels in the instrumentation address space, so kernels can
 * report the memory traffic they would generate as compiled code.
 */

#include <cstddef>
#include <cstdint>

#include "video/frame.hpp"

namespace vepro::codec
{

/** Read-only view of a pixel rectangle. */
struct PelView {
    const uint8_t *pel = nullptr;  ///< Host pixels, row-major with stride.
    int stride = 0;                ///< Host row stride in bytes.
    uint64_t vaddr = 0;            ///< Synthetic address of pel[0].

    /** View shifted by (@p x, @p y) pixels. */
    PelView
    sub(int x, int y) const
    {
        return {pel + static_cast<ptrdiff_t>(y) * stride + x, stride,
                vaddr + static_cast<uint64_t>(y) * stride + x};
    }

    const uint8_t *row(int y) const
    {
        return pel + static_cast<ptrdiff_t>(y) * stride;
    }
};

/** Mutable view of a pixel rectangle. */
struct PelViewMut {
    uint8_t *pel = nullptr;
    int stride = 0;
    uint64_t vaddr = 0;

    PelViewMut
    sub(int x, int y)
    {
        return {pel + static_cast<ptrdiff_t>(y) * stride + x, stride,
                vaddr + static_cast<uint64_t>(y) * stride + x};
    }

    /** Implicit read-only view of the same pixels. */
    operator PelView() const { return {pel, stride, vaddr}; }

    uint8_t *row(int y) { return pel + static_cast<ptrdiff_t>(y) * stride; }
};

/** Bind a read-only view to a whole plane with synthetic base @p vaddr. */
inline PelView
viewOf(const video::Plane &plane, uint64_t vaddr)
{
    return {plane.data(), plane.stride(), vaddr};
}

/** Bind a mutable view to a whole plane with synthetic base @p vaddr. */
inline PelViewMut
viewOf(video::Plane &plane, uint64_t vaddr)
{
    return {plane.data(), plane.stride(), vaddr};
}

} // namespace vepro::codec

#endif // VEPRO_CODEC_BLOCK_HPP
