#include "codec/bitstream.hpp"

// Bitstream is header-only today; this translation unit anchors the
// library target and reserves room for future file-backed streams.
