#include "codec/rdo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "codec/loopfilter.hpp"
#include "codec/sad.hpp"
#include "codec/transform.hpp"

namespace vepro::codec
{

using trace::OpClass;
using trace::Probe;
using trace::currentProbe;
using trace::sitePc;

EncodeStats &
EncodeStats::operator+=(const EncodeStats &o)
{
    bits += o.bits;
    leafEvals += o.leafEvals;
    modeEvals += o.modeEvals;
    meCandidates += o.meCandidates;
    partitionNodes += o.partitionNodes;
    prunes += o.prunes;
    leafCommits += o.leafCommits;
    return *this;
}

std::vector<BlockRect>
partitionRects(PartitionMode mode, const BlockRect &r)
{
    const int hw = r.w / 2, hh = r.h / 2;
    switch (mode) {
      case PartitionMode::None:
        return {r};
      case PartitionMode::Split:
        return {{r.x, r.y, hw, hh},
                {r.x + hw, r.y, r.w - hw, hh},
                {r.x, r.y + hh, hw, r.h - hh},
                {r.x + hw, r.y + hh, r.w - hw, r.h - hh}};
      case PartitionMode::Horz:
        return {{r.x, r.y, r.w, hh}, {r.x, r.y + hh, r.w, r.h - hh}};
      case PartitionMode::Vert:
        return {{r.x, r.y, hw, r.h}, {r.x + hw, r.y, r.w - hw, r.h}};
      case PartitionMode::HorzA:
        return {{r.x, r.y, hw, hh},
                {r.x + hw, r.y, r.w - hw, hh},
                {r.x, r.y + hh, r.w, r.h - hh}};
      case PartitionMode::HorzB:
        return {{r.x, r.y, r.w, hh},
                {r.x, r.y + hh, hw, r.h - hh},
                {r.x + hw, r.y + hh, r.w - hw, r.h - hh}};
      case PartitionMode::VertA:
        return {{r.x, r.y, hw, hh},
                {r.x, r.y + hh, hw, r.h - hh},
                {r.x + hw, r.y, r.w - hw, r.h}};
      case PartitionMode::VertB:
        return {{r.x, r.y, hw, r.h},
                {r.x + hw, r.y, r.w - hw, hh},
                {r.x + hw, r.y + hh, r.w - hw, r.h - hh}};
      case PartitionMode::Horz4: {
        int qh = r.h / 4;
        return {{r.x, r.y, r.w, qh},
                {r.x, r.y + qh, r.w, qh},
                {r.x, r.y + 2 * qh, r.w, qh},
                {r.x, r.y + 3 * qh, r.w, r.h - 3 * qh}};
      }
      case PartitionMode::Vert4: {
        int qw = r.w / 4;
        return {{r.x, r.y, qw, r.h},
                {r.x + qw, r.y, qw, r.h},
                {r.x + 2 * qw, r.y, qw, r.h},
                {r.x + 3 * qw, r.y, r.w - 3 * qw, r.h}};
      }
      default:
        throw std::invalid_argument("partitionRects: bad mode");
    }
}

bool
partitionAllowed(PartitionMode mode, const BlockRect &r,
                 const ToolConfig &config)
{
    if (!(config.partitionMask & partitionBit(mode))) {
        return false;
    }
    if (mode == PartitionMode::None) {
        return true;
    }
    if (mode == PartitionMode::Split) {
        if (r.w < 2 * config.minBlockSize || r.h < 2 * config.minBlockSize) {
            return false;
        }
    }
    // Extended (AB / 4-way) partitions only exist on square blocks, as in
    // AV1.
    if (mode >= PartitionMode::HorzA && r.w != r.h) {
        return false;
    }
    // Every sub-rectangle must be codable: at least 4x4, multiple of 4.
    for (const BlockRect &s : partitionRects(mode, r)) {
        if (s.w < 4 || s.h < 4 || (s.w % 4) != 0 || (s.h % 4) != 0) {
            return false;
        }
    }
    return true;
}

namespace
{

/** Largest power-of-two transform size dividing both dimensions. */
int
txSizeFor(int w, int h)
{
    int t = kMaxTxSize;
    while (t > 4 && ((w % t) != 0 || (h % t) != 0)) {
        t >>= 1;
    }
    return t;
}

/**
 * Flip an n x n residual tile in place: type 1 reverses each row, type 2
 * reverses the row order. These are the cheap stand-ins for the ADST
 * transform family (a flip changes which edge the basis decays toward).
 */
void
flipTile(int16_t *tile, int n, int type)
{
    if (type == 1) {
        for (int y = 0; y < n; ++y) {
            std::reverse(tile + y * n, tile + (y + 1) * n);
        }
    } else if (type == 2) {
        for (int y = 0; y < n / 2; ++y) {
            std::swap_ranges(tile + y * n, tile + (y + 1) * n,
                             tile + (n - 1 - y) * n);
        }
    }
}

/** Approximate syntax bits for signalling one of @p n choices. */
double
choiceBits(int n)
{
    return n > 1 ? std::log2(static_cast<double>(n)) : 0.0;
}

/** Approximate bits for a signed MV component delta. */
double
mvComponentBits(int delta)
{
    int mag = std::abs(delta);
    return 1.0 + 2.0 * std::log2(1.0 + mag);
}

} // namespace

void
applyQuality(ToolConfig &config, int crf, int range)
{
    config.qIndex = std::clamp(crf, 0, range);
    config.qRange = range;
}

FrameCodec::FrameCodec(const ToolConfig &config, int width, int height,
                       trace::Probe *probe)
    : config_(config),
      width_(width),
      height_(height),
      quant_(config.qIndex, config.qRange),
      lambda_(quant_.lambda() * config.lambdaScale),
      probe_(probe),
      recon_(width, height),
      ref_(width, height),
      mv_cols_((width + 7) / 8),
      mv_rows_((height + 7) / 8),
      mv_field_(static_cast<size_t>(mv_cols_) * mv_rows_),
      res_(64 * 64),
      coeff_(64 * 64),
      levels_(64 * 64),
      res2_(64 * 64),
      pred_(64 * 64),
      pred2_(64 * 64)
{
    if (width < 16 || height < 16) {
        throw std::invalid_argument("FrameCodec: frame too small");
    }
    const size_t luma = static_cast<size_t>(width) * height;
    auto alloc = [&](size_t size) -> uint64_t {
        return probe_ ? probe_->allocRegion(size) : 0;
    };
    v_src_ = alloc(luma * 3 / 2);
    v_recon_ = alloc(luma * 3 / 2);
    v_ref_ = alloc(luma * 3 / 2);
    v_res_ = alloc(64 * 64 * 2);
    v_coeff_ = alloc(64 * 64 * 4);
    v_levels_ = alloc(64 * 64 * 4);
    v_pred_ = alloc(64 * 64 * 2);
    v_ctx_ = alloc(4096);
    v_stream_ = alloc(1 << 20);
    v_modeinfo_ = alloc(static_cast<size_t>(mv_cols_) * mv_rows_ * 64);
    stream_ = Bitstream(v_stream_);
}

void
FrameCodec::control(uint64_t site, int units, const BlockRect &r)
{
    if (Probe *p = currentProbe()) {
        uint64_t spread = v_modeinfo_ +
            (static_cast<uint64_t>(r.y / 8) * mv_cols_ +
             static_cast<uint64_t>(r.x / 8)) * 64;
        trace::emitControl(*p, site, units, v_ctx_ + 1024, spread, 16);
    }
}

void
FrameCodec::smoothPrediction(PelViewMut pred, int w, int h, int variant)
{
    // 3-tap horizontal (variant 1) or vertical (variant 2) smoothing,
    // the shape of AV1's smooth interpolation filters.
    if (variant == 1) {
        for (int y = 0; y < h; ++y) {
            uint8_t *row = pred.row(y);
            int prev = row[0];
            for (int x = 1; x + 1 < w; ++x) {
                int cur = row[x];
                row[x] = static_cast<uint8_t>((prev + 2 * cur + row[x + 1] + 2) >> 2);
                prev = cur;
            }
        }
    } else {
        for (int x = 0; x < w; ++x) {
            int prev = pred.row(0)[x];
            for (int y = 1; y + 1 < h; ++y) {
                int cur = pred.row(y)[x];
                pred.row(y)[x] = static_cast<uint8_t>(
                    (prev + 2 * cur + pred.row(y + 1)[x] + 2) >> 2);
                prev = cur;
            }
        }
    }
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.interp_smooth");
        p->enterKernel(site, 10);
        int chunks = std::max(1, w / 32);
        for (int y = 0; y < h; ++y) {
            for (int c = 0; c < chunks; ++c) {
                p->mem(OpClass::SimdLoad, pred.vaddr + static_cast<uint64_t>(y) * pred.stride + c * 32);
                p->ops(OpClass::SimdAlu, 3, 1);
                p->mem(OpClass::SimdStore, pred.vaddr + static_cast<uint64_t>(y) * pred.stride + c * 32, 1);
            }
        }
        p->loopBranches(static_cast<uint64_t>((h + 3) / 4));
    }
}

MotionVector
FrameCodec::mvPredictor(const BlockRect &r) const
{
    int cx = r.x / 8, cy = r.y / 8;
    if (cx > 0) {
        return mv_field_[static_cast<size_t>(cy) * mv_cols_ + cx - 1];
    }
    if (cy > 0) {
        return mv_field_[static_cast<size_t>(cy - 1) * mv_cols_ + cx];
    }
    return {};
}

void
FrameCodec::storeMv(const BlockRect &r, MotionVector mv)
{
    for (int y = r.y / 8; y < (r.y + r.h + 7) / 8 && y < mv_rows_; ++y) {
        for (int x = r.x / 8; x < (r.x + r.w + 7) / 8 && x < mv_cols_; ++x) {
            mv_field_[static_cast<size_t>(y) * mv_cols_ + x] = mv;
        }
    }
}

double
FrameCodec::costFast(const PelView &src_blk, const PelView &pred_blk,
                     const BlockRect &r, double mode_bits)
{
    uint64_t d = satd(src_blk, pred_blk, r.w, r.h);
    // Rate estimate: residual energy over the quantiser step approximates
    // the number of significant levels to code.
    double rate = mode_bits + static_cast<double>(d) / (quant_.step() * 4.0);
    // SATD is on the SAD scale; square-ish it onto the SSE scale used by
    // lambda. The constant keeps fast and full costs comparable.
    double dist = static_cast<double>(d) * quant_.step() * 0.9;
    return dist + lambda_ * rate;
}

double
FrameCodec::costWithTransform(const PelView &src_blk, const PelView &pred_blk,
                              const BlockRect &r, int tx, double mode_bits,
                              int *best_tx_type)
{
    residual(src_blk, pred_blk, r.w, r.h, res_.data(), v_res_);
    double best_cost = std::numeric_limits<double>::infinity();
    static const uint64_t type_site = sitePc("rdo.txtype_better");
    Probe *probe = currentProbe();

    int16_t tile_in[kMaxTxSize * kMaxTxSize];
    for (int type = 0; type < std::max(1, config_.txTypeCandidates); ++type) {
        double rate = mode_bits + choiceBits(config_.txTypeCandidates);
        double dist = 0.0;
        for (int ty = 0; ty < r.h; ty += tx) {
            for (int tx0 = 0; tx0 < r.w; tx0 += tx) {
                for (int y = 0; y < tx; ++y) {
                    const int16_t *src_row = res_.data() +
                        static_cast<ptrdiff_t>(ty + y) * r.w + tx0;
                    std::copy(src_row, src_row + tx, tile_in + y * tx);
                }
                flipTile(tile_in, tx, type);
                forwardDct(tile_in, coeff_.data(), tx, v_res_, v_coeff_);
                quant_.quantizeBlock(coeff_.data(), levels_.data(), tx,
                                     v_coeff_, v_levels_);
                rate += estimateCoeffBits(levels_.data(), tx, v_levels_);
                quant_.dequantizeBlock(levels_.data(), coeff_.data(), tx,
                                       v_levels_, v_coeff_);
                inverseDct(coeff_.data(), tile_in, tx, v_coeff_, v_res_);
                flipTile(tile_in, tx, type);
                // Distortion of the reconstructed tile.
                for (int y = 0; y < tx; ++y) {
                    const uint8_t *sp = src_blk.row(ty + y) + tx0;
                    const uint8_t *pp = pred_blk.row(ty + y) + tx0;
                    for (int x = 0; x < tx; ++x) {
                        int rec = std::clamp(
                            static_cast<int>(pp[x]) + tile_in[y * tx + x], 0,
                            255);
                        int d = static_cast<int>(sp[x]) - rec;
                        dist += static_cast<double>(d) * d;
                    }
                }
            }
        }
        if (probe) {
            static const uint64_t site = sitePc("codec.rdo.tile_dist");
            probe->enterKernel(site, 8);
            probe->ops(OpClass::SimdAlu,
                       static_cast<uint64_t>(r.w) * r.h / 8, 1, 2);
            probe->loopBranches(static_cast<uint64_t>(r.h / 4 + 1));
        }
        // RDOQ-style bookkeeping: per-coefficient cost table walks and
        // level adjustment logic around every transform evaluation.
        static const uint64_t rdoq_site = sitePc("rdo.txrd_ctl");
        control(rdoq_site, 4 + r.w * r.h / 6, r);
        double cost = dist + lambda_ * rate;
        bool better = cost < best_cost;
        if (probe && config_.txTypeCandidates > 1) {
            probe->decision(type_site, better);
        }
        if (better) {
            best_cost = cost;
            if (best_tx_type) {
                *best_tx_type = type;
            }
        }
    }
    return best_cost;
}

FrameCodec::EvalResult
FrameCodec::evalLeaf(const BlockRect &r, int mode_budget)
{
    ++stats_.leafEvals;
    static const uint64_t better_site = sitePc("rdo.mode_better");
    static const uint64_t bail_site = sitePc("rdo.mode_bail");
    Probe *p = currentProbe();

    PelView src_plane = viewOf(src_->y(), v_src_);
    PelView src_blk = src_plane.sub(r.x, r.y);
    PelView recon_plane = viewOf(recon_.y(), v_recon_);
    PelViewMut pred_view{pred_.data(), r.w, v_pred_};

    IntraNeighbors nb =
        gatherNeighbors(recon_plane, r.x, r.y, r.w, r.h, width_, height_);

    // Leaf setup: rate-estimation context, neighbour mode fetches, rect
    // bookkeeping — the scalar spine of real mode decision.
    static const uint64_t setup_site = sitePc("rdo.leaf_setup");
    control(setup_site, 10 + r.w * r.h / 6, r);

    EvalResult best;
    best.cost = std::numeric_limits<double>::infinity();

    // Inter candidates first: they usually win on non-key frames, making
    // the subsequent intra-mode comparisons biased (predictable) — more
    // so at high CRF where lambda crushes small distortion differences.
    static const uint64_t mode_ctl_site2 = sitePc("rdo.mode_ctl_inter");
    static const uint64_t ref_better_site = sitePc("rdo.ref_better");
    static const uint64_t filt_better_site = sitePc("rdo.filt_better");
    Probe *probe = currentProbe();
    if (!keyframe_) {
        PelView ref_plane = viewOf(ref_.y(), v_ref_);
        MotionVector mvp = mvPredictor(r);
        // Multi-reference hypothesis search: each hypothesis starts the
        // motion search from a different predictor, modelling the
        // distinct reference frames AV1/VP9 evaluate.
        const MotionVector starts[4] = {
            mvp, {0, 0}, {mvp.x / 2, mvp.y / 2}, {mvp.y, mvp.x}};
        for (int ref = 0; ref < std::max(1, config_.refFramesSearched);
             ++ref) {
            MeResult me = motionSearch(src_plane, ref_plane, width_,
                                       height_, r.x, r.y, r.w, r.h,
                                       starts[ref & 3], config_.me);
            stats_.meCandidates += static_cast<uint64_t>(me.candidates);
            motionCompensate(ref_plane, width_, height_, r.x, r.y, r.w, r.h,
                             me.mv, pred_view, config_.me.sharpSubpel);
            double mode_bits = 1.0 + choiceBits(config_.refFramesSearched) +
                               mvComponentBits(me.mv.x - mvp.x) +
                               mvComponentBits(me.mv.y - mvp.y);
            double cost = costFast(src_blk, pred_view, r, mode_bits);
            control(mode_ctl_site2, 8 + r.w * r.h / 3, r);
            ++stats_.modeEvals;
            bool better = cost < best.cost;
            if (probe && config_.refFramesSearched > 1) {
                probe->decision(ref_better_site, better);
            }
            if (better) {
                best.cost = cost;
                best.choice.inter = true;
                best.choice.mv = me.mv;
            }
        }
        // Interpolation-filter search: re-compensate the winning vector
        // through smoothing variants and re-cost (AV1 dual-filter style).
        if (best.choice.inter) {
            for (int filt = 1; filt < config_.interpFilterCands; ++filt) {
                motionCompensate(ref_plane, width_, height_, r.x, r.y, r.w,
                                 r.h, best.choice.mv, pred_view,
                                 config_.me.sharpSubpel);
                smoothPrediction(pred_view, r.w, r.h, filt);
                double cost = costFast(src_blk, pred_view, r,
                                       2.0 + choiceBits(
                                                 config_.interpFilterCands));
                ++stats_.modeEvals;
                bool better = cost < best.cost;
                if (probe) {
                    probe->decision(filt_better_site, better);
                }
                if (better) {
                    best.cost = cost;
                }
            }
        }
    }

    static const uint64_t mode_ctl_site = sitePc("rdo.mode_ctl");
    int since_improve = 0;
    double intra_flag_bits = keyframe_ ? 0.0 : 1.0;
    for (IntraMode mode : intraModeList(mode_budget)) {
        predictIntra(mode, nb, r.w, r.h, pred_view);
        double mode_bits = intra_flag_bits + choiceBits(mode_budget) + 1.0;
        double cost = costFast(src_blk, pred_view, r, mode_bits);
        control(mode_ctl_site, 8 + r.w * r.h / 3, r);
        ++stats_.modeEvals;
        bool better = cost < best.cost;
        if (p) {
            p->decision(better_site, better);
        }
        if (better) {
            best.cost = cost;
            best.choice.inter = false;
            best.choice.mode = mode;
            since_improve = 0;
        } else if (++since_improve >= config_.modePatience) {
            if (p) {
                p->decision(bail_site, true);
            }
            break;
        }
    }

    // Transform-size decision (and refined cost) for the winning mode.
    int tx_max = txSizeFor(r.w, r.h);
    best.choice.txSize = tx_max;
    if (config_.fullRd) {
        // Rebuild the winning prediction.
        if (best.choice.inter) {
            motionCompensate(viewOf(ref_.y(), v_ref_), width_, height_, r.x,
                             r.y, r.w, r.h, best.choice.mv, pred_view,
                             config_.me.sharpSubpel);
        } else {
            predictIntra(best.choice.mode, nb, r.w, r.h, pred_view);
        }
        double tx_best = std::numeric_limits<double>::infinity();
        int tx = tx_max;
        for (int cand = 0; cand < config_.txSizeCandidates && tx >= 4;
             ++cand, tx >>= 1) {
            int tx_type = 0;
            double c = costWithTransform(src_blk, pred_view, r, tx,
                                         choiceBits(config_.txSizeCandidates),
                                         &tx_type);
            ++stats_.modeEvals;
            bool better = c < tx_best;
            if (p) {
                p->decision(better_site, better);
            }
            if (better) {
                tx_best = c;
                best.choice.txSize = tx;
                best.choice.txType = tx_type;
            }
        }
        best.cost = tx_best;
    }
    best.choice.cost = best.cost;
    return best;
}

double
FrameCodec::searchNode(const BlockRect &r, int depth, PartNode &out)
{
    ++stats_.partitionNodes;
    static const uint64_t prune_site = sitePc("rdo.prune");
    static const uint64_t part_better_site = sitePc("rdo.part_better");
    static const uint64_t part_abort_site = sitePc("rdo.part_abort");
    Probe *p = currentProbe();

    // Count the allowed partition modes for syntax-cost purposes.
    int allowed = 0;
    for (int m = 0; m < kNumPartitionModes; ++m) {
        allowed += partitionAllowed(static_cast<PartitionMode>(m), r, config_);
    }
    const double part_bits = choiceBits(std::max(1, allowed));

    static const uint64_t node_ctl_site = sitePc("rdo.node_ctl");
    control(node_ctl_site, 12 + allowed * 6, r);

    EvalResult none = evalLeaf(r, config_.intraModes);
    double best_cost = none.cost + lambda_ * part_bits;
    out.mode = PartitionMode::None;
    out.children.clear();
    out.leaves = {none.choice};

    // Early termination: a cheap-enough leaf ends the search. The
    // threshold scales with the quantiser step, so coarse quality prunes
    // far more aggressively (and far more predictably).
    bool prune = false;
    if (config_.earlyExitScale > 0.0 && depth >= config_.pruneMinDepth) {
        // Normalised to the quantiser's own distortion floor (~step^2/12
        // per pixel): a leaf already coding near that floor cannot gain
        // from further splitting. Coarse quality reaches the floor for
        // almost every block (aggressive pruning); fine quality rarely
        // does.
        double threshold = 0.12 * config_.earlyExitScale * r.w * r.h *
                           quant_.step() * quant_.step();
        prune = best_cost < threshold;
        if (p) {
            p->decision(prune_site, prune);
        }
        if (prune) {
            ++stats_.prunes;
            return best_cost;
        }
    }

    for (int m = 1; m < kNumPartitionModes; ++m) {
        auto mode = static_cast<PartitionMode>(m);
        if (!partitionAllowed(mode, r, config_)) {
            continue;
        }
        double cost = lambda_ * part_bits;
        if (mode == PartitionMode::Split) {
            std::vector<PartNode> children(4);
            auto rects = partitionRects(mode, r);
            bool aborted = false;
            for (size_t i = 0; i < rects.size(); ++i) {
                cost += searchNode(rects[i], depth + 1, children[i]);
                bool over = cost >= best_cost;
                if (p) {
                    p->decision(part_abort_site, over);
                }
                if (over) {
                    aborted = true;
                    break;
                }
            }
            bool better = !aborted && cost < best_cost;
            if (p) {
                p->decision(part_better_site, better);
            }
            if (better) {
                best_cost = cost;
                out.mode = mode;
                out.children = std::move(children);
                out.leaves.clear();
            }
        } else {
            auto rects = partitionRects(mode, r);
            std::vector<LeafChoice> leaves;
            leaves.reserve(rects.size());
            bool aborted = false;
            for (const BlockRect &sr : rects) {
                EvalResult e = evalLeaf(sr, config_.intraModesRect);
                cost += e.cost;
                leaves.push_back(e.choice);
                bool over = cost >= best_cost;
                if (p) {
                    p->decision(part_abort_site, over);
                }
                if (over) {
                    aborted = true;
                    break;
                }
            }
            bool better = !aborted && cost < best_cost;
            if (p) {
                p->decision(part_better_site, better);
            }
            if (better) {
                best_cost = cost;
                out.mode = mode;
                out.children.clear();
                out.leaves = std::move(leaves);
            }
        }
    }
    return best_cost;
}

void
FrameCodec::codeCoeffTile(const int32_t *levels, int n, uint64_t vaddr)
{
    const std::vector<int> &scan = zigzagScan(n);
    int last = -1;
    for (int i = n * n - 1; i >= 0; --i) {
        if (levels[scan[static_cast<size_t>(i)]] != 0) {
            last = i;
            break;
        }
    }
    int size_ctx = std::min(3, n / 8);
    bool coded = last >= 0;
    rc_->encodeBit(ctx_.codedFlag[size_ctx], coded, 32 + size_ctx);
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.coeff_code");
        p->enterKernel(site, 16);
        p->memRun(OpClass::Load, vaddr, std::max(1, (last + 1 + 7) / 8), 32);
        p->loopBranches(static_cast<uint64_t>(std::max(1, last + 1)));
    }
    if (!coded) {
        return;
    }
    rc_->encodeUeGolomb(static_cast<uint32_t>(last));
    const int depth = std::clamp(config_.coeffContexts, 1, 4);
    for (int i = 0; i <= last; ++i) {
        int band = std::min(depth - 1, depth * i / (n * n));
        int32_t level = levels[scan[static_cast<size_t>(i)]];
        bool sig = level != 0;
        if (i < last) {
            rc_->encodeBit(ctx_.sig[band], sig, 40 + band);
        }
        if (!sig) {
            continue;
        }
        uint32_t mag = static_cast<uint32_t>(std::abs(level));
        bool gt1 = mag > 1;
        rc_->encodeBit(ctx_.gt1[band], gt1, 44 + band);
        if (gt1) {
            bool gt2 = mag > 2;
            rc_->encodeBit(ctx_.gt2[band], gt2, 48 + band);
            if (gt2) {
                rc_->encodeUeGolomb(mag - 3);
            }
        }
        rc_->encodeBypass(level < 0);
    }
}

void
FrameCodec::commitLeaf(const BlockRect &r, const LeafChoice &choice)
{
    ++stats_.leafCommits;
    static const uint64_t commit_ctl_site = sitePc("rdo.commit_ctl");
    control(commit_ctl_site, 20 + r.w * r.h / 4, r);
    PelView src_plane = viewOf(src_->y(), v_src_);
    PelView src_blk = src_plane.sub(r.x, r.y);
    PelViewMut recon_plane = viewOf(recon_.y(), v_recon_);
    PelViewMut pred_view{pred_.data(), r.w, v_pred_};

    // Prediction with final neighbours.
    if (choice.inter) {
        motionCompensate(viewOf(ref_.y(), v_ref_), width_, height_, r.x, r.y,
                         r.w, r.h, choice.mv, pred_view,
                         config_.me.sharpSubpel);
        MotionVector mvp = mvPredictor(r);
        if (!keyframe_) {
            rc_->encodeBit(ctx_.interFlag[0], true, 16);
        }
        int dx = choice.mv.x - mvp.x;
        int dy = choice.mv.y - mvp.y;
        rc_->encodeUeGolomb(static_cast<uint32_t>(std::abs(dx)));
        if (dx != 0) {
            rc_->encodeBypass(dx < 0);
        }
        rc_->encodeUeGolomb(static_cast<uint32_t>(std::abs(dy)));
        if (dy != 0) {
            rc_->encodeBypass(dy < 0);
        }
        storeMv(r, choice.mv);
    } else {
        IntraNeighbors nb = gatherNeighbors(recon_plane, r.x, r.y, r.w, r.h,
                                            width_, height_);
        predictIntra(choice.mode, nb, r.w, r.h, pred_view);
        if (!keyframe_) {
            rc_->encodeBit(ctx_.interFlag[0], false, 16);
        }
        rc_->encodeUeGolomb(static_cast<uint32_t>(choice.mode));
        storeMv(r, {});
    }

    // Transform, quantise, entropy-code, reconstruct.
    residual(src_blk, pred_view, r.w, r.h, res_.data(), v_res_);
    int tx = std::min(choice.txSize, txSizeFor(r.w, r.h));
    rc_->encodeUeGolomb(static_cast<uint32_t>(tx == txSizeFor(r.w, r.h) ? 0 : 1));
    if (config_.txTypeCandidates > 1) {
        rc_->encodeUeGolomb(static_cast<uint32_t>(choice.txType));
    }
    int16_t tile_in[kMaxTxSize * kMaxTxSize];
    for (int ty = 0; ty < r.h; ty += tx) {
        for (int tx0 = 0; tx0 < r.w; tx0 += tx) {
            for (int y = 0; y < tx; ++y) {
                const int16_t *row = res_.data() +
                    static_cast<ptrdiff_t>(ty + y) * r.w + tx0;
                std::copy(row, row + tx, tile_in + y * tx);
            }
            flipTile(tile_in, tx, choice.txType);
            forwardDct(tile_in, coeff_.data(), tx, v_res_, v_coeff_);
            quant_.quantizeBlock(coeff_.data(), levels_.data(), tx, v_coeff_,
                                 v_levels_);
            codeCoeffTile(levels_.data(), tx, v_levels_);
            quant_.dequantizeBlock(levels_.data(), coeff_.data(), tx,
                                   v_levels_, v_coeff_);
            inverseDct(coeff_.data(), tile_in, tx, v_coeff_, v_res_);
            flipTile(tile_in, tx, choice.txType);
            // Write the reconstructed residual back into the block
            // residual buffer for the final reconstruction below.
            for (int y = 0; y < tx; ++y) {
                int16_t *row = res_.data() +
                    static_cast<ptrdiff_t>(ty + y) * r.w + tx0;
                std::copy(tile_in + y * tx, tile_in + (y + 1) * tx, row);
            }
        }
    }
    reconstruct(pred_view, res_.data(), v_res_, r.w, r.h,
                recon_plane.sub(r.x, r.y));

    commitChroma(r, choice);
}

void
FrameCodec::commitChroma(const BlockRect &r, const LeafChoice &choice)
{
    // 4:2:0 chroma at half resolution, reusing the luma decision: inter
    // blocks motion-compensate with the halved vector, intra blocks use
    // DC — the standard fast-encoder shortcut.
    BlockRect c{r.x / 2, r.y / 2, r.w / 2, r.h / 2};
    if (c.w < 4 || c.h < 4) {
        return;
    }
    const int cw = width_ / 2, ch = height_ / 2;
    const size_t luma = static_cast<size_t>(width_) * height_;
    int tx = txSizeFor(c.w, c.h);
    int16_t tile_in[kMaxTxSize * kMaxTxSize];

    const video::Plane *src_planes[2] = {&src_->u(), &src_->v()};
    video::Plane *recon_planes[2] = {&recon_.u(), &recon_.v()};
    const video::Plane *ref_planes[2] = {&ref_.u(), &ref_.v()};

    for (int plane = 0; plane < 2; ++plane) {
        uint64_t voff = luma + static_cast<uint64_t>(plane) * luma / 4;
        PelView src_plane = viewOf(*src_planes[plane], v_src_ + voff);
        PelView src_blk = src_plane.sub(c.x, c.y);
        PelViewMut recon_plane = viewOf(*recon_planes[plane], v_recon_ + voff);
        PelViewMut pred_view{pred2_.data(), c.w, v_pred_ + 64 * 64};

        if (choice.inter) {
            MotionVector half{choice.mv.x / 2, choice.mv.y / 2};
            motionCompensate(viewOf(*ref_planes[plane], v_ref_ + voff), cw,
                             ch, c.x, c.y, c.w, c.h, half, pred_view,
                             config_.me.sharpSubpel);
        } else {
            IntraNeighbors nb =
                gatherNeighbors(recon_plane, c.x, c.y, c.w, c.h, cw, ch);
            predictIntra(IntraMode::Dc, nb, c.w, c.h, pred_view);
        }

        residual(src_blk, pred_view, c.w, c.h, res_.data(), v_res_);
        for (int ty = 0; ty < c.h; ty += tx) {
            for (int tx0 = 0; tx0 < c.w; tx0 += tx) {
                for (int y = 0; y < tx; ++y) {
                    const int16_t *row = res_.data() +
                        static_cast<ptrdiff_t>(ty + y) * c.w + tx0;
                    std::copy(row, row + tx, tile_in + y * tx);
                }
                forwardDct(tile_in, coeff_.data(), tx, v_res_, v_coeff_);
                quant_.quantizeBlock(coeff_.data(), levels_.data(), tx,
                                     v_coeff_, v_levels_);
                codeCoeffTile(levels_.data(), tx, v_levels_);
                quant_.dequantizeBlock(levels_.data(), coeff_.data(), tx,
                                       v_levels_, v_coeff_);
                inverseDct(coeff_.data(), tile_in, tx, v_coeff_, v_res_);
                for (int y = 0; y < tx; ++y) {
                    int16_t *row = res_.data() +
                        static_cast<ptrdiff_t>(ty + y) * c.w + tx0;
                    std::copy(tile_in + y * tx, tile_in + (y + 1) * tx, row);
                }
            }
        }
        reconstruct(pred_view, res_.data(), v_res_, c.w, c.h,
                    recon_plane.sub(c.x, c.y));
    }
}

void
FrameCodec::commitNode(const BlockRect &r, int depth, const PartNode &node)
{
    int depth_ctx = std::min(depth, 5);
    rc_->encodeBit(ctx_.partition[depth_ctx][0],
                   node.mode != PartitionMode::None,
                   static_cast<uint32_t>(depth_ctx) * kNumPartitionModes);
    if (node.mode != PartitionMode::None) {
        rc_->encodeUeGolomb(static_cast<uint32_t>(node.mode) - 1);
    }
    if (node.mode == PartitionMode::Split) {
        auto rects = partitionRects(node.mode, r);
        for (size_t i = 0; i < rects.size(); ++i) {
            commitNode(rects[i], depth + 1, node.children[i]);
        }
    } else {
        auto rects = partitionRects(node.mode, r);
        for (size_t i = 0; i < rects.size() && i < node.leaves.size(); ++i) {
            commitLeaf(rects[i], node.leaves[i]);
        }
    }
}

void
FrameCodec::loopFilterFrame()
{
    loopFilterPlane(recon_.y(), width_, height_, config_.filterPasses,
                    quant_.step(), v_recon_);
}

void
FrameCodec::beginFrame(const video::Frame &src, bool keyframe)
{
    if (src.width() != width_ || src.height() != height_) {
        throw std::invalid_argument("beginFrame: geometry mismatch");
    }
    if (rc_) {
        throw std::logic_error("beginFrame: frame already in progress");
    }
    src_ = &src;
    keyframe_ = keyframe || !has_ref_;
    frame_stats_before_ = stats_;
    frame_start_bytes_ = stream_.sizeBytes();
    rc_ = std::make_unique<RangeEncoder>(stream_, v_ctx_);
}

void
FrameCodec::encodeSuperblock(int sx, int sy)
{
    if (!rc_) {
        throw std::logic_error("encodeSuperblock: no frame in progress");
    }
    const int sb = config_.superblockSize;
    BlockRect r{sx, sy, std::min(sb, width_ - sx), std::min(sb, height_ - sy)};
    PartNode tree;
    searchNode(r, 0, tree);
    commitNode(r, 0, tree);
}

EncodeStats
FrameCodec::encodeFrame(const video::Frame &src, bool keyframe)
{
    beginFrame(src, keyframe);
    const int sb = config_.superblockSize;
    for (int sy = 0; sy < height_; sy += sb) {
        for (int sx = 0; sx < width_; sx += sb) {
            encodeSuperblock(sx, sy);
        }
    }
    return endFrame();
}

EncodeStats
FrameCodec::endFrame()
{
    if (!rc_) {
        throw std::logic_error("endFrame: no frame in progress");
    }
    rc_->finish();
    rc_.reset();

    loopFilterFrame();

    // Reference update: copy recon into the reference slot (real encoders
    // swap buffers; the copy models the same traffic conservatively).
    ref_ = recon_;
    has_ref_ = true;
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.refcopy");
        p->enterKernel(site, 6);
        uint64_t vecs = static_cast<uint64_t>(width_) * height_ * 3 / 2 / 32;
        for (uint64_t i = 0; i < vecs; ++i) {
            p->mem(OpClass::SimdLoad, v_recon_ + i * 32);
            p->mem(OpClass::SimdStore, v_ref_ + i * 32, 1);
        }
        p->loopBranches(vecs);
    }

    EncodeStats frame = stats_;
    frame.bits = (stream_.sizeBytes() - frame_start_bytes_) * 8;
    frame.leafEvals -= frame_stats_before_.leafEvals;
    frame.modeEvals -= frame_stats_before_.modeEvals;
    frame.meCandidates -= frame_stats_before_.meCandidates;
    frame.partitionNodes -= frame_stats_before_.partitionNodes;
    frame.prunes -= frame_stats_before_.prunes;
    frame.leafCommits -= frame_stats_before_.leafCommits;
    return frame;
}

} // namespace vepro::codec
