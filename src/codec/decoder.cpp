#include "codec/decoder.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "codec/intra.hpp"
#include "codec/loopfilter.hpp"
#include "codec/mc.hpp"
#include "codec/sad.hpp"
#include "codec/transform.hpp"

namespace vepro::codec
{

namespace
{

/** Largest power-of-two transform size dividing both dimensions
 *  (mirror of the encoder's rule). */
int
txSizeFor(int w, int h)
{
    int t = kMaxTxSize;
    while (t > 4 && ((w % t) != 0 || (h % t) != 0)) {
        t >>= 1;
    }
    return t;
}

/** Mirror of the encoder's residual-tile flip (see rdo.cpp). */
void
flipTile(int16_t *tile, int n, int type)
{
    if (type == 1) {
        for (int y = 0; y < n; ++y) {
            std::reverse(tile + y * n, tile + (y + 1) * n);
        }
    } else if (type == 2) {
        for (int y = 0; y < n / 2; ++y) {
            std::swap_ranges(tile + y * n, tile + (y + 1) * n,
                             tile + (n - 1 - y) * n);
        }
    }
}

} // namespace

FrameDecoder::FrameDecoder(const ToolConfig &config, int width, int height)
    : config_(config),
      width_(width),
      height_(height),
      quant_(config.qIndex, config.qRange),
      recon_(width, height),
      ref_(width, height),
      mv_cols_((width + 7) / 8),
      mv_rows_((height + 7) / 8),
      mv_field_(static_cast<size_t>(mv_cols_) * mv_rows_),
      res_(64 * 64),
      coeff_(64 * 64),
      levels_(64 * 64),
      pred_(64 * 64)
{
    if (width < 16 || height < 16) {
        throw std::invalid_argument("FrameDecoder: frame too small");
    }
}

MotionVector
FrameDecoder::mvPredictor(const BlockRect &r) const
{
    int cx = r.x / 8, cy = r.y / 8;
    if (cx > 0) {
        return mv_field_[static_cast<size_t>(cy) * mv_cols_ + cx - 1];
    }
    if (cy > 0) {
        return mv_field_[static_cast<size_t>(cy - 1) * mv_cols_ + cx];
    }
    return {};
}

void
FrameDecoder::storeMv(const BlockRect &r, MotionVector mv)
{
    for (int y = r.y / 8; y < (r.y + r.h + 7) / 8 && y < mv_rows_; ++y) {
        for (int x = r.x / 8; x < (r.x + r.w + 7) / 8 && x < mv_cols_; ++x) {
            mv_field_[static_cast<size_t>(y) * mv_cols_ + x] = mv;
        }
    }
}

void
FrameDecoder::decodeCoeffTile(int32_t *levels, int n)
{
    std::fill(levels, levels + n * n, 0);
    int size_ctx = std::min(3, n / 8);
    bool coded = rd_->decodeBit(ctx_.codedFlag[size_ctx]);
    if (!coded) {
        return;
    }
    const std::vector<int> &scan = zigzagScan(n);
    int last = static_cast<int>(rd_->decodeUeGolomb());
    if (last >= n * n) {
        throw std::runtime_error("FrameDecoder: corrupt last-index");
    }
    const int depth = std::clamp(config_.coeffContexts, 1, 4);
    for (int i = 0; i <= last; ++i) {
        int band = std::min(depth - 1, depth * i / (n * n));
        bool sig = true;
        if (i < last) {
            sig = rd_->decodeBit(ctx_.sig[band]);
        }
        if (!sig) {
            continue;
        }
        uint32_t mag = 1;
        if (rd_->decodeBit(ctx_.gt1[band])) {
            if (rd_->decodeBit(ctx_.gt2[band])) {
                mag = rd_->decodeUeGolomb() + 3;
            } else {
                mag = 2;
            }
        }
        bool negative = rd_->decodeBypass();
        levels[scan[static_cast<size_t>(i)]] =
            negative ? -static_cast<int32_t>(mag) : static_cast<int32_t>(mag);
    }
}

void
FrameDecoder::decodeLeaf(const BlockRect &r)
{
    PelViewMut recon_plane = viewOf(recon_.y(), 0);
    PelViewMut pred_view{pred_.data(), r.w, 0};

    bool inter = false;
    MotionVector mv{};
    if (!keyframe_) {
        inter = rd_->decodeBit(ctx_.interFlag[0]);
    }
    if (inter) {
        MotionVector mvp = mvPredictor(r);
        int dx = static_cast<int>(rd_->decodeUeGolomb());
        if (dx != 0 && rd_->decodeBypass()) {
            dx = -dx;
        }
        int dy = static_cast<int>(rd_->decodeUeGolomb());
        if (dy != 0 && rd_->decodeBypass()) {
            dy = -dy;
        }
        mv = {mvp.x + dx, mvp.y + dy};
        motionCompensate(viewOf(ref_.y(), 0), width_, height_, r.x, r.y, r.w,
                         r.h, mv, pred_view, config_.me.sharpSubpel);
        storeMv(r, mv);
    } else {
        auto mode = static_cast<IntraMode>(rd_->decodeUeGolomb());
        if (static_cast<int>(mode) >= kNumIntraModes) {
            throw std::runtime_error("FrameDecoder: corrupt intra mode");
        }
        IntraNeighbors nb = gatherNeighbors(recon_plane, r.x, r.y, r.w, r.h,
                                            width_, height_);
        predictIntra(mode, nb, r.w, r.h, pred_view);
        storeMv(r, {});
    }

    int tx_max = txSizeFor(r.w, r.h);
    uint32_t tx_flag = rd_->decodeUeGolomb();
    if (tx_flag > 1 || (tx_flag == 1 && tx_max <= 4)) {
        throw std::runtime_error("FrameDecoder: corrupt tx-size flag");
    }
    int tx = tx_flag == 0 ? tx_max : tx_max >> 1;
    int tx_type = 0;
    if (config_.txTypeCandidates > 1) {
        tx_type = static_cast<int>(rd_->decodeUeGolomb());
        if (tx_type > 2) {
            throw std::runtime_error("FrameDecoder: corrupt tx type");
        }
    }

    int16_t tile[kMaxTxSize * kMaxTxSize];
    for (int ty = 0; ty < r.h; ty += tx) {
        for (int tx0 = 0; tx0 < r.w; tx0 += tx) {
            decodeCoeffTile(levels_.data(), tx);
            quant_.dequantizeBlock(levels_.data(), coeff_.data(), tx, 0, 0);
            inverseDct(coeff_.data(), tile, tx, 0, 0);
            flipTile(tile, tx, tx_type);
            for (int y = 0; y < tx; ++y) {
                int16_t *row = res_.data() +
                    static_cast<ptrdiff_t>(ty + y) * r.w + tx0;
                std::copy(tile + y * tx, tile + (y + 1) * tx, row);
            }
        }
    }
    reconstruct(pred_view, res_.data(), 0, r.w, r.h,
                recon_plane.sub(r.x, r.y));

    decodeChroma(r, inter, mv);
}

void
FrameDecoder::decodeChroma(const BlockRect &r, bool inter, MotionVector mv)
{
    BlockRect c{r.x / 2, r.y / 2, r.w / 2, r.h / 2};
    if (c.w < 4 || c.h < 4) {
        return;
    }
    const int cw = width_ / 2, ch = height_ / 2;
    int tx = txSizeFor(c.w, c.h);
    int16_t tile[kMaxTxSize * kMaxTxSize];

    video::Plane *recon_planes[2] = {&recon_.u(), &recon_.v()};
    const video::Plane *ref_planes[2] = {&ref_.u(), &ref_.v()};

    for (int plane = 0; plane < 2; ++plane) {
        PelViewMut recon_plane = viewOf(*recon_planes[plane], 0);
        PelViewMut pred_view{pred_.data(), c.w, 0};

        if (inter) {
            MotionVector half{mv.x / 2, mv.y / 2};
            motionCompensate(viewOf(*ref_planes[plane], 0), cw, ch, c.x, c.y,
                             c.w, c.h, half, pred_view,
                             config_.me.sharpSubpel);
        } else {
            IntraNeighbors nb =
                gatherNeighbors(recon_plane, c.x, c.y, c.w, c.h, cw, ch);
            predictIntra(IntraMode::Dc, nb, c.w, c.h, pred_view);
        }

        for (int ty = 0; ty < c.h; ty += tx) {
            for (int tx0 = 0; tx0 < c.w; tx0 += tx) {
                decodeCoeffTile(levels_.data(), tx);
                quant_.dequantizeBlock(levels_.data(), coeff_.data(), tx, 0,
                                       0);
                inverseDct(coeff_.data(), tile, tx, 0, 0);
                for (int y = 0; y < tx; ++y) {
                    int16_t *row = res_.data() +
                        static_cast<ptrdiff_t>(ty + y) * c.w + tx0;
                    std::copy(tile + y * tx, tile + (y + 1) * tx, row);
                }
            }
        }
        reconstruct(pred_view, res_.data(), 0, c.w, c.h,
                    recon_plane.sub(c.x, c.y));
    }
}

void
FrameDecoder::decodeNode(const BlockRect &r, int depth)
{
    int depth_ctx = std::min(depth, 5);
    bool split = rd_->decodeBit(ctx_.partition[depth_ctx][0]);
    PartitionMode mode = PartitionMode::None;
    if (split) {
        uint32_t idx = rd_->decodeUeGolomb() + 1;
        if (idx >= static_cast<uint32_t>(kNumPartitionModes)) {
            throw std::runtime_error("FrameDecoder: corrupt partition mode");
        }
        mode = static_cast<PartitionMode>(idx);
    }
    if (mode == PartitionMode::Split) {
        for (const BlockRect &s : partitionRects(mode, r)) {
            decodeNode(s, depth + 1);
        }
    } else {
        for (const BlockRect &s : partitionRects(mode, r)) {
            decodeLeaf(s);
        }
    }
}

void
FrameDecoder::decodeFrame(const std::vector<uint8_t> &payload, bool keyframe)
{
    keyframe_ = keyframe || frames_decoded_ == 0;
    rd_ = std::make_unique<RangeDecoder>(payload);

    const int sb = config_.superblockSize;
    for (int sy = 0; sy < height_; sy += sb) {
        for (int sx = 0; sx < width_; sx += sb) {
            BlockRect r{sx, sy, std::min(sb, width_ - sx),
                        std::min(sb, height_ - sy)};
            decodeNode(r, 0);
        }
    }
    rd_.reset();

    loopFilterPlane(recon_.y(), width_, height_, config_.filterPasses,
                    quant_.step(), 0);
    ref_ = recon_;
    ++frames_decoded_;
}

} // namespace vepro::codec
