#ifndef VEPRO_CODEC_TRANSFORM_HPP
#define VEPRO_CODEC_TRANSFORM_HPP

/**
 * @file
 * Integer block transforms (DCT-II) for sizes 4/8/16/32.
 *
 * Transforms use fixed-point basis matrices (7 fractional bits) computed
 * once at start-up, applied as two matrix multiplies, matching the
 * structure of the transforms in AV1/HEVC. The forward/inverse pair is
 * exactly invertible up to the documented rounding error (< 1 LSB of
 * residual after quantisation round-trip at Q=1).
 */

#include <cstdint>

namespace vepro::codec
{

/** Maximum supported transform size. */
inline constexpr int kMaxTxSize = 32;

/** True if @p n is a supported transform size (4, 8, 16, 32). */
bool isValidTxSize(int n);

/**
 * Forward DCT of an n x n residual tile.
 *
 * @param src        Residual, row-major, stride n.
 * @param dst        Output coefficients, row-major, stride n.
 * @param n          Transform size (4, 8, 16, 32).
 * @param src_vaddr  Synthetic address of @p src for instrumentation.
 * @param dst_vaddr  Synthetic address of @p dst for instrumentation.
 */
void forwardDct(const int16_t *src, int32_t *dst, int n, uint64_t src_vaddr,
                uint64_t dst_vaddr);

/**
 * Inverse DCT of an n x n coefficient tile into a residual tile.
 * Parameters mirror forwardDct().
 */
void inverseDct(const int32_t *src, int16_t *dst, int n, uint64_t src_vaddr,
                uint64_t dst_vaddr);

/**
 * The fixed-point DCT basis for size @p n, row-major [k][i] (the layout
 * the kernel-table fdct/idct entries take). Exposed for tests/benches.
 */
const int32_t *dctBasis(int n);

} // namespace vepro::codec

#endif // VEPRO_CODEC_TRANSFORM_HPP
