#ifndef VEPRO_CODEC_KERNELS_HPP
#define VEPRO_CODEC_KERNELS_HPP

/**
 * @file
 * Runtime-dispatched SIMD kernel table for the codec hot loops.
 *
 * The pixel kernels (SAD/SSE/SATD, residual/reconstruct, the integer
 * DCT passes, and the quantiser inner loop) dominate every sweep, so
 * they are provided in three flavours: portable scalar C++, AVX2
 * (x86-64), and NEON (aarch64). A one-time CPU-feature probe picks the
 * widest table the host supports; `VEPRO_FORCE_SCALAR=1` in the
 * environment forces the scalar table for debugging and A/B timing.
 *
 * Hard contract: every vector implementation is **bit-identical** to
 * the scalar reference for all inputs. These kernels feed RD decisions,
 * the reconstruction loop, and the probe-derived traces, so any
 * numerical divergence would change every reproduced figure. The
 * contract is enforced by the property suite in tests/test_kernels.cpp,
 * which compares each table against the scalar one over randomised
 * blocks of every supported geometry.
 *
 * Kernels operate on raw pointer/stride arguments (no PelView, no
 * probe): instrumentation stays in the wrappers (sad.cpp, transform.cpp,
 * quant.cpp), which report the modeled op stream independently of which
 * host ISA actually ran.
 */

#include <cstdint>

namespace vepro::codec
{

/**
 * Function-pointer table of the hot pixel kernels for one ISA.
 *
 * Strides are in bytes. `residual` writes a dense row-major w x h
 * int16 block (stride w); `reconstruct` reads the same layout.
 * `satd4`/`satd8` return the raw Hadamard abs-sum of one tile (the
 * caller applies the SAD-scale normalisation). `fdct`/`idct` take the
 * fixed-point basis row-major [k][i] (see transform.cpp); `quant`
 * returns the number of nonzero levels.
 */
struct KernelTable {
    const char *isa = "scalar";

    uint64_t (*sad)(const uint8_t *a, int a_stride, const uint8_t *b,
                    int b_stride, int w, int h) = nullptr;
    uint64_t (*sse)(const uint8_t *a, int a_stride, const uint8_t *b,
                    int b_stride, int w, int h) = nullptr;
    uint64_t (*satd4)(const uint8_t *a, int a_stride, const uint8_t *b,
                      int b_stride) = nullptr;
    uint64_t (*satd8)(const uint8_t *a, int a_stride, const uint8_t *b,
                      int b_stride) = nullptr;
    void (*residual)(const uint8_t *a, int a_stride, const uint8_t *b,
                     int b_stride, int w, int h, int16_t *dst) = nullptr;
    void (*reconstruct)(const uint8_t *pred, int pred_stride,
                        const int16_t *res, int w, int h, uint8_t *dst,
                        int dst_stride) = nullptr;
    void (*fdct)(const int16_t *src, int32_t *dst, int n,
                 const int32_t *basis) = nullptr;
    void (*idct)(const int32_t *src, int16_t *dst, int n,
                 const int32_t *basis) = nullptr;
    int (*quant)(const int32_t *coeff, int32_t *levels, int count,
                 double dead_zone, double inv_step) = nullptr;
    void (*dequant)(const int32_t *levels, int32_t *coeff, int count,
                    double step) = nullptr;
    /**
     * One output row of exact box downscaling: dst[i] is the rounded
     * mean of the factor x factor pixel box whose top-left corner is
     * src + i*factor, i.e. (sum + cnt/2) / cnt with cnt = factor^2.
     * All dw boxes must be fully inside the source; partial edge boxes
     * are the caller's job (video::downscalePlane).
     */
    void (*boxdown)(const uint8_t *src, int src_stride, int factor,
                    uint8_t *dst, int dw) = nullptr;
    /**
     * Fixed-point row blend for the bilinear upscaler:
     * dst[i] = (a[i]*(64-w6) + b[i]*w6 + 32) >> 6 for a 6-bit weight
     * w6 in [0, 64]. w6 == 0 reproduces a exactly.
     */
    void (*lerpblend)(const uint8_t *a, const uint8_t *b, int w6,
                      uint8_t *dst, int n) = nullptr;
};

/**
 * The dispatched table: resolved once (thread-safe) from CPUID/HWCAP,
 * honouring VEPRO_FORCE_SCALAR=1.
 */
const KernelTable &kernels();

/** The portable scalar reference table (always available). */
const KernelTable &scalarKernels();

/**
 * The AVX2 table, or nullptr when not compiled in or not supported by
 * the host CPU. Exposed so tests and benches can exercise it directly
 * regardless of what kernels() resolved to.
 */
const KernelTable *avx2Kernels();

/** The NEON table, or nullptr (see avx2Kernels()). */
const KernelTable *neonKernels();

/** ISA name of the dispatched table ("scalar", "avx2", "neon"). */
const char *kernelIsaName();

namespace detail
{
/* Defined only in the per-ISA translation units; never call directly. */
const KernelTable *avx2KernelsImpl();
const KernelTable *neonKernelsImpl();
} // namespace detail

} // namespace vepro::codec

#endif // VEPRO_CODEC_KERNELS_HPP
