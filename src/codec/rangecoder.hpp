#ifndef VEPRO_CODEC_RANGECODER_HPP
#define VEPRO_CODEC_RANGECODER_HPP

/**
 * @file
 * Adaptive binary range coder (LZMA-style arithmetic coder) plus the
 * matching decoder and a fractional-bit cost estimator.
 *
 * This is the "real" entropy coder used for the final encode pass: it
 * produces an actual decodable byte stream whose length is the reported
 * bitrate. The probe sees its context-table loads/stores and its
 * data-dependent renormalisation branches — a major source of the
 * hard-to-predict branches the paper measures.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "codec/bitstream.hpp"

namespace vepro::codec
{

/** One adaptive binary context: 11-bit probability of the zero symbol. */
struct BinContext {
    uint16_t prob = 1024;  ///< p(bit == 0) in units of 1/2048.
};

/**
 * Fractional-bit cost of coding @p bit with context probability
 * @p prob (11-bit). Table-driven; used by RD estimation.
 */
double contextBits(uint16_t prob, bool bit);

/** Range encoder writing to a Bitstream. */
class RangeEncoder
{
  public:
    /**
     * @param out        Destination stream.
     * @param ctx_vaddr  Synthetic base address of the context tables this
     *                   encoder will touch (for instrumentation).
     */
    explicit RangeEncoder(Bitstream &out, uint64_t ctx_vaddr = 0);

    /** Encode @p bit with adaptive context @p ctx (updates the context).
     *  @param ctx_index Index of the context within its table, used to
     *  report the context-load address. */
    void encodeBit(BinContext &ctx, bool bit, uint32_t ctx_index = 0);

    /** Encode @p bit with fixed probability 1/2 (no context). */
    void encodeBypass(bool bit);

    /** Encode @p count low bits of @p value, LSB first, as bypass bins. */
    void encodeBypassBits(uint32_t value, int count);

    /** Encode an unsigned value with exp-Golomb(0) bypass bins. */
    void encodeUeGolomb(uint32_t value);

    /** Flush the final bytes. Must be called exactly once. */
    void finish();

    /** Total adaptive + bypass bins encoded so far. */
    uint64_t binCount() const { return bins_; }

  private:
    void shiftLow();

    Bitstream &out_;
    uint64_t low_ = 0;
    uint32_t range_ = 0xffffffffu;
    uint8_t cache_ = 0;
    uint64_t cache_size_ = 1;
    uint64_t bins_ = 0;
    uint64_t ctx_vaddr_ = 0;
    bool finished_ = false;
};

/** Range decoder reading from a byte vector (testing / verification). */
class RangeDecoder
{
  public:
    explicit RangeDecoder(const std::vector<uint8_t> &bytes);

    /** Decode one bit with adaptive context @p ctx. */
    bool decodeBit(BinContext &ctx);

    /** Decode one bypass bit. */
    bool decodeBypass();

    /** Decode @p count bypass bits, LSB first. */
    uint32_t decodeBypassBits(int count);

    /** Decode an exp-Golomb(0) value. */
    uint32_t decodeUeGolomb();

  private:
    uint8_t nextByte();
    void normalize();

    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
    uint32_t range_ = 0xffffffffu;
    uint32_t code_ = 0;
};

} // namespace vepro::codec

#endif // VEPRO_CODEC_RANGECODER_HPP
