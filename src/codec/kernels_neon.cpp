/**
 * @file
 * NEON (AdvSIMD, aarch64) implementations of the codec kernel table.
 *
 * Same bit-identity contract as kernels_avx2.cpp: pure integer pixel
 * kernels with no overflowing intermediate, and a saturating-add
 * reconstruct that provably matches the scalar clamp. The transform and
 * quantiser entries inherit the scalar pointers: their hot loops are
 * dominated by 64-bit accumulation that AdvSIMD gains little on, and
 * the scalar versions are already bit-exact by definition. The property
 * suite (tests/test_kernels.cpp) validates whichever entries this table
 * overrides.
 */

#include "codec/kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>
#include <cstring>

namespace vepro::codec
{

namespace
{

inline uint8x8_t
load4(const uint8_t *p)
{
    uint32_t v = 0;
    std::memcpy(&v, p, 4);
    return vcreate_u8(static_cast<uint64_t>(v));
}

uint64_t
sadNeon(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
        int w, int h)
{
    uint64x2_t acc = vdupq_n_u64(0);
    uint64_t tail = 0;
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a + static_cast<ptrdiff_t>(y) * a_stride;
        const uint8_t *rb = b + static_cast<ptrdiff_t>(y) * b_stride;
        uint32x4_t row = vdupq_n_u32(0);
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            uint8x16_t d = vabdq_u8(vld1q_u8(ra + x), vld1q_u8(rb + x));
            row = vpadalq_u16(row, vpaddlq_u8(d));
        }
        for (; x + 8 <= w; x += 8) {
            uint16x8_t d = vabdl_u8(vld1_u8(ra + x), vld1_u8(rb + x));
            row = vpadalq_u16(row, d);
        }
        for (; x < w; ++x) {
            int d = static_cast<int>(ra[x]) - static_cast<int>(rb[x]);
            tail += static_cast<uint64_t>(d < 0 ? -d : d);
        }
        acc = vpadalq_u32(acc, row);
    }
    return vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1) + tail;
}

uint64_t
sseNeon(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
        int w, int h)
{
    uint64x2_t acc = vdupq_n_u64(0);
    uint64_t tail = 0;
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a + static_cast<ptrdiff_t>(y) * a_stride;
        const uint8_t *rb = b + static_cast<ptrdiff_t>(y) * b_stride;
        uint32x4_t row = vdupq_n_u32(0);
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            uint8x8_t va = vld1_u8(ra + x);
            uint8x8_t vb = vld1_u8(rb + x);
            uint16x8_t d = vabdl_u8(va, vb);  // |a-b| <= 255, d*d exact
            uint16x4_t lo = vget_low_u16(d), hi = vget_high_u16(d);
            row = vaddq_u32(row, vmull_u16(lo, lo));
            row = vaddq_u32(row, vmull_u16(hi, hi));
        }
        for (; x < w; ++x) {
            int d = static_cast<int>(ra[x]) - static_cast<int>(rb[x]);
            tail += static_cast<uint64_t>(d) * static_cast<uint64_t>(d);
        }
        acc = vpadalq_u32(acc, row);
    }
    return vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1) + tail;
}

/** Vertical Hadamard butterflies over N full row vectors. */
template <int N>
inline void
butterflyRowsQ(int16x8_t *r)
{
    for (int len = 1; len < N; len <<= 1) {
        for (int i = 0; i < N; i += len << 1) {
            for (int j = i; j < i + len; ++j) {
                int16x8_t x = r[j];
                int16x8_t y = r[j + len];
                r[j] = vaddq_s16(x, y);
                r[j + len] = vsubq_s16(x, y);
            }
        }
    }
}

template <int N>
inline void
butterflyRowsD(int16x4_t *r)
{
    for (int len = 1; len < N; len <<= 1) {
        for (int i = 0; i < N; i += len << 1) {
            for (int j = i; j < i + len; ++j) {
                int16x4_t x = r[j];
                int16x4_t y = r[j + len];
                r[j] = vadd_s16(x, y);
                r[j + len] = vsub_s16(x, y);
            }
        }
    }
}

inline void
transpose8x8S16(int16x8_t *r)
{
    int16x8_t a0 = vtrn1q_s16(r[0], r[1]), a1 = vtrn2q_s16(r[0], r[1]);
    int16x8_t a2 = vtrn1q_s16(r[2], r[3]), a3 = vtrn2q_s16(r[2], r[3]);
    int16x8_t a4 = vtrn1q_s16(r[4], r[5]), a5 = vtrn2q_s16(r[4], r[5]);
    int16x8_t a6 = vtrn1q_s16(r[6], r[7]), a7 = vtrn2q_s16(r[6], r[7]);
    int32x4_t b0 = vtrn1q_s32(vreinterpretq_s32_s16(a0),
                              vreinterpretq_s32_s16(a2));
    int32x4_t b2 = vtrn2q_s32(vreinterpretq_s32_s16(a0),
                              vreinterpretq_s32_s16(a2));
    int32x4_t b1 = vtrn1q_s32(vreinterpretq_s32_s16(a1),
                              vreinterpretq_s32_s16(a3));
    int32x4_t b3 = vtrn2q_s32(vreinterpretq_s32_s16(a1),
                              vreinterpretq_s32_s16(a3));
    int32x4_t b4 = vtrn1q_s32(vreinterpretq_s32_s16(a4),
                              vreinterpretq_s32_s16(a6));
    int32x4_t b6 = vtrn2q_s32(vreinterpretq_s32_s16(a4),
                              vreinterpretq_s32_s16(a6));
    int32x4_t b5 = vtrn1q_s32(vreinterpretq_s32_s16(a5),
                              vreinterpretq_s32_s16(a7));
    int32x4_t b7 = vtrn2q_s32(vreinterpretq_s32_s16(a5),
                              vreinterpretq_s32_s16(a7));
    r[0] = vreinterpretq_s16_s64(vtrn1q_s64(vreinterpretq_s64_s32(b0),
                                            vreinterpretq_s64_s32(b4)));
    r[4] = vreinterpretq_s16_s64(vtrn2q_s64(vreinterpretq_s64_s32(b0),
                                            vreinterpretq_s64_s32(b4)));
    r[1] = vreinterpretq_s16_s64(vtrn1q_s64(vreinterpretq_s64_s32(b1),
                                            vreinterpretq_s64_s32(b5)));
    r[5] = vreinterpretq_s16_s64(vtrn2q_s64(vreinterpretq_s64_s32(b1),
                                            vreinterpretq_s64_s32(b5)));
    r[2] = vreinterpretq_s16_s64(vtrn1q_s64(vreinterpretq_s64_s32(b2),
                                            vreinterpretq_s64_s32(b6)));
    r[6] = vreinterpretq_s16_s64(vtrn2q_s64(vreinterpretq_s64_s32(b2),
                                            vreinterpretq_s64_s32(b6)));
    r[3] = vreinterpretq_s16_s64(vtrn1q_s64(vreinterpretq_s64_s32(b3),
                                            vreinterpretq_s64_s32(b7)));
    r[7] = vreinterpretq_s16_s64(vtrn2q_s64(vreinterpretq_s64_s32(b3),
                                            vreinterpretq_s64_s32(b7)));
}

uint64_t
satd8Neon(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride)
{
    int16x8_t r[8];
    for (int y = 0; y < 8; ++y) {
        uint8x8_t va = vld1_u8(a + static_cast<ptrdiff_t>(y) * a_stride);
        uint8x8_t vb = vld1_u8(b + static_cast<ptrdiff_t>(y) * b_stride);
        r[y] = vsubq_s16(vreinterpretq_s16_u16(vmovl_u8(va)),
                         vreinterpretq_s16_u16(vmovl_u8(vb)));
    }
    butterflyRowsQ<8>(r);
    transpose8x8S16(r);
    butterflyRowsQ<8>(r);
    uint32x4_t acc = vdupq_n_u32(0);
    for (int y = 0; y < 8; ++y) {
        acc = vpadalq_u16(acc,
                          vreinterpretq_u16_s16(vabsq_s16(r[y])));
    }
    uint64x2_t acc64 = vpaddlq_u32(acc);
    return vgetq_lane_u64(acc64, 0) + vgetq_lane_u64(acc64, 1);
}

uint64_t
satd4Neon(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride)
{
    int16x4_t r[4];
    for (int y = 0; y < 4; ++y) {
        uint8x8_t va = load4(a + static_cast<ptrdiff_t>(y) * a_stride);
        uint8x8_t vb = load4(b + static_cast<ptrdiff_t>(y) * b_stride);
        int16x8_t d = vsubq_s16(vreinterpretq_s16_u16(vmovl_u8(va)),
                                vreinterpretq_s16_u16(vmovl_u8(vb)));
        r[y] = vget_low_s16(d);
    }
    butterflyRowsD<4>(r);
    int16x4_t a0 = vtrn1_s16(r[0], r[1]), a1 = vtrn2_s16(r[0], r[1]);
    int16x4_t a2 = vtrn1_s16(r[2], r[3]), a3 = vtrn2_s16(r[2], r[3]);
    r[0] = vreinterpret_s16_s32(vtrn1_s32(vreinterpret_s32_s16(a0),
                                          vreinterpret_s32_s16(a2)));
    r[2] = vreinterpret_s16_s32(vtrn2_s32(vreinterpret_s32_s16(a0),
                                          vreinterpret_s32_s16(a2)));
    r[1] = vreinterpret_s16_s32(vtrn1_s32(vreinterpret_s32_s16(a1),
                                          vreinterpret_s32_s16(a3)));
    r[3] = vreinterpret_s16_s32(vtrn2_s32(vreinterpret_s32_s16(a1),
                                          vreinterpret_s32_s16(a3)));
    butterflyRowsD<4>(r);
    uint32x2_t acc = vdup_n_u32(0);
    for (int y = 0; y < 4; ++y) {
        acc = vpadal_u16(acc, vreinterpret_u16_s16(vabs_s16(r[y])));
    }
    uint64x1_t acc64 = vpaddl_u32(acc);
    return vget_lane_u64(acc64, 0);
}

void
residualNeon(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
             int w, int h, int16_t *dst)
{
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a + static_cast<ptrdiff_t>(y) * a_stride;
        const uint8_t *rb = b + static_cast<ptrdiff_t>(y) * b_stride;
        int16_t *rd = dst + static_cast<ptrdiff_t>(y) * w;
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            int16x8_t d = vsubq_s16(
                vreinterpretq_s16_u16(vmovl_u8(vld1_u8(ra + x))),
                vreinterpretq_s16_u16(vmovl_u8(vld1_u8(rb + x))));
            vst1q_s16(rd + x, d);
        }
        for (; x < w; ++x) {
            rd[x] = static_cast<int16_t>(static_cast<int>(ra[x]) -
                                         static_cast<int>(rb[x]));
        }
    }
}

void
reconstructNeon(const uint8_t *pred, int pred_stride, const int16_t *res,
                int w, int h, uint8_t *dst, int dst_stride)
{
    for (int y = 0; y < h; ++y) {
        const uint8_t *rp = pred + static_cast<ptrdiff_t>(y) * pred_stride;
        const int16_t *rr = res + static_cast<ptrdiff_t>(y) * w;
        uint8_t *rd = dst + static_cast<ptrdiff_t>(y) * dst_stride;
        int x = 0;
        for (; x + 8 <= w; x += 8) {
            int16x8_t p =
                vreinterpretq_s16_u16(vmovl_u8(vld1_u8(rp + x)));
            // Saturating add + unsigned saturating narrow == scalar clamp.
            int16x8_t s = vqaddq_s16(p, vld1q_s16(rr + x));
            vst1_u8(rd + x, vqmovun_s16(s));
        }
        for (; x < w; ++x) {
            int v = static_cast<int>(rp[x]) + rr[x];
            rd[x] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
        }
    }
}

void
boxdownNeon(const uint8_t *src, int src_stride, int factor, uint8_t *dst,
            int dw)
{
    if (factor == 2) {
        // Pairwise widening adds keep every intermediate exact in u16
        // (max 1020), so (sum + 2) >> 2 matches the scalar rounding.
        const uint16x8_t two = vdupq_n_u16(2);
        int i = 0;
        for (; i + 8 <= dw; i += 8) {
            const uint8_t *r0 = src + static_cast<ptrdiff_t>(i) * 2;
            const uint8_t *r1 = r0 + src_stride;
            uint16x8_t sum = vaddq_u16(vpaddlq_u8(vld1q_u8(r0)),
                                       vpaddlq_u8(vld1q_u8(r1)));
            sum = vshrq_n_u16(vaddq_u16(sum, two), 2);
            vst1_u8(dst + i, vmovn_u16(sum));
        }
        for (; i < dw; ++i) {
            const uint8_t *r0 = src + static_cast<ptrdiff_t>(i) * 2;
            const uint8_t *r1 = r0 + src_stride;
            uint32_t sum = static_cast<uint32_t>(r0[0]) + r0[1] + r1[0] +
                           r1[1];
            dst[i] = static_cast<uint8_t>((sum + 2) / 4);
        }
        return;
    }
    const uint32_t cnt = static_cast<uint32_t>(factor) * factor;
    const uint32_t half = cnt / 2;
    for (int i = 0; i < dw; ++i) {
        const uint8_t *box = src + static_cast<ptrdiff_t>(i) * factor;
        uint32_t sum = 0;
        for (int y = 0; y < factor; ++y) {
            const uint8_t *r = box + static_cast<ptrdiff_t>(y) * src_stride;
            for (int x = 0; x < factor; ++x) {
                sum += r[x];
            }
        }
        dst[i] = static_cast<uint8_t>((sum + half) / cnt);
    }
}

void
lerpblendNeon(const uint8_t *a, const uint8_t *b, int w6, uint8_t *dst,
              int n)
{
    // a*(64-w6) + b*w6 + 32 <= 16352 fits u16 exactly; the final >> 6
    // result is <= 255, so the non-saturating narrow is exact.
    const uint16_t wa = static_cast<uint16_t>(64 - w6);
    const uint16_t wb = static_cast<uint16_t>(w6);
    const uint16x8_t bias = vdupq_n_u16(32);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        uint16x8_t va = vmovl_u8(vld1_u8(a + i));
        uint16x8_t vb = vmovl_u8(vld1_u8(b + i));
        uint16x8_t t = vmlaq_n_u16(vmulq_n_u16(va, wa), vb, wb);
        t = vshrq_n_u16(vaddq_u16(t, bias), 6);
        vst1_u8(dst + i, vmovn_u16(t));
    }
    for (; i < n; ++i) {
        dst[i] = static_cast<uint8_t>(
            (a[i] * (64 - w6) + b[i] * w6 + 32) >> 6);
    }
}

} // namespace

namespace detail
{

const KernelTable *
neonKernelsImpl()
{
    static const KernelTable table = [] {
        KernelTable t = scalarKernels();  // fdct/idct/quant stay scalar
        t.isa = "neon";
        t.sad = sadNeon;
        t.sse = sseNeon;
        t.satd4 = satd4Neon;
        t.satd8 = satd8Neon;
        t.residual = residualNeon;
        t.reconstruct = reconstructNeon;
        t.boxdown = boxdownNeon;
        t.lerpblend = lerpblendNeon;
        return t;
    }();
    return &table;
}

} // namespace detail

} // namespace vepro::codec

#endif // __aarch64__
