#include "codec/rangecoder.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "trace/probe.hpp"

namespace vepro::codec
{

using trace::OpClass;
using trace::Probe;
using trace::currentProbe;
using trace::sitePc;

namespace
{

constexpr uint32_t kTopValue = 1u << 24;
constexpr int kProbBits = 11;
constexpr int kProbMax = 1 << kProbBits;  // 2048
constexpr int kMoveBits = 5;

/** -log2(p) lookup over 128 probability buckets. */
const std::array<double, 128> &
bitCostTable()
{
    static const auto table = [] {
        std::array<double, 128> t{};
        for (int i = 0; i < 128; ++i) {
            double p = (i + 0.5) / 128.0;
            t[i] = -std::log2(p);
        }
        return t;
    }();
    return table;
}

} // namespace

double
contextBits(uint16_t prob, bool bit)
{
    double p0 = static_cast<double>(prob) / kProbMax;
    double p = bit ? 1.0 - p0 : p0;
    int bucket = static_cast<int>(p * 128.0);
    if (bucket < 0) {
        bucket = 0;
    } else if (bucket > 127) {
        bucket = 127;
    }
    return bitCostTable()[bucket];
}

RangeEncoder::RangeEncoder(Bitstream &out, uint64_t ctx_vaddr)
    : out_(out), ctx_vaddr_(ctx_vaddr)
{
}

void
RangeEncoder::shiftLow()
{
    if (static_cast<uint32_t>(low_) < 0xff000000u ||
        static_cast<int>(low_ >> 32) != 0) {
        uint8_t carry = static_cast<uint8_t>(low_ >> 32);
        uint8_t temp = cache_;
        do {
            out_.putByte(static_cast<uint8_t>(temp + carry));
            temp = 0xff;
        } while (--cache_size_ != 0);
        cache_ = static_cast<uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00ffffffULL) << 8;
}

void
RangeEncoder::encodeBit(BinContext &ctx, bool bit, uint32_t ctx_index)
{
    uint32_t bound = (range_ >> kProbBits) * ctx.prob;
    if (!bit) {
        range_ = bound;
        ctx.prob = static_cast<uint16_t>(ctx.prob +
                                         ((kProbMax - ctx.prob) >> kMoveBits));
    } else {
        low_ += bound;
        range_ -= bound;
        ctx.prob = static_cast<uint16_t>(ctx.prob - (ctx.prob >> kMoveBits));
    }
    ++bins_;

    bool renormed = range_ < kTopValue;
    while (range_ < kTopValue) {
        range_ <<= 8;
        shiftLow();
    }

    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.rc.bit");
        static const uint64_t renorm_site = sitePc("codec.rc.renorm");
        (void)bit;
        // Context load + update store, bound computation, branch on bit.
        p->mem(OpClass::Load, ctx_vaddr_ + static_cast<uint64_t>(ctx_index) * 2);
        p->ops(OpClass::Mul, 1, 1);
        // The bit-value select compiles to cmov (branchless) in the
        // LZMA-style coder; only renormalisation actually branches.
        p->ops(OpClass::Alu, 6, 1);
        p->mem(OpClass::Store, ctx_vaddr_ + static_cast<uint64_t>(ctx_index) * 2, 1);
        (void)site;
        // Renormalisation: a data-dependent branch; taken ~1 time in 3.
        p->decision(renorm_site, renormed);
        if (renormed) {
            p->ops(OpClass::Alu, 3, 1);
            p->mem(OpClass::Store, out_.nextVaddr(), 1);
        }
    }
}

void
RangeEncoder::encodeBypass(bool bit)
{
    range_ >>= 1;
    if (bit) {
        low_ += range_;
    }
    ++bins_;
    bool renormed = range_ < kTopValue;
    while (range_ < kTopValue) {
        range_ <<= 8;
        shiftLow();
    }
    if (Probe *p = currentProbe()) {
        static const uint64_t renorm_site = sitePc("codec.rc.renorm");
        p->ops(OpClass::Alu, 3, 1);
        p->decision(renorm_site, renormed);
        if (renormed) {
            p->mem(OpClass::Store, out_.nextVaddr(), 1);
        }
    }
}

void
RangeEncoder::encodeBypassBits(uint32_t value, int count)
{
    for (int i = 0; i < count; ++i) {
        encodeBypass((value >> i) & 1);
    }
}

void
RangeEncoder::encodeUeGolomb(uint32_t value)
{
    // Count prefix length.
    uint32_t v = value + 1;
    int bits = 0;
    while ((v >> bits) > 1) {
        ++bits;
    }
    for (int i = 0; i < bits; ++i) {
        encodeBypass(false);
    }
    encodeBypass(true);
    for (int i = bits - 1; i >= 0; --i) {
        encodeBypass((v >> i) & 1);
    }
}

void
RangeEncoder::finish()
{
    if (finished_) {
        throw std::logic_error("RangeEncoder: finish() called twice");
    }
    finished_ = true;
    for (int i = 0; i < 5; ++i) {
        shiftLow();
    }
}

RangeDecoder::RangeDecoder(const std::vector<uint8_t> &bytes) : bytes_(bytes)
{
    // The first emitted byte is the initial cache (zero); skip it and
    // prime the code register with the next four.
    ++pos_;
    for (int i = 0; i < 4; ++i) {
        code_ = (code_ << 8) | nextByte();
    }
}

uint8_t
RangeDecoder::nextByte()
{
    if (pos_ >= bytes_.size()) {
        return 0;
    }
    return bytes_[pos_++];
}

void
RangeDecoder::normalize()
{
    while (range_ < kTopValue) {
        range_ <<= 8;
        code_ = (code_ << 8) | nextByte();
    }
}

bool
RangeDecoder::decodeBit(BinContext &ctx)
{
    uint32_t bound = (range_ >> kProbBits) * ctx.prob;
    bool bit;
    if (code_ < bound) {
        range_ = bound;
        ctx.prob = static_cast<uint16_t>(ctx.prob +
                                         ((kProbMax - ctx.prob) >> kMoveBits));
        bit = false;
    } else {
        code_ -= bound;
        range_ -= bound;
        ctx.prob = static_cast<uint16_t>(ctx.prob - (ctx.prob >> kMoveBits));
        bit = true;
    }
    normalize();
    return bit;
}

bool
RangeDecoder::decodeBypass()
{
    range_ >>= 1;
    bool bit = false;
    if (code_ >= range_) {
        code_ -= range_;
        bit = true;
    }
    normalize();
    return bit;
}

uint32_t
RangeDecoder::decodeBypassBits(int count)
{
    uint32_t v = 0;
    for (int i = 0; i < count; ++i) {
        v |= static_cast<uint32_t>(decodeBypass()) << i;
    }
    return v;
}

uint32_t
RangeDecoder::decodeUeGolomb()
{
    int bits = 0;
    while (!decodeBypass()) {
        ++bits;
        if (bits > 31) {
            throw std::runtime_error("RangeDecoder: corrupt golomb prefix");
        }
    }
    uint32_t v = 1;
    for (int i = 0; i < bits; ++i) {
        v = (v << 1) | static_cast<uint32_t>(decodeBypass());
    }
    return v - 1;
}

} // namespace vepro::codec
