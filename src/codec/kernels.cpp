#include "codec/kernels.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdlib>

#include "codec/transform.hpp"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace vepro::codec
{

namespace
{

// ---------------------------------------------------------------------
// Scalar reference kernels. These are the semantics every vector table
// must reproduce bit for bit; keep them boring and obviously correct.
// ---------------------------------------------------------------------

uint64_t
sadScalar(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
          int w, int h)
{
    uint64_t sum = 0;
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a + static_cast<ptrdiff_t>(y) * a_stride;
        const uint8_t *rb = b + static_cast<ptrdiff_t>(y) * b_stride;
        for (int x = 0; x < w; ++x) {
            sum += static_cast<uint64_t>(std::abs(static_cast<int>(ra[x]) -
                                                  static_cast<int>(rb[x])));
        }
    }
    return sum;
}

uint64_t
sseScalar(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
          int w, int h)
{
    uint64_t sum = 0;
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a + static_cast<ptrdiff_t>(y) * a_stride;
        const uint8_t *rb = b + static_cast<ptrdiff_t>(y) * b_stride;
        for (int x = 0; x < w; ++x) {
            int d = static_cast<int>(ra[x]) - static_cast<int>(rb[x]);
            sum += static_cast<uint64_t>(d) * static_cast<uint64_t>(d);
        }
    }
    return sum;
}

/** In-place length-n Hadamard butterfly on int32 data. */
void
hadamard1d(int32_t *v, int n, int stride)
{
    for (int len = 1; len < n; len <<= 1) {
        for (int i = 0; i < n; i += len << 1) {
            for (int j = i; j < i + len; ++j) {
                int32_t x = v[j * stride];
                int32_t y = v[(j + len) * stride];
                v[j * stride] = x + y;
                v[(j + len) * stride] = x - y;
            }
        }
    }
}

/** Raw (unnormalised) Hadamard abs-sum of one n x n tile. */
template <int N>
uint64_t
satdTileScalar(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride)
{
    int32_t buf[N * N];
    for (int y = 0; y < N; ++y) {
        const uint8_t *ra = a + static_cast<ptrdiff_t>(y) * a_stride;
        const uint8_t *rb = b + static_cast<ptrdiff_t>(y) * b_stride;
        for (int x = 0; x < N; ++x) {
            buf[y * N + x] = static_cast<int32_t>(ra[x]) - rb[x];
        }
    }
    for (int y = 0; y < N; ++y) {
        hadamard1d(buf + y * N, N, 1);
    }
    for (int x = 0; x < N; ++x) {
        hadamard1d(buf + x, N, N);
    }
    uint64_t sum = 0;
    for (int i = 0; i < N * N; ++i) {
        sum += static_cast<uint64_t>(std::abs(buf[i]));
    }
    return sum;
}

void
residualScalar(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
               int w, int h, int16_t *dst)
{
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a + static_cast<ptrdiff_t>(y) * a_stride;
        const uint8_t *rb = b + static_cast<ptrdiff_t>(y) * b_stride;
        int16_t *rd = dst + static_cast<ptrdiff_t>(y) * w;
        for (int x = 0; x < w; ++x) {
            rd[x] = static_cast<int16_t>(static_cast<int>(ra[x]) -
                                         static_cast<int>(rb[x]));
        }
    }
}

void
reconstructScalar(const uint8_t *pred, int pred_stride, const int16_t *res,
                  int w, int h, uint8_t *dst, int dst_stride)
{
    for (int y = 0; y < h; ++y) {
        const uint8_t *rp = pred + static_cast<ptrdiff_t>(y) * pred_stride;
        const int16_t *rr = res + static_cast<ptrdiff_t>(y) * w;
        uint8_t *rd = dst + static_cast<ptrdiff_t>(y) * dst_stride;
        for (int x = 0; x < w; ++x) {
            int v = static_cast<int>(rp[x]) + rr[x];
            rd[x] = static_cast<uint8_t>(std::clamp(v, 0, 255));
        }
    }
}

constexpr int kFracBits = 10;  // must match the basis scale in transform.cpp

void
fdctScalar(const int16_t *src, int32_t *dst, int n, const int32_t *basis)
{
    int64_t tmp[kMaxTxSize * kMaxTxSize];

    // Rows: tmp[r][k] = sum_i src[r][i] * T[k][i]
    for (int r = 0; r < n; ++r) {
        for (int k = 0; k < n; ++k) {
            int64_t acc = 0;
            const int32_t *basis_row = basis + static_cast<ptrdiff_t>(k) * n;
            const int16_t *src_row = src + static_cast<ptrdiff_t>(r) * n;
            for (int i = 0; i < n; ++i) {
                acc += static_cast<int64_t>(src_row[i]) * basis_row[i];
            }
            tmp[static_cast<size_t>(r) * n + k] = acc;
        }
    }
    // Columns: dst[k][c] = sum_r T[k][r] * tmp[r][c], with scale removal.
    const int64_t round = 1LL << (2 * kFracBits - 1);
    for (int k = 0; k < n; ++k) {
        const int32_t *basis_row = basis + static_cast<ptrdiff_t>(k) * n;
        for (int c = 0; c < n; ++c) {
            int64_t acc = 0;
            for (int r = 0; r < n; ++r) {
                acc += basis_row[r] * tmp[static_cast<size_t>(r) * n + c];
            }
            dst[static_cast<size_t>(k) * n + c] =
                static_cast<int32_t>((acc + round) >> (2 * kFracBits));
        }
    }
}

void
idctScalar(const int32_t *src, int16_t *dst, int n, const int32_t *basis)
{
    int64_t tmp[kMaxTxSize * kMaxTxSize];

    // Columns: tmp[r][c] = sum_k T[k][r] * src[k][c]
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            int64_t acc = 0;
            for (int k = 0; k < n; ++k) {
                acc += static_cast<int64_t>(
                           basis[static_cast<size_t>(k) * n + r]) *
                       src[static_cast<size_t>(k) * n + c];
            }
            tmp[static_cast<size_t>(r) * n + c] = acc;
        }
    }
    // Rows: dst[r][i] = sum_k tmp[r][k] * T[k][i]
    const int64_t round = 1LL << (2 * kFracBits - 1);
    for (int r = 0; r < n; ++r) {
        for (int i = 0; i < n; ++i) {
            int64_t acc = 0;
            for (int k = 0; k < n; ++k) {
                acc += tmp[static_cast<size_t>(r) * n + k] *
                       basis[static_cast<size_t>(k) * n + i];
            }
            int64_t v = (acc + round) >> (2 * kFracBits);
            if (v > 32767) {
                v = 32767;
            } else if (v < -32768) {
                v = -32768;
            }
            dst[static_cast<size_t>(r) * n + i] = static_cast<int16_t>(v);
        }
    }
}

int
quantScalar(const int32_t *coeff, int32_t *levels, int count, double dead_zone,
            double inv_step)
{
    int nonzero = 0;
    for (int i = 0; i < count; ++i) {
        double v = coeff[i] >= 0 ? (coeff[i] + dead_zone) * inv_step
                                 : (coeff[i] - dead_zone) * inv_step;
        levels[i] = static_cast<int32_t>(v);
        nonzero += levels[i] != 0;
    }
    return nonzero;
}

void
dequantScalar(const int32_t *levels, int32_t *coeff, int count, double step)
{
    for (int i = 0; i < count; ++i) {
        coeff[i] = static_cast<int32_t>(levels[i] * step);
    }
}

void
boxdownScalar(const uint8_t *src, int src_stride, int factor, uint8_t *dst,
              int dw)
{
    const uint32_t cnt = static_cast<uint32_t>(factor) * factor;
    const uint32_t half = cnt / 2;
    for (int i = 0; i < dw; ++i) {
        const uint8_t *box = src + static_cast<ptrdiff_t>(i) * factor;
        uint32_t sum = 0;
        for (int y = 0; y < factor; ++y) {
            const uint8_t *r = box + static_cast<ptrdiff_t>(y) * src_stride;
            for (int x = 0; x < factor; ++x) {
                sum += r[x];
            }
        }
        dst[i] = static_cast<uint8_t>((sum + half) / cnt);
    }
}

void
lerpblendScalar(const uint8_t *a, const uint8_t *b, int w6, uint8_t *dst,
                int n)
{
    for (int i = 0; i < n; ++i) {
        dst[i] = static_cast<uint8_t>(
            (a[i] * (64 - w6) + b[i] * w6 + 32) >> 6);
    }
}

const KernelTable &
resolveTable()
{
    if (const char *force = std::getenv("VEPRO_FORCE_SCALAR");
        force != nullptr && force[0] == '1') {
        return scalarKernels();
    }
#if defined(__x86_64__) || defined(_M_X64)
    if (__builtin_cpu_supports("avx2")) {
        if (const KernelTable *t = avx2Kernels()) {
            return *t;
        }
    }
#elif defined(__aarch64__)
#if defined(__linux__)
    if (getauxval(AT_HWCAP) & HWCAP_ASIMD) {
        if (const KernelTable *t = neonKernels()) {
            return *t;
        }
    }
#else
    // AdvSIMD is architecturally mandatory on aarch64.
    if (const KernelTable *t = neonKernels()) {
        return *t;
    }
#endif
#endif
    return scalarKernels();
}

} // namespace

const KernelTable &
scalarKernels()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.isa = "scalar";
        t.sad = sadScalar;
        t.sse = sseScalar;
        t.satd4 = satdTileScalar<4>;
        t.satd8 = satdTileScalar<8>;
        t.residual = residualScalar;
        t.reconstruct = reconstructScalar;
        t.fdct = fdctScalar;
        t.idct = idctScalar;
        t.quant = quantScalar;
        t.dequant = dequantScalar;
        t.boxdown = boxdownScalar;
        t.lerpblend = lerpblendScalar;
        return t;
    }();
    return table;
}

const KernelTable *
avx2Kernels()
{
#if defined(VEPRO_HAVE_AVX2)
    return detail::avx2KernelsImpl();
#else
    return nullptr;
#endif
}

const KernelTable *
neonKernels()
{
#if defined(VEPRO_HAVE_NEON)
    return detail::neonKernelsImpl();
#else
    return nullptr;
#endif
}

const KernelTable &
kernels()
{
    static const KernelTable &table = resolveTable();
    return table;
}

const char *
kernelIsaName()
{
    return kernels().isa;
}

} // namespace vepro::codec
