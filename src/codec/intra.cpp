#include "codec/intra.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "trace/probe.hpp"

namespace vepro::codec
{

using trace::OpClass;
using trace::Probe;
using trace::currentProbe;
using trace::sitePc;

std::string_view
intraModeName(IntraMode mode)
{
    switch (mode) {
      case IntraMode::Dc: return "dc";
      case IntraMode::Vertical: return "v";
      case IntraMode::Horizontal: return "h";
      case IntraMode::Planar: return "planar";
      case IntraMode::D45: return "d45";
      case IntraMode::D135: return "d135";
      case IntraMode::Smooth: return "smooth";
      case IntraMode::Paeth: return "paeth";
      case IntraMode::D63: return "d63";
      case IntraMode::D117: return "d117";
      case IntraMode::D153: return "d153";
      case IntraMode::D207: return "d207";
      case IntraMode::SmoothV: return "smooth_v";
      case IntraMode::SmoothH: return "smooth_h";
      case IntraMode::D22: return "d22";
      case IntraMode::D67: return "d67";
      default: return "?";
    }
}

std::span<const IntraMode>
intraModeList(int count)
{
    static const std::array<IntraMode, kNumIntraModes> order = {
        IntraMode::Dc,      IntraMode::Vertical, IntraMode::Horizontal,
        IntraMode::Planar,  IntraMode::D45,      IntraMode::D135,
        IntraMode::Smooth,  IntraMode::Paeth,    IntraMode::D63,
        IntraMode::D117,    IntraMode::D153,     IntraMode::D207,
        IntraMode::SmoothV, IntraMode::SmoothH,  IntraMode::D22,
        IntraMode::D67,
    };
    count = std::clamp(count, 1, kNumIntraModes);
    return {order.data(), static_cast<size_t>(count)};
}

IntraNeighbors
gatherNeighbors(const PelView &recon, int x, int y, int w, int h, int plane_w,
                int plane_h)
{
    IntraNeighbors nb{};
    nb.hasTop = y > 0;
    nb.hasLeft = x > 0;

    const uint8_t fill = 128;

    if (nb.hasTop) {
        const uint8_t *above = recon.row(y - 1);
        int avail = std::min(2 * w, plane_w - x);
        for (int i = 0; i < avail; ++i) {
            nb.top[i] = above[x + i];
        }
        for (int i = avail; i < 2 * w; ++i) {
            nb.top[i] = avail > 0 ? nb.top[avail - 1] : fill;
        }
    } else {
        std::fill(nb.top, nb.top + 2 * w, fill);
    }

    if (nb.hasLeft) {
        int avail = std::min(2 * h, plane_h - y);
        for (int i = 0; i < avail; ++i) {
            nb.left[i] = recon.row(y + i)[x - 1];
        }
        for (int i = avail; i < 2 * h; ++i) {
            nb.left[i] = avail > 0 ? nb.left[avail - 1] : fill;
        }
    } else {
        std::fill(nb.left, nb.left + 2 * h, fill);
    }

    if (nb.hasTop && nb.hasLeft) {
        nb.topLeft = recon.row(y - 1)[x - 1];
    } else if (nb.hasTop) {
        nb.topLeft = nb.top[0];
    } else if (nb.hasLeft) {
        nb.topLeft = nb.left[0];
    } else {
        nb.topLeft = fill;
    }

    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.intra_gather");
        p->enterKernel(site, 8);
        // Top row: contiguous scalar/short-vector loads from recon.
        if (nb.hasTop) {
            p->memRun(OpClass::Load,
                      recon.vaddr + static_cast<uint64_t>(y - 1) * recon.stride + x,
                      std::max(1, 2 * w / 8), 8);
        }
        // Left column: one strided scalar load per row (poor locality).
        if (nb.hasLeft) {
            for (int i = 0; i < h; ++i) {
                p->mem(OpClass::Load,
                       recon.vaddr + static_cast<uint64_t>(y + i) * recon.stride + x - 1);
            }
            p->loopBranches(static_cast<uint64_t>((h + 3) / 4));
        }
        p->ops(OpClass::Alu, 6, 1);
    }
    return nb;
}

namespace
{

/** Directional prediction: project each pixel onto the reference edge. */
void
predictDirectional(const IntraNeighbors &nb, int w, int h, double angle_deg,
                   PelViewMut &dst)
{
    // Unified reference line: left column reversed, then top-left, then
    // the top row — the classic HEVC layout.
    uint8_t ref[4 * kMaxIntraSize + 1];
    for (int i = 0; i < 2 * h; ++i) {
        ref[2 * kMaxIntraSize - 1 - i] = nb.left[i];
    }
    ref[2 * kMaxIntraSize] = nb.topLeft;
    for (int i = 0; i < 2 * w; ++i) {
        ref[2 * kMaxIntraSize + 1 + i] = nb.top[i];
    }
    const int origin = 2 * kMaxIntraSize;  // index of topLeft

    double rad = angle_deg * M_PI / 180.0;
    double dx = std::cos(rad);
    double dy = -std::sin(rad);  // screen coordinates: y grows downward

    for (int y = 0; y < h; ++y) {
        uint8_t *row = dst.row(y);
        for (int x = 0; x < w; ++x) {
            // March from the pixel centre against the prediction
            // direction until the reference line (row -1 or column -1).
            double px = x + 0.5, py = y + 0.5;
            double t_top = dy < 0 ? (py - (-0.5)) / -dy : 1e30;
            double t_left = dx < 0 ? (px - (-0.5)) / -dx : 1e30;
            double pos;
            if (t_top <= t_left) {
                double hit_x = px - dx * t_top;
                pos = origin + 1 + hit_x;
            } else {
                double hit_y = py - dy * t_left;
                pos = origin - 1 - hit_y;
            }
            pos = std::clamp(pos, 0.0, 4.0 * kMaxIntraSize - 1.0);
            int i0 = static_cast<int>(pos);
            double frac = pos - i0;
            int i1 = std::min(i0 + 1, 4 * kMaxIntraSize);
            row[x] = static_cast<uint8_t>(
                std::lround(ref[i0] * (1.0 - frac) + ref[i1] * frac));
        }
    }
}

} // namespace

void
predictIntra(IntraMode mode, const IntraNeighbors &nb, int w, int h,
             PelViewMut dst)
{
    if (w > kMaxIntraSize || h > kMaxIntraSize) {
        throw std::invalid_argument("predictIntra: block too large");
    }
    switch (mode) {
      case IntraMode::Dc: {
        int sum = 0, count = 0;
        if (nb.hasTop) {
            for (int i = 0; i < w; ++i) {
                sum += nb.top[i];
            }
            count += w;
        }
        if (nb.hasLeft) {
            for (int i = 0; i < h; ++i) {
                sum += nb.left[i];
            }
            count += h;
        }
        uint8_t dc = count ? static_cast<uint8_t>((sum + count / 2) / count)
                           : 128;
        for (int y = 0; y < h; ++y) {
            std::fill(dst.row(y), dst.row(y) + w, dc);
        }
        break;
      }
      case IntraMode::Vertical:
        for (int y = 0; y < h; ++y) {
            std::copy(nb.top, nb.top + w, dst.row(y));
        }
        break;
      case IntraMode::Horizontal:
        for (int y = 0; y < h; ++y) {
            std::fill(dst.row(y), dst.row(y) + w, nb.left[y]);
        }
        break;
      case IntraMode::Planar:
        for (int y = 0; y < h; ++y) {
            uint8_t *row = dst.row(y);
            for (int x = 0; x < w; ++x) {
                int horz = (w - 1 - x) * nb.left[y] + (x + 1) * nb.top[w - 1];
                int vert = (h - 1 - y) * nb.top[x] + (y + 1) * nb.left[h - 1];
                row[x] = static_cast<uint8_t>(
                    (horz * h + vert * w + w * h) / (2 * w * h));
            }
        }
        break;
      case IntraMode::Smooth:
      case IntraMode::SmoothV:
      case IntraMode::SmoothH:
        for (int y = 0; y < h; ++y) {
            uint8_t *row = dst.row(y);
            double wy = std::cos(M_PI * (y + 0.5) / (2.0 * h));
            for (int x = 0; x < w; ++x) {
                double wx = std::cos(M_PI * (x + 0.5) / (2.0 * w));
                double v;
                if (mode == IntraMode::SmoothV) {
                    v = wy * nb.top[x] + (1 - wy) * nb.left[h - 1];
                } else if (mode == IntraMode::SmoothH) {
                    v = wx * nb.left[y] + (1 - wx) * nb.top[w - 1];
                } else {
                    v = 0.5 * (wy * nb.top[x] + (1 - wy) * nb.left[h - 1]) +
                        0.5 * (wx * nb.left[y] + (1 - wx) * nb.top[w - 1]);
                }
                row[x] = static_cast<uint8_t>(std::lround(v));
            }
        }
        break;
      case IntraMode::Paeth:
        for (int y = 0; y < h; ++y) {
            uint8_t *row = dst.row(y);
            for (int x = 0; x < w; ++x) {
                int base = nb.top[x] + nb.left[y] - nb.topLeft;
                int dt = std::abs(base - nb.top[x]);
                int dl = std::abs(base - nb.left[y]);
                int dtl = std::abs(base - nb.topLeft);
                row[x] = (dl <= dt && dl <= dtl) ? nb.left[y]
                         : (dt <= dtl)           ? nb.top[x]
                                                 : nb.topLeft;
            }
        }
        break;
      case IntraMode::D45: predictDirectional(nb, w, h, 45, dst); break;
      case IntraMode::D63: predictDirectional(nb, w, h, 63, dst); break;
      case IntraMode::D67: predictDirectional(nb, w, h, 67, dst); break;
      case IntraMode::D117: predictDirectional(nb, w, h, 117, dst); break;
      case IntraMode::D135: predictDirectional(nb, w, h, 135, dst); break;
      case IntraMode::D153: predictDirectional(nb, w, h, 153, dst); break;
      case IntraMode::D207: predictDirectional(nb, w, h, 207, dst); break;
      case IntraMode::D22: predictDirectional(nb, w, h, 22, dst); break;
      default:
        throw std::invalid_argument("predictIntra: bad mode");
    }

    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.intra_pred");
        p->enterKernel(site, 12);
        bool directional = mode >= IntraMode::D45 && mode != IntraMode::Smooth &&
                           mode != IntraMode::Paeth;
        int chunks = std::max(1, w / 32);
        for (int y = 0; y < h; ++y) {
            // Reference samples live in a tiny L1-resident array.
            p->mem(OpClass::SimdLoad, site + 0x400 + (static_cast<uint64_t>(y % 8) * 32));
            p->ops(OpClass::SimdAlu, directional ? 4u : 2u, 1, 2);
            for (int c = 0; c < chunks; ++c) {
                p->mem(OpClass::SimdStore,
                       dst.vaddr + static_cast<uint64_t>(y) * dst.stride + c * 32, 1);
            }
        }
        p->loopBranches(static_cast<uint64_t>((h + 3) / 4));
    }
}

} // namespace vepro::codec
