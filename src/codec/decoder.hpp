#ifndef VEPRO_CODEC_DECODER_HPP
#define VEPRO_CODEC_DECODER_HPP

/**
 * @file
 * Bitstream decoder: the exact inverse of FrameCodec's commit pass.
 *
 * The decoder parses the per-frame payloads the encoder emits (partition
 * tree, mode/motion syntax, zigzag-scanned coefficient levels), rebuilds
 * the prediction from its own reconstruction state, and applies the same
 * dequantise / inverse-transform / loop-filter pipeline. Given matching
 * ToolConfig parameters its reconstruction equals the encoder's recon()
 * bit for bit — the round-trip proof that the bitstreams the benches
 * measure are real (and the paper's premise that decoding is the cheap,
 * choice-free direction).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/rangecoder.hpp"
#include "codec/rdo.hpp"
#include "video/frame.hpp"

namespace vepro::codec
{

/** Decoder for FrameCodec bitstreams. */
class FrameDecoder
{
  public:
    /**
     * @param config Must carry the same superblockSize, quality
     *               (qIndex/qRange), txTypeCandidates, coefficient-context
     *               depth, interpolation, and filterPasses the encoder
     *               used; the other (search-side) fields are ignored.
     * @param width,height Frame geometry.
     */
    FrameDecoder(const ToolConfig &config, int width, int height);

    /**
     * Decode one frame payload (from FrameCodec::lastFrameBytes(),
     * in display order starting at the keyframe).
     *
     * @param payload  The frame's entropy-coded bytes.
     * @param keyframe True for the first frame / forced key frames.
     */
    void decodeFrame(const std::vector<uint8_t> &payload, bool keyframe);

    /** Reconstruction of the most recently decoded frame. */
    const video::Frame &recon() const { return recon_; }

    int framesDecoded() const { return frames_decoded_; }

  private:
    void decodeNode(const BlockRect &r, int depth);
    void decodeLeaf(const BlockRect &r);
    void decodeChroma(const BlockRect &r, bool inter, MotionVector mv);
    /** Decode an n x n level tile (zigzag order) into levels_. */
    void decodeCoeffTile(int32_t *levels, int n);

    MotionVector mvPredictor(const BlockRect &r) const;
    void storeMv(const BlockRect &r, MotionVector mv);

    ToolConfig config_;
    int width_, height_;
    Quantizer quant_;

    video::Frame recon_;
    video::Frame ref_;
    bool keyframe_ = true;
    int frames_decoded_ = 0;

    int mv_cols_, mv_rows_;
    std::vector<MotionVector> mv_field_;

    std::unique_ptr<RangeDecoder> rd_;
    SyntaxContexts ctx_;

    std::vector<int16_t> res_;
    std::vector<int32_t> coeff_;
    std::vector<int32_t> levels_;
    std::vector<uint8_t> pred_;
};

} // namespace vepro::codec

#endif // VEPRO_CODEC_DECODER_HPP
